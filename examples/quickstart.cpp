// quickstart — synthesize a small event, run the fault-tolerant
// pipeline on it, and list the artifacts. Writes to ./quickstart-out.

#include <cstdio>

#include "formats/v2.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"

int main() {
  acx::RealFileSystem fs;
  const std::filesystem::path root = "quickstart-out";
  const auto input = root / "input";
  const auto work = root / "work";

  acx::synth::EventSpec spec = acx::synth::paper_events()[0];
  acx::synth::SynthConfig synth_cfg;
  synth_cfg.scale = 0.05;
  auto dataset = acx::synth::build_event_dataset(fs, input, spec, synth_cfg);
  if (!dataset.ok()) {
    std::fprintf(stderr, "synth failed: %s\n",
                 dataset.error().to_string().c_str());
    return 1;
  }
  std::printf("synthesized event %s: %zu V1 records in %s\n", spec.id.c_str(),
              dataset.value().size(), input.string().c_str());

  auto run = acx::pipeline::run_pipeline(fs, input, work);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  std::printf("pipeline: %d ok, %d quarantined, %d retries in %.3f s\n",
              run.value().count_ok(), run.value().count_quarantined(),
              run.value().count_retries(), run.value().total_seconds);
  for (const auto& r : run.value().records) {
    if (r.status != acx::pipeline::RecordOutcome::Status::kOk) {
      std::printf("  %-8s quarantined: %s\n", r.record.c_str(),
                  r.reason.c_str());
      continue;
    }
    auto content = fs.read_file(r.output);
    auto v2 = content.ok() ? acx::formats::read_v2(content.value())
                           : acx::Result<acx::formats::V2Record,
                                         acx::formats::ParseError>(
                                 acx::formats::ParseError{});
    if (!v2.ok() || !v2.value().peaks.present) {
      std::printf("  %-8s %s\n", r.record.c_str(), r.output.c_str());
      continue;
    }
    const auto& p = v2.value().peaks;
    std::printf(
        "  %-8s PGA %9.2e cm/s2  PGV %9.2e cm/s  PGD %9.2e cm\n",
        r.record.c_str(), p.pga.value, p.pgv.value, p.pgd.value);
  }

  const auto audit = acx::pipeline::validate_workdir(fs, work);
  std::printf("audit: %zu issue(s)\n", audit.issues.size());
  return audit.clean() ? 0 : 1;
}
