// acx_validate — audits a pipeline work dir against its run_report.json:
// atomic-write leftovers, missing/corrupt V2 outputs, unclaimed files,
// quarantine consistency. Exits nonzero on any inconsistency.
//
//   acx_validate --work DIR

#include <cstdio>
#include <string>

#include "pipeline/validate.hpp"

int main(int argc, char** argv) {
  std::string work_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--work" && i + 1 < argc) {
      work_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s --work DIR\n", argv[0]);
      return 2;
    }
  }
  if (work_dir.empty()) {
    std::fprintf(stderr, "usage: %s --work DIR\n", argv[0]);
    return 2;
  }

  acx::RealFileSystem fs;
  const acx::pipeline::ValidationSummary summary =
      acx::pipeline::validate_workdir(fs, work_dir);

  std::printf("acx_validate: %d ok, %d quarantined, %zu issue(s)\n",
              summary.records_ok, summary.records_quarantined,
              summary.issues.size());
  for (const auto& issue : summary.issues) {
    std::printf("  [%s] %s\n", issue.kind.c_str(), issue.detail.c_str());
  }
  return summary.clean() ? 0 : 1;
}
