// acx_synth — deterministic V1 dataset generator.
//
//   acx_synth --out DIR [--paper-event 1..6] [--scale F] [--seed S]
//   acx_synth --list
//
// Writes the chosen paper event (default: event 1) as <station><comp>.v1
// files. Same (event, scale, seed) always produces identical bytes.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "synth/synth.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out DIR [--paper-event N] [--scale F] [--seed S]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  int event_index = 1;
  double scale = 1.0;
  std::uint64_t seed = 42;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      out_dir = v;
    } else if (arg == "--paper-event") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      event_index = std::atoi(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--list") {
      list = true;
    } else {
      return usage(argv[0]);
    }
  }

  const auto events = acx::synth::paper_events();
  if (list) {
    std::printf("# idx  id    date        files  total_points\n");
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      std::printf("  %zu    %s  %s  %5d  %12ld\n", i + 1, e.id.c_str(),
                  e.date.c_str(), e.n_files, e.total_points);
    }
    return 0;
  }

  if (out_dir.empty()) return usage(argv[0]);
  if (event_index < 1 || event_index > static_cast<int>(events.size())) {
    std::fprintf(stderr, "acx_synth: --paper-event must be 1..%zu\n",
                 events.size());
    return 2;
  }
  if (scale <= 0) {
    std::fprintf(stderr, "acx_synth: --scale must be positive\n");
    return 2;
  }

  acx::RealFileSystem fs;
  const acx::synth::EventSpec& spec =
      events[static_cast<std::size_t>(event_index - 1)];
  acx::synth::SynthConfig cfg{seed, scale};
  auto written = acx::synth::build_event_dataset(fs, out_dir, spec, cfg);
  if (!written.ok()) {
    std::fprintf(stderr, "acx_synth: %s\n",
                 written.error().to_string().c_str());
    return 1;
  }
  std::printf("acx_synth: event %s -> %s (%zu files, scale %g, seed %llu)\n",
              spec.id.c_str(), out_dir.c_str(), written.value().size(), scale,
              static_cast<unsigned long long>(seed));
  return 0;
}
