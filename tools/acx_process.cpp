// acx_process — fault-tolerant pipeline runner.
//
//   acx_process --input DIR --work DIR
//               [--driver seq|seq-opt|partial|full] [--threads N]
//               [--bandpass fir|butter]
//               [--baseline REPORT] [--keep-going|--fail-fast]
//               [--max-retries N] [--report] [--canonical]
//
// Processes every *.v1 record in --input with one of the paper's four
// drivers (default seq, the Sequential Original). Poisoned records are
// quarantined under <work>/quarantine and the run continues (unless
// --fail-fast); transient I/O errors are retried with capped
// exponential backoff. Outcomes land in <work>/run_report.json.
// --threads sets the OpenMP team size of the parallel drivers (0 = all
// hardware threads); --baseline points at a sequential run's
// run_report.json, and stamps speedup_vs_sequential into this run's
// report.
//
// Exit codes: 0 = all records ok; 3 = completed but some records
// quarantined; 1 = the run itself failed (work dir or report I/O).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pipeline/runner.hpp"
#include "util/fs.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input DIR --work DIR "
               "[--driver seq|seq-opt|partial|full] [--threads N] "
               "[--bandpass fir|butter] [--baseline REPORT] "
               "[--keep-going|--fail-fast] "
               "[--max-retries N] [--report] [--canonical]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_dir, work_dir, baseline_path;
  bool report_to_stdout = false;
  bool canonical_to_stdout = false;
  acx::pipeline::RunnerConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      input_dir = v;
    } else if (arg == "--work") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      work_dir = v;
    } else if (arg == "--driver") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      auto driver = acx::pipeline::parse_driver(v);
      if (!driver) {
        std::fprintf(stderr, "acx_process: unknown driver '%s'\n", v);
        return usage(argv[0]);
      }
      cfg.driver = *driver;
    } else if (arg == "--bandpass") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string kind = v;
      if (kind == "fir") {
        cfg.correction.bandpass = acx::pipeline::BandPassKind::kFir;
      } else if (kind == "butter") {
        cfg.correction.bandpass = acx::pipeline::BandPassKind::kButterworth;
      } else {
        std::fprintf(stderr, "acx_process: unknown bandpass '%s'\n", v);
        return usage(argv[0]);
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.threads = std::atoi(v);
      if (cfg.threads < 0) return usage(argv[0]);
    } else if (arg == "--baseline") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--keep-going") {
      cfg.keep_going = true;
    } else if (arg == "--fail-fast") {
      cfg.keep_going = false;
    } else if (arg == "--max-retries") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.retry.max_attempts = std::max(1, std::atoi(v) + 1);
    } else if (arg == "--report") {
      report_to_stdout = true;
    } else if (arg == "--canonical") {
      canonical_to_stdout = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_dir.empty() || work_dir.empty()) return usage(argv[0]);
  if (!cfg.keep_going && acx::pipeline::is_parallel(cfg.driver)) {
    std::fprintf(stderr,
                 "acx_process: --fail-fast has no serial notion of 'first' "
                 "under a parallel driver; running keep-going\n");
    cfg.keep_going = true;
  }

  acx::RealFileSystem fs;
  if (!baseline_path.empty()) {
    auto text = fs.read_file(baseline_path);
    if (!text.ok()) {
      std::fprintf(stderr, "acx_process: cannot read baseline: %s\n",
                   text.error().to_string().c_str());
      return 1;
    }
    auto baseline = acx::pipeline::RunReport::from_json_text(text.value());
    if (!baseline.ok()) {
      std::fprintf(stderr, "acx_process: bad baseline report: %s\n",
                   baseline.error().c_str());
      return 1;
    }
    cfg.baseline_total_seconds = baseline.value().total_seconds;
  }

  auto run = acx::pipeline::run_pipeline(fs, input_dir, work_dir, cfg);
  if (!run.ok()) {
    std::fprintf(stderr, "acx_process: run failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const acx::pipeline::RunReport& report = run.value();

  // With --canonical, stdout is exactly the canonical dump (consumers
  // cmp it byte-for-byte); the human summary — which carries wall-clock
  // timings that vary run to run — moves to stderr.
  std::FILE* log = canonical_to_stdout ? stderr : stdout;
  std::fprintf(
      log,
      "acx_process: driver %s, %d thread%s: %zu records, %d ok, "
      "%d quarantined, %d retries\n",
      report.driver.c_str(), report.threads, report.threads == 1 ? "" : "s",
      report.records.size(), report.count_ok(), report.count_quarantined(),
      report.count_retries());
  if (report.speedup_vs_sequential > 0) {
    std::fprintf(log, "  speedup vs sequential baseline: %.2fx\n",
                 report.speedup_vs_sequential);
  }
  {
    long long hits = 0, misses = 0;
    double setup = 0, kernel = 0;
    for (const auto& [stage, p] : report.stage_profile()) {
      hits += p.cache_hits;
      misses += p.cache_misses;
      setup += p.setup_seconds;
      kernel += p.kernel_seconds;
    }
    if (hits + misses > 0) {
      std::fprintf(
          log,
          "  plan caches: %lld hits / %lld misses, %.3fs setup, "
          "%.3fs kernel\n",
          hits, misses, setup, kernel);
    }
  }
  for (const auto& r : report.records) {
    if (r.status == acx::pipeline::RecordOutcome::Status::kQuarantined) {
      std::fprintf(log, "  quarantined %-8s %s\n", r.record.c_str(),
                   r.reason.c_str());
    }
  }
  if (report_to_stdout) std::fputs(report.dump().c_str(), stdout);
  // The driver-independent projection (timings dropped, dirs rebased):
  // what CI's ACX_SIMD=ON/OFF equivalence leg diffs byte-for-byte.
  if (canonical_to_stdout) {
    std::fputs(report.canonical_dump().c_str(), stdout);
  }

  return report.count_quarantined() == 0 ? 0 : 3;
}
