// acx_process — fault-tolerant pipeline runner.
//
//   acx_process --input DIR --work DIR [--keep-going|--fail-fast]
//               [--max-retries N] [--report]
//
// Processes every *.v1 record in --input. Poisoned records are
// quarantined under <work>/quarantine and the run continues (unless
// --fail-fast); transient I/O errors are retried with capped
// exponential backoff. Outcomes land in <work>/run_report.json.
//
// Exit codes: 0 = all records ok; 3 = completed but some records
// quarantined; 1 = the run itself failed (work dir or report I/O).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pipeline/runner.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input DIR --work DIR [--keep-going|--fail-fast] "
               "[--max-retries N] [--report]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_dir, work_dir;
  bool report_to_stdout = false;
  acx::pipeline::RunnerConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      input_dir = v;
    } else if (arg == "--work") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      work_dir = v;
    } else if (arg == "--keep-going") {
      cfg.keep_going = true;
    } else if (arg == "--fail-fast") {
      cfg.keep_going = false;
    } else if (arg == "--max-retries") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cfg.retry.max_attempts = std::max(1, std::atoi(v) + 1);
    } else if (arg == "--report") {
      report_to_stdout = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_dir.empty() || work_dir.empty()) return usage(argv[0]);

  acx::RealFileSystem fs;
  auto run = acx::pipeline::run_pipeline(fs, input_dir, work_dir, cfg);
  if (!run.ok()) {
    std::fprintf(stderr, "acx_process: run failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const acx::pipeline::RunReport& report = run.value();

  std::printf("acx_process: %zu records, %d ok, %d quarantined, %d retries\n",
              report.records.size(), report.count_ok(),
              report.count_quarantined(), report.count_retries());
  for (const auto& r : report.records) {
    if (r.status == acx::pipeline::RecordOutcome::Status::kQuarantined) {
      std::printf("  quarantined %-8s %s\n", r.record.c_str(),
                  r.reason.c_str());
    }
  }
  if (report_to_stdout) std::fputs(report.dump().c_str(), stdout);

  return report.count_quarantined() == 0 ? 0 : 3;
}
