// acx_sched — deterministic schedule simulator over measured costs.
//
//   acx_sched --report RUN_REPORT [--report RUN_REPORT ...]
//             [--procs P] [--sweep P1,P2,...] [--seed S] [--split N]
//             [--include-degraded] [--synth-costs]
//             [--gantt [DRIVER]] [--json FILE]
//
// Loads per-(record, stage) costs from one or more v6 run_report.json
// files (the first report is authoritative; later ones fill stages or
// records it lacks and contribute measured wall-clock anchors), builds
// the paper's four driver schedules over the standard stage graph, and
// replays them on P virtual processors (default 12, the logical
// processors of the paper's i5-12450H). Prints modeled makespans,
// speedups, work/span with Brent bounds, and per-stage Fig.-11 rows;
// --json writes the machine-readable sched report docs/SCHED.md
// documents, which scripts/paper_figures.py renders into the Table I /
// Fig. 11 / Fig. 13 CSVs. Everything is a pure function of the inputs
// and flags — no wall clock, seeded tie-breaks — so repeated runs are
// byte-identical.
//
// Exit codes: 0 ok; 1 unreadable or unusable input; 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "sched/analysis.hpp"
#include "sched/cost_model.hpp"
#include "sched/gantt.hpp"
#include "util/fs.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --report RUN_REPORT [--report RUN_REPORT ...] "
               "[--procs P] [--sweep P1,P2,...] [--seed S] [--split N] "
               "[--include-degraded] [--synth-costs] [--gantt [DRIVER]] "
               "[--json FILE]\n",
               argv0);
  return 2;
}

bool parse_int_list(const std::string& text, std::vector<int>& out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    if (item.empty()) return false;
    char* end = nullptr;
    const long value = std::strtol(item.c_str(), &end, 10);
    if (*end != '\0' || value < 1) return false;
    out.push_back(static_cast<int>(value));
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> report_paths;
  std::string json_path;
  std::string gantt_driver;
  bool gantt = false;
  acx::sched::CostModelOptions model_opt;
  acx::sched::AnalysisOptions opt;
  bool synth_costs = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--report") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      report_paths.push_back(v);
    } else if (arg == "--procs") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.procs = std::atoi(v);
      if (opt.procs < 1) return usage(argv[0]);
    } else if (arg == "--sweep") {
      const char* v = next();
      if (!v || !parse_int_list(v, opt.sweep)) return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--split") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      opt.response_split = std::atoi(v);
      if (opt.response_split < 1) return usage(argv[0]);
    } else if (arg == "--include-degraded") {
      model_opt.include_degraded = true;
    } else if (arg == "--synth-costs") {
      synth_costs = true;
    } else if (arg == "--gantt") {
      gantt = true;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        gantt_driver = argv[++i];
      }
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      json_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (report_paths.empty()) return usage(argv[0]);

  acx::RealFileSystem fs;
  acx::sched::CostModel model;
  bool have_model = false;
  for (const std::string& path : report_paths) {
    auto text = fs.read_file(path);
    if (!text.ok()) {
      std::fprintf(stderr, "acx_sched: cannot read %s: %s\n", path.c_str(),
                   text.error().to_string().c_str());
      return 1;
    }
    auto report = acx::pipeline::RunReport::from_json_text(text.value());
    if (!report.ok()) {
      std::fprintf(stderr, "acx_sched: bad report %s: %s\n", path.c_str(),
                   report.error().c_str());
      return 1;
    }
    auto extracted =
        synth_costs
            ? acx::sched::cost_model_from_profile(report.value(), model_opt)
            : acx::sched::cost_model_from_report(report.value(), model_opt);
    if (!extracted.ok()) {
      std::fprintf(stderr, "acx_sched: %s: %s\n", path.c_str(),
                   extracted.error().c_str());
      return 1;
    }
    if (!have_model) {
      model = std::move(extracted).take();
      have_model = true;
    } else {
      acx::sched::merge_cost_model(model, extracted.value());
    }
  }

  const auto shape = acx::pipeline::StageGraph::standard().shape();
  auto analyzed = acx::sched::analyze(model, shape, opt);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "acx_sched: %s\n", analyzed.error().c_str());
    return 1;
  }
  const acx::sched::SchedModel& result = analyzed.value();

  std::printf(
      "acx_sched: %zu records (%lld points) from %s on %d virtual procs "
      "(seed %llu, split %d)\n",
      result.model.records.size(), result.model.total_points(),
      result.model.source.c_str(), result.procs,
      static_cast<unsigned long long>(result.seed), result.response_split);
  if (result.model.excluded_quarantined || result.model.excluded_degraded) {
    std::printf("  excluded: %d quarantined, %d degraded\n",
                result.model.excluded_quarantined,
                result.model.excluded_degraded);
  }
  if (result.model.flagged_degraded || result.model.flagged_retried ||
      result.model.floored_costs) {
    std::printf("  flagged: %d degraded, %d retried, %d floored costs\n",
                result.model.flagged_degraded, result.model.flagged_retried,
                result.model.floored_costs);
  }
  for (const auto& m : result.model.measured) {
    std::printf("  measured %-8s t=%-2d %.6fs\n", m.driver.c_str(),
                m.threads, m.total_seconds);
  }

  std::printf("\n%-8s %12s %12s %12s %12s %12s %8s\n", "driver", "work T1",
              "span Tinf", "makespan", "brent lo", "brent hi", "speedup");
  for (const auto& d : result.drivers) {
    std::printf("%-8s %11.6fs %11.6fs %11.6fs %11.6fs %11.6fs %7.2fx\n",
                d.driver.c_str(), d.work, d.span, d.makespan, d.brent_lower,
                d.brent_upper, d.speedup);
  }

  std::printf("\n%-14s %6s %12s %8s %12s %9s\n", "stage", "tasks",
              "seq cost", "share", "modeled", "speedup");
  for (const auto& s : result.stages) {
    std::printf("%-14s %6d %11.6fs %7.2f%% %11.6fs %8.2fx%s\n",
                s.stage.c_str(), s.tasks, s.seq_seconds, 100.0 * s.share,
                s.modeled_seconds, s.speedup,
                s.redundant ? "  (redundant)" : "");
  }

  if (!result.sweep.empty()) {
    std::printf("\n%-8s %12s %8s\n", "procs", "makespan", "speedup");
    for (const auto& p : result.sweep) {
      std::printf("%-8d %11.6fs %7.2fx\n", p.procs, p.makespan, p.speedup);
    }
  }

  if (gantt) {
    for (const auto& d : result.drivers) {
      if (!gantt_driver.empty() && d.driver != gantt_driver) continue;
      std::printf("\n[%s]\n%s", d.driver.c_str(),
                  acx::sched::render_gantt(d.graph, d.schedule).c_str());
    }
  }

  if (!json_path.empty()) {
    const std::string text = result.to_json().dump(2);
    auto wrote = acx::atomic_write_file(fs, json_path, text);
    if (!wrote.ok()) {
      std::fprintf(stderr, "acx_sched: cannot write %s: %s\n",
                   json_path.c_str(), wrote.error().to_string().c_str());
      return 1;
    }
  }
  return 0;
}
