// acx_serve — resident accelerogram-processing service.
//
//   acx_serve --spool DIR --work DIR
//             [--driver seq|seq-opt|partial|full|pool] [--threads N]
//             [--event-workers N] [--queue-capacity N] [--shards N]
//             [--priority fifo|largest|smallest] [--poll-ms MS]
//             [--max-events N] [--idle-exit-s S] [--stats-every N]
//             [--soft-deadline-s S] [--hard-deadline-s S]
//             [--max-retries N] [--jitter-seed N]
//             [--storage-latency-ms MS] [--storage-jitter-ms MS]
//             [--storage-fail-p P] [--storage-seed N]
//             [--breaker-threshold N] [--breaker-open-s S]
//             [--breaker-probes N]
//             [--stats]
//
// Watches --spool for event manifests ({"event": ID, "input": DIR}
// JSON files, delivered by atomic rename; see docs/SERVE.md for the
// full protocol) and runs each admitted event through the standard
// pipeline + modeled storage stack. The record-level fan-out of every
// event runs on ONE persistent work-stealing pool (util/work_pool.hpp)
// owned by this process, so thread-team spin-up and plan-cache warm-up
// are paid once per service lifetime instead of once per event — the
// amortization serve_stats.json's plan-cache trajectory documents.
//
// Stops on the `shutdown` sentinel (drains first), after --max-events,
// or after --idle-exit-s of quiet. Exit codes: 0 = every served event
// ok; 3 = served but some event degraded/quarantined or some manifest
// rejected; 1 = the service itself failed.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "pipeline/serve.hpp"
#include "util/breaker.hpp"
#include "util/faultfs.hpp"
#include "util/fs.hpp"
#include "util/slowfs.hpp"
#include "util/work_pool.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spool DIR --work DIR "
      "[--driver seq|seq-opt|partial|full|pool] [--threads N] "
      "[--event-workers N] [--queue-capacity N] [--shards N] "
      "[--priority fifo|largest|smallest] [--poll-ms MS] "
      "[--max-events N] [--idle-exit-s S] [--stats-every N] "
      "[--soft-deadline-s S] [--hard-deadline-s S] "
      "[--max-retries N] [--jitter-seed N] "
      "[--storage-latency-ms MS] [--storage-jitter-ms MS] "
      "[--storage-fail-p P] [--storage-seed N] "
      "[--breaker-threshold N] [--breaker-open-s S] [--breaker-probes N] "
      "[--stats]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spool_dir, work_root;
  bool stats_to_stdout = false;
  acx::pipeline::ServeConfig cfg;
  cfg.runner.driver = acx::pipeline::Driver::kPool;
  acx::storage::SlowConfig slow;
  acx::faultfs::FaultConfig faults;
  acx::storage::BreakerConfig breaker_cfg;
  double storage_fail_p = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--spool") {
      if (!(v = next())) return usage(argv[0]);
      spool_dir = v;
    } else if (arg == "--work") {
      if (!(v = next())) return usage(argv[0]);
      work_root = v;
    } else if (arg == "--driver") {
      if (!(v = next())) return usage(argv[0]);
      auto driver = acx::pipeline::parse_driver(v);
      if (!driver) {
        std::fprintf(stderr, "acx_serve: unknown driver '%s'\n", v);
        return usage(argv[0]);
      }
      cfg.runner.driver = *driver;
    } else if (arg == "--threads") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.threads = std::atoi(v);
      if (cfg.runner.threads < 0) return usage(argv[0]);
    } else if (arg == "--event-workers") {
      if (!(v = next())) return usage(argv[0]);
      cfg.event_workers = std::atoi(v);
      if (cfg.event_workers < 1) return usage(argv[0]);
    } else if (arg == "--queue-capacity") {
      if (!(v = next())) return usage(argv[0]);
      const int n = std::atoi(v);
      if (n < 1) return usage(argv[0]);
      cfg.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      if (!(v = next())) return usage(argv[0]);
      cfg.shards = std::atoi(v);
      if (cfg.shards < 1) return usage(argv[0]);
    } else if (arg == "--priority") {
      if (!(v = next())) return usage(argv[0]);
      auto p = acx::pipeline::parse_priority(v);
      if (!p) {
        std::fprintf(stderr, "acx_serve: unknown priority '%s'\n", v);
        return usage(argv[0]);
      }
      cfg.priority = *p;
    } else if (arg == "--poll-ms") {
      if (!(v = next())) return usage(argv[0]);
      cfg.poll_ms = std::atoi(v);
      if (cfg.poll_ms < 1) return usage(argv[0]);
    } else if (arg == "--max-events") {
      if (!(v = next())) return usage(argv[0]);
      cfg.max_events = std::atoll(v);
      if (cfg.max_events < 0) return usage(argv[0]);
    } else if (arg == "--idle-exit-s") {
      if (!(v = next())) return usage(argv[0]);
      cfg.idle_exit_seconds = std::atof(v);
      if (cfg.idle_exit_seconds < 0) return usage(argv[0]);
    } else if (arg == "--stats-every") {
      if (!(v = next())) return usage(argv[0]);
      cfg.stats_every = std::atoi(v);
      if (cfg.stats_every < 1) return usage(argv[0]);
    } else if (arg == "--soft-deadline-s") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.deadline.soft_seconds = std::atof(v);
    } else if (arg == "--hard-deadline-s") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.deadline.hard_seconds = std::atof(v);
    } else if (arg == "--max-retries") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.retry.max_attempts = std::max(1, std::atoi(v) + 1);
    } else if (arg == "--jitter-seed") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.retry.jitter_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--storage-latency-ms") {
      if (!(v = next())) return usage(argv[0]);
      slow.base_ms = std::atof(v);
    } else if (arg == "--storage-jitter-ms") {
      if (!(v = next())) return usage(argv[0]);
      slow.jitter_ms = std::atof(v);
    } else if (arg == "--storage-fail-p") {
      if (!(v = next())) return usage(argv[0]);
      storage_fail_p = std::atof(v);
      if (storage_fail_p < 0 || storage_fail_p >= 1) return usage(argv[0]);
    } else if (arg == "--storage-seed") {
      if (!(v = next())) return usage(argv[0]);
      const std::uint64_t seed = std::strtoull(v, nullptr, 10);
      faults.seed = seed;
      slow.seed = seed;
    } else if (arg == "--breaker-threshold") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.failure_threshold = std::atoi(v);
      if (breaker_cfg.failure_threshold < 1) return usage(argv[0]);
    } else if (arg == "--breaker-open-s") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.open_seconds = std::atof(v);
    } else if (arg == "--breaker-probes") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.half_open_probes = std::atoi(v);
      if (breaker_cfg.half_open_probes < 1) return usage(argv[0]);
    } else if (arg == "--stats") {
      stats_to_stdout = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (spool_dir.empty() || work_root.empty()) return usage(argv[0]);

  // Same modeled storage stack as acx_batch: real disk, optionally
  // flaky, optionally slow, always behind the circuit breaker.
  acx::RealFileSystem real;
  acx::FileSystem* backend = &real;
  std::unique_ptr<acx::faultfs::FaultyFileSystem> faulty;
  if (storage_fail_p > 0) {
    faults.read_fail_p = storage_fail_p;
    faults.write_fail_p = storage_fail_p;
    faults.rename_fail_p = storage_fail_p;
    faulty = std::make_unique<acx::faultfs::FaultyFileSystem>(*backend, faults);
    backend = faulty.get();
  }
  std::unique_ptr<acx::storage::SlowFileSystem> slowed;
  if (slow.base_ms > 0 || slow.jitter_ms > 0 || slow.per_kib_ms > 0) {
    slowed = std::make_unique<acx::storage::SlowFileSystem>(*backend, slow);
    backend = slowed.get();
  }
  acx::storage::CircuitBreaker breaker(breaker_cfg);
  acx::storage::BreakerFileSystem fs(*backend, breaker);
  cfg.runner.breaker = &breaker;

  // The process-lifetime pool: every event's record fan-out lands here.
  acx::WorkPool pool(cfg.runner.threads);
  cfg.pool = &pool;

  std::fprintf(stderr,
               "acx_serve: watching %s (driver %s, %d pool thread%s, "
               "%d event worker%s)\n",
               spool_dir.c_str(), acx::pipeline::to_string(cfg.runner.driver),
               pool.thread_count(), pool.thread_count() == 1 ? "" : "s",
               cfg.event_workers, cfg.event_workers == 1 ? "" : "s");

  acx::pipeline::SpoolServer server(fs, cfg);
  auto run = server.run(spool_dir, work_root);
  pool.shutdown();
  if (!run.ok()) {
    std::fprintf(stderr, "acx_serve: service failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const acx::pipeline::ServeStats& stats = run.value();

  std::printf(
      "acx_serve: served %lld events (%lld ok, %lld degraded, "
      "%lld quarantined) in %.3fs; rejected %lld malformed, "
      "%lld duplicate\n",
      stats.served, stats.ok, stats.degraded, stats.quarantined,
      stats.uptime_seconds, stats.malformed, stats.duplicates);
  std::printf(
      "  sustained: %.1f records/s, %.0f points/s; plan cache "
      "%lld hits / %lld misses\n",
      stats.uptime_seconds > 0
          ? (stats.records_ok + stats.records_degraded) / stats.uptime_seconds
          : 0.0,
      stats.uptime_seconds > 0 ? stats.points / stats.uptime_seconds : 0.0,
      stats.cache_hits, stats.cache_misses);
  if (stats.breaker_rejected_ops > 0 || stats.breaker_opens > 0) {
    std::printf(
        "  breaker: %lld ops rejected, %d opens, %d half-open recoveries\n",
        stats.breaker_rejected_ops, stats.breaker_opens,
        stats.breaker_half_open_recoveries);
  }
  if (stats_to_stdout) std::fputs(stats.dump().c_str(), stdout);

  const bool clean = stats.served == stats.ok && stats.malformed == 0 &&
                     stats.duplicates == 0;
  return clean ? 0 : 3;
}
