// acx_batch — resilient multi-event batch runner.
//
//   acx_batch --input ROOT --work DIR
//             [--driver seq|seq-opt|partial|full] [--threads N]
//             [--event-workers N] [--queue-capacity N] [--shards N]
//             [--priority fifo|largest|smallest]
//             [--soft-deadline-s S] [--hard-deadline-s S]
//             [--max-retries N] [--jitter-seed N] [--no-resume]
//             [--storage-latency-ms MS] [--storage-jitter-ms MS]
//             [--storage-fail-p P] [--storage-seed N]
//             [--breaker-threshold N] [--breaker-open-s S]
//             [--breaker-probes N]
//             [--kill-stage NAME --kill-on K]
//             [--report]
//
// Every directory under --input holding *.v1 records is one event.
// Events flow through a bounded priority queue (backpressure against a
// stalled worker pool) to --event-workers threads, each running the
// configured intra-event driver; two scheduling axes compose. Each
// event runs under the per-event deadline budget, and the whole batch
// talks to storage through the modeled stack
//   Real -> Faulty (--storage-fail-p) -> Slow (--storage-latency-ms)
//        -> Breaker
// whose circuit breaker sheds load from a dying backend. Completed
// events journal under <work>/journal; a rerun of the same command
// resumes, skipping every journaled event whose work dir still
// validates. --kill-stage/--kill-on arm the crash hook (the process
// dies with exit 137 on the K-th invocation of NAME) for the
// kill-and-resume tests. See docs/BATCH.md.
//
// Exit codes: 0 = every event ok; 3 = batch completed but some event
// degraded or quarantined; 1 = the batch itself failed.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "pipeline/batch.hpp"
#include "util/breaker.hpp"
#include "util/faultfs.hpp"
#include "util/fs.hpp"
#include "util/slowfs.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --input ROOT --work DIR "
      "[--driver seq|seq-opt|partial|full] [--threads N] "
      "[--event-workers N] [--queue-capacity N] [--shards N] "
      "[--priority fifo|largest|smallest] "
      "[--soft-deadline-s S] [--hard-deadline-s S] "
      "[--max-retries N] [--jitter-seed N] [--no-resume] "
      "[--storage-latency-ms MS] [--storage-jitter-ms MS] "
      "[--storage-fail-p P] [--storage-seed N] "
      "[--breaker-threshold N] [--breaker-open-s S] [--breaker-probes N] "
      "[--kill-stage NAME --kill-on K] [--report]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_root, work_root;
  bool report_to_stdout = false;
  acx::pipeline::BatchConfig cfg;
  acx::storage::SlowConfig slow;
  acx::faultfs::FaultConfig faults;
  acx::storage::BreakerConfig breaker_cfg;
  double storage_fail_p = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--input") {
      if (!(v = next())) return usage(argv[0]);
      input_root = v;
    } else if (arg == "--work") {
      if (!(v = next())) return usage(argv[0]);
      work_root = v;
    } else if (arg == "--driver") {
      if (!(v = next())) return usage(argv[0]);
      auto driver = acx::pipeline::parse_driver(v);
      if (!driver) {
        std::fprintf(stderr, "acx_batch: unknown driver '%s'\n", v);
        return usage(argv[0]);
      }
      cfg.runner.driver = *driver;
    } else if (arg == "--threads") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.threads = std::atoi(v);
      if (cfg.runner.threads < 0) return usage(argv[0]);
    } else if (arg == "--event-workers") {
      if (!(v = next())) return usage(argv[0]);
      cfg.event_workers = std::atoi(v);
      if (cfg.event_workers < 1) return usage(argv[0]);
    } else if (arg == "--queue-capacity") {
      if (!(v = next())) return usage(argv[0]);
      const int n = std::atoi(v);
      if (n < 1) return usage(argv[0]);
      cfg.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--shards") {
      if (!(v = next())) return usage(argv[0]);
      cfg.shards = std::atoi(v);
      if (cfg.shards < 1) return usage(argv[0]);
    } else if (arg == "--priority") {
      if (!(v = next())) return usage(argv[0]);
      auto p = acx::pipeline::parse_priority(v);
      if (!p) {
        std::fprintf(stderr, "acx_batch: unknown priority '%s'\n", v);
        return usage(argv[0]);
      }
      cfg.priority = *p;
    } else if (arg == "--soft-deadline-s") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.deadline.soft_seconds = std::atof(v);
    } else if (arg == "--hard-deadline-s") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.deadline.hard_seconds = std::atof(v);
    } else if (arg == "--max-retries") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.retry.max_attempts = std::max(1, std::atoi(v) + 1);
    } else if (arg == "--jitter-seed") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.retry.jitter_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-resume") {
      cfg.resume = false;
    } else if (arg == "--storage-latency-ms") {
      if (!(v = next())) return usage(argv[0]);
      slow.base_ms = std::atof(v);
    } else if (arg == "--storage-jitter-ms") {
      if (!(v = next())) return usage(argv[0]);
      slow.jitter_ms = std::atof(v);
    } else if (arg == "--storage-fail-p") {
      if (!(v = next())) return usage(argv[0]);
      storage_fail_p = std::atof(v);
      if (storage_fail_p < 0 || storage_fail_p >= 1) return usage(argv[0]);
    } else if (arg == "--storage-seed") {
      if (!(v = next())) return usage(argv[0]);
      const std::uint64_t seed = std::strtoull(v, nullptr, 10);
      faults.seed = seed;
      slow.seed = seed;
    } else if (arg == "--breaker-threshold") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.failure_threshold = std::atoi(v);
      if (breaker_cfg.failure_threshold < 1) return usage(argv[0]);
    } else if (arg == "--breaker-open-s") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.open_seconds = std::atof(v);
    } else if (arg == "--breaker-probes") {
      if (!(v = next())) return usage(argv[0]);
      breaker_cfg.half_open_probes = std::atoi(v);
      if (breaker_cfg.half_open_probes < 1) return usage(argv[0]);
    } else if (arg == "--kill-stage") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.stage_fault.stage = v;
      cfg.runner.stage_fault.kill_process = true;
    } else if (arg == "--kill-on") {
      if (!(v = next())) return usage(argv[0]);
      cfg.runner.stage_fault.kill_on_invocation = std::atoi(v);
    } else if (arg == "--report") {
      report_to_stdout = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_root.empty() || work_root.empty()) return usage(argv[0]);

  // The modeled storage stack: real disk, optionally flaky, optionally
  // slow, always behind the circuit breaker.
  acx::RealFileSystem real;
  acx::FileSystem* backend = &real;
  std::unique_ptr<acx::faultfs::FaultyFileSystem> faulty;
  if (storage_fail_p > 0) {
    faults.read_fail_p = storage_fail_p;
    faults.write_fail_p = storage_fail_p;
    faults.rename_fail_p = storage_fail_p;
    faulty = std::make_unique<acx::faultfs::FaultyFileSystem>(*backend, faults);
    backend = faulty.get();
  }
  std::unique_ptr<acx::storage::SlowFileSystem> slowed;
  if (slow.base_ms > 0 || slow.jitter_ms > 0 || slow.per_kib_ms > 0) {
    slowed = std::make_unique<acx::storage::SlowFileSystem>(*backend, slow);
    backend = slowed.get();
  }
  acx::storage::CircuitBreaker breaker(breaker_cfg);
  acx::storage::BreakerFileSystem fs(*backend, breaker);
  cfg.runner.breaker = &breaker;

  acx::pipeline::BatchRunner runner(fs, cfg);
  auto run = runner.run(input_root, work_root);
  if (!run.ok()) {
    std::fprintf(stderr, "acx_batch: batch failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }
  const acx::pipeline::BatchReport& report = run.value();

  std::printf(
      "acx_batch: %zu events (%d ok, %d degraded, %d quarantined, "
      "%d resumed), driver %s x %d worker%s\n",
      report.events.size(), report.count_status("ok"),
      report.count_status("degraded"), report.count_status("quarantined"),
      report.count_resumed(), report.driver.c_str(), report.event_workers,
      report.event_workers == 1 ? "" : "s");
  std::printf("  sustained: %.1f records/s, %.0f points/s over %.3fs\n",
              report.records_per_second, report.points_per_second,
              report.total_seconds);
  if (report.breaker_rejected_ops > 0 || report.breaker_opens > 0) {
    std::printf(
        "  breaker: %lld ops rejected, %d opens, %d half-open recoveries\n",
        report.breaker_rejected_ops, report.breaker_opens,
        report.breaker_half_open_recoveries);
  }
  for (const auto& e : report.events) {
    if (e.status != "ok") {
      std::printf("  %-11s %s%s%s\n", e.status.c_str(), e.event.c_str(),
                  e.error.empty() ? "" : ": ", e.error.c_str());
    }
  }
  if (report_to_stdout) std::fputs(report.dump().c_str(), stdout);

  return report.count_status("ok") == static_cast<int>(report.events.size())
             ? 0
             : 3;
}
