// Simulator economics: the schedule simulator exists to run after
// every measured event, so its own cost must stay trivial next to the
// runs it models. These benches build a paper-sized cost model (19
// records, every stage) and time graph construction + list scheduling
// at P=12 for the full driver, the complete four-driver analysis, and
// the hot scheduler loop at a large split factor. Gated against
// bench/baseline.json like the kernel benches.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "sched/analysis.hpp"
#include "sched/cost_model.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace acx::sched;

// A deterministic synthetic cost model shaped like the paper's event 6
// (19 records): every stage of the standard graph costed, response
// dominant, per-record jitter from the seeded repo RNG.
CostModel paper_sized_model() {
  CostModel model;
  model.source = "bench";
  const auto shape = acx::pipeline::StageGraph::standard().shape();
  std::uint64_t state = 12450;
  for (int i = 0; i < 19; ++i) {
    RecordCosts r;
    char id[16];
    std::snprintf(id, sizeof id, "SS%02d", i);
    r.record = id;
    r.points = 20000;
    for (const auto& s : shape) {
      const double jitter =
          0.5 + static_cast<double>(acx::splitmix64(state) % 1000) / 1000.0;
      const double base = s.name == "response" ? 40e-3 : 1e-3;
      r.stage_seconds[s.name] = base * jitter;
    }
    model.records.push_back(std::move(r));
  }
  return model;
}

void BM_SchedFullGraphBuild(benchmark::State& state) {
  const CostModel model = paper_sized_model();
  const auto shape = acx::pipeline::StageGraph::standard().shape();
  std::vector<acx::pipeline::StageShape> pruned;
  for (const auto& s : shape) {
    if (!s.redundant) pruned.push_back(s);
  }
  GraphOptions opt;
  opt.split = 12;
  for (auto _ : state) {
    TaskGraph g = record_graph(model, pruned, opt);
    benchmark::DoNotOptimize(g.tasks.data());
  }
}
BENCHMARK(BM_SchedFullGraphBuild);

void BM_SchedListSchedule(benchmark::State& state) {
  const CostModel model = paper_sized_model();
  const auto shape = acx::pipeline::StageGraph::standard().shape();
  std::vector<acx::pipeline::StageShape> pruned;
  for (const auto& s : shape) {
    if (!s.redundant) pruned.push_back(s);
  }
  GraphOptions opt;
  opt.split = static_cast<int>(state.range(0));
  const TaskGraph g = record_graph(model, pruned, opt);
  for (auto _ : state) {
    Schedule s = list_schedule(g, 12, 12450);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["tasks"] = static_cast<double>(g.tasks.size());
}
BENCHMARK(BM_SchedListSchedule)->Arg(12)->Arg(64);

void BM_SchedAnalyzeAllDrivers(benchmark::State& state) {
  const CostModel model = paper_sized_model();
  const auto shape = acx::pipeline::StageGraph::standard().shape();
  AnalysisOptions opt;
  opt.procs = 12;
  opt.sweep = {1, 2, 4, 8, 12};
  for (auto _ : state) {
    auto res = analyze(model, shape, opt);
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res.value().drivers.data());
  }
}
BENCHMARK(BM_SchedAnalyzeAllDrivers);

}  // namespace

BENCHMARK_MAIN();
