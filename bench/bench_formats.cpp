// Throughput of the strict V1 reader and writer — the per-record fixed
// cost every pipeline stage inherits.

#include <benchmark/benchmark.h>

#include "formats/v1.hpp"
#include "synth/synth.hpp"

namespace {

acx::formats::Record bench_record(long npts) {
  acx::synth::EventSpec spec = acx::synth::paper_events()[0];
  spec.n_files = 1;
  spec.total_points = npts;
  spec.min_pts = npts;
  spec.max_pts = npts;
  acx::synth::SynthConfig cfg;
  return acx::synth::make_record(spec, cfg, 0);
}

void BM_V1Write(benchmark::State& state) {
  const acx::formats::Record rec = bench_record(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = acx::formats::write_v1(rec);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}

void BM_V1Read(benchmark::State& state) {
  const std::string text = acx::formats::write_v1(bench_record(state.range(0)));
  for (auto _ : state) {
    auto rec = acx::formats::read_v1(text);
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

}  // namespace

BENCHMARK(BM_V1Write)->Arg(1000)->Arg(7300)->Arg(35000);
BENCHMARK(BM_V1Read)->Arg(1000)->Arg(7300)->Arg(35000);

BENCHMARK_MAIN();
