// End-to-end driver economics: one full event run per iteration, over
// the paper's largest evaluation event (19 files, 384K data points,
// scaled down to keep CI iterations sane). The four drivers appear as
// four benches; the seq/seq-opt pair is what the CI regression gate
// watches (the parallel pair varies with the runner's core count, so
// it is measured and uploaded but not gated — see bench/baseline.json).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "pipeline/runner.hpp"
#include "synth/synth.hpp"
#include "util/fs.hpp"

namespace {

namespace stdfs = std::filesystem;

// One synth input tree per process, built lazily and shared by every
// bench: the input is immutable, only work dirs are per-iteration.
const stdfs::path& bench_input() {
  static const stdfs::path input = [] {
    const stdfs::path dir = stdfs::temp_directory_path() /
                            ("acx-bench-pipeline-" + std::to_string(::getpid()));
    acx::RealFileSystem fs;
    // Event 6 of the paper: 19 files. scale keeps a whole event run in
    // the tens of milliseconds so the bench converges quickly.
    acx::synth::EventSpec spec = acx::synth::paper_events().back();
    acx::synth::SynthConfig cfg;
    cfg.scale = 0.05;
    auto built = acx::synth::build_event_dataset(fs, dir / "input", spec, cfg);
    if (!built.ok()) std::abort();
    return dir;
  }();
  return input;
}

void run_driver(benchmark::State& state, acx::pipeline::Driver driver,
                int threads) {
  acx::RealFileSystem fs;
  acx::pipeline::RunnerConfig cfg;
  cfg.driver = driver;
  cfg.threads = threads;
  cfg.sleep = [](int) {};
  const stdfs::path work = bench_input() / "work";

  std::size_t records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    (void)fs.remove_all(work);  // fresh work dir, reused input
    state.ResumeTiming();
    auto run = acx::pipeline::run_pipeline(fs, bench_input() / "input", work,
                                           cfg);
    if (!run.ok() || run.value().count_quarantined() != 0) std::abort();
    records = run.value().records.size();
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(records));
  state.counters["records"] = static_cast<double>(records);
}

void BM_PipelineSeq(benchmark::State& state) {
  run_driver(state, acx::pipeline::Driver::kSequential, 1);
}

void BM_PipelineSeqOpt(benchmark::State& state) {
  run_driver(state, acx::pipeline::Driver::kSequentialOptimized, 1);
}

void BM_PipelinePartial(benchmark::State& state) {
  run_driver(state, acx::pipeline::Driver::kPartialParallel,
             static_cast<int>(state.range(0)));
}

void BM_PipelineFull(benchmark::State& state) {
  run_driver(state, acx::pipeline::Driver::kFullParallel,
             static_cast<int>(state.range(0)));
}

// UseRealTime: the OpenMP team's work does not land on the main
// thread's CPU clock, so wall clock is the honest metric end to end.
BENCHMARK(BM_PipelineSeq)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PipelineSeqOpt)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_PipelinePartial)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_PipelineFull)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
