// Resident-pool economics: what one event's record fan-out costs when
// dispatched onto the already-running WorkPool, versus paying thread
// -team construction per event. Three shapes:
//   serve.pool_dispatch     — persistent pool, one TaskGroup per
//                             "event" of synthetic record tasks: the
//                             steady-state per-event dispatch cost of
//                             the resident service. Gated in
//                             bench/baseline.json.
//   serve.omp_spin_up       — the same task batch as a fresh OpenMP
//                             parallel-for with the thread team forced
//                             to tear down between iterations
//                             (omp_pause_resource_all), i.e. what a
//                             per-run process pays on a cold team.
//                             docs/SERVE.md quotes the ratio.
//   serve.omp_warm          — the same loop on a warm, kept-alive team:
//                             the best case OpenMP reaches once its
//                             team persists (reference point between
//                             the other two).
// The task body is a fixed small FNV-hash kernel, so the benches
// compare dispatch machinery, not pipeline math.

#include <benchmark/benchmark.h>

#include <omp.h>

#include <atomic>
#include <cstdint>

#include "util/work_pool.hpp"

namespace {

constexpr int kRecordsPerEvent = 16;
constexpr int kThreads = 2;

// A few microseconds of deterministic work, standing in for one record.
std::uint64_t record_kernel(std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (int i = 0; i < 4000; ++i) {
    h ^= static_cast<std::uint64_t>(i);
    h *= 1099511628211ull;
  }
  return h;
}

void BM_ServePoolDispatch(benchmark::State& state) {
  acx::WorkPool pool(kThreads);  // resident: constructed once, outside timing
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    acx::WorkPool::TaskGroup group(pool);
    for (int r = 0; r < kRecordsPerEvent; ++r) {
      group.run([&sink, r] {
        sink.fetch_add(record_kernel(static_cast<std::uint64_t>(r)),
                       std::memory_order_relaxed);
      });
    }
    group.wait();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kRecordsPerEvent);
  pool.shutdown();
}

void omp_event(std::atomic<std::uint64_t>& sink) {
#pragma omp parallel for num_threads(kThreads) schedule(dynamic)
  for (int r = 0; r < kRecordsPerEvent; ++r) {
    sink.fetch_add(record_kernel(static_cast<std::uint64_t>(r)),
                   std::memory_order_relaxed);
  }
}

void BM_ServeOmpSpinUp(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    omp_event(sink);
    // Force the team down so the next iteration pays a cold start —
    // the per-run process model the resident service replaces. (omp.h
    // declares this even where _OPENMP reports 4.5: libgomp has shipped
    // it since GCC 9, libomp since LLVM 9.)
    omp_pause_resource_all(omp_pause_hard);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kRecordsPerEvent);
}

void BM_ServeOmpWarm(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  omp_event(sink);  // warm the team outside timing
  for (auto _ : state) {
    omp_event(sink);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kRecordsPerEvent);
}

// Work runs on pool/team threads; the main thread's CPU clock would
// miss it. Process CPU is the gated metric, real time the latency one.
BENCHMARK(BM_ServePoolDispatch)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_ServeOmpSpinUp)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_ServeOmpWarm)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
