// Per-kernel cost of the signal substrate at the paper's record sizes
// (7.3K–35K samples per file) — the numbers behind the per-stage
// wall-clock rows in run_report.json.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "signal/baseline.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/integrate.hpp"
#include "signal/sos.hpp"
#include "util/simd.hpp"

namespace {

std::vector<double> bench_samples(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = std::sin(0.05 * t) + 0.3 * std::sin(0.31 * t) + 0.002 * t + 5.0;
  }
  return x;
}

void BM_FftPow2(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto spec = acx::signal::rfft(x);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FftBluestein(benchmark::State& state) {
  // Off-power-of-two length exercises the chirp-z path.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)) + 1);
  for (auto _ : state) {
    auto spec = acx::signal::rfft(x);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FirBandPass(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto h = acx::signal::design_bandpass({0.5, 25.0, 101}, 0.005);
  for (auto _ : state) {
    auto y = acx::signal::filtfilt(h.value(), x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CorrectionChain(benchmark::State& state) {
  // demean -> band-pass -> detrend -> double integration: the numeric
  // core of the V2 stage chain, minus I/O.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto h = acx::signal::design_bandpass({0.5, 25.0, 101}, 0.005);
  for (auto _ : state) {
    std::vector<double> work = x;
    auto mean = acx::signal::remove_mean(work);
    auto filtered = acx::signal::filtfilt(h.value(), work);
    work = std::move(filtered).take();
    auto trend = acx::signal::detrend_linear(work);
    auto vel = acx::signal::integrate_trapezoid(work, 0.005);
    auto disp = acx::signal::integrate_trapezoid(vel.value(), 0.005);
    benchmark::DoNotOptimize(mean);
    benchmark::DoNotOptimize(trend);
    benchmark::DoNotOptimize(disp);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RfftComplexRef(benchmark::State& state) {
  // The pre-plan rfft shape: promote the real input to complex and run
  // the full-length transform. BM_FftPow2 at the same size is the
  // half-size real path; the ratio is the real-FFT win.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<acx::signal::Complex> cx(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      cx[i] = acx::signal::Complex(x[i], 0.0);
    }
    auto spec = acx::signal::fft(std::move(cx));
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FftScalarRef(benchmark::State& state) {
  // The pre-SIMD rfft: same transform as BM_FftPow2 with the split
  // planes forced off. The BM_FftPow2 / this ratio in the history is
  // the split-complex win (docs/PERF.md, "SIMD kernels").
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const bool was = acx::simd::enabled();
  acx::simd::set_enabled(false);
  for (auto _ : state) {
    auto spec = acx::signal::rfft(x);
    benchmark::DoNotOptimize(spec);
  }
  acx::simd::set_enabled(was);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Long-record zero-phase filtering: adaptive taps = largest odd <= n/3
// (the pipeline's shortening rule applied to a long record), well past
// kOverlapSaveMinTaps. Direct vs auto (= overlap-save at these sizes)
// is the crossover ablation; the >= 4x acceptance gate reads these two.
int long_record_taps(std::int64_t n) {
  int taps = static_cast<int>(n / 3);
  return taps % 2 == 0 ? taps - 1 : taps;
}

void BM_FirFiltfiltDirect(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto h = acx::signal::design_bandpass(
      {0.5, 25.0, long_record_taps(state.range(0))}, 0.005);
  for (auto _ : state) {
    auto y = acx::signal::filtfilt(h.value(), x,
                                   acx::signal::ConvolveMethod::kDirect);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FirOverlapSave(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto h = acx::signal::design_bandpass(
      {0.5, 25.0, long_record_taps(state.range(0))}, 0.005);
  for (auto _ : state) {
    auto y = acx::signal::filtfilt(h.value(), x,
                                   acx::signal::ConvolveMethod::kAuto);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SosFiltFilt(benchmark::State& state) {
  // The IIR cost ablation: O(n * order) regardless of the band, vs the
  // FIR path's O(n * taps) (docs/SIGNAL.md, "Butterworth SOS").
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  auto sos = acx::signal::design_butterworth_bandpass({0.5, 25.0, 4}, 0.005);
  for (auto _ : state) {
    auto y = acx::signal::filtfilt_sos(sos.value(), x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_FftPow2)->Arg(8192)->Arg(32768);
BENCHMARK(BM_FftScalarRef)->Name("signal.fft_scalar_ref")->Arg(8192);
BENCHMARK(BM_FftBluestein)->Arg(8192)->Arg(32768);
BENCHMARK(BM_RfftComplexRef)->Name("signal.rfft_complex_ref")
    ->Arg(8192)->Arg(32768);
BENCHMARK(BM_FirBandPass)->Arg(7300)->Arg(35000)->Arg(140000);
BENCHMARK(BM_FirFiltfiltDirect)->Arg(35000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FirOverlapSave)->Arg(35000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SosFiltFilt)->Arg(7300)->Arg(35000);
BENCHMARK(BM_CorrectionChain)->Arg(7300)->Arg(35000);

BENCHMARK_MAIN();
