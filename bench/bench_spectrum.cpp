// Stage IX economics: the paper attributes 57.2% of the sequential
// runtime to response-spectra computation, so this file carries the
// names the CI regression gate watches ("spectrum.response" above all).
// Sizes follow the paper's per-file range (7.3K–35K samples).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "spectrum/corners.hpp"
#include "spectrum/fourier.hpp"
#include "spectrum/response.hpp"
#include "spectrum/response_plan.hpp"
#include "spectrum/rotd.hpp"

namespace {

std::vector<double> bench_samples(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 0.005;
    x[i] = 80.0 * std::sin(2.0 * M_PI * 3.0 * t) * std::exp(-0.15 * t) +
           20.0 * std::sin(2.0 * M_PI * 9.0 * t);
  }
  return x;
}

void BM_Fourier(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto fas = acx::spectrum::fourier_amplitude(x, 0.005);
    benchmark::DoNotOptimize(fas);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Corners(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto fas = acx::spectrum::fourier_amplitude(x, 0.005);
  for (auto _ : state) {
    auto corners = acx::spectrum::find_corners(fas.value());
    benchmark::DoNotOptimize(corners);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fas.value().size()));
}

void BM_Sdof(benchmark::State& state) {
  // One grid cell: the inner kernel the OpenMP drivers will spread
  // over (record x period).
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto peaks = acx::spectrum::sdof_peak_response(x, 0.005, 1.0, 0.05);
    benchmark::DoNotOptimize(peaks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Response(benchmark::State& state) {
  // Full paper grid (600 periods x 5 dampings) over one record: the
  // sequential Stage IX cost per component.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto grid = acx::spectrum::paper_grid();
  for (auto _ : state) {
    auto spec = acx::spectrum::response_spectrum(x, 0.005, grid);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<long>(grid.periods.size() *
                                            grid.dampings.size()));
}

void BM_ResponsePlanCold(benchmark::State& state) {
  // Materializing the 3000 NigamJennings coefficient sets of the paper
  // grid — the per-record setup cost the plan cache amortizes away.
  const auto grid = acx::spectrum::paper_grid();
  for (auto _ : state) {
    auto plan = acx::spectrum::ResponsePlan::build(0.005, grid);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(grid.periods.size() *
                                            grid.dampings.size()));
}

void BM_ResponsePlanCached(benchmark::State& state) {
  // The same lookup served warm: one shared-lock map probe.
  const auto grid = acx::spectrum::paper_grid();
  auto warm = acx::spectrum::ResponsePlanCache::instance().get(0.005, grid);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    auto plan = acx::spectrum::ResponsePlanCache::instance().get(0.005, grid);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SdofScalarBlock(benchmark::State& state) {
  // kSdofBatchBlock cells one at a time through the scalar kernel:
  // the pre-batch cost of one block's worth of Stage-IX work.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto grid = acx::spectrum::paper_grid();
  for (auto _ : state) {
    for (std::size_t p = 0; p < acx::spectrum::kSdofBatchBlock; ++p) {
      auto peaks =
          acx::spectrum::sdof_peak_response(x, 0.005, grid.periods[p], 0.05);
      benchmark::DoNotOptimize(peaks);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<long>(acx::spectrum::kSdofBatchBlock));
}

void BM_SdofBatchBlock(benchmark::State& state) {
  // The same kSdofBatchBlock cells marched in lockstep by the batch
  // kernel over a cached plan — directly comparable to sdof_scalar32.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto grid = acx::spectrum::paper_grid();
  const auto plan =
      acx::spectrum::ResponsePlanCache::instance().get(0.005, grid).value();
  std::vector<double> sd(plan->cells), sv(plan->cells), sa(plan->cells);
  for (auto _ : state) {
    acx::spectrum::sdof_peak_response_batch(
        x.data(), x.size(), *plan, 0, acx::spectrum::kSdofBatchBlock,
        sd.data(), sv.data(), sa.data());
    benchmark::DoNotOptimize(sd.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<long>(acx::spectrum::kSdofBatchBlock));
}

// Reduced RotD workload shared by the sweep/reference pair: the full
// paper grid x 180 angles costs seconds per iteration, far too slow to
// gate. 120 cells x 16 angles keeps the shape (rotate + batched
// Nigam-Jennings per angle, percentile combine) at CI-friendly cost.
acx::spectrum::ResponseGrid rotd_bench_grid() {
  acx::spectrum::ResponseGrid grid;
  for (int i = 0; i < 60; ++i) {
    grid.periods.push_back(0.05 * static_cast<double>(i + 1));
  }
  grid.dampings = {0.02, 0.05};
  return grid;
}
constexpr int kRotdBenchAngles = 16;

std::vector<double> rotd_bench_component(std::size_t n, double phase) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 0.005;
    x[i] = 70.0 * std::sin(2.0 * M_PI * 2.5 * t + phase) *
               std::exp(-0.2 * t) +
           25.0 * std::sin(2.0 * M_PI * 7.0 * t + 2.0 * phase);
  }
  return x;
}

void BM_RotdSweep(benchmark::State& state) {
  // The batched angle sweep over a cached plan — the station stage's
  // kernel, at the reduced workload.
  const auto l = rotd_bench_component(static_cast<std::size_t>(state.range(0)),
                                      0.0);
  const auto t = rotd_bench_component(static_cast<std::size_t>(state.range(0)),
                                      1.3);
  const auto grid = rotd_bench_grid();
  for (auto _ : state) {
    auto rotd =
        acx::spectrum::rotd_spectrum(l, t, 0.005, grid, kRotdBenchAngles);
    benchmark::DoNotOptimize(rotd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          kRotdBenchAngles *
                          static_cast<long>(grid.periods.size() *
                                            grid.dampings.size()));
}

void BM_RotdScalarReference(benchmark::State& state) {
  // One sdof_peak_response call per (angle, cell) — what the sweep
  // would cost without batching or the plan cache.
  const auto l = rotd_bench_component(static_cast<std::size_t>(state.range(0)),
                                      0.0);
  const auto t = rotd_bench_component(static_cast<std::size_t>(state.range(0)),
                                      1.3);
  const auto grid = rotd_bench_grid();
  for (auto _ : state) {
    auto rotd = acx::spectrum::rotd_spectrum_reference(l, t, 0.005, grid,
                                                       kRotdBenchAngles);
    benchmark::DoNotOptimize(rotd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          kRotdBenchAngles *
                          static_cast<long>(grid.periods.size() *
                                            grid.dampings.size()));
}

}  // namespace

BENCHMARK(BM_Fourier)->Name("spectrum.fourier")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Corners)->Name("spectrum.corners")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Sdof)->Name("spectrum.sdof")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Response)->Name("spectrum.response")->Arg(7300);
BENCHMARK(BM_ResponsePlanCold)->Name("spectrum.response_plan_cold");
BENCHMARK(BM_ResponsePlanCached)->Name("spectrum.response_plan_cached");
BENCHMARK(BM_SdofScalarBlock)->Name("spectrum.sdof_scalar32")->Arg(7300);
BENCHMARK(BM_SdofBatchBlock)->Name("spectrum.sdof_batch32")->Arg(7300);
BENCHMARK(BM_RotdSweep)->Name("spectrum.rotd_sweep")->Arg(4000);
BENCHMARK(BM_RotdScalarReference)
    ->Name("spectrum.rotd_scalar")
    ->Arg(4000);

BENCHMARK_MAIN();
