// Stage IX economics: the paper attributes 57.2% of the sequential
// runtime to response-spectra computation, so this file carries the
// names the CI regression gate watches ("spectrum.response" above all).
// Sizes follow the paper's per-file range (7.3K–35K samples).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "spectrum/corners.hpp"
#include "spectrum/fourier.hpp"
#include "spectrum/response.hpp"

namespace {

std::vector<double> bench_samples(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 0.005;
    x[i] = 80.0 * std::sin(2.0 * M_PI * 3.0 * t) * std::exp(-0.15 * t) +
           20.0 * std::sin(2.0 * M_PI * 9.0 * t);
  }
  return x;
}

void BM_Fourier(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto fas = acx::spectrum::fourier_amplitude(x, 0.005);
    benchmark::DoNotOptimize(fas);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Corners(benchmark::State& state) {
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto fas = acx::spectrum::fourier_amplitude(x, 0.005);
  for (auto _ : state) {
    auto corners = acx::spectrum::find_corners(fas.value());
    benchmark::DoNotOptimize(corners);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fas.value().size()));
}

void BM_Sdof(benchmark::State& state) {
  // One grid cell: the inner kernel the OpenMP drivers will spread
  // over (record x period).
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto peaks = acx::spectrum::sdof_peak_response(x, 0.005, 1.0, 0.05);
    benchmark::DoNotOptimize(peaks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Response(benchmark::State& state) {
  // Full paper grid (600 periods x 5 dampings) over one record: the
  // sequential Stage IX cost per component.
  const auto x = bench_samples(static_cast<std::size_t>(state.range(0)));
  const auto grid = acx::spectrum::paper_grid();
  for (auto _ : state) {
    auto spec = acx::spectrum::response_spectrum(x, 0.005, grid);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<long>(grid.periods.size() *
                                            grid.dampings.size()));
}

}  // namespace

BENCHMARK(BM_Fourier)->Name("spectrum.fourier")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Corners)->Name("spectrum.corners")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Sdof)->Name("spectrum.sdof")->Arg(7300)->Arg(35000);
BENCHMARK(BM_Response)->Name("spectrum.response")->Arg(7300);

BENCHMARK_MAIN();
