// Batch-runner economics: what the two-axis scheduler costs on top of
// the per-event pipeline, and what it buys back when storage has real
// latency. Three shapes:
//   batch.seq_zero_latency    — 1 worker over a zero-latency store: the
//                               pure orchestration overhead (queue,
//                               journal, sharded work dirs). Gated in
//                               bench/baseline.json.
//   batch.workers2_modeled    — 2 workers over the latency-modeled
//                               store: inter-event overlap hiding
//                               per-op storage latency. Measured and
//                               uploaded, not gated (timer-resolution
//                               dependent).
//   batch.resume_fast_path    — every event journaled: the cost of a
//                               no-op resume scan (journal read +
//                               work-dir revalidation per event).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "pipeline/batch.hpp"
#include "synth/synth.hpp"
#include "util/fs.hpp"
#include "util/slowfs.hpp"

namespace {

namespace stdfs = std::filesystem;

// One synth input tree per process: four small events, shared by every
// bench (immutable; only work roots are per-iteration).
const stdfs::path& batch_input() {
  static const stdfs::path input = [] {
    const stdfs::path dir = stdfs::temp_directory_path() /
                            ("acx-bench-batch-" + std::to_string(::getpid()));
    acx::RealFileSystem fs;
    acx::synth::EventSpec spec = acx::synth::paper_events()[0];
    spec.n_files = 3;
    acx::synth::SynthConfig cfg;
    cfg.scale = 0.02;
    for (const char* ev : {"ev1", "ev2", "ev3", "ev4"}) {
      auto built =
          acx::synth::build_event_dataset(fs, dir / "input" / ev, spec, cfg);
      if (!built.ok()) std::abort();
    }
    return dir;
  }();
  return input;
}

acx::pipeline::BatchConfig base_config(int workers) {
  acx::pipeline::BatchConfig cfg;
  cfg.runner.driver = acx::pipeline::Driver::kSequentialOptimized;
  cfg.runner.sleep = [](int) {};
  cfg.event_workers = workers;
  return cfg;
}

void run_batch(benchmark::State& state, acx::FileSystem& fs,
               const acx::pipeline::BatchConfig& cfg, bool keep_work) {
  acx::RealFileSystem real;
  const stdfs::path work = batch_input() / "work";
  long long records = 0;
  for (auto _ : state) {
    if (!keep_work) {
      state.PauseTiming();
      (void)real.remove_all(work);
      state.ResumeTiming();
    }
    auto run = acx::pipeline::BatchRunner(fs, cfg)
                   .run(batch_input() / "input", work);
    if (!run.ok() || run.value().count_status("ok") != 4) std::abort();
    records = 0;
    for (const auto& e : run.value().events) records += e.records_ok;
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.counters["events"] = 4;
}

void BM_BatchSeqZeroLatency(benchmark::State& state) {
  acx::RealFileSystem fs;
  run_batch(state, fs, base_config(1), /*keep_work=*/false);
}

void BM_BatchWorkers2Modeled(benchmark::State& state) {
  acx::RealFileSystem real;
  acx::storage::SlowConfig slow;
  slow.base_ms = 0.2;
  slow.jitter_ms = 0.3;
  slow.per_kib_ms = 0.01;
  acx::storage::SlowFileSystem fs(real, slow);
  run_batch(state, fs, base_config(2), /*keep_work=*/false);
}

void BM_BatchResumeFastPath(benchmark::State& state) {
  acx::RealFileSystem fs;
  const acx::pipeline::BatchConfig cfg = base_config(1);
  // Seed the work root once; every timed iteration then resumes it.
  (void)fs.remove_all(batch_input() / "work");
  auto seeded =
      acx::pipeline::BatchRunner(fs, cfg).run(batch_input() / "input",
                                              batch_input() / "work");
  if (!seeded.ok()) std::abort();
  run_batch(state, fs, cfg, /*keep_work=*/true);
}

// The events run on pool threads, so the main thread's CPU clock would
// miss nearly all the work: measure process CPU (the gated metric) and
// real time (the overlap story) instead.
BENCHMARK(BM_BatchSeqZeroLatency)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_BatchWorkers2Modeled)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_BatchResumeFastPath)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
