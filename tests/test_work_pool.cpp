// WorkPool (util/work_pool.hpp): the persistent work-stealing pool the
// resident service runs on. These tests pin the contracts docs/SERVE.md
// leans on — every submitted task runs exactly once, TaskGroup isolates
// concurrent batches, recursive submits from inside tasks complete,
// shutdown drains instead of dropping, and late submits run inline.
// The whole file is in the TSan CI leg's test set: the Chase–Lev deque
// and the parking protocol are exercised under the race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/work_pool.hpp"

namespace acx {
namespace {

TEST(WorkPool, RunsEverySubmittedTaskExactlyOnce) {
  constexpr int kTasks = 2000;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    WorkPool pool(4);
    WorkPool::TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
      group.run([&runs, i] { runs[i].fetch_add(1); });
    }
    group.wait();
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(runs[i].load(), 1) << "task " << i;
    }
    EXPECT_EQ(pool.stats().executed, kTasks);
  }
}

TEST(WorkPool, ThreadCountDefaultsToHardwareAndClampsToAtLeastOne) {
  WorkPool by_default;  // <= 0 = one worker per hardware thread
  EXPECT_GE(by_default.thread_count(), 1);
  WorkPool three(3);
  EXPECT_EQ(three.thread_count(), 3);
}

TEST(WorkPool, TaskGroupWaitOnlyCoversItsOwnTasks) {
  WorkPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> slow_done{0}, fast_done{0};

  // A "slow" group whose tasks block until released...
  WorkPool::TaskGroup slow(pool);
  slow.run([&] {
    while (!release.load()) std::this_thread::yield();
    slow_done.fetch_add(1);
  });

  // ...must not delay an independent group's wait() on the same pool —
  // the resident-service invariant (one stuck event cannot stall the
  // completion accounting of the others).
  WorkPool::TaskGroup fast(pool);
  for (int i = 0; i < 64; ++i) {
    fast.run([&] { fast_done.fetch_add(1); });
  }
  fast.wait();
  EXPECT_EQ(fast_done.load(), 64);
  EXPECT_EQ(slow_done.load(), 0);

  release.store(true);
  slow.wait();
  EXPECT_EQ(slow_done.load(), 1);
}

TEST(WorkPool, RecursiveSubmitsFromInsideTasksComplete) {
  // Tasks that spawn subtasks land on the running worker's own deque
  // (the cheap Chase–Lev path); the group latch must cover the whole
  // tree, not just the roots.
  WorkPool pool(3);
  std::atomic<int> done{0};
  WorkPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&] {
      done.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        group.run([&] { done.fetch_add(1); });
      }
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 8 + 8 * 4);
}

TEST(WorkPool, ManyProducersOnePoolLoseNothing) {
  // The serve shape: several event workers batching records onto one
  // shared pool concurrently. Every producer's tasks run; the ids seen
  // are exactly the ids submitted.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  WorkPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      WorkPool::TaskGroup group(pool);
      for (int i = 0; i < kPerProducer; ++i) {
        const int id = p * kPerProducer + i;
        group.run([&, id] {
          std::lock_guard<std::mutex> lock(mu);
          seen.insert(id);
        });
      }
      group.wait();
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(pool.stats().executed, kProducers * kPerProducer);
}

TEST(WorkPool, ShutdownDrainsQueuedTasksBeforeJoining) {
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  {
    WorkPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
    pool.shutdown();  // drain-first: nothing queued may be dropped
    EXPECT_EQ(done.load(), kTasks);
    pool.shutdown();  // idempotent
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(WorkPool, SubmitAfterShutdownRunsInlineInsteadOfDropping) {
  WorkPool pool(2);
  pool.shutdown();
  std::atomic<int> done{0};
  pool.submit([&] { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 1) << "late submit must run on the caller";
  EXPECT_GE(pool.stats().inline_runs, 1);

  // The same guarantee through the group latch: wait() cannot hang on
  // a stopped pool.
  WorkPool::TaskGroup group(pool);
  group.run([&] { done.fetch_add(1); });
  group.wait();
  EXPECT_EQ(done.load(), 2);
}

TEST(WorkPool, BurstFromOneProducerSpreadsAcrossWorkers) {
  // Steal/injector accounting: a single external producer enqueues a
  // burst; with several workers, at least one task must have reached a
  // worker via the injector, and the counters stay consistent.
  WorkPool pool(4);
  std::atomic<int> done{0};
  WorkPool::TaskGroup group(pool);
  for (int i = 0; i < 1000; ++i) {
    group.run([&] { done.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 1000);
  const WorkPoolStats s = pool.stats();
  EXPECT_EQ(s.executed, 1000);
  EXPECT_GE(s.injector_takes, 1)
      << "external submits land on the injector first";
  EXPECT_GE(s.stolen_tasks, 0);
  // A submit only records a wake if some worker is parked when it
  // lands; under a loaded ctest the burst can finish before anyone
  // parks. Provoke the park->wake cycle: idle-wait until a worker
  // parks, poke the pool, repeat until a wake is observed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (pool.stats().wakes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    WorkPool::TaskGroup poke(pool);
    poke.run([] {});
    poke.wait();
  }
  EXPECT_GE(pool.stats().wakes, 1);
}

}  // namespace
}  // namespace acx
