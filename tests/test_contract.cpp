// The docs' worked examples, enforced. docs/SIGNAL.md: the exact
// dataset named there (paper event 1, scale 0.02, seed 42) is
// regenerated, run through the full correction chain, and record
// SS01l's PGA/PGV/PGD must match the values printed in the doc to
// 1e-6 relative. docs/SPECTRUM.md: the closed-form oscillator peaks
// printed there must match the Nigam–Jennings kernel. If a kernel
// change shifts the numbers, the doc must move with it — these tests
// are the tripwire.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "formats/v2.hpp"
#include "pipeline/runner.hpp"
#include "spectrum/response.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

#ifndef ACX_SOURCE_DIR
#error "test_contract needs ACX_SOURCE_DIR pointing at the repo root"
#endif

namespace acx {
namespace {

// First "<TAG> <value> <time>" line of the doc's worked-example block.
bool find_peak_line(const std::string& doc, const std::string& tag,
                    double& value, double& time) {
  std::size_t pos = 0;
  while ((pos = doc.find(tag + " ", pos)) != std::string::npos) {
    if (pos != 0 && doc[pos - 1] != '\n') {
      ++pos;
      continue;
    }
    const char* s = doc.c_str() + pos + tag.size() + 1;
    char* end = nullptr;
    value = std::strtod(s, &end);
    if (end == s) {
      ++pos;
      continue;
    }
    s = end;
    time = std::strtod(s, &end);
    if (end == s) {
      ++pos;
      continue;
    }
    return true;
  }
  return false;
}

TEST(Contract, WorkedExamplePeaksMatchSignalDoc) {
  RealFileSystem fs;
  auto doc = fs.read_file(std::filesystem::path(ACX_SOURCE_DIR) / "docs" /
                          "SIGNAL.md");
  ASSERT_TRUE(doc.ok()) << "docs/SIGNAL.md missing";

  // The dataset exactly as the doc describes it.
  test::TempDir tmp("contract");
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  synth::EventSpec spec = synth::paper_events()[0];
  synth::SynthConfig synth_cfg;
  synth_cfg.seed = 42;
  synth_cfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, input, spec, synth_cfg).ok());

  pipeline::RunnerConfig cfg;
  cfg.sleep = [](int) {};
  auto run = pipeline::run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  ASSERT_EQ(run.value().count_quarantined(), 0);

  auto content = fs.read_file(work / "out" / "SS01l.v2");
  ASSERT_TRUE(content.ok());
  auto v2 = formats::read_v2(content.value());
  ASSERT_TRUE(v2.ok()) << v2.error().to_string();
  ASSERT_TRUE(v2.value().peaks.present);

  const struct {
    const char* tag;
    formats::PeakEntry got;
  } kChecks[] = {
      {"PGA", v2.value().peaks.pga},
      {"PGV", v2.value().peaks.pgv},
      {"PGD", v2.value().peaks.pgd},
  };
  for (const auto& check : kChecks) {
    SCOPED_TRACE(check.tag);
    double doc_value = 0, doc_time = 0;
    ASSERT_TRUE(find_peak_line(doc.value(), check.tag, doc_value, doc_time))
        << "docs/SIGNAL.md has no '" << check.tag << " <value> <time>' line";
    EXPECT_NEAR(check.got.value, doc_value,
                1e-6 * std::fabs(doc_value) + 1e-12);
    EXPECT_NEAR(check.got.time, doc_time, 1e-6 * doc_time + 1e-12);
  }
}

TEST(Contract, WorkedExampleSosPeaksMatchSignalDoc) {
  // The Butterworth SOS scenario over the same dataset (docs/SIGNAL.md,
  // "Butterworth SOS band-pass"): the doc's SOS_PGA/SOS_PGV/SOS_PGD
  // lines must match the --bandpass butter chain to 1e-6 relative.
  RealFileSystem fs;
  auto doc = fs.read_file(std::filesystem::path(ACX_SOURCE_DIR) / "docs" /
                          "SIGNAL.md");
  ASSERT_TRUE(doc.ok()) << "docs/SIGNAL.md missing";

  test::TempDir tmp("contract_sos");
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  synth::EventSpec spec = synth::paper_events()[0];
  synth::SynthConfig synth_cfg;
  synth_cfg.seed = 42;
  synth_cfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, input, spec, synth_cfg).ok());

  pipeline::RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.correction.bandpass = pipeline::BandPassKind::kButterworth;
  auto run = pipeline::run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  ASSERT_EQ(run.value().count_quarantined(), 0);

  auto content = fs.read_file(work / "out" / "SS01l.v2");
  ASSERT_TRUE(content.ok());
  auto v2 = formats::read_v2(content.value());
  ASSERT_TRUE(v2.ok()) << v2.error().to_string();
  ASSERT_TRUE(v2.value().peaks.present);

  const struct {
    const char* tag;
    formats::PeakEntry got;
  } kChecks[] = {
      {"SOS_PGA", v2.value().peaks.pga},
      {"SOS_PGV", v2.value().peaks.pgv},
      {"SOS_PGD", v2.value().peaks.pgd},
  };
  for (const auto& check : kChecks) {
    SCOPED_TRACE(check.tag);
    double doc_value = 0, doc_time = 0;
    ASSERT_TRUE(find_peak_line(doc.value(), check.tag, doc_value, doc_time))
        << "docs/SIGNAL.md has no '" << check.tag << " <value> <time>' line";
    EXPECT_NEAR(check.got.value, doc_value,
                1e-6 * std::fabs(doc_value) + 1e-12);
    EXPECT_NEAR(check.got.time, doc_time, 1e-6 * doc_time + 1e-12);
  }
}

// First "<TAG> <value>" line of a doc block (single-number variant).
bool find_value_line(const std::string& doc, const std::string& tag,
                     double& value) {
  std::size_t pos = 0;
  while ((pos = doc.find(tag + " ", pos)) != std::string::npos) {
    if (pos != 0 && doc[pos - 1] != '\n') {
      ++pos;
      continue;
    }
    const char* s = doc.c_str() + pos + tag.size() + 1;
    char* end = nullptr;
    value = std::strtod(s, &end);
    if (end != s) return true;
    ++pos;
  }
  return false;
}

TEST(Contract, WorkedExampleOscillatorMatchesSpectrumDoc) {
  // docs/SPECTRUM.md prints the closed-form peaks of an undamped
  // 2 s oscillator under a 100 cm/s2 ground step; the Nigam–Jennings
  // kernel must reproduce them to 1e-6 relative.
  RealFileSystem fs;
  auto doc = fs.read_file(std::filesystem::path(ACX_SOURCE_DIR) / "docs" /
                          "SPECTRUM.md");
  ASSERT_TRUE(doc.ok()) << "docs/SPECTRUM.md missing";

  const double a0 = 100.0;
  const double dt = 0.005;
  const std::vector<double> acc(static_cast<std::size_t>(2.0 / dt) + 1, a0);
  auto peaks = spectrum::sdof_peak_response(acc, dt, 2.0, 0.0);
  ASSERT_TRUE(peaks.ok()) << peaks.error().to_string();

  const struct {
    const char* tag;
    double got;
  } kChecks[] = {
      {"SD", peaks.value().sd},
      {"SV", peaks.value().sv},
      {"SA", peaks.value().sa},
  };
  for (const auto& check : kChecks) {
    SCOPED_TRACE(check.tag);
    double doc_value = 0;
    ASSERT_TRUE(find_value_line(doc.value(), check.tag, doc_value))
        << "docs/SPECTRUM.md has no '" << check.tag << " <value>' line";
    EXPECT_NEAR(check.got, doc_value, 1e-6 * std::fabs(doc_value));
  }
}

}  // namespace
}  // namespace acx
