#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "signal/baseline.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "signal/integrate.hpp"
#include "signal/peaks.hpp"
#include "signal/timeseries.hpp"

namespace acx::signal {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<Complex> to_complex(const std::vector<double>& x) {
  std::vector<Complex> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  return cx;
}

// --- FFT -----------------------------------------------------------------

TEST(Fft, ImpulseHasFlatUnitSpectrum) {
  std::vector<Complex> x(8, Complex{});
  x[0] = 1.0;
  auto spec = fft(x);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  for (const Complex& bin : spec.value()) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureSineLandsInItsBin) {
  // x[n] = sin(2 pi k0 n / N): X[k0] = -i N/2, X[N-k0] = +i N/2, rest 0.
  const std::size_t n = 64, k0 = 5;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * static_cast<double>(k0 * i) /
                    static_cast<double>(n));
  }
  auto spec = fft(to_complex(x));
  ASSERT_TRUE(spec.ok());
  for (std::size_t k = 0; k < n; ++k) {
    const Complex& bin = spec.value()[k];
    if (k == k0) {
      EXPECT_NEAR(bin.real(), 0.0, 1e-9);
      EXPECT_NEAR(bin.imag(), -static_cast<double>(n) / 2.0, 1e-9);
    } else if (k == n - k0) {
      EXPECT_NEAR(bin.real(), 0.0, 1e-9);
      EXPECT_NEAR(bin.imag(), static_cast<double>(n) / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(std::abs(bin), 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(Fft, ParsevalHoldsForPow2AndBluestein) {
  for (const std::size_t n : {64u, 100u, 97u}) {  // pow2, composite, prime
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::sin(0.37 * static_cast<double>(i)) +
             0.25 * std::cos(1.1 * static_cast<double>(i));
    }
    auto spec = fft(to_complex(x));
    ASSERT_TRUE(spec.ok());
    double time_energy = 0.0, freq_energy = 0.0;
    for (const double v : x) time_energy += v * v;
    for (const Complex& bin : spec.value()) freq_energy += std::norm(bin);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-9 * time_energy)
        << "n=" << n;
  }
}

TEST(Fft, InverseRoundTripsAnyLength) {
  for (const std::size_t n : {1u, 2u, 16u, 12u, 13u, 100u}) {
    std::vector<Complex> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = Complex(std::cos(0.7 * static_cast<double>(i)),
                     std::sin(0.3 * static_cast<double>(i)));
    }
    auto fwd = fft(x);
    ASSERT_TRUE(fwd.ok());
    auto back = ifft(fwd.value());
    ASSERT_TRUE(back.ok());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back.value()[i].real(), x[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(back.value()[i].imag(), x[i].imag(), 1e-9) << "n=" << n;
    }
  }
}

TEST(Fft, RfftMatchesFullSpectrumPrefix) {
  std::vector<double> x(48);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.2 * static_cast<double>(i));
  }
  auto full = fft(to_complex(x));
  auto half = rfft(x);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(half.ok());
  ASSERT_EQ(half.value().size(), x.size() / 2 + 1);
  for (std::size_t k = 0; k < half.value().size(); ++k) {
    EXPECT_NEAR(std::abs(half.value()[k] - full.value()[k]), 0.0, 1e-12);
  }
}

TEST(Fft, RealFftMatchesComplexReferenceAtMachinePrecision) {
  // The even-length rfft runs one half-size complex transform and
  // untangles; the reference promotes to complex and transforms at
  // full length. Different algorithms, same DFT: every bin must agree
  // to ~1e-15 relative to the spectrum's scale. Lengths cover the
  // power-of-two path (64), an even length with a Bluestein half (90,
  // half 45), an even length with a power-of-two half (96, half 48),
  // and odd (45, which falls back to the complex promotion exactly).
  for (std::size_t n : {std::size_t{64}, std::size_t{90}, std::size_t{96},
                        std::size_t{45}, std::size_t{730}}) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i);
      x[i] = std::sin(0.13 * t) + 0.7 * std::cos(0.05 * t + 0.4) + 0.01 * t;
    }
    auto full = fft(to_complex(x));
    auto half = rfft(x);
    ASSERT_TRUE(full.ok()) << n;
    ASSERT_TRUE(half.ok()) << n;
    ASSERT_EQ(half.value().size(), n / 2 + 1) << n;
    double scale = 0.0;
    for (const Complex& c : full.value()) scale = std::max(scale, std::abs(c));
    for (std::size_t k = 0; k < half.value().size(); ++k) {
      EXPECT_LE(std::abs(half.value()[k] - full.value()[k]),
                1e-15 * static_cast<double>(n) * scale)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Fft, RfftFrequenciesSpanDcToNyquist) {
  const auto f = rfft_frequencies(200, 0.005);  // fs = 200 Hz
  ASSERT_EQ(f.size(), 101u);
  EXPECT_DOUBLE_EQ(f.front(), 0.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);        // 1 / (200 * 0.005)
  EXPECT_DOUBLE_EQ(f.back(), 100.0);  // Nyquist
}

TEST(Fft, RejectsEmptyAndNonFiniteInput) {
  EXPECT_EQ(fft({}).error().code, SignalError::Code::kEmptyInput);
  std::vector<Complex> bad(4, Complex{1.0, 0.0});
  bad[2] = Complex(std::nan(""), 0.0);
  EXPECT_EQ(fft(bad).error().code, SignalError::Code::kNonFinite);
  EXPECT_EQ(ifft({}).error().code, SignalError::Code::kEmptyInput);
}

// --- FIR band-pass -------------------------------------------------------

std::vector<double> sine(std::size_t n, double freq_hz, double dt) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * freq_hz * static_cast<double>(i) * dt);
  }
  return x;
}

// Peak amplitude over the middle half (edge transients excluded).
double mid_amplitude(const std::vector<double>& x) {
  double peak = 0.0;
  for (std::size_t i = x.size() / 4; i < 3 * x.size() / 4; ++i) {
    peak = std::max(peak, std::fabs(x[i]));
  }
  return peak;
}

TEST(Fir, PassBandIsPreservedStopBandIsCrushed) {
  // Corners chosen so both DC and 30 Hz sit beyond the ~3.3 Hz Hamming
  // transition band of a 101-tap design at fs = 100 Hz (see
  // docs/SIGNAL.md, "Transition width").
  const double dt = 0.01;  // fs = 100 Hz, Nyquist 50 Hz
  auto h = design_bandpass({5.0, 15.0, 101}, dt);
  ASSERT_TRUE(h.ok()) << h.error().to_string();

  // Geometric-centre frequency: unit gain by construction.
  const double f0 = std::sqrt(5.0 * 15.0);
  auto centre = filtfilt(h.value(), sine(2000, f0, dt));
  ASSERT_TRUE(centre.ok());
  EXPECT_NEAR(mid_amplitude(centre.value()), 1.0, 0.05);

  // Deep stop band (30 Hz, 2x the upper corner): the zero-phase pass
  // doubles the single-pass Hamming attenuation.
  auto stop = filtfilt(h.value(), sine(2000, 30.0, dt));
  ASSERT_TRUE(stop.ok());
  EXPECT_LT(mid_amplitude(stop.value()), 1e-4);

  // DC (the classic accelerograph offset) is rejected too.
  auto dc = filtfilt(h.value(), std::vector<double>(2000, 1.0));
  ASSERT_TRUE(dc.ok());
  EXPECT_LT(mid_amplitude(dc.value()), 1e-4);
}

TEST(Fir, DesignRejectsBadParameters) {
  const double dt = 0.01;
  EXPECT_EQ(design_bandpass({1.0, 10.0, 100}, dt).error().code,
            SignalError::Code::kBadTaps);  // even
  EXPECT_EQ(design_bandpass({1.0, 10.0, 1}, dt).error().code,
            SignalError::Code::kBadTaps);  // below kMinTaps
  EXPECT_EQ(design_bandpass({10.0, 1.0, 101}, dt).error().code,
            SignalError::Code::kBadCorners);  // low > high
  EXPECT_EQ(design_bandpass({0.0, 10.0, 101}, dt).error().code,
            SignalError::Code::kBadCorners);  // low = 0
  EXPECT_EQ(design_bandpass({1.0, 50.0, 101}, dt).error().code,
            SignalError::Code::kBadCorners);  // high = Nyquist
  EXPECT_EQ(design_bandpass({1.0, 10.0, 101}, 0.0).error().code,
            SignalError::Code::kBadSamplingInterval);
}

TEST(Fir, FiltfiltRejectsShortAndEmptyInput) {
  auto h = design_bandpass({1.0, 10.0, 21}, 0.01);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(filtfilt(h.value(), {}).error().code,
            SignalError::Code::kEmptyInput);
  EXPECT_EQ(filtfilt(h.value(), std::vector<double>(20, 1.0)).error().code,
            SignalError::Code::kTooShort);
  EXPECT_EQ(filtfilt({0.5, 0.5}, std::vector<double>(8, 1.0)).error().code,
            SignalError::Code::kBadTaps);  // even filter
}

TEST(Fir, FiltfiltHasZeroPhase) {
  // A pass-band sine must come out in phase: the cross-correlation peak
  // of input and output sits at zero lag, i.e. same-signed samples.
  const double dt = 0.01;
  auto h = design_bandpass({1.0, 10.0, 101}, dt);
  ASSERT_TRUE(h.ok());
  const auto x = sine(2000, 3.0, dt);
  auto y = filtfilt(h.value(), x);
  ASSERT_TRUE(y.ok());
  double dot = 0.0, xx = 0.0, yy = 0.0;
  for (std::size_t i = x.size() / 4; i < 3 * x.size() / 4; ++i) {
    dot += x[i] * y.value()[i];
    xx += x[i] * x[i];
    yy += y.value()[i] * y.value()[i];
  }
  EXPECT_GT(dot / std::sqrt(xx * yy), 0.999);  // cos(phase shift) ~ 1
}

// --- Baseline ------------------------------------------------------------

TEST(Baseline, RemoveMeanIsExact) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  auto mean = remove_mean(x);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value(), 2.5);
  const std::vector<double> want{-1.5, -0.5, 0.5, 1.5};
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], want[i]);
  }
}

TEST(Baseline, LinearDetrendIsExactOnALine) {
  std::vector<double> x(101);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 3.0 + 0.25 * static_cast<double>(i);
  }
  auto trend = detrend_linear(x);
  ASSERT_TRUE(trend.ok());
  EXPECT_NEAR(trend.value().slope, 0.25, 1e-12);
  EXPECT_NEAR(trend.value().intercept, 3.0 + 0.25 * 50.0, 1e-12);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Baseline, PolynomialDetrendIsExactOnItsOwnDegree) {
  // A cubic is annihilated by a degree-3 fit (to round-off), and the
  // residual of the fit on cubic + sine is the sine's own detrended
  // remainder — bounded by the sine amplitude.
  std::vector<double> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i);
    x[i] = 1.0 - 0.5 * t + 0.01 * t * t - 1e-5 * t * t * t;
  }
  auto c = detrend_polynomial(x, 3);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  EXPECT_EQ(c.value().size(), 4u);
  for (const double v : x) EXPECT_NEAR(v, 0.0, 1e-7);
}

TEST(Baseline, DegreeZeroDetrendEqualsDemean) {
  std::vector<double> a{5.0, 7.0, 9.0, 11.0};
  std::vector<double> b = a;
  ASSERT_TRUE(detrend_polynomial(a, 0).ok());
  ASSERT_TRUE(remove_mean(b).ok());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Baseline, ErrorsAreTyped) {
  std::vector<double> empty;
  EXPECT_EQ(remove_mean(empty).error().code, SignalError::Code::kEmptyInput);
  std::vector<double> one{1.0};
  EXPECT_EQ(detrend_linear(one).error().code, SignalError::Code::kTooShort);
  std::vector<double> x(16, 1.0);
  EXPECT_EQ(detrend_polynomial(x, kMaxDetrendDegree + 1).error().code,
            SignalError::Code::kBadDegree);
  EXPECT_EQ(detrend_polynomial(x, -1).error().code,
            SignalError::Code::kBadDegree);
  std::vector<double> overflow(4, 1e308);
  EXPECT_EQ(remove_mean(overflow).error().code,
            SignalError::Code::kNonFinite);
}

// --- Integration ---------------------------------------------------------

TEST(Integrate, SineMatchesClosedForm) {
  // integral of sin(w t) = (1 - cos(w t)) / w; trapezoid error O(dt^2).
  const double dt = 0.001, w = 2.0 * kPi;
  const std::size_t n = 1001;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(w * static_cast<double>(i) * dt);
  }
  auto y = integrate_trapezoid(x, dt);
  ASSERT_TRUE(y.ok());
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    EXPECT_NEAR(y.value()[i], (1.0 - std::cos(w * t)) / w, 1e-5) << "i=" << i;
  }
}

TEST(Integrate, ConstantGivesExactRamp) {
  auto y = integrate_trapezoid(std::vector<double>(5, 2.0), 0.5);
  ASSERT_TRUE(y.ok());
  const std::vector<double> want{0.0, 1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(y.value()[i], want[i]);
  }
}

TEST(Integrate, UnitsLadderIsEnforced) {
  TimeSeries acc{0.01, Units::kCmPerS2, std::vector<double>(8, 1.0)};
  auto vel = integrate(acc);
  ASSERT_TRUE(vel.ok());
  EXPECT_EQ(vel.value().units, Units::kCmPerS);
  auto disp = integrate(vel.value());
  ASSERT_TRUE(disp.ok());
  EXPECT_EQ(disp.value().units, Units::kCm);
  EXPECT_EQ(integrate(disp.value()).error().code,
            SignalError::Code::kBadUnits);  // nothing past displacement
  TimeSeries counts{0.01, Units::kCounts, std::vector<double>(8, 1.0)};
  EXPECT_EQ(integrate(counts).error().code, SignalError::Code::kBadUnits);
}

TEST(Integrate, ErrorsAreTyped) {
  EXPECT_EQ(integrate_trapezoid({1.0}, 0.01).error().code,
            SignalError::Code::kTooShort);
  EXPECT_EQ(integrate_trapezoid({1.0, 2.0}, -1.0).error().code,
            SignalError::Code::kBadSamplingInterval);
  EXPECT_EQ(integrate_trapezoid({1e308, 1e308, 1e308}, 1e10).error().code,
            SignalError::Code::kNonFinite);
}

// --- Peaks ---------------------------------------------------------------

TEST(Peaks, SignedValueAtMaxAbsoluteAmplitude) {
  auto p = extract_peak({1.0, -5.0, 3.0}, 0.5);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value().value, -5.0);
  EXPECT_EQ(p.value().index, 1u);
  EXPECT_DOUBLE_EQ(p.value().time, 0.5);
}

TEST(Peaks, FirstIndexWinsOnTies) {
  auto p = extract_peak({2.0, -2.0, 2.0}, 0.1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().index, 0u);
  EXPECT_DOUBLE_EQ(p.value().value, 2.0);
}

TEST(Peaks, ErrorsAreTyped) {
  EXPECT_EQ(extract_peak({}, 0.1).error().code,
            SignalError::Code::kEmptyInput);
  EXPECT_EQ(extract_peak({1.0}, 0.0).error().code,
            SignalError::Code::kBadSamplingInterval);
  EXPECT_EQ(extract_peak({1.0, std::nan("")}, 0.1).error().code,
            SignalError::Code::kNonFinite);
}

// --- TimeSeries validation ----------------------------------------------

TEST(TimeSeriesCheck, ValidateCatchesEveryStructuralFault) {
  TimeSeries good{0.005, Units::kCounts, {1.0, 2.0}};
  EXPECT_TRUE(validate(good).ok());
  TimeSeries bad_dt = good;
  bad_dt.dt = 0.0;
  EXPECT_EQ(validate(bad_dt).error().code,
            SignalError::Code::kBadSamplingInterval);
  TimeSeries empty = good;
  empty.samples.clear();
  EXPECT_EQ(validate(empty).error().code, SignalError::Code::kEmptyInput);
  TimeSeries nan_sample = good;
  nan_sample.samples[1] = std::nan("");
  EXPECT_EQ(validate(nan_sample).error().code, SignalError::Code::kNonFinite);
}

}  // namespace
}  // namespace acx::signal
