#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "signal/fft.hpp"
#include "spectrum/corners.hpp"
#include "spectrum/fourier.hpp"
#include "spectrum/response.hpp"
#include "spectrum/response_plan.hpp"
#include "test_helpers.hpp"

namespace acx::spectrum {
namespace {

constexpr double kPi = std::numbers::pi;

// --- Nigam–Jennings golden values ----------------------------------------
//
// The recurrence is exact for piecewise-linear excitation, so loading
// cases with closed-form solutions must match to near machine
// precision, not just to O(dt).

TEST(NigamJennings, UndampedStepMatchesClosedFormTo1e6) {
  // Ground step a(t) = a0 into an undamped oscillator:
  //   x(t)  = -(a0/w^2)(1 - cos wt),  max |x| = 2 a0 / w^2 at t = pi/w
  //   v(t)  = -(a0/w) sin wt,         max |v| = a0 / w at t = pi/(2w)
  //   |abs acc| = w^2 |x|,            max = 2 a0.
  // With period 2 s (w = pi) and dt = 0.005 s both extrema fall exactly
  // on sample instants, so the only error is roundoff.
  const double a0 = 100.0;  // cm/s2
  const double dt = 0.005;
  const double period = 2.0;
  const double w = 2.0 * kPi / period;
  const std::vector<double> acc(static_cast<std::size_t>(2.0 / dt) + 1, a0);

  auto peaks = sdof_peak_response(acc, dt, period, 0.0);
  ASSERT_TRUE(peaks.ok()) << peaks.error().to_string();
  const double sd = 2.0 * a0 / (w * w);
  const double sv = a0 / w;
  const double sa = 2.0 * a0;
  EXPECT_NEAR(peaks.value().sd, sd, 1e-6 * sd);
  EXPECT_NEAR(peaks.value().sv, sv, 1e-6 * sv);
  EXPECT_NEAR(peaks.value().sa, sa, 1e-6 * sa);
}

TEST(NigamJennings, DampedStepPeakDisplacementMatchesClosedFormTo1e6) {
  // Damped step response peaks at wd * t = pi with
  //   max |x| = (a0/w^2) (1 + exp(-zeta w pi / wd)).
  // Choose wd = pi exactly so the peak instant t = 1 s is a sample.
  const double a0 = 50.0;
  const double dt = 0.005;
  const double zeta = 0.05;
  const double wd = kPi;
  const double w = wd / std::sqrt(1.0 - zeta * zeta);
  const double period = 2.0 * kPi / w;
  const std::vector<double> acc(static_cast<std::size_t>(2.0 / dt) + 1, a0);

  auto peaks = sdof_peak_response(acc, dt, period, zeta);
  ASSERT_TRUE(peaks.ok()) << peaks.error().to_string();
  const double sd =
      a0 / (w * w) * (1.0 + std::exp(-zeta * w * kPi / wd));
  EXPECT_NEAR(peaks.value().sd, sd, 1e-6 * sd);
}

TEST(NigamJennings, ResonantHarmonicReachesSteadyStateAmplitudeTo1e6) {
  // Base excitation a0 sin(w t) at exact resonance: the steady-state
  // relative displacement amplitude is a0 / (2 zeta w^2) and the
  // absolute acceleration amplitude is sqrt(1 + 4 zeta^2) times w^2
  // that. Run long enough (256 s, zeta w t ~ 16) for the transient to
  // decay below the 1e-6 assertion floor; dt = 2.5e-4 keeps both the
  // piecewise-linear interpolation error of the sine and the
  // peak-sampling offset under 1e-7 relative.
  const double a0 = 10.0;
  const double zeta = 0.02;
  const double period = 2.0;
  const double w = 2.0 * kPi / period;
  const double dt = 2.5e-4;
  const std::size_t n = static_cast<std::size_t>(256.0 / dt) + 1;
  std::vector<double> acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = a0 * std::sin(w * dt * static_cast<double>(i));
  }

  auto peaks = sdof_peak_response(acc, dt, period, zeta);
  ASSERT_TRUE(peaks.ok()) << peaks.error().to_string();
  const double sd = a0 / (2.0 * zeta * w * w);
  const double sa = sd * w * w * std::sqrt(1.0 + 4.0 * zeta * zeta);
  EXPECT_NEAR(peaks.value().sd, sd, 1e-6 * sd);
  EXPECT_NEAR(peaks.value().sa, sa, 1e-6 * sa);
}

TEST(NigamJennings, RejectsBadOscillatorParameters) {
  const std::vector<double> acc(128, 1.0);
  EXPECT_EQ(sdof_peak_response(acc, 0.005, 0.0, 0.05).error().code,
            SpectrumError::Code::kBadPeriod);
  EXPECT_EQ(sdof_peak_response(acc, 0.005, 1.0, 1.0).error().code,
            SpectrumError::Code::kBadDamping);
  EXPECT_EQ(sdof_peak_response(acc, 0.0, 1.0, 0.05).error().code,
            SpectrumError::Code::kBadSamplingInterval);
  EXPECT_EQ(sdof_peak_response({}, 0.005, 1.0, 0.05).error().code,
            SpectrumError::Code::kEmptyInput);
}

TEST(ResponseSpectrum, PaperGridHas600PeriodsAndFiveDampings) {
  const ResponseGrid grid = paper_grid();
  ASSERT_EQ(grid.periods.size(), 600u);
  ASSERT_EQ(grid.dampings.size(), 5u);
  EXPECT_NEAR(grid.periods.front(), 0.02, 1e-12);
  EXPECT_NEAR(grid.periods.back(), 10.0, 1e-9);
  EXPECT_EQ(grid.dampings,
            (std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20}));
  EXPECT_TRUE(validate_grid(grid).ok());
}

TEST(ResponseSpectrum, GridCellsMatchTheSingleOscillatorKernel) {
  // The grid evaluator is just the kernel mapped over cells; spot-check
  // that the damping-major layout indexes the right oscillator.
  std::vector<double> acc(512);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = std::sin(0.11 * static_cast<double>(i)) +
             0.5 * std::cos(0.043 * static_cast<double>(i));
  }
  ResponseGrid grid;
  grid.periods = {0.1, 0.5, 2.0};
  grid.dampings = {0.02, 0.10};

  auto spec = response_spectrum(acc, 0.005, grid);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  const ResponseSpectrum& rs = spec.value();
  ASSERT_EQ(rs.sd.size(), 6u);
  for (std::size_t d = 0; d < grid.dampings.size(); ++d) {
    for (std::size_t p = 0; p < grid.periods.size(); ++p) {
      auto cell = sdof_peak_response(acc, 0.005, grid.periods[p],
                                     grid.dampings[d]);
      ASSERT_TRUE(cell.ok());
      const std::size_t i = rs.index(d, p);
      EXPECT_DOUBLE_EQ(rs.sd[i], cell.value().sd);
      EXPECT_DOUBLE_EQ(rs.sv[i], cell.value().sv);
      EXPECT_DOUBLE_EQ(rs.sa[i], cell.value().sa);
    }
  }
}

TEST(ResponseSpectrum, BatchKernelIsBitIdenticalToTheScalarRecurrence) {
  // The whole paper grid (3000 cells, 93 full blocks plus a 24-cell
  // tail) against one scalar kernel call per cell: bit-identical, not
  // merely close — the batch kernel's contract is exact equality.
  std::vector<double> acc(600);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = std::sin(0.09 * static_cast<double>(i)) +
             0.3 * std::cos(0.017 * static_cast<double>(i));
  }
  const ResponseGrid grid = paper_grid();
  auto plan = ResponsePlan::build(0.01, grid);
  ASSERT_TRUE(plan.ok());
  const std::size_t cells = plan.value()->cells;
  ASSERT_EQ(cells, 3000u);

  std::vector<double> sd(cells), sv(cells), sa(cells);
  sdof_peak_response_batch(acc.data(), acc.size(), *plan.value(), 0, cells,
                           sd.data(), sv.data(), sa.data());
  for (std::size_t d = 0; d < grid.dampings.size(); ++d) {
    for (std::size_t p = 0; p < grid.periods.size(); ++p) {
      auto cell = sdof_peak_response(acc, 0.01, grid.periods[p],
                                     grid.dampings[d]);
      ASSERT_TRUE(cell.ok());
      const std::size_t i = d * grid.periods.size() + p;
      EXPECT_EQ(sd[i], cell.value().sd) << i;
      EXPECT_EQ(sv[i], cell.value().sv) << i;
      EXPECT_EQ(sa[i], cell.value().sa) << i;
    }
  }

  // A block-misaligned sub-range writes the same peaks at the same
  // absolute indices and touches nothing outside it.
  std::vector<double> psd(cells, -1.0), psv(cells, -1.0), psa(cells, -1.0);
  sdof_peak_response_batch(acc.data(), acc.size(), *plan.value(), 17, 103,
                           psd.data(), psv.data(), psa.data());
  for (std::size_t i = 0; i < cells; ++i) {
    if (i >= 17 && i < 103) {
      EXPECT_EQ(psd[i], sd[i]) << i;
      EXPECT_EQ(psv[i], sv[i]) << i;
      EXPECT_EQ(psa[i], sa[i]) << i;
    } else {
      EXPECT_EQ(psd[i], -1.0) << i;
    }
  }
}

TEST(ResponseSpectrum, PlanOverloadIsBitIdenticalForAnyThreadCount) {
  std::vector<double> acc(512);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] = std::cos(0.21 * static_cast<double>(i));
  }
  auto plan = ResponsePlan::build(0.005, paper_grid());
  ASSERT_TRUE(plan.ok());

  auto serial = response_spectrum(acc, *plan.value(), 1);
  ASSERT_TRUE(serial.ok());
  auto via_dt = response_spectrum(acc, 0.005, paper_grid());
  ASSERT_TRUE(via_dt.ok());
  EXPECT_EQ(serial.value().sd, via_dt.value().sd);
  const std::vector<int> teams =
      test::kTsanBuild ? std::vector<int>{1} : std::vector<int>{2, 5, 8};
  for (int threads : teams) {
    auto teamed = response_spectrum(acc, *plan.value(), threads);
    ASSERT_TRUE(teamed.ok()) << threads;
    EXPECT_EQ(serial.value().sd, teamed.value().sd) << threads;
    EXPECT_EQ(serial.value().sv, teamed.value().sv) << threads;
    EXPECT_EQ(serial.value().sa, teamed.value().sa) << threads;
  }
}

// --- Fourier amplitude spectrum ------------------------------------------

TEST(Fourier, AmplitudeBinsAreDtTimesRfftMagnitudes) {
  // Cross-check the FAS against signal::rfft directly: with no window
  // and a power-of-two input, fourier_amplitude must be exactly
  // dt * |rfft(x)[k]| bin for bin.
  const double dt = 0.01;
  std::vector<double> x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.2 * static_cast<double>(i)) +
           0.3 * std::cos(0.7 * static_cast<double>(i));
  }
  auto fas = fourier_amplitude(x, dt);
  ASSERT_TRUE(fas.ok()) << fas.error().to_string();
  auto bins = signal::rfft(x);
  ASSERT_TRUE(bins.ok());
  ASSERT_EQ(fas.value().size(), bins.value().size());
  ASSERT_EQ(fas.value().nfft, x.size());
  EXPECT_NEAR(fas.value().df, 1.0 / (dt * static_cast<double>(x.size())),
              1e-15);
  for (std::size_t k = 0; k < bins.value().size(); ++k) {
    const double expected = dt * std::abs(bins.value()[k]);
    EXPECT_NEAR(fas.value().amplitude[k], expected, 1e-12 + 1e-12 * expected)
        << "bin " << k;
  }
}

TEST(Fourier, ParsevalEnergyIsPreservedIncludingZeroPadding) {
  // One-sided Parseval with the dt*|X| scaling: summing w_k * A_k^2 * df
  // (w_k = 2 for interior bins, 1 for DC and Nyquist) recovers the
  // time-domain energy integral sum x^2 dt. Zero-padding to the next
  // power of two must not change the energy.
  const double dt = 0.005;
  std::vector<double> x(1000);  // pads to nfft = 1024
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.31 * static_cast<double>(i)) *
           std::exp(-1e-3 * static_cast<double>(i));
  }
  auto fas = fourier_amplitude(x, dt);
  ASSERT_TRUE(fas.ok());
  const FourierSpectrum& f = fas.value();
  ASSERT_EQ(f.nfft, 1024u);

  double time_energy = 0.0;
  for (const double v : x) time_energy += v * v * dt;
  double freq_energy = 0.0;
  for (std::size_t k = 0; k < f.size(); ++k) {
    const double weight = (k == 0 || k + 1 == f.size()) ? 1.0 : 2.0;
    freq_energy += weight * f.amplitude[k] * f.amplitude[k] * f.df;
  }
  EXPECT_NEAR(freq_energy, time_energy, 1e-9 * time_energy);
}

TEST(Fourier, WindowKeepsPassBandSinusoidAmplitude) {
  // Unit coherent gain: a bin-centred sinusoid keeps its spectral peak
  // within a few percent whichever taper is applied (the window only
  // redistributes leakage).
  const double dt = 0.01;
  const std::size_t n = 1024;
  const std::size_t k0 = 100;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * static_cast<double>(k0 * i) /
                    static_cast<double>(n));
  }
  double peaks[3];
  int idx = 0;
  for (const Window w : {Window::kNone, Window::kHann, Window::kHamming}) {
    FourierSpec spec;
    spec.window = w;
    auto fas = fourier_amplitude(x, dt, spec);
    ASSERT_TRUE(fas.ok());
    peaks[idx++] = fas.value().amplitude[k0];
  }
  EXPECT_NEAR(peaks[1], peaks[0], 0.05 * peaks[0]);
  EXPECT_NEAR(peaks[2], peaks[0], 0.05 * peaks[0]);
}

TEST(Fourier, RejectsBadInput) {
  EXPECT_EQ(fourier_amplitude({}, 0.005).error().code,
            SpectrumError::Code::kEmptyInput);
  EXPECT_EQ(fourier_amplitude({1.0, 2.0}, -1.0).error().code,
            SpectrumError::Code::kBadSamplingInterval);
  const std::vector<double> bad = {1.0, std::nan(""), 2.0};
  EXPECT_EQ(fourier_amplitude(bad, 0.005).error().code,
            SpectrumError::Code::kNonFinite);
}

// --- FPL/FSL corner search ------------------------------------------------

// A synthetic band spectrum with known 10%-crossings: floor at 0.01,
// linear ramp up over [f_lo, f_lo + 1], flat top at 1.0, linear ramp
// down over [f_hi - 2, f_hi]. The threshold crossing of a linear ramp
// survives moving-average smoothing (the average of a line is the
// line), so the found corners must sit at the analytic crossings.
FourierSpectrum make_band_spectrum(double dt, std::size_t nfft, double f_lo,
                                   double f_hi) {
  FourierSpectrum f;
  f.dt = dt;
  f.nfft = nfft;
  f.df = 1.0 / (static_cast<double>(nfft) * dt);
  f.amplitude.resize(nfft / 2 + 1);
  for (std::size_t k = 0; k < f.amplitude.size(); ++k) {
    const double freq = f.frequency_at(k);
    double a = 0.01;
    if (freq >= f_lo && freq < f_lo + 1.0) {
      a = 0.01 + 0.99 * (freq - f_lo);
    } else if (freq >= f_lo + 1.0 && freq < f_hi - 2.0) {
      a = 1.0;
    } else if (freq >= f_hi - 2.0 && freq < f_hi) {
      a = 1.0 - 0.99 * (freq - (f_hi - 2.0)) / 2.0;
    }
    f.amplitude[k] = a;
  }
  return f;
}

TEST(Corners, FindsKnownCornersOfSyntheticBandSpectrum) {
  // Band [2, 10] Hz. Crossings of 0.1 * peak: rising ramp hits 0.1 at
  // 2 + 0.09/0.99 = 2.0909 Hz; falling ramp at 8 + 2 * 0.9/0.99 =
  // 9.8182 Hz.
  const FourierSpectrum f = make_band_spectrum(0.01, 10000, 2.0, 10.0);
  auto corners = find_corners(f);
  ASSERT_TRUE(corners.ok()) << corners.error().to_string();
  EXPECT_NEAR(corners.value().fsl_hz, 2.0909, 0.15);
  EXPECT_NEAR(corners.value().fpl_hz, 9.8182, 0.15);
  EXPECT_LT(corners.value().fsl_hz, corners.value().fpl_hz);
}

TEST(Corners, FlatSpectrumHasNoCorner) {
  FourierSpectrum f;
  f.dt = 0.01;
  f.nfft = 2048;
  f.df = 1.0 / (2048.0 * 0.01);
  f.amplitude.assign(1025, 1.0);
  auto corners = find_corners(f);
  ASSERT_FALSE(corners.ok());
  EXPECT_EQ(corners.error().code, SpectrumError::Code::kNoCorner);
}

TEST(Corners, ShortSpectrumIsSoftTooShort) {
  FourierSpectrum f;
  f.dt = 0.01;
  f.nfft = 16;
  f.df = 1.0 / (16.0 * 0.01);
  f.amplitude.assign(9, 1.0);
  auto corners = find_corners(f);
  ASSERT_FALSE(corners.ok());
  EXPECT_EQ(corners.error().code, SpectrumError::Code::kTooShort);
}

TEST(Corners, EmptySpectrumIsRejected) {
  FourierSpectrum f;
  auto corners = find_corners(f);
  ASSERT_FALSE(corners.ok());
  EXPECT_EQ(corners.error().code, SpectrumError::Code::kEmptyInput);
}

TEST(Corners, InvalidConfigIsRejected) {
  const FourierSpectrum f = make_band_spectrum(0.01, 4096, 2.0, 10.0);
  CornerSearchConfig cfg;
  cfg.smoothing_bins = 8;  // must be odd
  EXPECT_EQ(find_corners(f, cfg).error().code, SpectrumError::Code::kBadGrid);
  cfg = {};
  cfg.threshold = 1.5;  // must be a fraction
  EXPECT_EQ(find_corners(f, cfg).error().code, SpectrumError::Code::kBadGrid);
}

}  // namespace
}  // namespace acx::spectrum
