// The modeled storage stack of the batch runner: the latency shim
// (SlowFileSystem), the circuit breaker's state machine, and the
// breaker-guarded FileSystem — including the typed storage.circuit_open
// rejection the pipeline's degradation path keys on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_helpers.hpp"
#include "util/breaker.hpp"
#include "util/faultfs.hpp"
#include "util/fs.hpp"
#include "util/slowfs.hpp"

namespace acx::storage {
namespace {

TEST(SlowFs, InjectsDeterministicSeededLatency) {
  test::TempDir tmp("slowfs");
  RealFileSystem real;
  ASSERT_TRUE(real.write_file(tmp.path() / "a.txt", "hello").ok());

  auto run_once = [&](std::uint64_t seed) {
    SlowConfig cfg;
    cfg.seed = seed;
    cfg.base_ms = 2;
    cfg.jitter_ms = 5;
    cfg.per_kib_ms = 1;
    std::vector<int> sleeps;
    cfg.sleep = [&sleeps](int ms) { sleeps.push_back(ms); };
    SlowFileSystem slow(real, cfg);
    EXPECT_TRUE(slow.read_file(tmp.path() / "a.txt").ok());
    EXPECT_TRUE(slow.write_file(tmp.path() / "b.txt", "world").ok());
    EXPECT_TRUE(slow.list_dir(tmp.path()).ok());
    EXPECT_EQ(slow.stats().ops, 3);
    EXPECT_GT(slow.stats().total_latency_ms, 0);
    return sleeps;
  };

  const auto first = run_once(42);
  const auto second = run_once(42);
  EXPECT_EQ(first, second) << "same seed must inject the same latencies";
  EXPECT_NE(first, run_once(43)) << "different seed, different jitter";
}

TEST(SlowFs, AdvisoryProbesAndZeroModelAreFree) {
  test::TempDir tmp("slowfs");
  RealFileSystem real;
  ASSERT_TRUE(real.write_file(tmp.path() / "a.txt", "hello").ok());

  SlowConfig cfg;  // all-zero latency model
  cfg.sleep = [](int) { FAIL() << "zero model must never sleep"; };
  SlowFileSystem slow(real, cfg);
  EXPECT_TRUE(slow.exists(tmp.path() / "a.txt"));
  EXPECT_EQ(slow.file_size(tmp.path() / "a.txt"), 5u);
  EXPECT_TRUE(slow.read_file(tmp.path() / "a.txt").ok());
  EXPECT_EQ(slow.stats().ops, 0);
}

TEST(CircuitBreaker, ClosedOpenHalfOpenLifecycle) {
  double now = 0;
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_seconds = 10;
  cfg.half_open_probes = 2;
  cfg.now = [&now] { return now; };
  CircuitBreaker breaker(cfg);

  // Closed: failures below the threshold do not trip it, and a success
  // resets the consecutive count.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // The third consecutive failure trips it open.
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.counters().opens, 1);

  // Open: operations are shed (and counted) until the cooldown passes.
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.counters().rejected_ops, 2);

  // Cooldown over: half-open lets probes through.
  now = 11;
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // A failed probe re-opens with a fresh cooldown.
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.counters().opens, 2);
  EXPECT_FALSE(breaker.allow());

  // Second cooldown, then the configured number of successful probes
  // closes it — one half-open recovery.
  now = 22;
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.counters().half_open_recoveries, 1);
}

TEST(BreakerFs, RejectsWithTypedTransientStorageReason) {
  test::TempDir tmp("breakerfs");
  RealFileSystem real;
  faultfs::FaultConfig faults;
  faults.read_fail_first_n = 100;  // the backend is down
  faultfs::FaultyFileSystem flaky(real, faults);

  double now = 0;
  BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_seconds = 10;
  cfg.now = [&now] { return now; };
  CircuitBreaker breaker(cfg);
  BreakerFileSystem fs(flaky, breaker);

  // Failures pass through (and feed the breaker) until it trips.
  EXPECT_FALSE(fs.read_file(tmp.path() / "x").ok());
  EXPECT_FALSE(fs.read_file(tmp.path() / "x").ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: the rejection is typed, transient, and never hits the backend.
  const int backend_faults = flaky.stats().injected_read_faults;
  auto rejectedRead = fs.read_file(tmp.path() / "x");
  ASSERT_FALSE(rejectedRead.ok());
  EXPECT_EQ(rejectedRead.error().code, IoError::Code::kCircuitOpen);
  EXPECT_EQ(rejectedRead.error().klass, ErrorClass::kTransient);
  EXPECT_EQ(reason_slug(rejectedRead.error()), "storage.circuit_open");
  EXPECT_EQ(flaky.stats().injected_read_faults, backend_faults);

  // Writes are shed too while open.
  EXPECT_FALSE(fs.write_file(tmp.path() / "y", "data").ok());
  EXPECT_GE(breaker.counters().rejected_ops, 2);
}

TEST(BreakerFs, RecoversThroughHalfOpenWhenBackendHeals) {
  test::TempDir tmp("breakerfs");
  RealFileSystem real;
  ASSERT_TRUE(real.write_file(tmp.path() / "x", "payload").ok());
  faultfs::FaultConfig faults;
  faults.read_fail_first_n = 3;  // the backend heals after three faults
  faultfs::FaultyFileSystem flaky(real, faults);

  double now = 0;
  BreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_seconds = 5;
  cfg.half_open_probes = 1;
  cfg.now = [&now] { return now; };
  CircuitBreaker breaker(cfg);
  BreakerFileSystem fs(flaky, breaker);

  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fs.read_file(tmp.path() / "x").ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  now = 6;  // cooldown over; the healed backend serves the probe
  auto probed = fs.read_file(tmp.path() / "x");
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(probed.value(), "payload");
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.counters().half_open_recoveries, 1);
}

}  // namespace
}  // namespace acx::storage
