// The acceptance suite for the fault-tolerant execution layer: for every
// injected fault class, an event run with N records completes with
// exactly the poisoned records quarantined, N-k valid V2 outputs, a
// run_report.json listing every outcome, and zero partially-written
// files (the atomic-write audit in validate_workdir).

#include <gtest/gtest.h>

#include <set>

#include "formats/v1.hpp"
#include "formats/v2.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/faultfs.hpp"

namespace acx::pipeline {
namespace {

RunnerConfig test_config() {
  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  return cfg;
}

std::vector<std::filesystem::path> build_event(
    FileSystem& fs, const std::filesystem::path& dir, int n_files) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  auto written = synth::build_event_dataset(fs, dir, spec, scfg);
  EXPECT_TRUE(written.ok());
  std::vector<std::filesystem::path> paths;
  for (const auto& name : written.value()) paths.push_back(dir / name);
  return paths;
}

// Full acceptance check: counts, outputs parse, quarantine files exist,
// report agrees, audit clean.
void expect_degraded_gracefully(FileSystem& fs, const RunReport& report,
                                const std::filesystem::path& work,
                                int n_records,
                                const std::set<std::string>& poisoned_ids) {
  ASSERT_EQ(report.records.size(), static_cast<std::size_t>(n_records));
  EXPECT_EQ(report.count_quarantined(),
            static_cast<int>(poisoned_ids.size()));
  EXPECT_EQ(report.count_ok(),
            n_records - static_cast<int>(poisoned_ids.size()));

  for (const RecordOutcome& r : report.records) {
    if (poisoned_ids.count(r.record)) {
      EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined)
          << r.record << " should have been quarantined";
      EXPECT_FALSE(r.reason.empty());
      EXPECT_TRUE(fs.exists(r.quarantine))
          << r.record << ": quarantine file missing";
      // Quarantine naming contract: <work>/quarantine/<record>.<reason>
      EXPECT_EQ(std::filesystem::path(r.quarantine).filename().string(),
                r.record + "." + r.reason);
    } else {
      EXPECT_EQ(r.status, RecordOutcome::Status::kOk)
          << r.record << " quarantined: " << r.reason;
      auto content = fs.read_file(r.output);
      ASSERT_TRUE(content.ok());
      EXPECT_TRUE(formats::read_v2(content.value()).ok())
          << r.record << ": surviving output is not valid V2";
    }
  }

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_TRUE(audit.clean())
      << audit.issues.size() << " issue(s), first: "
      << audit.issues.front().kind << ": " << audit.issues.front().detail;
}

TEST(FaultInjection, CorruptHeaderIsQuarantinedRunContinues) {
  test::TempDir tmp("inject");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(fs, input, 8);

  // Corrupt one record's magic.
  const auto victim = files[3];
  auto content = fs.read_file(victim);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes.replace(0, 6, "BROKEN");
  ASSERT_TRUE(fs.write_file(victim, bytes).ok());
  const std::string victim_id = victim.stem().string();

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());
  expect_degraded_gracefully(fs, run.value(), work, 8, {victim_id});

  for (const RecordOutcome& r : run.value().records) {
    if (r.record != victim_id) continue;
    EXPECT_EQ(r.reason, "parse.bad_magic");
    // Original bytes preserved for post-mortem.
    auto q = fs.read_file(r.quarantine);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q.value(), bytes);
  }
}

TEST(FaultInjection, TruncatedRecordIsQuarantined) {
  test::TempDir tmp("inject");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(fs, input, 8);

  const auto victim = files[5];
  ASSERT_TRUE(faultfs::truncate_file(fs, victim, 0.45).ok());
  const std::string victim_id = victim.stem().string();

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());
  expect_degraded_gracefully(fs, run.value(), work, 8, {victim_id});
  for (const RecordOutcome& r : run.value().records) {
    if (r.record == victim_id) {
      EXPECT_EQ(r.reason.rfind("parse.", 0), 0u) << r.reason;
    }
  }
}

TEST(FaultInjection, BitFlippedRecordIsQuarantined) {
  test::TempDir tmp("inject");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(fs, input, 8);

  const auto victim = files[1];
  ASSERT_TRUE(faultfs::flip_bytes(fs, victim, 24, /*seed=*/2024).ok());
  const std::string victim_id = victim.stem().string();

  // Sanity: the flips really poisoned the file (seeded, so stable).
  auto poisoned = fs.read_file(victim);
  ASSERT_TRUE(poisoned.ok());
  ASSERT_FALSE(formats::read_v1(poisoned.value()).ok());

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());
  expect_degraded_gracefully(fs, run.value(), work, 8, {victim_id});
  for (const RecordOutcome& r : run.value().records) {
    if (r.record == victim_id) {
      EXPECT_EQ(r.reason.rfind("parse.", 0), 0u) << r.reason;
    }
  }
}

TEST(FaultInjection, TransientRenameFaultsAreRetriedToSuccess) {
  test::TempDir tmp("inject");
  RealFileSystem real;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(real, input, 6);

  faultfs::FaultConfig fcfg;
  fcfg.rename_fail_first_n = 3;  // first three stage-out renames fail
  fcfg.path_filter = "/out/";
  faultfs::FaultyFileSystem fs(real, fcfg);

  RunnerConfig cfg = test_config();
  cfg.retry.max_attempts = 5;
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());

  // Nothing quarantined: the faults were transient and retry absorbed
  // them; the retries are visible in the report.
  expect_degraded_gracefully(real, run.value(), work, 6, {});
  EXPECT_EQ(fs.stats().injected_rename_faults, 3);
  EXPECT_GE(run.value().count_retries(), 3);
}

TEST(FaultInjection, TornWriteFaultsNeverLeavePartialOutputs) {
  test::TempDir tmp("inject");
  RealFileSystem real;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(real, input, 12);

  faultfs::FaultConfig fcfg;
  fcfg.seed = 7;
  fcfg.write_fail_p = 0.30;   // heavy weather
  fcfg.torn_writes = true;    // failures leave half-written temp files
  fcfg.path_filter = ".v2";   // v2 writes (scratch + out) only
  faultfs::FaultyFileSystem fs(real, fcfg);

  RunnerConfig cfg = test_config();
  cfg.retry.max_attempts = 6;
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());

  // Graceful degradation either way: a record is ok, or it exhausted its
  // retries and was quarantined as transient_exhausted — but the tree
  // must be clean and the report must account for every record.
  ASSERT_EQ(run.value().records.size(), 12u);
  for (const RecordOutcome& r : run.value().records) {
    if (r.status == RecordOutcome::Status::kQuarantined) {
      EXPECT_EQ(r.reason.rfind("transient_exhausted.", 0), 0u) << r.reason;
    }
  }
  const ValidationSummary audit = validate_workdir(real, work);
  EXPECT_TRUE(audit.clean())
      << audit.issues.front().kind << ": " << audit.issues.front().detail;
  EXPECT_GT(fs.stats().injected_write_faults, 0);
}

TEST(FaultInjection, StageCrashOnKthInvocationQuarantinesExactlyThatRecord) {
  test::TempDir tmp("inject");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(fs, input, 8);

  RunnerConfig cfg = test_config();
  cfg.stage_fault.stage = "detrend";
  cfg.stage_fault.kill_on_invocation = 4;  // 4th record to reach detrend
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());

  // Records run in sorted order and all are healthy, so the 4th record
  // is the victim.
  const std::string victim_id = files[3].stem().string();
  expect_degraded_gracefully(fs, run.value(), work, 8, {victim_id});
  for (const RecordOutcome& r : run.value().records) {
    if (r.record == victim_id) {
      EXPECT_EQ(r.reason, "stage_crash.detrend");
    }
  }
}

TEST(FaultInjection, TransientStageCrashIsRetriedInPlace) {
  test::TempDir tmp("inject");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 4);

  RunnerConfig cfg = test_config();
  cfg.stage_fault.stage = "demean";
  cfg.stage_fault.kill_on_invocation = 2;
  cfg.stage_fault.transient = true;  // flaky, not fatal: retry absorbs it
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  expect_degraded_gracefully(fs, run.value(), work, 4, {});
  EXPECT_EQ(run.value().count_retries(), 1);
}

TEST(FaultInjection, MixedFaultStormDegradesToExactlyTheSurvivors) {
  test::TempDir tmp("inject");
  RealFileSystem real;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(real, input, 8);

  // Three poisoned inputs...
  auto magic_victim = files[0];
  auto content = real.read_file(magic_victim);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes.replace(0, 6, "BROKEN");
  ASSERT_TRUE(real.write_file(magic_victim, bytes).ok());
  ASSERT_TRUE(faultfs::truncate_file(real, files[2], 0.5).ok());
  ASSERT_TRUE(faultfs::flip_bytes(real, files[4], 24, 2024).ok());
  {
    auto flipped = real.read_file(files[4]);
    ASSERT_TRUE(flipped.ok());
    ASSERT_FALSE(formats::read_v1(flipped.value()).ok());
  }

  // ...plus transient rename faults on the way out...
  faultfs::FaultConfig fcfg;
  fcfg.rename_fail_first_n = 2;
  fcfg.path_filter = "/out/";
  faultfs::FaultyFileSystem fs(real, fcfg);

  // ...plus a stage crash on the 2nd healthy record to reach detrend.
  RunnerConfig cfg = test_config();
  cfg.retry.max_attempts = 5;
  cfg.stage_fault.stage = "detrend";
  cfg.stage_fault.kill_on_invocation = 2;

  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());

  // Healthy records in sorted order: files 1,3,5,6,7; detrend invocation
  // 2 lands on files[3].
  const std::set<std::string> poisoned = {
      files[0].stem().string(), files[2].stem().string(),
      files[4].stem().string(), files[3].stem().string()};
  expect_degraded_gracefully(real, run.value(), work, 8, poisoned);
  EXPECT_EQ(run.value().count_ok(), 4);
}

}  // namespace
}  // namespace acx::pipeline
