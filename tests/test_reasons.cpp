#include <gtest/gtest.h>

#include <set>
#include <string>

#include "pipeline/graph.hpp"
#include "pipeline/reasons.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/stage.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace acx::pipeline {
namespace {

TEST(Reasons, RegistryIsNonEmptyUniqueAndWellFormed) {
  const std::vector<std::string>& reasons = registered_reasons();
  ASSERT_FALSE(reasons.empty());
  std::set<std::string> unique(reasons.begin(), reasons.end());
  EXPECT_EQ(unique.size(), reasons.size()) << "duplicate reason in registry";
  for (const std::string& r : reasons) {
    // Every legal reason is "<family>.<slug>" with a lowercase family.
    const auto dot = r.find('.');
    ASSERT_NE(dot, std::string::npos) << r;
    EXPECT_GT(dot, 0u) << r;
    EXPECT_LT(dot + 1, r.size()) << r;
  }
}

TEST(Reasons, KnownReasonsFromEveryFamilyAreRegistered) {
  for (const char* reason :
       {"parse.bad_magic", "parse.bad_value", "signal.too_short",
        "signal.non_finite", "spectrum.no_corner", "spectrum.bad_grid",
        "io.write_failed", "stage_crash.parse", "stage_crash.response"}) {
    EXPECT_TRUE(is_registered_reason(reason)) << reason;
  }
}

TEST(Reasons, TransientExhaustedPrefixWrapsAnyRegisteredReason) {
  EXPECT_TRUE(is_registered_reason("transient_exhausted.io.write_failed"));
  EXPECT_TRUE(is_registered_reason("transient_exhausted.stage_crash.demean"));
  EXPECT_FALSE(is_registered_reason("transient_exhausted.not.a_reason"));
  EXPECT_FALSE(is_registered_reason("transient_exhausted."));
}

TEST(Reasons, UnknownReasonsAreRejected) {
  for (const char* reason :
       {"", "bogus", "spectrum.", "stage_crash.nope", "parse.bad_magic.extra",
        "PARSE.bad_magic", "io.unknown_slug"}) {
    EXPECT_FALSE(is_registered_reason(reason)) << reason;
  }
}

TEST(Reasons, StageNameTableMatchesTheDefaultChain) {
  // stage_crash.<stage> legality is derived from kStageNames; the table
  // must track the real chain (plus scratch_setup, which the runner
  // times like a stage but builds outside default_stages, plus the
  // station-scoped stages that run after the per-record chain).
  const auto stages = default_stages();
  std::vector<std::string> expected = {"scratch_setup"};
  for (const auto& s : stages) expected.emplace_back(s->name());
  for (const StageNode* n :
       StageGraph::standard().station_plan(/*prune_redundant=*/false)) {
    expected.emplace_back(n->name);
  }
  std::vector<std::string> table;
  for (const char* name : kStageNames) table.emplace_back(name);
  EXPECT_EQ(table, expected);
}

TEST(Reasons, ValidatorFlagsUnregisteredQuarantineReason) {
  test::TempDir tmp("reasons");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = 2;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, input, spec, scfg).ok());
  // Corrupt one input so the run quarantines it with a registered
  // parse reason.
  auto listed = fs.list_dir(input);
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(fs.write_file(listed.value().front(), "garbage\n").ok());

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().count_quarantined(), 1);
  ASSERT_TRUE(validate_workdir(fs, work).clean());

  // Rewrite the report with a reason nothing registers; the quarantine
  // file must be renamed to keep the claim consistent, then the audit
  // has to flag the unknown reason.
  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  std::string doctored = text.value();
  const std::string from = "parse.bad_magic";
  const std::string to = "parse.not_a_thing";
  for (auto pos = doctored.find(from); pos != std::string::npos;
       pos = doctored.find(from, pos)) {
    doctored.replace(pos, from.size(), to);
    pos += to.size();
  }
  ASSERT_NE(doctored, text.value());
  ASSERT_TRUE(fs.write_file(work / kRunReportFileName, doctored).ok());
  auto q_listed = fs.list_dir(work / "quarantine");
  ASSERT_TRUE(q_listed.ok());
  ASSERT_EQ(q_listed.value().size(), 1u);
  const std::filesystem::path old_q = q_listed.value().front();
  std::string q_name = old_q.filename().string();
  q_name.replace(q_name.find(from), from.size(), to);
  ASSERT_TRUE(fs.rename(old_q, old_q.parent_path() / q_name).ok());

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  bool saw_unregistered = false;
  for (const auto& issue : audit.issues) {
    if (issue.kind == "unregistered_reason") saw_unregistered = true;
  }
  EXPECT_TRUE(saw_unregistered);
}

TEST(Reasons, EveryReportedReasonInARealRunIsRegistered) {
  // Drive the pipeline over a mix of healthy and poisoned inputs and
  // assert the report never invents a reason outside the registry.
  test::TempDir tmp("reasons");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = 3;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, input, spec, scfg).ok());
  ASSERT_TRUE(fs.write_file(input / "AA01l.v1", "not a record\n").ok());
  ASSERT_TRUE(fs.write_file(input / "AA02l.v1",
                            "ACX-V1 1\nSTATION AA02\n").ok());

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  auto run = run_pipeline(fs, input, tmp.path() / "work", cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run.value().count_quarantined(), 2);
  for (const RecordOutcome& r : run.value().records) {
    if (r.status == RecordOutcome::Status::kQuarantined) {
      EXPECT_TRUE(is_registered_reason(r.reason))
          << r.record << ": " << r.reason;
    }
  }
}

}  // namespace
}  // namespace acx::pipeline
