#include <gtest/gtest.h>

#include <set>

#include "formats/v1.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace acx::synth {
namespace {

TEST(Synth, PaperEventsMatchPublishedWorkload) {
  const auto events = paper_events();
  ASSERT_EQ(events.size(), 6u);
  const int files[] = {5, 5, 9, 15, 18, 19};
  const long points[] = {56000, 115000, 145000, 309000, 361000, 384000};
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].n_files, files[i]);
    EXPECT_EQ(events[i].total_points, points[i]);
  }
}

TEST(Synth, PointsPerFileRespectBoundsAndTotal) {
  const auto events = paper_events();
  for (const EventSpec& spec : events) {
    SynthConfig cfg;
    const auto pts = points_per_file(spec, cfg);
    ASSERT_EQ(pts.size(), static_cast<std::size_t>(spec.n_files));
    long total = 0;
    for (const long p : pts) {
      EXPECT_GE(p, spec.min_pts);
      EXPECT_LE(p, spec.max_pts);
      total += p;
    }
    // The clamp can bend the total slightly; it must stay close.
    EXPECT_NEAR(static_cast<double>(total),
                static_cast<double>(spec.total_points),
                0.15 * static_cast<double>(spec.total_points));
  }
}

TEST(Synth, RecordsAreDeterministic) {
  const EventSpec spec = paper_events()[0];
  SynthConfig cfg;
  cfg.scale = 0.02;
  const formats::Record a = make_record(spec, cfg, 2);
  const formats::Record b = make_record(spec, cfg, 2);
  EXPECT_EQ(formats::write_v1(a), formats::write_v1(b));

  SynthConfig other = cfg;
  other.seed = 43;
  const formats::Record c = make_record(spec, other, 2);
  EXPECT_NE(formats::write_v1(a), formats::write_v1(c));
}

TEST(Synth, DatasetRoundTripsThroughStrictReader) {
  test::TempDir tmp("synth");
  RealFileSystem fs;
  const EventSpec spec = paper_events()[2];  // 9 files
  SynthConfig cfg;
  cfg.scale = 0.02;  // keep the test fast
  auto written = build_event_dataset(fs, tmp.path(), spec, cfg);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
  ASSERT_EQ(written.value().size(), 9u);

  std::set<std::string> ids;
  for (const std::string& name : written.value()) {
    auto content = fs.read_file(tmp.path() / name);
    ASSERT_TRUE(content.ok());
    auto rec = formats::read_v1(content.value());
    ASSERT_TRUE(rec.ok()) << name << ": " << rec.error().to_string();
    EXPECT_EQ(rec.value().header.event_id, spec.id);
    EXPECT_EQ(rec.value().header.units, "counts");
    EXPECT_EQ(static_cast<long>(rec.value().samples.size()),
              rec.value().header.npts);
    EXPECT_TRUE(ids.insert(rec.value().header.id()).second)
        << "duplicate record id " << rec.value().header.id();
  }
}

}  // namespace
}  // namespace acx::synth
