#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "formats/spectra.hpp"
#include "formats/v1.hpp"
#include "formats/v2.hpp"

namespace acx::formats {
namespace {

Record make_record(long npts = 19) {
  Record rec;
  rec.header.station = "SS01";
  rec.header.component = "l";
  rec.header.event_id = "EV06";
  rec.header.date = "2019-07-07";
  rec.header.dt = 0.005;
  rec.header.npts = npts;
  rec.header.units = "counts";
  for (long i = 0; i < npts; ++i) {
    rec.samples.push_back(123.456 * std::sin(0.1 * static_cast<double>(i)) -
                          7.25);
  }
  return rec;
}

std::string replace_first(std::string text, const std::string& from,
                          const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corpus bug: '" << from << "' absent";
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

std::string drop_line(std::string text, const std::string& prefix) {
  const auto pos = text.find(prefix);
  EXPECT_NE(pos, std::string::npos) << "corpus bug: '" << prefix << "' absent";
  if (pos == std::string::npos) return text;
  const auto eol = text.find('\n', pos);
  text.erase(pos, eol - pos + 1);
  return text;
}

std::size_t data_start(const std::string& text) {
  const auto pos = text.find("DATA\n");
  EXPECT_NE(pos, std::string::npos);
  return pos + 5;
}

TEST(V1, WriterReaderRoundTrip) {
  const Record rec = make_record(19);
  const std::string text = write_v1(rec);
  auto back = read_v1(text);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  const Record& r = back.value();
  EXPECT_EQ(r.header.station, "SS01");
  EXPECT_EQ(r.header.component, "l");
  EXPECT_EQ(r.header.event_id, "EV06");
  EXPECT_EQ(r.header.date, "2019-07-07");
  EXPECT_DOUBLE_EQ(r.header.dt, 0.005);
  EXPECT_EQ(r.header.npts, 19);
  EXPECT_EQ(r.header.units, "counts");
  ASSERT_EQ(r.samples.size(), rec.samples.size());
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    // %12.4e keeps 5 significant digits.
    EXPECT_NEAR(r.samples[i], rec.samples[i],
                1e-4 * std::fabs(rec.samples[i]) + 1e-12);
  }
}

TEST(V1, CanonicalFormIsIdempotent) {
  const std::string text = write_v1(make_record(8));
  auto back = read_v1(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(write_v1(back.value()), text);  // golden: re-emit is byte-identical
}

TEST(V1, SingleSampleAndExactMultipleOfRowWidth) {
  for (const long npts : {1L, 8L, 16L}) {
    Record rec = make_record(npts);
    auto back = read_v1(write_v1(rec));
    ASSERT_TRUE(back.ok()) << "npts=" << npts << ": "
                           << back.error().to_string();
    EXPECT_EQ(back.value().header.npts, npts);
  }
}

TEST(V2, RoundTripWithProcessingList) {
  V2Record v2;
  v2.record = make_record(11);
  v2.record.header.units = "cm/s2";
  v2.processing = {"demean", "detrend", "write_v2"};
  auto back = read_v2(write_v2(v2));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().processing, v2.processing);
  EXPECT_EQ(back.value().record.header.units, "cm/s2");
}

TEST(V2, RoundTripWithPeaksAndComments) {
  V2Record v2;
  v2.record = make_record(11);
  v2.record.header.units = "cm/s2";
  v2.processing = {"calibrate", "demean", "write_v2"};
  v2.peaks.present = true;
  v2.peaks.pga = {-123.456789012, 0.035};
  v2.peaks.pgv = {4.5e-2, 0.04};
  v2.peaks.pgd = {1.25e-3, 0.055};
  v2.comments = {"bandpass: fir 0.50-25.00 Hz, 101 taps",
                 "integrate: trapezoid"};
  auto back = read_v2(write_v2(v2));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  ASSERT_TRUE(back.value().peaks.present);
  // %.9e keeps 10 significant digits — far inside the 1e-6 contract.
  EXPECT_NEAR(back.value().peaks.pga.value, v2.peaks.pga.value, 1e-6);
  EXPECT_NEAR(back.value().peaks.pga.time, v2.peaks.pga.time, 1e-9);
  EXPECT_NEAR(back.value().peaks.pgv.value, v2.peaks.pgv.value, 1e-9);
  EXPECT_NEAR(back.value().peaks.pgd.value, v2.peaks.pgd.value, 1e-9);
  EXPECT_EQ(back.value().comments, v2.comments);
}

TEST(V2, PeakBlockIsAllOrNothing) {
  V2Record v2;
  v2.record = make_record(5);
  v2.record.header.units = "cm/s2";
  v2.processing = {"demean"};
  v2.peaks.present = true;
  v2.peaks.pga = {1.0, 0.0};
  v2.peaks.pgv = {2.0, 0.0};
  v2.peaks.pgd = {3.0, 0.0};
  // Dropping any one of the three peak lines must be rejected.
  for (const std::string prefix : {"PGA ", "PGV ", "PGD "}) {
    std::string text = drop_line(write_v2(v2), prefix);
    auto back = read_v2(text);
    ASSERT_FALSE(back.ok()) << "partial peak block accepted (no " << prefix
                            << ")";
    EXPECT_EQ(back.error().code, ParseError::Code::kMissingHeaderField);
  }
  // Non-finite or negative-time peak values are rejected too.
  auto nan_peak = read_v2(
      replace_first(write_v2(v2), "PGA 1.000000000e+00 0.000000000e+00",
                    "PGA nan 0.0"));
  ASSERT_FALSE(nan_peak.ok());
  EXPECT_EQ(nan_peak.error().code, ParseError::Code::kBadHeaderField);
  auto neg_time = read_v2(
      replace_first(write_v2(v2), "PGA 1.000000000e+00 0.000000000e+00",
                    "PGA 1.0 -0.5"));
  ASSERT_FALSE(neg_time.ok());
  EXPECT_EQ(neg_time.error().code, ParseError::Code::kBadHeaderField);
}

TEST(V1, RejectsPeakLinesAndComments) {
  // The corrected-format extensions must not leak into strict V1.
  const std::string valid = write_v1(make_record(4));
  auto with_peak = read_v1(
      replace_first(valid, "UNITS counts", "UNITS counts\nPGA 1.0 0.5"));
  ASSERT_FALSE(with_peak.ok());
  EXPECT_EQ(with_peak.error().code, ParseError::Code::kBadHeaderField);
  auto with_comment = read_v1(
      replace_first(valid, "UNITS counts", "UNITS counts\n# history"));
  ASSERT_FALSE(with_comment.ok());
  EXPECT_EQ(with_comment.error().code, ParseError::Code::kBadHeaderField);
}

TEST(V2, RejectsCountsUnits) {
  V2Record v2;
  v2.record = make_record(4);
  v2.record.header.units = "counts";
  v2.processing = {"demean"};
  auto back = read_v2(write_v2(v2));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, ParseError::Code::kBadUnits);
}

TEST(V1, RejectsV2File) {
  V2Record v2;
  v2.record = make_record(4);
  v2.record.header.units = "cm/s2";
  v2.processing = {"demean"};
  auto back = read_v1(write_v2(v2));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, ParseError::Code::kBadMagic);
}

// --- Malformed-record corpus ---------------------------------------------
// Every mutation must yield its exact ParseError code — never a crash,
// never silent acceptance.

struct MalformedCase {
  const char* name;
  std::function<std::string(std::string)> mutate;
  ParseError::Code expected;
};

TEST(V1MalformedCorpus, EveryFaultYieldsItsTypedError) {
  const std::string valid = write_v1(make_record(19));  // 8 + 8 + 3 layout
  const std::string full_line = valid.substr(data_start(valid), 96);

  const MalformedCase kCases[] = {
      {"empty_file", [](std::string) { return std::string(); },
       ParseError::Code::kEmptyFile},
      {"bad_magic",
       [](std::string s) { return replace_first(s, "ACX-V1", "XXX-V1"); },
       ParseError::Code::kBadMagic},
      {"unsupported_version",
       [](std::string s) { return replace_first(s, "ACX-V1 1", "ACX-V1 2"); },
       ParseError::Code::kUnsupportedVersion},
      {"missing_npts", [](std::string s) { return drop_line(s, "NPTS "); },
       ParseError::Code::kMissingHeaderField},
      {"missing_station",
       [](std::string s) { return drop_line(s, "STATION "); },
       ParseError::Code::kMissingHeaderField},
      {"non_numeric_dt",
       [](std::string s) { return replace_first(s, "DT 5.000000e-03", "DT abc"); },
       ParseError::Code::kBadHeaderField},
      {"negative_dt",
       [](std::string s) {
         return replace_first(s, "DT 5.000000e-03", "DT -5.000000e-03");
       },
       ParseError::Code::kBadHeaderField},
      {"zero_npts",
       [](std::string s) { return replace_first(s, "NPTS 19", "NPTS 0"); },
       ParseError::Code::kBadHeaderField},
      {"npts_overflowing_long",
       [](std::string s) {
         return replace_first(s, "NPTS 19", "NPTS 99999999999999999999");
       },
       ParseError::Code::kBadHeaderField},
      {"bad_component",
       [](std::string s) { return replace_first(s, "COMPONENT l", "COMPONENT x"); },
       ParseError::Code::kBadHeaderField},
      {"bad_date",
       [](std::string s) {
         return replace_first(s, "DATE 2019-07-07", "DATE 07/07/2019");
       },
       ParseError::Code::kBadHeaderField},
      {"unknown_units",
       [](std::string s) { return replace_first(s, "UNITS counts", "UNITS gal"); },
       ParseError::Code::kBadUnits},
      {"duplicate_station",
       [](std::string s) {
         return replace_first(s, "COMPONENT l", "STATION SS99\nCOMPONENT l");
       },
       ParseError::Code::kDuplicateHeaderField},
      {"unknown_header_field",
       [](std::string s) {
         return replace_first(s, "UNITS counts", "FOO bar\nUNITS counts");
       },
       ParseError::Code::kBadHeaderField},
      {"processed_in_v1",
       [](std::string s) {
         return replace_first(s, "UNITS counts",
                              "UNITS counts\nPROCESSED demean");
       },
       ParseError::Code::kBadHeaderField},
      {"missing_data_marker",
       [](std::string s) { return s.substr(0, s.find("DATA\n")); },
       ParseError::Code::kMissingDataMarker},
      {"short_data_block_line_removed",
       [](std::string s) {
         // Drop the final partial data line (3 cells + newline): the
         // reader then hits END with samples still missing.
         const auto end_pos = s.find("END\n");
         EXPECT_NE(end_pos, std::string::npos);
         return s.erase(end_pos - 37, 37);
       },
       ParseError::Code::kShortDataBlock},
      {"truncated_mid_cell",
       [&](std::string s) { return s.substr(0, data_start(s) + 97 + 50); },
       ParseError::Code::kBadColumnWidth},
      {"truncated_at_line_boundary",
       [&](std::string s) { return s.substr(0, data_start(s) + 97); },
       ParseError::Code::kShortDataBlock},
      {"wrong_column_width",
       [&](std::string s) {
         return s.erase(data_start(s), 1);  // first data line one char short
       },
       ParseError::Code::kBadColumnWidth},
      {"nan_sample",
       [&](std::string s) {
         return s.replace(data_start(s), 12, "         nan");
       },
       ParseError::Code::kNonFiniteSample},
      {"inf_sample",
       [&](std::string s) {
         return s.replace(data_start(s), 12, "        -inf");
       },
       ParseError::Code::kNonFiniteSample},
      {"malformed_number",
       [&](std::string s) {
         return s.replace(data_start(s), 12, "  1.23x4e+00");
       },
       ParseError::Code::kMalformedNumber},
      {"blank_number_cell",
       [&](std::string s) {
         return s.replace(data_start(s), 12, "            ");
       },
       ParseError::Code::kMalformedNumber},
      {"excess_data",
       [&](std::string s) {
         return replace_first(s, "END\n", full_line + "\nEND\n");
       },
       ParseError::Code::kExcessData},
      {"missing_end_marker",
       [](std::string s) { return replace_first(s, "END\n", ""); },
       ParseError::Code::kMissingEndMarker},
      {"trailing_garbage",
       [](std::string s) { return s + "junk after the trailer\n"; },
       ParseError::Code::kTrailingGarbage},
      {"crlf_line_endings",
       [](std::string s) {
         std::string out;
         for (const char c : s) {
           if (c == '\n') out += '\r';
           out += c;
         }
         return out;
       },
       ParseError::Code::kCrlfLineEnding},
      {"non_ascii_byte",
       [&](std::string s) {
         s[data_start(s) + 3] = static_cast<char>(0xff);
         return s;
       },
       ParseError::Code::kNonAsciiByte},
      {"control_byte",
       [&](std::string s) {
         s[data_start(s) + 3] = '\x01';
         return s;
       },
       ParseError::Code::kNonAsciiByte},
  };

  for (const MalformedCase& c : kCases) {
    SCOPED_TRACE(c.name);
    auto result = read_v1(c.mutate(valid));
    ASSERT_FALSE(result.ok()) << "malformed record was accepted";
    EXPECT_EQ(result.error().code, c.expected)
        << "got " << result.error().to_string();
  }
}

TEST(V1Diagnostics, ByteOffsetsPointAtTheFault) {
  const std::string valid = write_v1(make_record(19));

  auto bad_magic = read_v1(replace_first(valid, "ACX-V1", "XXX-V1"));
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.error().byte_offset, 0u);
  EXPECT_EQ(bad_magic.error().line, 1u);

  // CRLF: offset of the first CR byte.
  std::string crlf = valid;
  const auto first_nl = crlf.find('\n');
  crlf.insert(first_nl, "\r");
  auto r = read_v1(crlf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ParseError::Code::kCrlfLineEnding);
  EXPECT_EQ(r.error().byte_offset, first_nl);

  // Malformed cell: offset of the cell, line of the data row.
  std::string bad_cell = valid;
  const auto cell_off = data_start(bad_cell) + 97;  // first cell, second row
  bad_cell.replace(cell_off, 12, "  1.23x4e+00");
  auto rc = read_v1(bad_cell);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ParseError::Code::kMalformedNumber);
  EXPECT_EQ(rc.error().byte_offset, cell_off);
  EXPECT_EQ(rc.error().line, 11u);  // magic + 7 header + DATA + row1 -> row2
}

// --- F / R spectral formats ----------------------------------------------

FRecord make_f_record(bool with_corners = true) {
  FRecord f;
  f.header.station = "SS01";
  f.header.component = "l";
  f.header.event_id = "EV06";
  f.header.date = "2019-07-07";
  f.header.dt = 0.005;
  f.nfft = 64;
  f.header.npts = f.nfft / 2 + 1;
  f.header.units = "cm/s";
  f.df = 1.0 / (static_cast<double>(f.nfft) * f.header.dt);
  f.window = "hann";
  f.has_corners = with_corners;
  if (with_corners) {
    f.fsl_hz = 0.4;
    f.fpl_hz = 24.5;
  }
  for (long k = 0; k < f.header.npts; ++k) {
    f.amplitude.push_back(0.25 + 0.01 * static_cast<double>(k % 11));
  }
  return f;
}

RRecord make_r_record() {
  RRecord r;
  r.header.station = "SS02";
  r.header.component = "t";
  r.header.event_id = "EV03";
  r.header.date = "2018-01-24";
  r.header.dt = 0.005;
  r.dampings = {0.0, 0.05, 0.20};
  r.periods = {0.02, 0.1, 1.0, 10.0};
  r.header.npts = static_cast<long>(r.periods.size());
  const std::size_t cells = r.dampings.size() * r.periods.size();
  for (std::size_t i = 0; i < cells; ++i) {
    r.sd.push_back(1.0 + 0.1 * static_cast<double>(i));
    r.sv.push_back(2.0 + 0.1 * static_cast<double>(i));
    r.sa.push_back(3.0 + 0.1 * static_cast<double>(i));
  }
  return r;
}

TEST(FFormat, WriterReaderRoundTrip) {
  const FRecord f = make_f_record();
  auto back = read_f(write_f(f));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  const FRecord& g = back.value();
  EXPECT_EQ(g.header.id(), f.header.id());
  EXPECT_EQ(g.header.units, "cm/s");
  EXPECT_EQ(g.nfft, f.nfft);
  EXPECT_EQ(g.window, f.window);
  EXPECT_NEAR(g.df, f.df, 1e-12);
  ASSERT_TRUE(g.has_corners);
  EXPECT_NEAR(g.fsl_hz, f.fsl_hz, 1e-9);
  EXPECT_NEAR(g.fpl_hz, f.fpl_hz, 1e-9);
  ASSERT_EQ(g.amplitude.size(), f.amplitude.size());
  for (std::size_t i = 0; i < g.amplitude.size(); ++i) {
    EXPECT_NEAR(g.amplitude[i], f.amplitude[i],
                1e-4 * std::fabs(f.amplitude[i]) + 1e-12);
  }
}

TEST(FFormat, CornerBlockIsOptionalButAllOrNothing) {
  const FRecord f = make_f_record(/*with_corners=*/false);
  const std::string text = write_f(f);
  EXPECT_EQ(text.find("FSL"), std::string::npos);
  auto back = read_f(text);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_FALSE(back.value().has_corners);

  // A lone FSL without FPL must be rejected as a partial corner block.
  const std::string partial = replace_first(
      write_f(make_f_record()), "FPL", "XPL");
  auto bad = read_f(partial);
  ASSERT_FALSE(bad.ok());
}

TEST(FFormat, RejectsInconsistentHeaders) {
  {
    // NPTS must equal NFFT/2 + 1.
    FRecord f = make_f_record();
    auto bad = read_f(replace_first(write_f(f), "NPTS 33", "NPTS 32"));
    ASSERT_FALSE(bad.ok());
  }
  {
    // DF must match 1 / (NFFT * DT).
    FRecord f = make_f_record();
    f.df *= 1.5;
    auto bad = read_f(write_f(f));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ParseError::Code::kBadValue);
  }
  {
    // Amplitudes are magnitudes: negative cells are corrupt.
    FRecord f = make_f_record();
    f.amplitude[3] = -1.0;
    auto bad = read_f(write_f(f));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ParseError::Code::kBadValue);
  }
  {
    // Wrong units for a FAS.
    auto bad = read_f(replace_first(write_f(make_f_record()),
                                    "UNITS cm/s", "UNITS cm/s2"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ParseError::Code::kBadUnits);
  }
  {
    // Unknown window name.
    auto bad = read_f(replace_first(write_f(make_f_record()),
                                    "WINDOW hann", "WINDOW tukey"));
    ASSERT_FALSE(bad.ok());
  }
}

TEST(FFormat, RejectsV1Magic) {
  auto bad = read_f(write_v1(make_record(8)));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ParseError::Code::kBadMagic);
}

TEST(RFormat, WriterReaderRoundTrip) {
  const RRecord r = make_r_record();
  auto back = read_r(write_r(r));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  const RRecord& s = back.value();
  EXPECT_EQ(s.header.id(), r.header.id());
  ASSERT_EQ(s.dampings.size(), r.dampings.size());
  ASSERT_EQ(s.periods.size(), r.periods.size());
  for (std::size_t d = 0; d < r.dampings.size(); ++d) {
    EXPECT_NEAR(s.dampings[d], r.dampings[d], 1e-9);
    for (std::size_t p = 0; p < r.periods.size(); ++p) {
      const std::size_t i = r.index(d, p);
      EXPECT_NEAR(s.sd[i], r.sd[i], 1e-4 * r.sd[i]);
      EXPECT_NEAR(s.sv[i], r.sv[i], 1e-4 * r.sv[i]);
      EXPECT_NEAR(s.sa[i], r.sa[i], 1e-4 * r.sa[i]);
    }
  }
}

TEST(RFormat, RejectsBadGrids) {
  {
    // Dampings must ascend.
    auto bad = read_r(replace_first(
        write_r(make_r_record()), "DAMPINGS", "DAMPINGS 9.000000e-01,"));
    ASSERT_FALSE(bad.ok());
  }
  {
    // Periods must ascend: swap breaks monotonicity via a doctored
    // record rather than text surgery on the fixed-column block.
    RRecord r = make_r_record();
    std::swap(r.periods[1], r.periods[2]);
    auto bad = read_r(write_r(r));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ParseError::Code::kBadValue);
  }
  {
    // Negative spectral ordinates are corrupt.
    RRecord r = make_r_record();
    r.sa[0] = -5.0;
    auto bad = read_r(write_r(r));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ParseError::Code::kBadValue);
  }
  {
    // Truncated data block.
    const std::string text = write_r(make_r_record());
    const auto end_pos = text.rfind("END");
    std::string truncated = text.substr(0, text.rfind('\n', end_pos - 2));
    truncated += "\nEND\n";
    auto bad = read_r(truncated);
    ASSERT_FALSE(bad.ok());
  }
}

TEST(RFormat, RejectsMissingDampings) {
  std::string text = write_r(make_r_record());
  const auto pos = text.find("DAMPINGS");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, text.find('\n', pos) - pos + 1);
  auto bad = read_r(text);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ParseError::Code::kMissingHeaderField);
}

}  // namespace
}  // namespace acx::formats
