// docs/SCHED.md is executable: its worked example (3 records x 4
// stages on P = 2) is rebuilt here verbatim and every number in the
// doc's two tables is asserted against analyze(). Work, span,
// makespan, and Brent bounds must match to exact double equality;
// speedups and shares to the doc's four printed decimals. If the
// simulator or the doc drifts, this suite names the row that moved.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "sched/analysis.hpp"
#include "util/fs.hpp"

#ifndef ACX_SOURCE_DIR
#error "test_sched_contract needs ACX_SOURCE_DIR pointing at the repo root"
#endif

namespace acx::sched {
namespace {

// The doc's miniature pipeline, transcribed.
CostModel worked_model() {
  CostModel model;
  model.source = "docs/SCHED.md worked example";
  auto add = [&](const char* id, double ingest, double audit, double filter,
                 double publish) {
    RecordCosts r;
    r.record = id;
    r.points = 100;
    r.stage_seconds = {{"ingest", ingest},
                      {"audit", audit},
                      {"filter", filter},
                      {"publish", publish}};
    model.records.push_back(std::move(r));
  };
  add("r1", 4, 2, 6, 3);
  add("r2", 3, 2, 5, 2);
  add("r3", 2, 2, 3, 1);
  return model;
}

std::vector<pipeline::StageShape> worked_shape() {
  return {
      {"ingest", {}, /*redundant=*/false, /*parallel_safe=*/true,
       /*sheddable=*/false},
      {"audit", {"ingest"}, true, true, false},
      {"filter", {"ingest"}, false, true, false},
      {"publish", {"filter"}, false, true, false},
  };
}

SchedModel worked_result() {
  AnalysisOptions opt;
  opt.procs = 2;
  opt.seed = 12450;
  auto res = analyze(worked_model(), worked_shape(), opt);
  EXPECT_TRUE(res.ok()) << (res.ok() ? "" : res.error());
  return std::move(res).take();
}

std::string read_doc() {
  RealFileSystem fs;
  auto doc = fs.read_file(std::filesystem::path(ACX_SOURCE_DIR) / "docs" /
                          "SCHED.md");
  EXPECT_TRUE(doc.ok()) << "docs/SCHED.md must exist";
  return doc.ok() ? doc.value() : std::string();
}

// Parse "| label | v1 | v2 | ... |" out of the doc's markdown tables.
// Returns the cells after the label of the first row whose first cell
// is exactly `label`.
bool find_table_row(const std::string& doc, const std::string& label,
                    std::vector<double>& cells) {
  std::size_t pos = 0;
  const std::string lead = "| " + label + " |";
  while ((pos = doc.find(lead, pos)) != std::string::npos) {
    if (pos != 0 && doc[pos - 1] != '\n') {
      ++pos;
      continue;
    }
    cells.clear();
    const char* s = doc.c_str() + pos + lead.size();
    while (*s && *s != '\n') {
      char* end = nullptr;
      const double value = std::strtod(s, &end);
      if (end == s) {
        ++s;
        continue;
      }
      cells.push_back(value);
      s = end;
    }
    return !cells.empty();
  }
  return false;
}

TEST(SchedContract, DriverTableMatchesDoc) {
  const std::string doc = read_doc();
  ASSERT_FALSE(doc.empty());
  const SchedModel result = worked_result();
  ASSERT_EQ(result.anchor, "seq");

  for (const char* name : {"seq", "seq-opt", "partial", "full"}) {
    const DriverModel* d = result.driver(name);
    ASSERT_NE(d, nullptr) << name;
    std::vector<double> cells;
    ASSERT_TRUE(find_table_row(doc, name, cells))
        << "docs/SCHED.md lacks a driver row for " << name;
    ASSERT_EQ(cells.size(), 6u) << name;
    // work, span, makespan, brent lo, brent hi: exact equality (the
    // doc prints them as exact decimals).
    EXPECT_EQ(d->work, cells[0]) << name << " work";
    EXPECT_EQ(d->span, cells[1]) << name << " span";
    EXPECT_EQ(d->makespan, cells[2]) << name << " makespan";
    EXPECT_EQ(d->brent_lower, cells[3]) << name << " brent lower";
    EXPECT_EQ(d->brent_upper, cells[4]) << name << " brent upper";
    // Speedup: the doc prints four decimals.
    EXPECT_NEAR(d->speedup, cells[5], 0.5e-4) << name << " speedup";
    // And the bounds themselves must hold.
    EXPECT_LE(d->brent_lower, d->makespan) << name;
    EXPECT_LE(d->makespan, d->brent_upper) << name;
  }
}

TEST(SchedContract, StageTableMatchesDoc) {
  const std::string doc = read_doc();
  ASSERT_FALSE(doc.empty());
  const SchedModel result = worked_result();

  ASSERT_EQ(result.stages.size(), 4u);
  for (const StageModel& s : result.stages) {
    std::vector<double> cells;
    ASSERT_TRUE(find_table_row(doc, s.stage, cells))
        << "docs/SCHED.md lacks a stage row for " << s.stage;
    ASSERT_EQ(cells.size(), 5u) << s.stage;
    EXPECT_EQ(static_cast<double>(s.tasks), cells[0]) << s.stage;
    EXPECT_EQ(s.seq_seconds, cells[1]) << s.stage << " seq seconds";
    EXPECT_NEAR(s.share, cells[2], 0.5e-4) << s.stage << " share";
    EXPECT_EQ(s.modeled_seconds, cells[3]) << s.stage << " modeled";
    EXPECT_NEAR(s.speedup, cells[4], 0.5e-4) << s.stage << " speedup";
  }
  EXPECT_TRUE(result.stages[1].redundant);  // audit
}

TEST(SchedContract, WorkedExampleIsSeedInsensitive) {
  // The doc promises no critical-path ties arise, so any seed must
  // produce the same makespans.
  AnalysisOptions opt;
  opt.procs = 2;
  const SchedModel base = worked_result();
  for (const std::uint64_t seed : {1ull, 42ull, 999999937ull}) {
    opt.seed = seed;
    auto res = analyze(worked_model(), worked_shape(), opt);
    ASSERT_TRUE(res.ok());
    for (const DriverModel& d : res.value().drivers) {
      const DriverModel* ref = base.driver(d.driver);
      ASSERT_NE(ref, nullptr);
      EXPECT_EQ(d.makespan, ref->makespan) << d.driver << " seed " << seed;
    }
  }
}

TEST(SchedContract, JsonIsByteStableAndCarriesDocumentedKeys) {
  const SchedModel result = worked_result();
  const std::string a = result.to_json().dump(2);
  const std::string b = worked_result().to_json().dump(2);
  EXPECT_EQ(a, b);
  for (const char* key :
       {"\"version\"", "\"tool\"", "\"procs\"", "\"seed\"",
        "\"response_split\"", "\"anchor\"", "\"source\"", "\"records\"",
        "\"points\"", "\"excluded\"", "\"flagged\"", "\"measured\"",
        "\"drivers\"", "\"work\"", "\"span\"", "\"makespan\"",
        "\"brent_lower\"", "\"brent_upper\"", "\"speedup\"", "\"stages\"",
        "\"share\"", "\"modeled_seconds\"", "\"sweep\""}) {
    EXPECT_NE(a.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace acx::sched
