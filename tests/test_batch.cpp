// The multi-event batch layer: bounded-queue admission, the two-axis
// scheduler, per-event deadline budgets (soft shed / hard stop),
// graceful degradation to `degraded` status, checkpoint/resume via the
// journal, and the kill-and-resume crash contract (spawning the real
// acx_batch binary and killing it mid-batch).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"

#include "test_helpers.hpp"
#include "util/bounded_queue.hpp"
#include "util/breaker.hpp"
#include "util/faultfs.hpp"

namespace acx::pipeline {
namespace {

namespace stdfs = std::filesystem;

BatchConfig batch_config() {
  BatchConfig cfg;
  cfg.runner.sleep = [](int) {};
  return cfg;
}

void build_event(FileSystem& fs, const stdfs::path& dir, int n_files) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, dir, spec, scfg).ok());
}

// Reads one event's run report back out of the batch work tree.
RunReport event_report(FileSystem& fs, const BatchReport& batch,
                       const std::string& event) {
  for (const EventOutcome& e : batch.events) {
    if (e.event != event) continue;
    auto text = fs.read_file(stdfs::path(e.work_dir) / kRunReportFileName);
    EXPECT_TRUE(text.ok());
    auto parsed = RunReport::from_json_text(text.ok() ? text.value() : "{}");
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error());
    if (parsed.ok()) return std::move(parsed).take();
  }
  ADD_FAILURE() << "event '" << event << "' not in the batch report";
  return RunReport{};
}

TEST(BoundedQueue, PopsByPriorityWithFifoTieBreak) {
  struct Item {
    int priority;
    int seq;
  };
  auto less = [](const Item& a, const Item& b) {
    return a.priority < b.priority;
  };
  BoundedPriorityQueue<Item, decltype(less)> q(8, less);
  ASSERT_EQ(q.push({1, 0}), QueuePushResult::kAccepted);
  ASSERT_EQ(q.push({3, 1}), QueuePushResult::kAccepted);
  ASSERT_EQ(q.push({1, 2}), QueuePushResult::kAccepted);
  ASSERT_EQ(q.push({3, 3}), QueuePushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.push({9, 4}), QueuePushResult::kClosed)
      << "closed queue must refuse pushes with the typed result";

  std::vector<int> seqs;
  while (auto item = q.pop()) seqs.push_back(item->seq);
  // Highest priority first; equal priorities drain in push order.
  EXPECT_EQ(seqs, (std::vector<int>{1, 3, 0, 2}));
  EXPECT_FALSE(q.pop().has_value()) << "drained closed queue reports end";
}

TEST(BoundedQueue, PushBlocksAtCapacityUntilAConsumerPops) {
  auto less = [](int, int) { return false; };
  BoundedPriorityQueue<int, decltype(less)> q(2, less);

  int popped = 0;
  std::thread consumer([&] {
    while (q.pop()) ++popped;
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(q.push(i), QueuePushResult::kAccepted);
    // push() only returns once admitted, so the producer can never
    // observe more than `capacity` queued elements.
    ASSERT_LE(q.size(), 2u) << "producer ran ahead of the capacity bound";
  }
  q.close();
  consumer.join();
  EXPECT_EQ(popped, 50);
}

TEST(BoundedQueue, CloseWakesProducersBlockedOnAFullQueueWithTypedResult) {
  // The service-shutdown seam: producers stuck in push() on a full
  // queue must be woken by close() and told kClosed — not hang, not
  // have their element silently admitted. Runs under the TSan CI leg.
  auto less = [](int, int) { return false; };
  BoundedPriorityQueue<int, decltype(less)> q(1, less);
  ASSERT_EQ(q.push(0), QueuePushResult::kAccepted);  // queue now full

  constexpr int kProducers = 4;
  std::atomic<int> closed_results{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      if (q.push(100 + p) == QueuePushResult::kClosed) {
        closed_results.fetch_add(1);
      }
    });
  }
  // Give the producers time to reach the blocked wait (best effort; the
  // assertion holds either way — close() must wake both the blocked
  // and the not-yet-blocked).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(q.size(), 1u) << "every producer must be blocked, not admitted";

  q.close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(closed_results.load(), kProducers)
      << "every blocked producer must observe the typed shutdown result";

  // close() drains: the element admitted before the close survives.
  auto survivor = q.pop();
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(*survivor, 0);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ConcurrentCloseRaceNeverHangsOrDuplicates) {
  // Stress the close()/push()/pop() triple under the race detector:
  // whatever interleaving, accepted elements are popped exactly once
  // and refused elements not at all.
  auto less = [](int, int) { return false; };
  for (int round = 0; round < 20; ++round) {
    BoundedPriorityQueue<int, decltype(less)> q(2, less);
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 10; ++i) {
          if (q.push(p * 10 + i) == QueuePushResult::kClosed) return;
          accepted.fetch_add(1);
        }
      });
    }
    std::atomic<int> popped{0};
    std::thread consumer([&] {
      while (q.pop()) popped.fetch_add(1);
    });
    if (round % 2 == 0) std::this_thread::yield();
    q.close();
    for (std::thread& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(popped.load(), accepted.load()) << "round " << round;
  }
}

TEST(Batch, RunsEveryEventAndWritesAValidatingBatchReport) {
  test::TempDir tmp("batch");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  for (const char* ev : {"ev1", "ev2", "ev3", "ev4", "ev5"}) {
    build_event(fs, input / ev, 3);
  }

  BatchConfig cfg = batch_config();
  cfg.event_workers = 3;
  cfg.queue_capacity = 2;  // exercises backpressure on the producer
  cfg.shards = 4;
  auto run = BatchRunner(fs, cfg).run(input, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const BatchReport& report = run.value();

  ASSERT_EQ(report.events.size(), 5u);
  EXPECT_EQ(report.count_status("ok"), 5);
  EXPECT_EQ(report.count_resumed(), 0);
  EXPECT_GT(report.records_per_second, 0);
  EXPECT_GT(report.points_per_second, 0);
  for (const EventOutcome& e : report.events) {
    EXPECT_EQ(e.records_ok, 3) << e.event;
    EXPECT_GT(e.points, 0) << e.event;
    EXPECT_TRUE(validate_workdir(fs, e.work_dir).clean()) << e.event;
    EXPECT_TRUE(fs.exists(work / "journal" / (e.event + ".json"))) << e.event;
  }

  // The written batch report round-trips through the strict reader.
  auto text = fs.read_file(work / kBatchReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = BatchReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().count_status("ok"), 5);
}

TEST(Batch, ResumeSkipsJournaledEventsAndKeepsReportsByteIdentical) {
  test::TempDir tmp("batch");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  for (const char* ev : {"ev1", "ev2", "ev3"}) build_event(fs, input / ev, 3);

  const BatchConfig cfg = batch_config();
  auto first = BatchRunner(fs, cfg).run(input, work);
  ASSERT_TRUE(first.ok());

  std::vector<std::string> canonical;
  for (const char* ev : {"ev1", "ev2", "ev3"}) {
    canonical.push_back(event_report(fs, first.value(), ev).canonical_dump());
  }

  // Invalidate ev2's journal: a rerun must reprocess exactly that event.
  ASSERT_TRUE(fs.remove_all(work / "journal" / "ev2.json").ok());
  auto second = BatchRunner(fs, cfg).run(input, work);
  ASSERT_TRUE(second.ok());
  for (const EventOutcome& e : second.value().events) {
    EXPECT_EQ(e.resumed, e.event != "ev2") << e.event;
    EXPECT_EQ(e.status, "ok") << e.event;
  }

  // Completed events keep byte-identical canonical projections across
  // the resume cycle — resumed or reprocessed alike.
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string ev = "ev" + std::to_string(i + 1);
    EXPECT_EQ(event_report(fs, second.value(), ev).canonical_dump(),
              canonical[i])
        << ev;
  }

  // A third run resumes everything: zero fresh work, zero throughput.
  auto third = BatchRunner(fs, cfg).run(input, work);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().count_resumed(), 3);
  EXPECT_EQ(third.value().records_per_second, 0);
}

TEST(Batch, LargestFirstPriorityClaimsBiggestEventFirst) {
  test::TempDir tmp("batch");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_event(fs, input / "small", 2);
  build_event(fs, input / "big", 8);

  BatchConfig cfg = batch_config();
  cfg.priority = BatchConfig::Priority::kLargest;
  auto run = BatchRunner(fs, cfg).run(input, tmp.path() / "work");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().priority, "largest");
  EXPECT_EQ(run.value().count_status("ok"), 2);
}

TEST(Deadline, SoftExpiryShedsEnrichmentStagesAndPublishesDegraded) {
  test::TempDir tmp("deadline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 4);

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.driver = Driver::kSequentialOptimized;  // prunes fas_preview
  cfg.deadline.soft_seconds = 0.5;
  // Manual clock: already past the soft budget (but far from any hard
  // one) when the first stage polls it.
  double t = 0;
  cfg.now = [&t] { return t += 1.0; };

  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  EXPECT_STREQ(report.status(), "degraded");
  EXPECT_EQ(report.count_ok(), 4);
  EXPECT_EQ(report.count_degraded(), 4);
  EXPECT_GT(report.total_points(), 0) << "degraded records still publish";
  // Each record shed exactly its two enrichment stages.
  EXPECT_EQ(report.deadline_soft_sheds(), 8);
  for (const RecordOutcome& r : report.records) {
    ASSERT_EQ(r.shed.size(), 2u) << r.record;
    EXPECT_EQ(r.shed[0].stage, "fourier");
    EXPECT_EQ(r.shed[1].stage, "response");
    EXPECT_EQ(r.shed[0].reason, "batch.deadline_soft");
    // The essential V2 must still be there; the spectra must not.
    EXPECT_TRUE(fs.exists(r.output)) << r.record;
    ASSERT_EQ(r.outputs.size(), 1u) << r.record;
  }
  EXPECT_TRUE(validate_workdir(fs, work).clean());

  // The v6 deadline block round-trips.
  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().deadline_soft_seconds, 0.5);
  EXPECT_EQ(parsed.value().deadline_soft_sheds(), 8);
}

TEST(Deadline, HardExpiryStopsTheEventWithTypedQuarantines) {
  test::TempDir tmp("deadline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 3);

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.deadline.hard_seconds = 0.5;
  double t = 0;
  cfg.now = [&t] { return t += 1.0; };  // expired at the first poll

  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  EXPECT_STREQ(report.status(), "quarantined");
  EXPECT_EQ(report.count_quarantined(), 3);
  EXPECT_EQ(report.deadline_hard_stops(), 3);
  for (const RecordOutcome& r : report.records) {
    EXPECT_EQ(r.reason, "batch.deadline_hard") << r.record;
  }
  // Typed, registered reason: the audit still comes back clean.
  EXPECT_TRUE(validate_workdir(fs, work).clean());
}

TEST(Deadline, RetryBackoffRespectsTheRemainingHardBudget) {
  test::TempDir tmp("deadline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 1);

  // Every rename into out/ fails; without a deadline the executor would
  // sleep through the full backoff schedule (10+20+40ms) for each of
  // the three publishing stages.
  faultfs::FaultConfig faults;
  faults.path_filter = "/out/";
  faults.rename_fail_first_n = 1000;
  faultfs::FaultyFileSystem flaky(fs, faults);

  RunnerConfig cfg;
  cfg.driver = Driver::kSequentialOptimized;
  cfg.retry.jitter_fraction = 0;  // exact schedule: 10, 20, 40ms
  int slept_ms = 0;
  cfg.sleep = [&slept_ms](int ms) { slept_ms += ms; };
  // 25ms of hard budget, on a clock that only moves while sleeping.
  // fourier sleeps 10ms (its 20ms backoff is vetoed, remaining = 15ms),
  // response sleeps the remaining-budget-sized 10ms (20ms vetoed again),
  // and write_v2's very first 10ms backoff no longer fits (5ms left).
  cfg.deadline.hard_seconds = 0.025;
  cfg.now = [&slept_ms] { return slept_ms / 1000.0; };

  auto run = run_pipeline(flaky, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(slept_ms, 20) << "backoffs beyond the budget must be vetoed";
  EXPECT_EQ(run.value().count_quarantined(), 1);
}

TEST(Degradation, StorageFailureOnSheddableStageDegradesInsteadOfQuarantine) {
  test::TempDir tmp("degrade");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 4);

  // Every write of an .f artifact fails — the fourier stage cannot
  // publish, but it is sheddable, so records degrade instead of dying.
  faultfs::FaultConfig faults;
  faults.path_filter = ".f";
  faults.write_fail_first_n = 100000;
  faultfs::FaultyFileSystem flaky(fs, faults);

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.driver = Driver::kSequentialOptimized;
  auto run = run_pipeline(flaky, input, work, cfg);
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  EXPECT_STREQ(report.status(), "degraded");
  EXPECT_EQ(report.count_ok(), 4);
  EXPECT_EQ(report.count_degraded(), 4);
  for (const RecordOutcome& r : report.records) {
    ASSERT_EQ(r.shed.size(), 1u) << r.record;
    EXPECT_EQ(r.shed[0].stage, "fourier");
    EXPECT_EQ(r.shed[0].reason, "transient_exhausted.io.injected_write_fault");
    // V2 and R published, F legitimately absent.
    EXPECT_EQ(r.outputs.size(), 2u) << r.record;
  }
  EXPECT_TRUE(validate_workdir(fs, work).clean());
}

TEST(Degradation, NumericalPoisonOnSheddableStageStillQuarantines) {
  test::TempDir tmp("degrade");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 3);

  // A poison stage_fault on a sheddable stage is the record's own data
  // being bad, not infrastructure — no forgiveness.
  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.driver = Driver::kSequentialOptimized;
  cfg.stage_fault.stage = "response";
  cfg.stage_fault.kill_on_invocation = 2;

  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().count_quarantined(), 1);
  EXPECT_EQ(run.value().count_degraded(), 0);
  EXPECT_TRUE(validate_workdir(fs, work).clean());
}

// A FileSystem wrapper that rejects matching writes the way an open
// circuit breaker would — deterministic stand-in for the timing-driven
// open window.
class RejectWrites final : public FileSystem {
 public:
  RejectWrites(FileSystem& inner, std::string substring)
      : inner_(inner), substring_(std::move(substring)) {}

  Result<std::string, IoError> read_file(const stdfs::path& p) override {
    return inner_.read_file(p);
  }
  Result<Unit, IoError> write_file(const stdfs::path& p,
                                   std::string_view content) override {
    if (p.string().find(substring_) != std::string::npos) {
      return IoError{IoError::Code::kCircuitOpen, ErrorClass::kTransient,
                     p.string(), "storage circuit breaker is open"};
    }
    return inner_.write_file(p, content);
  }
  Result<Unit, IoError> rename(const stdfs::path& a,
                               const stdfs::path& b) override {
    return inner_.rename(a, b);
  }
  Result<Unit, IoError> create_directories(const stdfs::path& p) override {
    return inner_.create_directories(p);
  }
  Result<std::vector<stdfs::path>, IoError> list_dir(
      const stdfs::path& d) override {
    return inner_.list_dir(d);
  }
  Result<std::vector<stdfs::path>, IoError> list_tree(
      const stdfs::path& d) override {
    return inner_.list_tree(d);
  }
  Result<Unit, IoError> remove_all(const stdfs::path& p) override {
    return inner_.remove_all(p);
  }
  bool exists(const stdfs::path& p) override { return inner_.exists(p); }
  std::uintmax_t file_size(const stdfs::path& p) override {
    return inner_.file_size(p);
  }

 private:
  FileSystem& inner_;
  std::string substring_;
};

TEST(Degradation, CircuitOpenRejectionsShedWithTheStorageReason) {
  test::TempDir tmp("degrade");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 2);

  RejectWrites rejecting(fs, ".f");  // fourier spectra hit the open breaker
  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.driver = Driver::kSequentialOptimized;
  auto run = run_pipeline(rejecting, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().count_degraded(), 2);
  for (const RecordOutcome& r : run.value().records) {
    ASSERT_EQ(r.shed.size(), 1u);
    EXPECT_EQ(r.shed[0].stage, "fourier");
    EXPECT_EQ(r.shed[0].reason, "transient_exhausted.storage.circuit_open");
  }
  EXPECT_TRUE(validate_workdir(fs, work).clean());
}

TEST(Breaker, OpensAndRecoversAcrossARunAndLandsInTheReport) {
  test::TempDir tmp("breaker");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 3);

  // The first six reads of input records fail: the breaker trips, then
  // (open_seconds = 0 → immediate half-open probes) recovers as soon as
  // the backend heals.
  faultfs::FaultConfig faults;
  faults.path_filter = "/input/";
  faults.read_fail_first_n = 6;
  faultfs::FaultyFileSystem flaky(fs, faults);

  storage::BreakerConfig bcfg;
  bcfg.failure_threshold = 2;
  bcfg.open_seconds = 0;
  bcfg.half_open_probes = 1;
  storage::CircuitBreaker breaker(bcfg);
  storage::BreakerFileSystem guarded(flaky, breaker);

  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.retry.max_attempts = 8;  // enough to ride through the fault window
  cfg.breaker = &breaker;
  auto run = run_pipeline(guarded, input, work, cfg);
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  EXPECT_EQ(report.count_ok(), 3) << "breaker + retries ride out the outage";
  EXPECT_GE(report.breaker_opens, 1);
  EXPECT_GE(report.breaker_half_open_recoveries, 1);
  EXPECT_TRUE(validate_workdir(fs, work).clean());

  // The counters round-trip through the v6 schema.
  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().breaker_opens, report.breaker_opens);
  EXPECT_EQ(parsed.value().breaker_half_open_recoveries,
            report.breaker_half_open_recoveries);
}

TEST(Batch, DeadlinePressureDegradesEveryEventInTheBatchReport) {
  test::TempDir tmp("batch");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  for (const char* ev : {"ev1", "ev2"}) build_event(fs, input / ev, 2);

  BatchConfig cfg = batch_config();
  cfg.runner.driver = Driver::kSequentialOptimized;
  cfg.runner.deadline.soft_seconds = 0.5;
  double t = 0;
  cfg.runner.now = [&t] { return t += 1.0; };

  auto run = BatchRunner(fs, cfg).run(input, work);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().count_status("degraded"), 2);
  for (const EventOutcome& e : run.value().events) {
    EXPECT_EQ(e.records_degraded, 2) << e.event;
    EXPECT_GT(e.points, 0) << e.event;
  }
}

// --- Kill-and-resume: the crash contract, against the real binary ------

#ifdef ACX_BATCH_TOOL
int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(ACX_BATCH_TOOL) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(KillResume, MidBatchProcessDeathResumesWithByteIdenticalReports) {
  test::TempDir tmp("killresume");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  // Event sizes stagger the kill: ev_a (2 records) completes and
  // journals; ev_b (4 records) draws the 3rd write_v2 invocation of its
  // own run and dies mid-event.
  build_event(fs, input / "ev_a", 2);
  build_event(fs, input / "ev_b", 4);
  build_event(fs, input / "ev_c", 3);

  const std::string common = "--input " + input.string() +
                             " --driver seq --event-workers 1 --shards 1 "
                             "--priority fifo";
  const auto work = tmp.path() / "work";
  const auto baseline_work = tmp.path() / "work-clean";

  // Fault-free reference run into its own work root.
  ASSERT_EQ(run_tool(common + " --work " + baseline_work.string()), 0);

  // Crash run: the process dies (exit 137, no journal for ev_b/ev_c).
  ASSERT_EQ(run_tool(common + " --work " + work.string() +
                     " --kill-stage write_v2 --kill-on 3"),
            137);
  EXPECT_TRUE(fs.exists(work / "journal" / "ev_a.json"));
  EXPECT_FALSE(fs.exists(work / "journal" / "ev_b.json"));
  EXPECT_FALSE(fs.exists(work / kBatchReportFileName));

  // Resume: ev_a is skipped off its journal, the survivors reprocess.
  ASSERT_EQ(run_tool(common + " --work " + work.string()), 0);
  auto text = fs.read_file(work / kBatchReportFileName);
  ASSERT_TRUE(text.ok());
  auto report = BatchReport::from_json_text(text.value());
  ASSERT_TRUE(report.ok()) << report.error();
  ASSERT_EQ(report.value().events.size(), 3u);
  EXPECT_EQ(report.value().count_status("ok"), 3) << "no event may be lost";
  EXPECT_EQ(report.value().count_resumed(), 1);
  for (const EventOutcome& e : report.value().events) {
    EXPECT_EQ(e.resumed, e.event == "ev_a") << e.event;
  }

  // Every event's canonical report is byte-identical to the fault-free
  // run — resumed and reprocessed alike.
  for (const char* ev : {"ev_a", "ev_b", "ev_c"}) {
    const stdfs::path rel = stdfs::path("events") / "s0" / ev /
                            kRunReportFileName;
    auto crashed = fs.read_file(work / rel);
    auto clean = fs.read_file(baseline_work / rel);
    ASSERT_TRUE(crashed.ok() && clean.ok()) << ev;
    auto a = RunReport::from_json_text(crashed.value());
    auto b = RunReport::from_json_text(clean.value());
    ASSERT_TRUE(a.ok() && b.ok()) << ev;
    EXPECT_EQ(a.value().canonical_dump(), b.value().canonical_dump()) << ev;
  }
}
// The acceptance storm: modeled latency + 10% seeded op faults + a
// mid-batch kill, then a resume under the same fault model. No event
// may be lost — each ends ok/degraded/quarantined with typed reasons —
// and any event that ends ok must be canonically byte-identical to the
// fault-free run. Everything is seeded, so outcomes are deterministic.
TEST(KillResume, SeededFaultStormLosesNoEventsAndKeepsOkReportsCanonical) {
  test::TempDir tmp("storm");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_event(fs, input / "ev_a", 2);
  build_event(fs, input / "ev_b", 4);
  build_event(fs, input / "ev_c", 3);

  const std::string common = "--input " + input.string() +
                             " --driver seq --event-workers 1 --shards 1 "
                             "--priority fifo";
  const std::string storm =
      " --storage-latency-ms 1 --storage-jitter-ms 1"
      " --storage-fail-p 0.1 --storage-seed 40 --max-retries 8"
      " --breaker-threshold 2 --breaker-open-s 0 --breaker-probes 1"
      " --jitter-seed 5";
  const auto work = tmp.path() / "work";
  const auto baseline_work = tmp.path() / "work-clean";

  ASSERT_EQ(run_tool(common + " --work " + baseline_work.string()), 0);

  ASSERT_EQ(run_tool(common + storm + " --work " + work.string() +
                     " --kill-stage write_v2 --kill-on 3"),
            137);
  EXPECT_FALSE(fs.exists(work / kBatchReportFileName));

  const int exit = run_tool(common + storm + " --work " + work.string());
  EXPECT_TRUE(exit == 0 || exit == 3) << "resume exit " << exit;
  auto text = fs.read_file(work / kBatchReportFileName);
  ASSERT_TRUE(text.ok());
  auto report = BatchReport::from_json_text(text.value());
  ASSERT_TRUE(report.ok()) << report.error();
  const BatchReport& batch = report.value();

  ASSERT_EQ(batch.events.size(), 3u) << "an event was lost";
  for (const EventOutcome& e : batch.events) {
    EXPECT_TRUE(e.status == "ok" || e.status == "degraded" ||
                e.status == "quarantined")
        << e.event << ": " << e.status;
  }
  // 10% faults against a 2-consecutive-failure threshold trip the
  // breaker at least once, and the zero-cooldown probe recovers it.
  EXPECT_GE(batch.breaker_opens, 1);
  EXPECT_GE(batch.breaker_half_open_recoveries, 1);

  // Whatever survived as "ok" must be indistinguishable from a run
  // that never saw a fault.
  int ok_events = 0;
  for (const EventOutcome& e : batch.events) {
    if (e.status != "ok") continue;
    ++ok_events;
    const stdfs::path rel = stdfs::path("events") / "s0" / e.event /
                            kRunReportFileName;
    auto stormy = fs.read_file(work / rel);
    auto clean = fs.read_file(baseline_work / rel);
    ASSERT_TRUE(stormy.ok() && clean.ok()) << e.event;
    auto a = RunReport::from_json_text(stormy.value());
    auto b = RunReport::from_json_text(clean.value());
    ASSERT_TRUE(a.ok() && b.ok()) << e.event;
    EXPECT_EQ(a.value().canonical_dump(), b.value().canonical_dump())
        << e.event;
  }
  EXPECT_GE(ok_events, 1) << "the storm should not wipe out every event";
}
#endif  // ACX_BATCH_TOOL

}  // namespace
}  // namespace acx::pipeline
