#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/faultfs.hpp"
#include "util/fs.hpp"

namespace acx {
namespace {

using faultfs::FaultConfig;
using faultfs::FaultyFileSystem;

TEST(FaultFs, FailFirstNWritesThenSucceeds) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.write_fail_first_n = 2;
  FaultyFileSystem fs(real, cfg);

  const auto path = tmp.path() / "f.txt";
  auto w1 = fs.write_file(path, "x");
  auto w2 = fs.write_file(path, "x");
  auto w3 = fs.write_file(path, "x");
  EXPECT_FALSE(w1.ok());
  EXPECT_EQ(w1.error().code, IoError::Code::kInjectedWriteFault);
  EXPECT_EQ(w1.error().klass, ErrorClass::kTransient);
  EXPECT_FALSE(w2.ok());
  EXPECT_TRUE(w3.ok());
  EXPECT_EQ(fs.stats().injected_write_faults, 2);
}

TEST(FaultFs, TornWriteLeavesHalfTheBytes) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.write_fail_first_n = 1;
  cfg.torn_writes = true;
  FaultyFileSystem fs(real, cfg);

  const auto path = tmp.path() / "torn.txt";
  EXPECT_FALSE(fs.write_file(path, "0123456789").ok());
  auto read = real.read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "01234");  // the torn half really landed
}

TEST(FaultFs, RenameFaultsRespectPathFilter) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.rename_fail_first_n = 100;  // would fail everything...
  cfg.path_filter = "/only-this/";  // ...but only under this path
  FaultyFileSystem fs(real, cfg);

  const auto a = tmp.path() / "a.txt";
  const auto b = tmp.path() / "b.txt";
  ASSERT_TRUE(real.write_file(a, "x").ok());
  EXPECT_TRUE(fs.rename(a, b).ok());  // filter does not match -> no fault

  ASSERT_TRUE(real.create_directories(tmp.path() / "only-this").ok());
  const auto c = tmp.path() / "only-this" / "c.txt";
  auto r = fs.rename(b, c);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, IoError::Code::kInjectedRenameFault);
}

TEST(FaultFs, ProbabilisticFaultsAreSeedDeterministic) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  auto run_sequence = [&](std::uint64_t seed) {
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.write_fail_p = 0.5;
    cfg.torn_writes = false;
    FaultyFileSystem fs(real, cfg);
    std::vector<bool> outcomes;
    for (int i = 0; i < 32; ++i) {
      outcomes.push_back(
          fs.write_file(tmp.path() / "p.txt", "x").ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run_sequence(7), run_sequence(7));
  EXPECT_NE(run_sequence(7), run_sequence(8));
}

TEST(FaultFs, AtomicWriteCleansUpAfterInjectedRenameFault) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.rename_fail_first_n = 1;
  FaultyFileSystem fs(real, cfg);

  const auto dest = tmp.path() / "out.v2";
  auto w = atomic_write_file(fs, dest, "content");
  EXPECT_FALSE(w.ok());
  // Neither the destination nor any temporary may exist afterwards.
  auto files = real.list_dir(tmp.path());
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files.value().empty());
}

TEST(FaultFs, AtomicWriteCleansUpAfterTornWriteFault) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.write_fail_first_n = 1;
  cfg.torn_writes = true;
  FaultyFileSystem fs(real, cfg);

  EXPECT_FALSE(atomic_write_file(fs, tmp.path() / "out.v2", "content").ok());
  auto files = real.list_dir(tmp.path());
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files.value().empty());
}

TEST(FaultFs, FlipBytesIsDeterministic) {
  test::TempDir tmp("faultfs");
  RealFileSystem fs;
  const auto a = tmp.path() / "a.bin";
  const auto b = tmp.path() / "b.bin";
  const std::string original(256, 'A');
  ASSERT_TRUE(fs.write_file(a, original).ok());
  ASSERT_TRUE(fs.write_file(b, original).ok());

  ASSERT_TRUE(faultfs::flip_bytes(fs, a, 5, 99).ok());
  ASSERT_TRUE(faultfs::flip_bytes(fs, b, 5, 99).ok());
  auto ra = fs.read_file(a);
  auto rb = fs.read_file(b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value(), rb.value());
  EXPECT_NE(ra.value(), original);
  EXPECT_EQ(ra.value().size(), original.size());
}

TEST(FaultFs, FailFirstNMkdirsThenSucceeds) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  FaultConfig cfg;
  cfg.mkdir_fail_first_n = 2;
  FaultyFileSystem fs(real, cfg);

  const auto dir = tmp.path() / "a" / "b";
  auto m1 = fs.create_directories(dir);
  auto m2 = fs.create_directories(dir);
  auto m3 = fs.create_directories(dir);
  EXPECT_FALSE(m1.ok());
  EXPECT_EQ(m1.error().code, IoError::Code::kInjectedMkdirFault);
  EXPECT_EQ(m1.error().klass, ErrorClass::kTransient);
  EXPECT_FALSE(m2.ok());
  EXPECT_TRUE(m3.ok());
  EXPECT_TRUE(real.exists(dir));
  EXPECT_EQ(fs.stats().injected_mkdir_faults, 2);
}

TEST(FaultFs, ListAndRemoveFaultsAreInjectedAndFiltered) {
  test::TempDir tmp("faultfs");
  RealFileSystem real;
  ASSERT_TRUE(real.create_directories(tmp.path() / "victim").ok());
  ASSERT_TRUE(real.write_file(tmp.path() / "victim" / "f.txt", "x").ok());

  FaultConfig cfg;
  cfg.list_fail_first_n = 1;
  cfg.remove_fail_first_n = 1;
  cfg.path_filter = "/victim";
  FaultyFileSystem fs(real, cfg);

  // The filter protects other paths entirely.
  EXPECT_TRUE(fs.list_dir(tmp.path()).ok());
  EXPECT_TRUE(fs.remove_all(tmp.path() / "not-there").ok());

  auto l1 = fs.list_dir(tmp.path() / "victim");
  ASSERT_FALSE(l1.ok());
  EXPECT_EQ(l1.error().code, IoError::Code::kInjectedListFault);
  EXPECT_EQ(l1.error().klass, ErrorClass::kTransient);
  EXPECT_TRUE(fs.list_dir(tmp.path() / "victim").ok());

  auto r1 = fs.remove_all(tmp.path() / "victim");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, IoError::Code::kInjectedRemoveFault);
  EXPECT_TRUE(real.exists(tmp.path() / "victim"));  // fault really blocked it
  EXPECT_TRUE(fs.remove_all(tmp.path() / "victim").ok());
  EXPECT_FALSE(real.exists(tmp.path() / "victim"));

  EXPECT_EQ(fs.stats().injected_list_faults, 1);
  EXPECT_EQ(fs.stats().injected_remove_faults, 1);
  EXPECT_EQ(fs.stats().total(), 2);
}

TEST(FaultFs, TruncateKeepsExactFraction) {
  test::TempDir tmp("faultfs");
  RealFileSystem fs;
  const auto path = tmp.path() / "t.bin";
  ASSERT_TRUE(fs.write_file(path, std::string(1000, 'x')).ok());
  ASSERT_TRUE(faultfs::truncate_file(fs, path, 0.37).ok());
  auto read = fs.read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 370u);
}

}  // namespace
}  // namespace acx
