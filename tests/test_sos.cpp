// Butterworth SOS band-pass (docs/SIGNAL.md, "Butterworth SOS
// band-pass"): bilinear design validation, frequency response at the
// normalization point and in the stop bands, stability of every
// section, zero-phase behaviour of filtfilt_sos, and the error
// taxonomy of the ObsPy-parity path.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <numbers>
#include <vector>

#include "signal/sos.hpp"

namespace acx::signal {
namespace {

constexpr double kPi = std::numbers::pi;

// |H(e^{i 2 pi f dt})| of the cascade.
double cascade_gain(const std::vector<Biquad>& sos, double f, double dt) {
  const std::complex<double> z =
      std::exp(std::complex<double>(0.0, -2.0 * kPi * f * dt));
  std::complex<double> h{1.0, 0.0};
  for (const Biquad& s : sos) {
    h *= (s.b0 + s.b1 * z + s.b2 * z * z) /
         (1.0 + s.a1 * z + s.a2 * z * z);
  }
  return std::abs(h);
}

// --- Design --------------------------------------------------------------

TEST(Sos, DesignRejectsBadParameters) {
  const ButterworthSpec ok{0.5, 25.0, 4};
  EXPECT_EQ(design_butterworth_bandpass(ok, 0.0).error().code,
            SignalError::Code::kBadSamplingInterval);
  EXPECT_EQ(design_butterworth_bandpass(ok, -0.01).error().code,
            SignalError::Code::kBadSamplingInterval);
  EXPECT_EQ(design_butterworth_bandpass({0.0, 25.0, 4}, 0.005).error().code,
            SignalError::Code::kBadCorners);
  EXPECT_EQ(design_butterworth_bandpass({25.0, 0.5, 4}, 0.005).error().code,
            SignalError::Code::kBadCorners);
  EXPECT_EQ(design_butterworth_bandpass({0.5, 100.0, 4}, 0.005).error().code,
            SignalError::Code::kBadCorners);  // >= Nyquist (100 Hz at dt 5ms)
  EXPECT_EQ(design_butterworth_bandpass({0.5, 25.0, 0}, 0.005).error().code,
            SignalError::Code::kBadTaps);
  EXPECT_EQ(
      design_butterworth_bandpass({0.5, 25.0, kMaxSosOrder + 1}, 0.005)
          .error()
          .code,
      SignalError::Code::kBadTaps);
}

TEST(Sos, DesignYieldsOneSectionPerPrototypePole) {
  for (int order : {1, 2, 3, 4, 7}) {
    auto sos = design_butterworth_bandpass({0.5, 25.0, order}, 0.005);
    ASSERT_TRUE(sos.ok()) << sos.error().to_string();
    EXPECT_EQ(sos.value().size(), static_cast<std::size_t>(order));
  }
}

TEST(Sos, DesignIsStableAndUnitGainAtCentre) {
  for (int order : {1, 2, 3, 4, 8}) {
    const double dt = 0.005;
    auto sos = design_butterworth_bandpass({0.5, 25.0, order}, dt);
    ASSERT_TRUE(sos.ok());
    // Stability triangle: |a2| < 1 and |a1| < 1 + a2 for every section.
    for (const Biquad& s : sos.value()) {
      EXPECT_LT(std::fabs(s.a2), 1.0);
      EXPECT_LT(std::fabs(s.a1), 1.0 + s.a2);
    }
    // Unit magnitude at the digital geometric centre (the design's
    // normalization point), attenuation deep in both stop bands.
    const double f0 = std::sqrt(0.5 * 25.0);
    EXPECT_NEAR(cascade_gain(sos.value(), f0, dt), 1.0, 1e-9)
        << "order " << order;
    // A 1st-order band-pass rolls off at only 6 dB/octave, so the
    // stop-band bound tightens with order.
    const double stop = order == 1 ? 0.05 : 0.02;
    EXPECT_LT(cascade_gain(sos.value(), 0.01, dt), stop) << "order " << order;
    EXPECT_LT(cascade_gain(sos.value(), 95.0, dt), stop) << "order " << order;
  }
}

// --- Application ---------------------------------------------------------

TEST(Sos, SosfiltImpulseResponseDecays) {
  auto sos = design_butterworth_bandpass({0.5, 25.0, 4}, 0.005);
  ASSERT_TRUE(sos.ok());
  std::vector<double> impulse(4096, 0.0);
  impulse[0] = 1.0;
  const auto h = sosfilt(sos.value(), impulse);
  ASSERT_EQ(h.size(), impulse.size());
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(std::isfinite(h[i])) << "i=" << i;
    (i < 1024 ? head : tail) += std::fabs(h[i]);
  }
  // The 0.5 Hz poles ring for seconds (they sit near the unit circle),
  // but a stable cascade must have shed almost all energy by 5 s.
  EXPECT_GT(head, 0.0);
  EXPECT_LT(tail, 1e-2 * head);
}

TEST(Sos, FiltFiltPassesCentreBandWithZeroPhase) {
  // A pass-band sine must come through |H|^2 ~ 1 with no shift: compare
  // interior samples of y against x directly.
  const double dt = 0.005, f0 = std::sqrt(0.5 * 25.0);
  const std::size_t n = 8000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * f0 * dt * static_cast<double>(i));
  }
  auto sos = design_butterworth_bandpass({0.5, 25.0, 4}, dt);
  ASSERT_TRUE(sos.ok());
  auto y = filtfilt_sos(sos.value(), x);
  ASSERT_TRUE(y.ok()) << y.error().to_string();
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i) {
    EXPECT_NEAR(y.value()[i], x[i], 0.02) << "i=" << i;
  }
}

TEST(Sos, FiltFiltRejectsOutOfBand) {
  // A stop-band (50 Hz) sine is attenuated by |H|^2 — effectively gone.
  const double dt = 0.005;
  const std::size_t n = 8000;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * 50.0 * dt * static_cast<double>(i));
  }
  auto sos = design_butterworth_bandpass({0.5, 25.0, 4}, dt);
  ASSERT_TRUE(sos.ok());
  auto y = filtfilt_sos(sos.value(), x);
  ASSERT_TRUE(y.ok());
  double peak = 0.0;
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i) {
    peak = std::max(peak, std::fabs(y.value()[i]));
  }
  EXPECT_LT(peak, 1e-3);
}

TEST(Sos, FiltFiltErrorTaxonomy) {
  auto sos = design_butterworth_bandpass({0.5, 25.0, 4}, 0.005);
  ASSERT_TRUE(sos.ok());
  EXPECT_EQ(filtfilt_sos(sos.value(), {}).error().code,
            SignalError::Code::kEmptyInput);
  EXPECT_EQ(filtfilt_sos({}, {1.0, 2.0}).error().code,
            SignalError::Code::kBadTaps);
  std::vector<double> bad = {1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_EQ(filtfilt_sos(sos.value(), bad).error().code,
            SignalError::Code::kNonFinite);
}

}  // namespace
}  // namespace acx::signal
