// Concurrency and cold-vs-warm contract of the kernel-plan caches:
// many threads hammering a cache with mixed keys must converge on one
// shared immutable plan per key (the tsan leg of CI runs this file,
// so the shared_mutex probe/build/publish pattern gets a race-detector
// pass), and a run that hits the caches must produce byte-identical
// outputs to a cold-started one — caching is an optimization, never an
// observable behavior change.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "formats/v1.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "signal/fft.hpp"
#include "signal/fft_plan.hpp"
#include "spectrum/corners.hpp"
#include "spectrum/fourier.hpp"
#include "spectrum/response.hpp"
#include "spectrum/response_plan.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/perf.hpp"

namespace acx {
namespace {

void clear_plan_caches() {
  signal::FftPlanCache::instance().clear();
  spectrum::ResponsePlanCache::instance().clear();
  spectrum::smoothing_plan_cache_clear();
}

TEST(PlanCaches, ResponsePlanCacheServesOneSharedPlanPerDtUnderContention) {
  clear_plan_caches();
  const spectrum::ResponseGrid grid = spectrum::paper_grid();
  const std::vector<double> dts = {0.005, 0.01, 0.02};

  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  std::vector<std::map<double, std::set<const spectrum::ResponsePlan*>>> seen(
      kThreads);
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const double dt = dts[static_cast<std::size_t>(t + i) % dts.size()];
        auto plan = spectrum::ResponsePlanCache::instance().get(dt, grid);
        ASSERT_TRUE(plan.ok());
        ASSERT_EQ(plan.value()->dt, dt);
        seen[t][dt].insert(plan.value().get());
      }
    });
  }
  for (auto& worker : team) worker.join();

  // However the builds raced, every thread must have ended up sharing
  // the single published plan for each dt.
  for (const double dt : dts) {
    std::set<const spectrum::ResponsePlan*> all;
    for (const auto& per_thread : seen) {
      const auto it = per_thread.find(dt);
      ASSERT_NE(it, per_thread.end());
      all.insert(it->second.begin(), it->second.end());
    }
    EXPECT_EQ(all.size(), 1u) << "dt=" << dt;
  }
}

TEST(PlanCaches, FftPlanCacheServesOneSharedPlanPerLengthUnderContention) {
  clear_plan_caches();
  const std::vector<std::size_t> pow2_sizes = {256, 1024};
  const std::vector<std::size_t> bluestein_sizes = {100, 730};
  const std::vector<std::size_t> rfft_sizes = {512, 730};

  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  struct Seen {
    std::map<std::size_t, std::set<const signal::Pow2Plan*>> pow2;
    std::map<std::size_t, std::set<const signal::BluesteinPlan*>> bluestein;
    std::map<std::size_t, std::set<const signal::RfftPlan*>> rfft;
  };
  std::vector<Seen> seen(kThreads);
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&, t] {
      auto& cache = signal::FftPlanCache::instance();
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t pick = static_cast<std::size_t>(t + i);
        const std::size_t np = pow2_sizes[pick % pow2_sizes.size()];
        const std::size_t nb = bluestein_sizes[pick % bluestein_sizes.size()];
        const std::size_t nr = rfft_sizes[pick % rfft_sizes.size()];
        seen[t].pow2[np].insert(cache.pow2(np).get());
        seen[t].bluestein[nb].insert(cache.bluestein(nb).get());
        seen[t].rfft[nr].insert(cache.rfft(nr).get());
      }
    });
  }
  for (auto& worker : team) worker.join();

  auto assert_unique = [&](auto member, const std::vector<std::size_t>& ns) {
    for (const std::size_t n : ns) {
      std::set<const void*> all;
      for (const auto& per_thread : seen) {
        const auto& by_key = per_thread.*member;
        const auto it = by_key.find(n);
        ASSERT_NE(it, by_key.end());
        for (const auto* plan : it->second) all.insert(plan);
      }
      EXPECT_EQ(all.size(), 1u) << "n=" << n;
    }
  };
  assert_unique(&Seen::pow2, pow2_sizes);
  assert_unique(&Seen::bluestein, bluestein_sizes);
  assert_unique(&Seen::rfft, rfft_sizes);

  // The rfft plans carry the right child: half of 512 is a power of
  // two, half of 730 (365) needs the chirp-z path.
  auto& cache = signal::FftPlanCache::instance();
  EXPECT_NE(cache.rfft(512)->half_pow2, nullptr);
  EXPECT_EQ(cache.rfft(512)->half_bluestein, nullptr);
  EXPECT_EQ(cache.rfft(730)->half_pow2, nullptr);
  EXPECT_NE(cache.rfft(730)->half_bluestein, nullptr);
}

TEST(PlanCaches, SmoothingWeightCacheCountsOneMissPerShape) {
  clear_plan_caches();
  spectrum::FourierSpectrum spec;
  spec.dt = 0.005;
  spec.nfft = 2048;
  spec.df = 1.0 / (spec.dt * static_cast<double>(spec.nfft));
  spec.amplitude.assign(spec.nfft / 2 + 1, 0.0);
  for (std::size_t k = 0; k < spec.amplitude.size(); ++k) {
    const double f = spec.frequency_at(k);
    spec.amplitude[k] = (f > 1.0 && f < 20.0) ? 1.0 : 0.01;
  }

  const perf::Counters before = perf::local();
  auto first = spectrum::find_corners(spec);
  auto second = spectrum::find_corners(spec);
  const perf::Counters after = perf::local();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Same spectrum shape twice: the second search reuses the first's
  // smoothing-window extents.
  EXPECT_EQ(after.cache_misses - before.cache_misses, 1u);
  EXPECT_GE(after.cache_hits - before.cache_hits, 1u);
  EXPECT_GT(after.setup_seconds, before.setup_seconds);
  EXPECT_GT(after.kernel_seconds, before.kernel_seconds);
}

TEST(PlanCaches, ColdAndWarmPlansProduceBitIdenticalResults) {
  std::vector<double> acc(4096);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const double t = static_cast<double>(i);
    acc[i] = std::sin(0.07 * t) + 0.4 * std::sin(0.23 * t + 1.0);
  }
  const spectrum::ResponseGrid grid = spectrum::paper_grid();

  clear_plan_caches();
  auto cold_rs = spectrum::response_spectrum(acc, 0.005, grid);
  auto cold_spec = signal::rfft(acc);
  ASSERT_TRUE(cold_rs.ok());
  ASSERT_TRUE(cold_spec.ok());

  // Same calls again, now served from the caches — and the spectrum
  // additionally across thread counts (cells are blocked statically,
  // so the team size cannot change any bit).
  for (int threads : {1, test::kTsanBuild ? 1 : 4}) {
    auto warm_rs = spectrum::response_spectrum(acc, 0.005, grid, threads);
    ASSERT_TRUE(warm_rs.ok());
    EXPECT_EQ(cold_rs.value().sd, warm_rs.value().sd) << threads;
    EXPECT_EQ(cold_rs.value().sv, warm_rs.value().sv) << threads;
    EXPECT_EQ(cold_rs.value().sa, warm_rs.value().sa) << threads;
  }
  auto warm_spec = signal::rfft(acc);
  ASSERT_TRUE(warm_spec.ok());
  EXPECT_EQ(cold_spec.value(), warm_spec.value());
}

// Two events in one input directory with different sampling intervals:
// the full driver's worker threads race records with different plan
// keys through every cache at once. Station names are prefixed so the
// two events' record ids (and output files) stay distinct.
std::vector<std::string> build_mixed_dt_inputs(
    FileSystem& fs, const std::filesystem::path& dir) {
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  synth::EventSpec a = synth::paper_events()[0];  // 5 files at dt = 0.005
  synth::EventSpec b = synth::paper_events()[1];  // 5 files at dt = 0.01
  b.dt = 0.01;

  std::vector<std::string> ids;
  auto written = synth::build_event_dataset(fs, dir, a, scfg);
  EXPECT_TRUE(written.ok());
  for (const auto& name : written.value()) {
    ids.push_back(std::filesystem::path(name).stem().string());
  }
  for (int i = 0; i < b.n_files; ++i) {
    formats::Record rec = synth::make_record(b, scfg, i);
    rec.header.station = "Z" + rec.header.station;
    const std::string name =
        rec.header.id() + std::string(formats::kV1Extension);
    EXPECT_TRUE(fs.write_file(dir / name, formats::write_v1(rec)).ok());
    ids.push_back(rec.header.id());
  }
  return ids;
}

TEST(PlanCaches, FullDriverMixedDtRunIsColdWarmByteIdentical) {
  test::TempDir tmp("perfcache");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto ids = build_mixed_dt_inputs(fs, input);
  ASSERT_EQ(ids.size(), 10u);

  auto run_full = [&](int threads, const char* tag) {
    const auto work = tmp.path() / tag;
    pipeline::RunnerConfig cfg;
    cfg.sleep = [](int) {};
    cfg.driver = pipeline::Driver::kFullParallel;
    cfg.threads = threads;
    auto run = pipeline::run_pipeline(fs, input, work, cfg);
    EXPECT_TRUE(run.ok());
    const pipeline::ValidationSummary audit =
        pipeline::validate_workdir(fs, work);
    EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                               << audit.issues.front().detail;
    return run.value();
  };

  // Under tsan the OpenMP team is clamped to one thread (uninstrumented
  // libgomp barriers false-positive; see test_helpers.hpp) — the
  // std::thread hammer tests above carry the tsan coverage of the
  // cache locking itself.
  clear_plan_caches();
  const pipeline::RunReport cold = run_full(test::kTsanBuild ? 1 : 8,
                                            "work-cold");
  const pipeline::RunReport warm = run_full(test::kTsanBuild ? 1 : 3,
                                            "work-warm");

  // The cold run built exactly one response plan per distinct dt and
  // served the other eight records from the cache; the warm run never
  // missed anywhere.
  const auto cold_profile = cold.stage_profile();
  ASSERT_TRUE(cold_profile.count("response"));
  EXPECT_EQ(cold_profile.at("response").cache_misses, 2);
  EXPECT_EQ(cold_profile.at("response").cache_hits, 8);
  long long cold_misses = 0, warm_misses = 0, warm_hits = 0;
  for (const auto& [stage, p] : cold_profile) cold_misses += p.cache_misses;
  for (const auto& [stage, p] : warm.stage_profile()) {
    warm_misses += p.cache_misses;
    warm_hits += p.cache_hits;
  }
  EXPECT_GT(cold_misses, 2);  // the FFT caches missed too
  EXPECT_EQ(warm_misses, 0);
  EXPECT_GT(warm_hits, 0);

  // Cache state and thread count are invisible in the canonical report
  // and in every output byte.
  EXPECT_EQ(cold.canonical_dump(), warm.canonical_dump());
  ASSERT_EQ(cold.records.size(), warm.records.size());
  for (std::size_t i = 0; i < cold.records.size(); ++i) {
    const pipeline::RecordOutcome& a = cold.records[i];
    const pipeline::RecordOutcome& b = warm.records[i];
    ASSERT_EQ(a.record, b.record);
    ASSERT_EQ(a.status, pipeline::RecordOutcome::Status::kOk) << a.record;
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t o = 0; o < a.outputs.size(); ++o) {
      auto left = fs.read_file(a.outputs[o]);
      auto right = fs.read_file(b.outputs[o]);
      ASSERT_TRUE(left.ok() && right.ok());
      EXPECT_EQ(left.value(), right.value()) << b.outputs[o];
    }
  }
}

}  // namespace
}  // namespace acx
