// Bit-identity contract of the explicit-SIMD kernels (docs/PERF.md,
// "SIMD kernels"): flipping acx::simd between scalar and SIMD paths
// must never change a single output byte — only the speed. Every test
// here runs the same kernel under both toggle states and memcmp's the
// raw doubles. The overlap-save crossover is tested separately: method
// selection is a pure function of (taps, n), never of the toggle.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <vector>

#include "pipeline/runner.hpp"
#include "signal/fft.hpp"
#include "signal/fir.hpp"
#include "spectrum/response.hpp"
#include "spectrum/response_plan.hpp"
#include "spectrum/rotd.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/simd.hpp"

namespace {

constexpr double kPi = std::numbers::pi;

// Restores the process-wide toggle state on scope exit so a failing
// test cannot leak a forced-scalar state into later tests.
class SimdToggleGuard {
 public:
  explicit SimdToggleGuard(bool on) : prev_(acx::simd::enabled()) {
    acx::simd::set_enabled(on);
  }
  ~SimdToggleGuard() { acx::simd::set_enabled(prev_); }

 private:
  bool prev_;
};

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> synth_signal(std::size_t n, double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    x[i] = std::sin(0.013 * t + phase) + 0.4 * std::cos(0.371 * t) +
           0.05 * std::sin(1.7 * t + 0.2);
  }
  return x;
}

// --- Toggle API ----------------------------------------------------------

TEST(Simd, ToggleRoundTripsAndNamesKernels) {
  const bool before = acx::simd::enabled();
  {
    SimdToggleGuard off(false);
    EXPECT_FALSE(acx::simd::enabled());
    EXPECT_STREQ(acx::simd::active_kernels(), "scalar");
  }
  {
    SimdToggleGuard on(true);
    EXPECT_TRUE(acx::simd::enabled());
    if (acx::simd::avx2_supported()) {
      EXPECT_STREQ(acx::simd::active_kernels(), "simd+avx2");
    } else {
      EXPECT_STREQ(acx::simd::active_kernels(), "simd");
    }
  }
  EXPECT_EQ(acx::simd::enabled(), before);
}

// --- Stage-IX batch kernel ----------------------------------------------

TEST(Simd, SdofBatchMatchesScalarBitForBit) {
  const double dt = 0.005;
  auto plan = acx::spectrum::ResponsePlan::build(dt, acx::spectrum::paper_grid());
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  const auto& p = *plan.value();
  const auto acc = synth_signal(1459);

  // Full grid plus ranges that start/end off the 32-cell block grid.
  struct Range {
    std::size_t begin, end;
  };
  const Range ranges[] = {{0, p.cells}, {0, 1}, {5, 37}, {31, 97}, {64, 64}};
  for (const Range& r : ranges) {
    std::vector<double> sd_a(p.cells, -1), sv_a(p.cells, -1), sa_a(p.cells, -1);
    std::vector<double> sd_b(p.cells, -1), sv_b(p.cells, -1), sa_b(p.cells, -1);
    {
      SimdToggleGuard off(false);
      acx::spectrum::sdof_peak_response_batch(acc.data(), acc.size(), p,
                                              r.begin, r.end, sd_a.data(),
                                              sv_a.data(), sa_a.data());
    }
    {
      SimdToggleGuard on(true);
      acx::spectrum::sdof_peak_response_batch(acc.data(), acc.size(), p,
                                              r.begin, r.end, sd_b.data(),
                                              sv_b.data(), sa_b.data());
    }
    EXPECT_TRUE(bytes_equal(sd_a, sd_b)) << "sd range " << r.begin;
    EXPECT_TRUE(bytes_equal(sv_a, sv_b)) << "sv range " << r.begin;
    EXPECT_TRUE(bytes_equal(sa_a, sa_b)) << "sa range " << r.begin;
  }
}

TEST(Simd, RotdSweepMatchesScalarBitForBit) {
  const double dt = 0.01;
  const auto l = synth_signal(700);
  const auto t = synth_signal(700, 0.9);
  acx::spectrum::ResponseGrid grid;
  grid.periods = {0.1, 0.3, 1.0};
  grid.dampings = {0.05};

  auto run = [&]() {
    auto r = acx::spectrum::rotd_spectrum(l, t, dt, grid, 45);
    EXPECT_TRUE(r.ok());
    return r.value();
  };
  SimdToggleGuard off(false);
  const auto a = run();
  acx::simd::set_enabled(true);
  const auto b = run();
  EXPECT_TRUE(bytes_equal(a.rotd00, b.rotd00));
  EXPECT_TRUE(bytes_equal(a.rotd50, b.rotd50));
  EXPECT_TRUE(bytes_equal(a.rotd100, b.rotd100));
  EXPECT_TRUE(bytes_equal(a.geomean, b.geomean));
}

// --- FFT family ----------------------------------------------------------

TEST(Simd, FftIfftRfftMatchScalarBitForBit) {
  // Pow2 (radix-2 + split planes), non-pow2 (Bluestein over pow2), and
  // the rfft even-n native split fast path (half pow2 / half Bluestein)
  // plus the odd-n path.
  for (std::size_t n : {2ul, 8ul, 1024ul, 360ul, 730ul, 731ul}) {
    const auto x = synth_signal(n);
    std::vector<acx::signal::Complex> cx(n);
    for (std::size_t i = 0; i < n; ++i) {
      cx[i] = acx::signal::Complex(x[i], 0.3 * x[(i + 1) % n]);
    }

    std::vector<acx::signal::Complex> fwd_a, fwd_b, inv_a, inv_b;
    std::vector<acx::signal::Complex> rf_a, rf_b;
    {
      SimdToggleGuard off(false);
      fwd_a = acx::signal::fft(cx).value();
      inv_a = acx::signal::ifft(fwd_a).value();
      rf_a = acx::signal::rfft(x).value();
    }
    {
      SimdToggleGuard on(true);
      fwd_b = acx::signal::fft(cx).value();
      inv_b = acx::signal::ifft(fwd_b).value();
      rf_b = acx::signal::rfft(x).value();
    }
    ASSERT_EQ(fwd_a.size(), fwd_b.size());
    EXPECT_EQ(std::memcmp(fwd_a.data(), fwd_b.data(),
                          fwd_a.size() * sizeof(acx::signal::Complex)),
              0)
        << "fft n=" << n;
    EXPECT_EQ(std::memcmp(inv_a.data(), inv_b.data(),
                          inv_a.size() * sizeof(acx::signal::Complex)),
              0)
        << "ifft n=" << n;
    ASSERT_EQ(rf_a.size(), rf_b.size());
    EXPECT_EQ(std::memcmp(rf_a.data(), rf_b.data(),
                          rf_a.size() * sizeof(acx::signal::Complex)),
              0)
        << "rfft n=" << n;

    // Round trip under the SIMD path.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(inv_b[i].real(), cx[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(inv_b[i].imag(), cx[i].imag(), 1e-9) << "n=" << n;
    }
  }
}

// --- Direct convolution --------------------------------------------------

TEST(Simd, DirectConvolveMatchesScalarBitForBit) {
  // Sizes straddling the 16-lane interior block and the head/tail split.
  for (std::size_t t : {1ul, 3ul, 5ul, 17ul, 31ul, 101ul}) {
    for (std::size_t n : {t, t + 1, t + 15, t + 16, t + 17, 3 * t + 7, 400ul}) {
      if (n < t) continue;
      std::vector<double> h(t);
      for (std::size_t i = 0; i < t; ++i) {
        h[i] = std::sin(0.1 * static_cast<double>(i) + 0.05);
      }
      const auto x = synth_signal(n);
      std::vector<double> a, b;
      {
        SimdToggleGuard off(false);
        a = acx::signal::convolve_full(h, x,
                                       acx::signal::ConvolveMethod::kDirect);
      }
      {
        SimdToggleGuard on(true);
        b = acx::signal::convolve_full(h, x,
                                       acx::signal::ConvolveMethod::kDirect);
      }
      EXPECT_TRUE(bytes_equal(a, b)) << "t=" << t << " n=" << n;
    }
  }
}

// --- Overlap-save --------------------------------------------------------

TEST(Simd, OverlapSaveSelectionIsPureInSizes) {
  using acx::signal::kOverlapSaveMinTaps;
  using acx::signal::overlap_save_selected;
  // Below the floor, never — the correction chain caps at 101 taps, so
  // the pipeline's numerics can never depend on the crossover.
  EXPECT_FALSE(overlap_save_selected(101, 35000));
  EXPECT_FALSE(overlap_save_selected(kOverlapSaveMinTaps - 1, 1u << 20));
  // At/above the floor the cost model decides; long kernels on long
  // records must go overlap-save.
  EXPECT_TRUE(overlap_save_selected(1001, 35000));
  EXPECT_TRUE(overlap_save_selected(11665, 35000));
  // The decision must not depend on the toggle.
  SimdToggleGuard off(false);
  EXPECT_TRUE(overlap_save_selected(11665, 35000));
  EXPECT_FALSE(overlap_save_selected(101, 35000));
}

TEST(Simd, OverlapSaveMatchesDirectNumerically) {
  // Forced-method comparison across the crossover region; overlap-save
  // rounds differently than direct, so the contract is relative error,
  // not bytes.
  for (std::size_t t : {129ul, 255ul, 1001ul}) {
    for (std::size_t n : {t, 2 * t + 13, 4096ul}) {
      if (n < t) continue;
      std::vector<double> h(t);
      for (std::size_t i = 0; i < t; ++i) {
        h[i] = std::cos(0.07 * static_cast<double>(i)) /
               static_cast<double>(t);
      }
      const auto x = synth_signal(n);
      const auto yd =
          acx::signal::convolve_full(h, x, acx::signal::ConvolveMethod::kDirect);
      const auto ys = acx::signal::convolve_full(
          h, x, acx::signal::ConvolveMethod::kOverlapSave);
      ASSERT_EQ(yd.size(), ys.size());
      double scale = 1.0;
      for (double v : yd) scale = std::max(scale, std::fabs(v));
      for (std::size_t i = 0; i < yd.size(); ++i) {
        ASSERT_NEAR(yd[i], ys[i], 1e-10 * scale)
            << "t=" << t << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Simd, AutoConvolveMatchesSelectedMethodBitForBit) {
  for (std::size_t t : {101ul, 1001ul}) {
    const std::size_t n = 8192;
    std::vector<double> h(t);
    for (std::size_t i = 0; i < t; ++i) {
      h[i] = std::sin(0.03 * static_cast<double>(i));
    }
    const auto x = synth_signal(n);
    const auto auto_y =
        acx::signal::convolve_full(h, x, acx::signal::ConvolveMethod::kAuto);
    const auto forced = acx::signal::convolve_full(
        h, x,
        acx::signal::overlap_save_selected(t, n)
            ? acx::signal::ConvolveMethod::kOverlapSave
            : acx::signal::ConvolveMethod::kDirect);
    EXPECT_TRUE(bytes_equal(auto_y, forced)) << "t=" << t;
  }
}

TEST(Simd, FiltFiltLongRecordAgreesAcrossMethods) {
  // The long-record scenario of the BM_FirOverlapSave bench: adaptive
  // taps = odd(n/3). Overlap-save must reproduce direct to rounding.
  const std::size_t n = 6000;
  int taps = static_cast<int>(n / 3);
  if (taps % 2 == 0) --taps;
  auto h = acx::signal::design_bandpass({0.5, 25.0, taps}, 0.005);
  ASSERT_TRUE(h.ok()) << h.error().to_string();
  const auto x = synth_signal(n);
  const auto yd = acx::signal::filtfilt(h.value(), x,
                                        acx::signal::ConvolveMethod::kDirect);
  const auto ya = acx::signal::filtfilt(h.value(), x,
                                        acx::signal::ConvolveMethod::kAuto);
  ASSERT_TRUE(yd.ok());
  ASSERT_TRUE(ya.ok());
  ASSERT_TRUE(acx::signal::overlap_save_selected(
      static_cast<std::size_t>(taps), n));
  double scale = 1.0;
  for (double v : yd.value()) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(yd.value()[i], ya.value()[i], 1e-10 * scale) << "i=" << i;
  }
}

// --- Whole-pipeline byte equality ---------------------------------------

TEST(Simd, FullDriverOutputsAreByteIdenticalAcrossToggle) {
  // The end-to-end form of the contract: a full-driver run with the
  // SIMD kernels on produces the same bytes in every output file
  // (.v2/.f/.r/.rotd) as a forced-scalar run. CI repeats this across
  // builds (-DACX_SIMD=OFF leg); this test repeats it across the
  // runtime toggle in-process.
  acx::RealFileSystem fs;
  acx::test::TempDir tmp("simd_driver");
  const auto input = tmp.path() / "input";
  acx::synth::EventSpec spec = acx::synth::paper_events()[0];
  spec.n_files = 6;
  acx::synth::SynthConfig scfg;
  scfg.scale = 0.02;
  ASSERT_TRUE(acx::synth::build_event_dataset(fs, input, spec, scfg).ok());

  auto run_with = [&](bool simd_on, const char* name) {
    SimdToggleGuard guard(simd_on);
    acx::pipeline::RunnerConfig cfg;
    cfg.sleep = [](int) {};
    cfg.driver = acx::pipeline::Driver::kFullParallel;
    cfg.threads = 2;
    auto run = acx::pipeline::run_pipeline(fs, input, tmp.path() / name, cfg);
    EXPECT_TRUE(run.ok());
    return run.value();
  };
  const auto on = run_with(true, "work_on");
  const auto off = run_with(false, "work_off");

  ASSERT_EQ(on.records.size(), off.records.size());
  for (std::size_t i = 0; i < on.records.size(); ++i) {
    const auto& a = on.records[i];
    const auto& b = off.records[i];
    ASSERT_EQ(a.outputs.size(), b.outputs.size()) << a.record;
    for (std::size_t o = 0; o < a.outputs.size(); ++o) {
      auto left = fs.read_file(a.outputs[o]);
      auto right = fs.read_file(b.outputs[o]);
      ASSERT_TRUE(left.ok() && right.ok());
      EXPECT_EQ(left.value(), right.value()) << a.outputs[o];
    }
  }
  ASSERT_EQ(on.stations.size(), off.stations.size());
  for (std::size_t i = 0; i < on.stations.size(); ++i) {
    if (on.stations[i].rotd_output.empty()) continue;
    auto left = fs.read_file(on.stations[i].rotd_output);
    auto right = fs.read_file(off.stations[i].rotd_output);
    ASSERT_TRUE(left.ok() && right.ok());
    EXPECT_EQ(left.value(), right.value()) << on.stations[i].station;
  }
}

}  // namespace
