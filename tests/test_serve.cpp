// The resident service layer (pipeline/serve.hpp): spool admission by
// atomic rename, malformed/duplicate rejection with audit notes,
// drain-first shutdown via the sentinel, the serve_stats.json schema,
// and the plan-cache amortization the shared WorkPool exists for.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "pipeline/serve.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/work_pool.hpp"

namespace acx::pipeline {
namespace {

namespace stdfs = std::filesystem;

void build_event(FileSystem& fs, const stdfs::path& dir, int n_files) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  ASSERT_TRUE(synth::build_event_dataset(fs, dir, spec, scfg).ok());
}

// Stage a manifest the way a well-behaved producer does: write into
// tmp/, then rename into the spool root.
void drop_manifest(FileSystem& fs, const stdfs::path& spool,
                   const std::string& name, const std::string& body) {
  ASSERT_TRUE(fs.create_directories(spool / "tmp").ok());
  ASSERT_TRUE(fs.write_file(spool / "tmp" / name, body).ok());
  ASSERT_TRUE(fs.rename(spool / "tmp" / name, spool / name).ok());
}

std::string manifest_body(const std::string& event, const stdfs::path& input) {
  return "{\"event\": \"" + event + "\", \"input\": \"" + input.string() +
         "\"}\n";
}

ServeConfig serve_config(WorkPool* pool) {
  ServeConfig cfg;
  cfg.runner.sleep = [](int) {};
  cfg.runner.threads = 2;
  cfg.pool = pool;
  cfg.poll_ms = 2;
  cfg.event_workers = 2;
  return cfg;
}

TEST(Serve, ServesSpooledEventsAndDrainsOnTheShutdownSentinel) {
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 4);

  ASSERT_TRUE(fs.create_directories(spool).ok());
  for (const char* ev : {"ev-a", "ev-b", "ev-c"}) {
    drop_manifest(fs, spool, std::string(ev) + ".json",
                  manifest_body(ev, input));
  }
  // The sentinel is honored only once the spool is empty, so all three
  // manifests above are admitted and drained first.
  ASSERT_TRUE(fs.write_file(spool / kServeShutdownSentinel, "").ok());

  WorkPool pool(2);
  SpoolServer server(fs, serve_config(&pool));
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServeStats& stats = run.value();

  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.served, 3);
  EXPECT_EQ(stats.ok, 3);
  EXPECT_EQ(stats.malformed, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.records_ok, 12);
  EXPECT_GT(stats.points, 0);
  EXPECT_EQ(stats.driver, "pool");
  EXPECT_EQ(stats.pool_threads, 2);
  EXPECT_GE(stats.pool_executed, 12);

  // Audit trail: every manifest in done/, none left in the root or
  // claimed/, sentinel consumed so a restart does not instantly exit.
  for (const char* ev : {"ev-a", "ev-b", "ev-c"}) {
    const std::string name = std::string(ev) + ".json";
    EXPECT_TRUE(fs.exists(spool / "done" / name)) << ev;
    EXPECT_FALSE(fs.exists(spool / name)) << ev;
    EXPECT_FALSE(fs.exists(spool / "claimed" / name)) << ev;
  }
  EXPECT_FALSE(fs.exists(spool / kServeShutdownSentinel));

  // Every event's work dir validates and its run report names the pool
  // driver; serve_stats.json exists and round-trips as JSON.
  int found = 0;
  for (const char* ev : {"ev-a", "ev-b", "ev-c"}) {
    for (int s = 0; s < 16; ++s) {
      const auto dir = work / "events" / ("s" + std::to_string(s)) / ev;
      if (!fs.exists(dir)) continue;
      ++found;
      EXPECT_TRUE(validate_workdir(fs, dir).clean()) << ev;
      auto report = fs.read_file(dir / kRunReportFileName);
      ASSERT_TRUE(report.ok());
      auto parsed = RunReport::from_json_text(report.value());
      ASSERT_TRUE(parsed.ok()) << parsed.error();
      EXPECT_EQ(parsed.value().driver, "pool") << ev;
      EXPECT_EQ(parsed.value().threads, 2) << ev;
    }
  }
  EXPECT_EQ(found, 3);

  auto stats_text = fs.read_file(work / kServeStatsFileName);
  ASSERT_TRUE(stats_text.ok());
  auto parsed = Json::parse(stats_text.value());
  ASSERT_TRUE(parsed.ok());
  const Json doc = std::move(parsed).take();
  EXPECT_EQ(doc.get_number("version", -1), ServeStats::kVersion);
  ASSERT_NE(doc.find("plan_cache"), nullptr);
  ASSERT_NE(doc.find("pool"), nullptr);
  ASSERT_NE(doc.find("events"), nullptr);
  pool.shutdown();
}

TEST(Serve, RejectsMalformedAndDuplicateManifestsWithAuditNotes) {
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 2);

  ASSERT_TRUE(fs.create_directories(spool).ok());
  drop_manifest(fs, spool, "a-good.json", manifest_body("quake-1", input));
  drop_manifest(fs, spool, "bad-syntax.json", "{nope");
  drop_manifest(fs, spool, "bad-schema.json", "{\"event\": \"x\"}");
  drop_manifest(fs, spool, "bad-id.json",
                manifest_body("../escape", input));
  drop_manifest(fs, spool, "z-dup.json", manifest_body("quake-1", input));
  ASSERT_TRUE(fs.write_file(spool / kServeShutdownSentinel, "").ok());

  WorkPool pool(2);
  SpoolServer server(fs, serve_config(&pool));
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServeStats& stats = run.value();

  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.ok, 1);
  EXPECT_EQ(stats.malformed, 3);
  EXPECT_EQ(stats.duplicates, 1);

  for (const char* name :
       {"bad-syntax.json", "bad-schema.json", "bad-id.json", "z-dup.json"}) {
    EXPECT_TRUE(fs.exists(spool / "rejected" / name)) << name;
    auto reason =
        fs.read_file(spool / "rejected" / (std::string(name) + ".reason"));
    EXPECT_TRUE(reason.ok()) << name;
    EXPECT_FALSE(reason.value_or("").empty()) << name;
  }
  EXPECT_TRUE(fs.exists(spool / "done" / "a-good.json"));
  pool.shutdown();
}

TEST(Serve, MaxEventsStopsAfterTheBudgetAndLosesNothing) {
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 2);

  ASSERT_TRUE(fs.create_directories(spool).ok());
  for (int i = 0; i < 6; ++i) {
    const std::string ev = "ev-" + std::to_string(i);
    drop_manifest(fs, spool, ev + ".json", manifest_body(ev, input));
  }

  WorkPool pool(2);
  ServeConfig cfg = serve_config(&pool);
  cfg.max_events = 4;
  SpoolServer server(fs, cfg);
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();

  EXPECT_EQ(run.value().admitted, 4);
  EXPECT_EQ(run.value().served, 4);
  EXPECT_EQ(run.value().ok, 4);
  // The two unserved manifests stay in the spool root for the next
  // service instance — admission stopped, nothing was consumed.
  int left = 0;
  auto listed = fs.list_dir(spool);
  ASSERT_TRUE(listed.ok());
  for (const auto& p : listed.value()) {
    if (p.extension() == ".json") ++left;
  }
  EXPECT_EQ(left, 2);
  pool.shutdown();
}

TEST(Serve, PlanCacheHitsGrowAcrossTheEventStream) {
  // The amortization claim of docs/SERVE.md: with one resident process,
  // later events of the same shape hit the plan caches strictly more
  // than the first event (which paid the misses).
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 3);

  ASSERT_TRUE(fs.create_directories(spool).ok());
  for (int i = 0; i < 5; ++i) {
    const std::string ev = "stream-" + std::to_string(i);
    drop_manifest(fs, spool, ev + ".json", manifest_body(ev, input));
  }
  ASSERT_TRUE(fs.write_file(spool / kServeShutdownSentinel, "").ok());

  WorkPool pool(2);
  ServeConfig cfg = serve_config(&pool);
  cfg.event_workers = 1;  // deterministic completion order
  SpoolServer server(fs, cfg);
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const ServeStats& stats = run.value();

  ASSERT_EQ(stats.served, 5);
  EXPECT_EQ(stats.first_event.index, 1);
  EXPECT_EQ(stats.last_event.index, 5);
  EXPECT_GT(stats.last_event.hits, 0);
  // Later events never pay more misses than the first (the caches are
  // process-global and only grow)...
  EXPECT_LE(stats.last_event.misses, stats.first_event.misses);
  // ...and the cumulative hit rate beats the first event's.
  EXPECT_GT(stats.last_event.hit_rate, 0.0);
  EXPECT_GE(stats.last_event.hit_rate, stats.first_event.hit_rate);
  ASSERT_EQ(stats.trajectory.size(), 5u);
  for (std::size_t i = 0; i < stats.trajectory.size(); ++i) {
    EXPECT_EQ(stats.trajectory[i].index, static_cast<long long>(i + 1));
    EXPECT_EQ(stats.trajectory[i].status, "ok");
  }
  pool.shutdown();
}

TEST(Serve, IdleExitStopsAQuietServiceWithoutASentinel) {
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";

  WorkPool pool(1);
  ServeConfig cfg = serve_config(&pool);
  cfg.idle_exit_seconds = 0.05;
  SpoolServer server(fs, cfg);
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  EXPECT_EQ(run.value().served, 0);
  EXPECT_GE(run.value().uptime_seconds, 0.05);
  // Even an idle service leaves a valid stats file behind.
  EXPECT_TRUE(fs.exists(work / kServeStatsFileName));
  pool.shutdown();
}

TEST(Serve, ManifestDeadlineOverridesDegradeOnlyThatEvent) {
  test::TempDir tmp("serve");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto spool = tmp.path() / "spool";
  const auto work = tmp.path() / "work";
  build_event(fs, input, 3);

  ASSERT_TRUE(fs.create_directories(spool).ok());
  // a-: an impossible soft budget -> sheds enrichment stages, lands
  // degraded. b-: no override -> inherits the (unbounded) default.
  drop_manifest(fs, spool, "a-tight.json",
                "{\"event\": \"tight\", \"input\": \"" + input.string() +
                    "\", \"deadline_soft_s\": 0.000001}");
  drop_manifest(fs, spool, "b-roomy.json", manifest_body("roomy", input));
  ASSERT_TRUE(fs.write_file(spool / kServeShutdownSentinel, "").ok());

  WorkPool pool(2);
  ServeConfig cfg = serve_config(&pool);
  cfg.event_workers = 1;
  SpoolServer server(fs, cfg);
  auto run = server.run(spool, work);
  ASSERT_TRUE(run.ok()) << run.error().to_string();

  EXPECT_EQ(run.value().served, 2);
  EXPECT_EQ(run.value().degraded, 1);
  EXPECT_EQ(run.value().ok, 1);
  pool.shutdown();
}

}  // namespace
}  // namespace acx::pipeline
