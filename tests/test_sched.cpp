// src/sched unit coverage: cost extraction from real v6 run reports
// (quarantined/degraded filtering, retry exclusion, flooring, merging),
// the four task-graph builders, and the list scheduler's determinism
// and Brent-bound discipline. The worked-example numbers live in
// tests/test_sched_contract.cpp; this file covers the machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "pipeline/report.hpp"
#include "sched/analysis.hpp"
#include "sched/cost_model.hpp"
#include "sched/gantt.hpp"
#include "sched/simulator.hpp"

namespace acx::sched {
namespace {

using pipeline::RecordOutcome;
using pipeline::RunReport;
using pipeline::StageAttempt;

StageAttempt attempt(const std::string& stage, double seconds, bool ok = true,
                     int attempts = 1) {
  StageAttempt a;
  a.stage = stage;
  a.seconds = seconds;
  a.ok = ok;
  a.attempts = attempts;
  if (!ok) a.error = "io.read_failed";
  return a;
}

RecordOutcome ok_record(const std::string& id, long long points,
                        std::vector<StageAttempt> stages) {
  RecordOutcome r;
  r.record = id;
  r.points = points;
  r.stages = std::move(stages);
  for (const StageAttempt& s : r.stages) r.retries += s.attempts - 1;
  return r;
}

// A small but fully-formed v6 report: two clean records, one retried,
// one quarantined, one degraded (shed its response stage).
RunReport sample_report() {
  RunReport report;
  report.input_dir = "sample-event";
  report.driver = "seq";
  report.threads = 1;
  report.total_seconds = 10.0;

  report.records.push_back(ok_record(
      "SS01", 1000,
      {attempt("parse", 0.5), attempt("response", 3.0),
       attempt("write_v2", 0.25)}));
  report.records.push_back(ok_record(
      "SS02", 800,
      {attempt("parse", 0.4), attempt("response", 2.0),
       attempt("write_v2", 0.2)}));

  // Retried: parse took two attempts; its seconds still count once.
  report.records.push_back(ok_record(
      "SS03", 600,
      {attempt("parse", 0.9, true, 2), attempt("response", 1.5),
       attempt("write_v2", 0.15)}));

  RecordOutcome quarantined;
  quarantined.record = "SS04";
  quarantined.status = RecordOutcome::Status::kQuarantined;
  quarantined.reason = "v1.bad_magic";
  quarantined.stages = {attempt("parse", 0.1, /*ok=*/false)};
  report.records.push_back(quarantined);

  RecordOutcome degraded = ok_record(
      "SS05", 500, {attempt("parse", 0.3), attempt("write_v2", 0.1)});
  degraded.degraded = true;
  degraded.shed = {{"response", "batch.deadline_soft"}};
  report.records.push_back(degraded);

  // v7 stations block. These ids carry no l/t/v suffix, so each record
  // is its own single-component station and the rotd stage is skipped —
  // exactly what the runner emits; the strict parser cross-checks it.
  for (const RecordOutcome& r : report.records) {
    pipeline::StationOutcome st;
    st.station = r.record;
    st.components = {""};
    st.ok = r.status == RecordOutcome::Status::kOk ? 1 : 0;
    st.quarantined = 1 - st.ok;
    st.rotd_status = "skipped";
    st.rotd_reason = "station.missing_component";
    report.stations.push_back(std::move(st));
  }

  report.sort_records();
  return report;
}

TEST(SchedCostModel, ExtractsOkStagesAndFiltersOutcasts) {
  auto model = cost_model_from_report(sample_report(), {});
  ASSERT_TRUE(model.ok()) << model.error();
  const CostModel& m = model.value();

  // SS04 quarantined, SS05 degraded: both out by default.
  ASSERT_EQ(m.records.size(), 3u);
  EXPECT_EQ(m.excluded_quarantined, 1);
  EXPECT_EQ(m.excluded_degraded, 1);
  EXPECT_EQ(m.records[0].record, "SS01");
  EXPECT_EQ(m.records[2].record, "SS03");
  EXPECT_TRUE(m.records[2].retried);
  EXPECT_EQ(m.flagged_retried, 1);
  EXPECT_EQ(m.total_points(), 2400);
  EXPECT_DOUBLE_EQ(m.stage_work("response"), 6.5);
  EXPECT_DOUBLE_EQ(m.records[0].stage_seconds.at("parse"), 0.5);
  // The measured anchor rides along.
  ASSERT_EQ(m.measured.size(), 1u);
  EXPECT_EQ(m.measured[0].driver, "seq");
  EXPECT_DOUBLE_EQ(m.measured[0].total_seconds, 10.0);
  // No NaN or non-positive cost survives extraction.
  for (const RecordCosts& r : m.records) {
    for (const auto& [stage, seconds] : r.stage_seconds) {
      EXPECT_TRUE(std::isfinite(seconds)) << r.record << "/" << stage;
      EXPECT_GT(seconds, 0) << r.record << "/" << stage;
    }
  }
}

TEST(SchedCostModel, IncludeDegradedKeepsShedRecordFlagged) {
  CostModelOptions opt;
  opt.include_degraded = true;
  auto model = cost_model_from_report(sample_report(), opt);
  ASSERT_TRUE(model.ok()) << model.error();
  const CostModel& m = model.value();
  ASSERT_EQ(m.records.size(), 4u);
  EXPECT_EQ(m.excluded_degraded, 0);
  EXPECT_EQ(m.flagged_degraded, 1);
  const RecordCosts* shed = m.find("SS05");
  ASSERT_NE(shed, nullptr);
  EXPECT_TRUE(shed->shed_flagged);
  // The shed stage never ran, so it must not appear as a cost.
  EXPECT_EQ(shed->stage_seconds.count("response"), 0u);
  EXPECT_EQ(shed->stage_seconds.count("parse"), 1u);
}

TEST(SchedCostModel, FailedAttemptGroupsYieldNoCost) {
  RunReport report = sample_report();
  // Give SS01 a failed extra stage group: excluded from its costs.
  for (RecordOutcome& r : report.records) {
    if (r.record == "SS01") {
      r.stages.push_back(attempt("fourier", 9.9, /*ok=*/false));
    }
  }
  auto model = cost_model_from_report(report, {});
  ASSERT_TRUE(model.ok()) << model.error();
  const RecordCosts* r1 = model.value().find("SS01");
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->stage_seconds.count("fourier"), 0u);
}

TEST(SchedCostModel, ZeroCostsAreFlooredAndCorruptCostsRejected) {
  RunReport report = sample_report();
  for (RecordOutcome& r : report.records) {
    if (r.record == "SS02") r.stages.push_back(attempt("detrend", 0.0));
  }
  auto model = cost_model_from_report(report, {});
  ASSERT_TRUE(model.ok()) << model.error();
  EXPECT_EQ(model.value().floored_costs, 1);
  EXPECT_DOUBLE_EQ(model.value().find("SS02")->stage_seconds.at("detrend"),
                   1e-9);

  for (RecordOutcome& r : report.records) {
    if (r.record == "SS02") r.stages.back().seconds = -1.0;
  }
  EXPECT_FALSE(cost_model_from_report(report, {}).ok());
  for (RecordOutcome& r : report.records) {
    if (r.record == "SS02") {
      r.stages.back().seconds = std::nan("");
    }
  }
  EXPECT_FALSE(cost_model_from_report(report, {}).ok());
}

TEST(SchedCostModel, AllRecordsUnusableIsAnError) {
  RunReport report;
  report.driver = "seq";
  RecordOutcome q;
  q.record = "SS01";
  q.status = RecordOutcome::Status::kQuarantined;
  report.records.push_back(q);
  auto model = cost_model_from_report(report, {});
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.error().find("quarantined"), std::string::npos);
}

TEST(SchedCostModel, ProfileSynthesisSpreadsStageTotals) {
  auto model = cost_model_from_profile(sample_report(), {});
  ASSERT_TRUE(model.ok()) << model.error();
  const CostModel& m = model.value();
  // Profile mode keeps every non-quarantined record (degraded too).
  ASSERT_EQ(m.records.size(), 4u);
  // Each record gets stage_total / 4. stage_totals() sums every
  // attempt, successful or not, so SS04's failed 0.1 s parse is in:
  // 0.5 + 0.4 + 0.9 + 0.1 + 0.3 = 2.2.
  EXPECT_DOUBLE_EQ(m.records[0].stage_seconds.at("parse"), 2.2 / 4.0);
  // Totals are preserved.
  EXPECT_NEAR(m.stage_work("parse"), 2.2, 1e-12);
}

TEST(SchedCostModel, MergeFirstReportWins) {
  auto first = cost_model_from_report(sample_report(), {});
  ASSERT_TRUE(first.ok());
  CostModel merged = std::move(first).take();

  RunReport other = sample_report();
  other.driver = "seq-opt";
  other.total_seconds = 7.0;
  for (RecordOutcome& r : other.records) {
    for (StageAttempt& s : r.stages) s.seconds *= 100;  // must lose
    if (r.record == "SS01") r.stages.push_back(attempt("reparse", 0.05));
  }
  auto second = cost_model_from_report(other, {});
  ASSERT_TRUE(second.ok());
  merge_cost_model(merged, second.value());

  // Existing (record, stage) costs kept from the first report; the new
  // stage filled in from the second; both anchors present.
  EXPECT_DOUBLE_EQ(merged.find("SS01")->stage_seconds.at("parse"), 0.5);
  EXPECT_DOUBLE_EQ(merged.find("SS01")->stage_seconds.at("reparse"), 0.05);
  ASSERT_EQ(merged.measured.size(), 2u);
  EXPECT_EQ(merged.measured[1].driver, "seq-opt");
}

TEST(SchedCostModel, RoundTripsThroughSerializedReport) {
  // The extraction contract holds for a report that went through JSON,
  // not just an in-memory struct.
  const RunReport report = sample_report();
  auto reread = RunReport::from_json_text(report.dump());
  ASSERT_TRUE(reread.ok()) << reread.error();
  auto direct = cost_model_from_report(report, {});
  auto via_json = cost_model_from_report(reread.value(), {});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_json.ok());
  ASSERT_EQ(direct.value().records.size(), via_json.value().records.size());
  for (std::size_t i = 0; i < direct.value().records.size(); ++i) {
    EXPECT_EQ(direct.value().records[i].stage_seconds,
              via_json.value().records[i].stage_seconds);
  }
}

// --- graphs and scheduler ---

CostModel toy_model() {
  auto model = cost_model_from_report(sample_report(), {});
  EXPECT_TRUE(model.ok());
  return std::move(model).take();
}

TEST(SchedSimulator, SerialGraphIsOneChain) {
  const auto shape = pipeline::StageGraph::standard().shape();
  const TaskGraph g = serial_graph(toy_model(), shape);
  ASSERT_EQ(g.tasks.size(), 9u);  // 3 records x 3 measured stages
  EXPECT_DOUBLE_EQ(g.work(), g.span());
  for (std::size_t i = 1; i < g.tasks.size(); ++i) {
    ASSERT_EQ(g.tasks[i].deps.size(), 1u);
    EXPECT_EQ(g.tasks[i].deps[0], static_cast<int>(i) - 1);
  }
  // A chain on any processor count takes exactly the work.
  EXPECT_DOUBLE_EQ(list_schedule(g, 8, 1).makespan, g.work());
}

TEST(SchedSimulator, BarrierGraphHoldsStagesApart) {
  const auto shape = pipeline::StageGraph::standard().shape();
  const TaskGraph g = barrier_graph(toy_model(), shape);
  const Schedule s = list_schedule(g, 8, 1);
  // With barriers the makespan is the sum of per-stage maxima:
  // parse max 0.9, response max 3.0, write_v2 max 0.25.
  EXPECT_DOUBLE_EQ(s.makespan, 0.9 + 3.0 + 0.25);
}

TEST(SchedSimulator, RecordGraphSplitsResponseAndKeepsWork) {
  const auto shape = pipeline::StageGraph::standard().shape();
  GraphOptions opt;
  opt.split = 4;
  const TaskGraph g = record_graph(toy_model(), shape, opt);
  // 3 records x (parse + 4 response chunks + write_v2).
  ASSERT_EQ(g.tasks.size(), 18u);
  EXPECT_NEAR(g.work(), 0.5 + 3.0 + 0.25 + 0.4 + 2.0 + 0.2 + 0.9 + 1.5 +
                            0.15,
              1e-12);
  // Splitting shortens the span: SS01's chain is 0.5 + 3.0/4 + 0.25.
  EXPECT_NEAR(g.span(), 0.5 + 0.75 + 0.25, 1e-12);
  // write_v2 waits for every response chunk of its record, plus the
  // fall-through edge its missing peaks/fourier deps resolve to
  // (parse, the nearest ancestor that ran).
  for (const Task& t : g.tasks) {
    if (t.stage == "write_v2") {
      EXPECT_EQ(t.deps.size(), 5u);
    }
  }
}

TEST(SchedSimulator, MissingDepFallsThroughToAncestor) {
  // A record whose report lacks an intermediate stage still forms a
  // connected chain (pruned/shed stages are skipped, not broken over).
  CostModel m;
  RecordCosts r;
  r.record = "X";
  r.points = 1;
  r.stage_seconds = {{"parse", 1.0}, {"write_v2", 1.0}};
  m.records.push_back(r);
  const auto shape = pipeline::StageGraph::standard().shape();
  const TaskGraph g = record_graph(m, shape, {});
  ASSERT_EQ(g.tasks.size(), 2u);
  ASSERT_EQ(g.tasks[1].stage, "write_v2");
  ASSERT_EQ(g.tasks[1].deps.size(), 1u);
  EXPECT_EQ(g.tasks[0].stage, "parse");
  EXPECT_EQ(g.tasks[1].deps[0], 0);
  EXPECT_DOUBLE_EQ(g.span(), 2.0);
}

TEST(SchedSimulator, ScheduleIsDeterministicAndBrentBounded) {
  const auto shape = pipeline::StageGraph::standard().shape();
  GraphOptions opt;
  opt.split = 3;
  const TaskGraph g = record_graph(toy_model(), shape, opt);
  for (const int procs : {1, 2, 4, 12}) {
    const Schedule a = list_schedule(g, procs, 12450);
    const Schedule b = list_schedule(g, procs, 12450);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (std::size_t i = 0; i < a.placements.size(); ++i) {
      EXPECT_EQ(a.placements[i].task, b.placements[i].task);
      EXPECT_EQ(a.placements[i].proc, b.placements[i].proc);
      EXPECT_DOUBLE_EQ(a.placements[i].start, b.placements[i].start);
    }
    const double lower = std::max(g.work() / procs, g.span());
    const double upper = g.work() / procs + g.span();
    EXPECT_GE(a.makespan, lower - 1e-12) << procs;
    EXPECT_LE(a.makespan, upper + 1e-12) << procs;
    // Every task placed exactly once, no processor overlap.
    ASSERT_EQ(a.placements.size(), g.tasks.size());
  }
  // Different seeds may reorder ties but never violate the bounds.
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const double makespan = list_schedule(g, 4, seed).makespan;
    EXPECT_GE(makespan, std::max(g.work() / 4, g.span()) - 1e-12);
    EXPECT_LE(makespan, g.work() / 4 + g.span() + 1e-12);
  }
}

TEST(SchedAnalysis, AnchorsOnSeqOptWhenRedundantCostsAbsent) {
  // toy_model has no reparse/fas_preview/repeaks costs, so there is no
  // honest Sequential Original model; the anchor must say so.
  const auto shape = pipeline::StageGraph::standard().shape();
  AnalysisOptions opt;
  opt.procs = 4;
  auto res = analyze(toy_model(), shape, opt);
  ASSERT_TRUE(res.ok()) << res.error();
  EXPECT_EQ(res.value().anchor, "seq-opt");
  EXPECT_EQ(res.value().driver("seq"), nullptr);
  EXPECT_DOUBLE_EQ(res.value().driver("seq-opt")->speedup, 1.0);
  EXPECT_GT(res.value().driver("full")->speedup,
            res.value().driver("seq-opt")->speedup);
}

TEST(SchedAnalysis, UnknownStageInCostsIsRejected) {
  CostModel m = toy_model();
  m.records[0].stage_seconds["not_a_stage"] = 1.0;
  auto res = analyze(m, pipeline::StageGraph::standard().shape(), {});
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.error().find("not_a_stage"), std::string::npos);
}

TEST(SchedAnalysis, SweepCoversRequestedProcCounts) {
  AnalysisOptions opt;
  opt.procs = 4;
  opt.sweep = {1, 2, 8};
  auto res =
      analyze(toy_model(), pipeline::StageGraph::standard().shape(), opt);
  ASSERT_TRUE(res.ok()) << res.error();
  ASSERT_EQ(res.value().sweep.size(), 3u);
  EXPECT_EQ(res.value().sweep[0].procs, 1);
  // More processors never slow the model down.
  EXPECT_GE(res.value().sweep[0].makespan, res.value().sweep[1].makespan);
  EXPECT_GE(res.value().sweep[1].makespan, res.value().sweep[2].makespan);
}

TEST(SchedGantt, RendersOneRowPerProcessor) {
  const auto shape = pipeline::StageGraph::standard().shape();
  const TaskGraph g = record_graph(toy_model(), shape, {});
  const Schedule s = list_schedule(g, 3, 12450);
  const std::string chart = render_gantt(g, s, 40);
  EXPECT_NE(chart.find("gantt: 3 procs"), std::string::npos);
  EXPECT_NE(chart.find("p00 |"), std::string::npos);
  EXPECT_NE(chart.find("p02 |"), std::string::npos);
  EXPECT_EQ(chart.find("p03 |"), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_EQ(chart, render_gantt(g, s, 40));  // pure function
}

}  // namespace
}  // namespace acx::sched
