// Scheduler equivalence: the paper's four drivers are different
// schedules of the same stage graph, so for any workload — poisoned
// records included — they must produce identical survivor output bytes,
// identical quarantine reason sets, and (timings aside) the same
// canonical report, regardless of thread count.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "formats/v1.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"
#include "util/faultfs.hpp"
#include "util/work_pool.hpp"

namespace acx::pipeline {
namespace {

constexpr Driver kAllDrivers[] = {
    Driver::kSequential, Driver::kSequentialOptimized,
    Driver::kPartialParallel, Driver::kFullParallel, Driver::kPool};

RunnerConfig driver_config(Driver driver, int threads = 4) {
  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  cfg.driver = driver;
  cfg.threads = threads;
  return cfg;
}

std::vector<std::filesystem::path> build_event(
    FileSystem& fs, const std::filesystem::path& dir, int n_files) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig scfg;
  scfg.scale = 0.02;
  auto written = synth::build_event_dataset(fs, dir, spec, scfg);
  EXPECT_TRUE(written.ok());
  std::vector<std::filesystem::path> paths;
  for (const auto& name : written.value()) paths.push_back(dir / name);
  return paths;
}

// Poison two of the records: one bad magic, one truncated mid-block.
void poison_two(FileSystem& fs, const std::vector<std::filesystem::path>& f) {
  auto content = fs.read_file(f[1]);
  ASSERT_TRUE(content.ok());
  std::string bytes = content.value();
  bytes.replace(0, 6, "BROKEN");
  ASSERT_TRUE(fs.write_file(f[1], bytes).ok());
  ASSERT_TRUE(faultfs::truncate_file(fs, f[4], 0.5).ok());
}

TEST(Drivers, AllFourProduceIdenticalOutputsAndQuarantineSets) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto files = build_event(fs, input, 8);
  poison_two(fs, files);

  std::map<std::string, RunReport> reports;
  for (Driver driver : kAllDrivers) {
    const auto work = tmp.path() / ("work-" + std::string(to_string(driver)));
    auto run = run_pipeline(fs, input, work, driver_config(driver));
    ASSERT_TRUE(run.ok()) << to_string(driver);
    reports.emplace(to_string(driver), run.value());

    EXPECT_EQ(run.value().driver, to_string(driver));
    EXPECT_EQ(run.value().records.size(), 8u) << to_string(driver);
    EXPECT_EQ(run.value().count_quarantined(), 2) << to_string(driver);

    const ValidationSummary audit = validate_workdir(fs, work);
    EXPECT_TRUE(audit.clean())
        << to_string(driver) << ": " << audit.issues.front().kind << ": "
        << audit.issues.front().detail;
  }

  const RunReport& seq = reports.at("seq");
  for (const auto& [name, report] : reports) {
    // Identical quarantine (record, reason) sets.
    std::set<std::pair<std::string, std::string>> expect_q, got_q;
    for (const RecordOutcome& r : seq.records) {
      if (r.status == RecordOutcome::Status::kQuarantined) {
        expect_q.insert({r.record, r.reason});
      }
    }
    for (const RecordOutcome& r : report.records) {
      if (r.status == RecordOutcome::Status::kQuarantined) {
        got_q.insert({r.record, r.reason});
      }
    }
    EXPECT_EQ(expect_q, got_q) << name;

    // Identical station rollups and .rotd bytes. The 8-file event
    // leaves SS03 with both horizontals published (SS01/SS02 each lost
    // one to the poison), so the station phase really ran a sweep.
    ASSERT_EQ(seq.stations.size(), report.stations.size()) << name;
    bool any_rotd = false;
    for (std::size_t i = 0; i < seq.stations.size(); ++i) {
      const StationOutcome& a = seq.stations[i];
      const StationOutcome& b = report.stations[i];
      ASSERT_EQ(a.station, b.station) << name;
      EXPECT_EQ(a.rotd_status, b.rotd_status) << name << " " << a.station;
      EXPECT_EQ(a.rotd_reason, b.rotd_reason) << name << " " << a.station;
      if (a.rotd_status != "ok") continue;
      any_rotd = true;
      auto left = fs.read_file(a.rotd_output);
      auto right = fs.read_file(b.rotd_output);
      ASSERT_TRUE(left.ok() && right.ok()) << name << " " << a.station;
      EXPECT_EQ(left.value(), right.value())
          << name << " .rotd differs from seq at station " << a.station;
    }
    EXPECT_TRUE(any_rotd) << name << ": no station exercised the sweep";

    // Identical survivor bytes for every output (.f/.r/.v2).
    for (std::size_t i = 0; i < seq.records.size(); ++i) {
      const RecordOutcome& a = seq.records[i];
      const RecordOutcome& b = report.records[i];
      ASSERT_EQ(a.record, b.record) << name;
      if (a.status != RecordOutcome::Status::kOk) continue;
      ASSERT_EQ(a.outputs.size(), b.outputs.size()) << name;
      for (std::size_t o = 0; o < a.outputs.size(); ++o) {
        auto left = fs.read_file(a.outputs[o]);
        auto right = fs.read_file(b.outputs[o]);
        ASSERT_TRUE(left.ok() && right.ok());
        EXPECT_EQ(left.value(), right.value())
            << name << " differs from seq at " << b.outputs[o];
      }
    }
  }
}

TEST(Drivers, OnlySequentialOriginalRunsTheRedundantStages) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_event(fs, input, 2);

  for (Driver driver : kAllDrivers) {
    const auto work = tmp.path() / ("work-" + std::string(to_string(driver)));
    auto run = run_pipeline(fs, input, work, driver_config(driver));
    ASSERT_TRUE(run.ok());
    std::set<std::string> executed;
    for (const RecordOutcome& r : run.value().records) {
      for (const StageAttempt& s : r.stages) executed.insert(s.stage);
    }
    const bool original = driver == Driver::kSequential;
    for (const char* redundant : {"reparse", "fas_preview", "repeaks"}) {
      EXPECT_EQ(executed.count(redundant) > 0, original)
          << to_string(driver) << " / " << redundant;
    }
  }
}

TEST(Drivers, CanonicalReportIsByteStableAcrossDriversAndThreadCounts) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto files = build_event(fs, input, 8);
  poison_two(fs, files);

  auto canonical = [&](Driver driver, int threads, const char* tag) {
    const auto work = tmp.path() / tag;
    auto run = run_pipeline(fs, input, work, driver_config(driver, threads));
    EXPECT_TRUE(run.ok());
    return run.value().canonical_dump();
  };

  const std::string seq = canonical(Driver::kSequential, 1, "w-seq");
  EXPECT_EQ(seq, canonical(Driver::kSequentialOptimized, 1, "w-seqopt"));
  EXPECT_EQ(seq, canonical(Driver::kPartialParallel, 4, "w-partial"));
  EXPECT_EQ(seq, canonical(Driver::kFullParallel, 2, "w-full2"));
  EXPECT_EQ(seq, canonical(Driver::kFullParallel, 8, "w-full8"));
  EXPECT_EQ(seq, canonical(Driver::kPool, 2, "w-pool2"));
  EXPECT_EQ(seq, canonical(Driver::kPool, 8, "w-pool8"));
}

TEST(Drivers, PoolDriverOnASharedPoolMatchesSeqAndReportsPoolThreads) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto files = build_event(fs, input, 8);
  poison_two(fs, files);

  auto seq_run =
      run_pipeline(fs, input, tmp.path() / "w-seq",
                   driver_config(Driver::kSequential, 1));
  ASSERT_TRUE(seq_run.ok());

  // The acx_serve wiring: one process-lifetime pool shared by every
  // run; the report's thread count must reflect the pool's team, not
  // RunnerConfig::threads (which sizes only transient pools).
  WorkPool pool(3);
  RunnerConfig cfg = driver_config(Driver::kPool, 999);
  cfg.pool = &pool;
  for (int round = 0; round < 2; ++round) {
    const auto work = tmp.path() / ("w-shared" + std::to_string(round));
    auto run = run_pipeline(fs, input, work, cfg);
    ASSERT_TRUE(run.ok()) << "round " << round;
    EXPECT_EQ(run.value().driver, "pool");
    EXPECT_EQ(run.value().threads, 3);
    EXPECT_EQ(run.value().canonical_dump(), seq_run.value().canonical_dump())
        << "round " << round;
  }
  EXPECT_GE(pool.stats().executed, 16) << "both rounds ran on the pool";
  pool.shutdown();
}

TEST(Drivers, ReportRoundTripsWithDriverAndThreads) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_event(fs, input, 2);
  const auto work = tmp.path() / "work";

  RunnerConfig cfg = driver_config(Driver::kFullParallel, 3);
  cfg.baseline_total_seconds = 100.0;  // synthetic baseline -> speedup set
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().driver, "full");
  EXPECT_EQ(run.value().threads, 3);
  EXPECT_GT(run.value().speedup_vs_sequential, 0);

  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().driver, "full");
  EXPECT_EQ(parsed.value().threads, 3);
  EXPECT_NEAR(parsed.value().speedup_vs_sequential,
              run.value().speedup_vs_sequential, 1e-9);

  // v5: the per-stage profiling survives the roundtrip, and the
  // response stage shows plan-cache traffic (hit or miss, depending on
  // what earlier tests left in the process-global caches).
  const auto profile = parsed.value().stage_profile();
  ASSERT_TRUE(profile.count("response"));
  EXPECT_GE(profile.at("response").cache_hits +
                profile.at("response").cache_misses,
            2);  // one lookup per record
  EXPECT_GE(profile.at("response").setup_seconds, 0.0);
  EXPECT_GE(profile.at("response").kernel_seconds, 0.0);

  // The strict reader rejects a report claiming an unknown driver.
  std::string tampered = text.value();
  const auto pos = tampered.find("\"full\"");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 6, "\"warp\"");
  EXPECT_FALSE(RunReport::from_json_text(tampered).ok());

  // ...and one with a negated profiling counter (whether it trips the
  // negative-field check or the stage_profile cross-check).
  std::string negated = text.value();
  const auto hits_pos = negated.find("\"cache_hits\": ");
  ASSERT_NE(hits_pos, std::string::npos);
  negated.insert(hits_pos + std::string("\"cache_hits\": ").size(), "-1");
  EXPECT_FALSE(RunReport::from_json_text(negated).ok());
}

TEST(Drivers, InjectedDirFaultsAreRetriedUnderTheFullDriver) {
  test::TempDir tmp("drivers");
  RealFileSystem real;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_event(real, input, 6);

  faultfs::FaultConfig fcfg;
  fcfg.mkdir_fail_first_n = 3;  // first three scratch mkdirs fail...
  fcfg.path_filter = "/scratch/";
  faultfs::FaultyFileSystem fs(real, fcfg);

  RunnerConfig cfg = driver_config(Driver::kFullParallel, 4);
  cfg.retry.max_attempts = 5;  // ...and retry absorbs all of them
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().count_quarantined(), 0);
  EXPECT_EQ(fs.stats().injected_mkdir_faults, 3);
  EXPECT_GE(run.value().count_retries(), 3);

  const ValidationSummary audit = validate_workdir(real, work);
  EXPECT_TRUE(audit.clean())
      << audit.issues.front().kind << ": " << audit.issues.front().detail;
}

TEST(Drivers, ExhaustedDirFaultQuarantinesCleanlyUnderTheFullDriver) {
  test::TempDir tmp("drivers");
  RealFileSystem real;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  const auto files = build_event(real, input, 6);

  // Every scratch mkdir for one record fails, past retry exhaustion.
  const std::string victim_id = files[2].stem().string();
  faultfs::FaultConfig fcfg;
  fcfg.mkdir_fail_first_n = 100;
  fcfg.path_filter = "/scratch/" + victim_id;
  faultfs::FaultyFileSystem fs(real, fcfg);

  RunnerConfig cfg = driver_config(Driver::kFullParallel, 4);
  cfg.retry.max_attempts = 3;
  auto run = run_pipeline(fs, input, work, cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().count_quarantined(), 1);
  for (const RecordOutcome& r : run.value().records) {
    if (r.record != victim_id) {
      EXPECT_EQ(r.status, RecordOutcome::Status::kOk) << r.record;
      continue;
    }
    EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined);
    EXPECT_EQ(r.reason, "transient_exhausted.io.injected_mkdir_fault");
    EXPECT_TRUE(real.exists(r.quarantine));
  }

  const ValidationSummary audit = validate_workdir(real, work);
  EXPECT_TRUE(audit.clean())
      << audit.issues.front().kind << ": " << audit.issues.front().detail;
}

TEST(Drivers, FailFastStopsSequentialDriversAtTheFirstPoisonRecord) {
  test::TempDir tmp("drivers");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto files = build_event(fs, input, 6);
  poison_two(fs, files);  // poisons files[1] and files[4]

  for (Driver driver : {Driver::kSequential, Driver::kSequentialOptimized}) {
    const auto work = tmp.path() / ("work-" + std::string(to_string(driver)));
    RunnerConfig cfg = driver_config(driver, 1);
    cfg.keep_going = false;
    auto run = run_pipeline(fs, input, work, cfg);
    ASSERT_TRUE(run.ok());
    // Records run in sorted order; the run stops at files[1].
    EXPECT_EQ(run.value().records.size(), 2u) << to_string(driver);
    EXPECT_EQ(run.value().count_quarantined(), 1) << to_string(driver);
  }
}

}  // namespace
}  // namespace acx::pipeline
