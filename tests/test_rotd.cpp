// The RotD angle-sweep kernel (src/spectrum/rotd.cpp): the batched
// sweep must match the scalar per-(angle, cell) reference to 1e-9
// relative, stay bit-identical across OpenMP team sizes, respect the
// RotD00 <= RotD50 <= RotD100 ordering, be invariant under rotating
// the input pair by a sweep step, and fail with typed errors on
// malformed input.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "spectrum/response.hpp"
#include "spectrum/rotd.hpp"
#include "util/rng.hpp"

namespace acx::spectrum {
namespace {

constexpr double kDt = 0.01;

// A deterministic band-limited pair: two decorrelated enveloped noise
// traces, different per component, so the sweep has real structure.
std::vector<double> make_component(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<double> acc(n);
  double lp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * kDt;
    const double envelope = t * std::exp(-1.5 * t);
    lp += 0.35 * (rng.next_gaussian() - lp);
    acc[i] = 120.0 * envelope * lp;
  }
  return acc;
}

ResponseGrid small_grid() {
  ResponseGrid grid;
  grid.periods = {0.1, 0.2, 0.5, 1.0, 2.0};
  grid.dampings = {0.02, 0.05};
  return grid;
}

TEST(Rotd, BatchedSweepMatchesTheScalarReference) {
  const auto l = make_component(1, 400);
  const auto t = make_component(2, 400);
  const ResponseGrid grid = small_grid();

  auto fast = rotd_spectrum(l, t, kDt, grid, /*angles=*/16);
  auto slow = rotd_spectrum_reference(l, t, kDt, grid, /*angles=*/16);
  ASSERT_TRUE(fast.ok()) << fast.error().to_string();
  ASSERT_TRUE(slow.ok()) << slow.error().to_string();

  const std::size_t cells = grid.periods.size() * grid.dampings.size();
  ASSERT_EQ(fast.value().rotd50.size(), cells);
  for (std::size_t i = 0; i < cells; ++i) {
    const double tol00 = 1e-9 * std::fabs(slow.value().rotd00[i]);
    const double tol50 = 1e-9 * std::fabs(slow.value().rotd50[i]);
    const double tol100 = 1e-9 * std::fabs(slow.value().rotd100[i]);
    EXPECT_NEAR(fast.value().rotd00[i], slow.value().rotd00[i], tol00) << i;
    EXPECT_NEAR(fast.value().rotd50[i], slow.value().rotd50[i], tol50) << i;
    EXPECT_NEAR(fast.value().rotd100[i], slow.value().rotd100[i], tol100) << i;
    EXPECT_NEAR(fast.value().geomean[i], slow.value().geomean[i],
                1e-9 * std::fabs(slow.value().geomean[i]))
        << i;
  }
}

TEST(Rotd, SweepIsBitIdenticalAcrossThreadCounts) {
  const auto l = make_component(3, 512);
  const auto t = make_component(4, 512);
  const ResponseGrid grid = small_grid();

  auto serial = rotd_spectrum(l, t, kDt, grid, /*angles=*/32, /*threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.error().to_string();
  for (int threads : {2, 3, 8}) {
    auto teamed = rotd_spectrum(l, t, kDt, grid, 32, threads);
    ASSERT_TRUE(teamed.ok()) << teamed.error().to_string();
    // Exact vector equality: every angle writes only its own SA slice
    // and the percentile combination runs after the sweep, so the team
    // size must not change a single bit.
    EXPECT_EQ(serial.value().rotd00, teamed.value().rotd00) << threads;
    EXPECT_EQ(serial.value().rotd50, teamed.value().rotd50) << threads;
    EXPECT_EQ(serial.value().rotd100, teamed.value().rotd100) << threads;
    EXPECT_EQ(serial.value().geomean, teamed.value().geomean) << threads;
  }
}

TEST(Rotd, PercentilesAreOrderedAndBracketTheComponents) {
  const auto l = make_component(5, 400);
  const auto t = make_component(6, 400);
  const ResponseGrid grid = small_grid();

  auto rotd = rotd_spectrum(l, t, kDt, grid);
  ASSERT_TRUE(rotd.ok()) << rotd.error().to_string();
  auto sa_l = response_spectrum(l, kDt, grid);
  ASSERT_TRUE(sa_l.ok());
  for (std::size_t i = 0; i < rotd.value().rotd50.size(); ++i) {
    EXPECT_LE(rotd.value().rotd00[i], rotd.value().rotd50[i]) << i;
    EXPECT_LE(rotd.value().rotd50[i], rotd.value().rotd100[i]) << i;
    EXPECT_GT(rotd.value().rotd00[i], 0.0) << i;
    // Angle 0 of the sweep is component l exactly, so l's SA is inside
    // the [RotD00, RotD100] envelope by construction.
    EXPECT_LE(rotd.value().rotd00[i], sa_l.value().sa[i] + 1e-12) << i;
    EXPECT_GE(rotd.value().rotd100[i], sa_l.value().sa[i] - 1e-12) << i;
  }
}

TEST(Rotd, RotatingTheInputPairByOneSweepStepLeavesPercentilesPut) {
  // Rotating (l, t) by exactly one sweep step shifts the sweep set by
  // one slot (the wrapped angle negates the trace, which |SA| ignores),
  // so the orientation-independent percentiles must not move.
  const auto l = make_component(7, 400);
  const auto t = make_component(8, 400);
  const int angles = 18;
  const double step = 3.14159265358979323846 / angles;
  std::vector<double> l2(l.size()), t2(l.size());
  for (std::size_t i = 0; i < l.size(); ++i) {
    l2[i] = l[i] * std::cos(step) + t[i] * std::sin(step);
    t2[i] = -l[i] * std::sin(step) + t[i] * std::cos(step);
  }
  const ResponseGrid grid = small_grid();
  auto a = rotd_spectrum(l, t, kDt, grid, angles);
  auto b = rotd_spectrum(l2, t2, kDt, grid, angles);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < a.value().rotd50.size(); ++i) {
    EXPECT_NEAR(a.value().rotd00[i], b.value().rotd00[i],
                1e-9 * a.value().rotd00[i])
        << i;
    EXPECT_NEAR(a.value().rotd50[i], b.value().rotd50[i],
                1e-9 * a.value().rotd50[i])
        << i;
    EXPECT_NEAR(a.value().rotd100[i], b.value().rotd100[i],
                1e-9 * a.value().rotd100[i])
        << i;
  }
}

TEST(Rotd, GeomeanIsTheRootProductOfTheComponentSpectra) {
  const auto l = make_component(9, 300);
  const auto t = make_component(10, 300);
  const ResponseGrid grid = small_grid();

  auto rotd = rotd_spectrum(l, t, kDt, grid, /*angles=*/4);
  auto sa_l = response_spectrum(l, kDt, grid);
  auto sa_t = response_spectrum(t, kDt, grid);
  ASSERT_TRUE(rotd.ok() && sa_l.ok() && sa_t.ok());
  for (std::size_t i = 0; i < rotd.value().geomean.size(); ++i) {
    const double expect = std::sqrt(sa_l.value().sa[i] * sa_t.value().sa[i]);
    EXPECT_NEAR(rotd.value().geomean[i], expect, 1e-9 * expect) << i;
  }
}

TEST(Rotd, MalformedInputsFailWithTypedErrors) {
  const auto l = make_component(11, 64);
  const ResponseGrid grid = small_grid();

  std::vector<double> shorter(l.begin(), l.end() - 1);
  auto mismatch = rotd_spectrum(l, shorter, kDt, grid);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().code, SpectrumError::Code::kComponentMismatch);

  for (int bad_angles : {0, -1, kRotdMaxAngles + 1}) {
    auto bad = rotd_spectrum(l, l, kDt, grid, bad_angles);
    ASSERT_FALSE(bad.ok()) << bad_angles;
    EXPECT_EQ(bad.error().code, SpectrumError::Code::kBadAngleCount)
        << bad_angles;
  }

  const std::vector<double> empty;
  auto none = rotd_spectrum(empty, empty, kDt, grid);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.error().code, SpectrumError::Code::kEmptyInput);

  const std::vector<double> one(1, 1.0);
  auto tiny = rotd_spectrum(one, one, kDt, grid);
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.error().code, SpectrumError::Code::kTooShort);

  std::vector<double> poisoned = l;
  poisoned[7] = std::numeric_limits<double>::quiet_NaN();
  auto nan = rotd_spectrum(l, poisoned, kDt, grid);
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.error().code, SpectrumError::Code::kNonFinite);

  // The scalar reference enforces the same contract.
  auto ref = rotd_spectrum_reference(l, shorter, kDt, grid);
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(ref.error().code, SpectrumError::Code::kComponentMismatch);
}

}  // namespace
}  // namespace acx::spectrum
