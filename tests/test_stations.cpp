// The multi-component station layer end to end: a 3-component synth
// event rolls up into v7 StationOutcomes with a published .rotd per
// full station, the malformed-corpus pre-scan quarantines with typed
// station.* reasons (dt mismatch, duplicate component claim, short
// duration), a missing horizontal downgrades to a typed rotd skip, and
// acx_validate's audit stays clean through all of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "formats/spectra.hpp"
#include "formats/v1.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace acx::pipeline {
namespace {

RunnerConfig test_config() {
  RunnerConfig cfg;
  cfg.sleep = [](int) {};
  return cfg;
}

void build_small_event(FileSystem& fs, const std::filesystem::path& dir,
                       int n_files = 6) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig cfg;
  cfg.scale = 0.02;
  auto written = synth::build_event_dataset(fs, dir, spec, cfg);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
}

formats::Record station_record(const std::string& station,
                               const std::string& component, long npts,
                               double dt = 0.005) {
  formats::Record rec;
  rec.header.station = station;
  rec.header.component = component;
  rec.header.event_id = "EV99";
  rec.header.date = "2020-01-01";
  rec.header.dt = dt;
  rec.header.npts = npts;
  rec.header.units = "counts";
  for (long i = 0; i < npts; ++i) {
    rec.samples.push_back(95.0 + 13.0 * static_cast<double>(i % 11) -
                          7.0 * static_cast<double>(i % 5));
  }
  return rec;
}

const StationOutcome* find_station(const RunReport& report,
                                   const std::string& name) {
  for (const StationOutcome& st : report.stations) {
    if (st.station == name) return &st;
  }
  return nullptr;
}

TEST(Stations, ThreeComponentEventRollsUpWithPublishedRotd) {
  test::TempDir tmp("stations");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 6);  // SS01{l,t,v} + SS02{l,t,v}

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const RunReport& report = run.value();
  EXPECT_EQ(report.count_ok(), 6);
  ASSERT_EQ(report.stations.size(), 2u);

  for (const char* name : {"SS01", "SS02"}) {
    const StationOutcome* st = find_station(report, name);
    ASSERT_NE(st, nullptr) << name;
    std::vector<std::string> comps = st->components;
    std::sort(comps.begin(), comps.end());
    EXPECT_EQ(comps, (std::vector<std::string>{"l", "t", "v"})) << name;
    EXPECT_EQ(st->ok, 3) << name;
    EXPECT_EQ(st->quarantined, 0) << name;
    EXPECT_TRUE(st->checks.empty()) << name;
    ASSERT_EQ(st->rotd_status, "ok") << name;
    EXPECT_TRUE(st->rotd_reason.empty()) << name;

    // The published .rotd passes the strict reader, names this station,
    // swept the default 180 angles, and respects the percentile order.
    auto content = fs.read_file(st->rotd_output);
    ASSERT_TRUE(content.ok()) << name;
    auto rd = formats::read_rotd(content.value());
    ASSERT_TRUE(rd.ok()) << name << ": " << rd.error().to_string();
    EXPECT_EQ(rd.value().station, name);
    EXPECT_EQ(rd.value().angles, 180);
    for (std::size_t i = 0; i < rd.value().rotd50.size(); ++i) {
      EXPECT_LE(rd.value().rotd00[i], rd.value().rotd50[i]) << name;
      EXPECT_LE(rd.value().rotd50[i], rd.value().rotd100[i]) << name;
    }
    // The station stage was timed like any other stage.
    ASSERT_FALSE(st->stages.empty()) << name;
    EXPECT_EQ(st->stages.back().stage, "rotd") << name;
    EXPECT_TRUE(st->stages.back().ok) << name;
  }

  // The station stage shows up in the profile rollups, the written
  // report survives its own strict parser, and the audit is clean.
  EXPECT_TRUE(report.stage_totals().count("rotd"));
  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().stations.size(), 2u);

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
  EXPECT_EQ(audit.stations_rotd_ok, 2);
}

TEST(Stations, MissingHorizontalSkipsRotdWithTypedReason) {
  test::TempDir tmp("stations");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 6);
  // Drop SS01's t component: the l and v records still publish, only
  // the station product is withheld.
  ASSERT_TRUE(fs.exists(input / "SS01t.v1"));
  ASSERT_TRUE(fs.remove_all(input / "SS01t.v1").ok());

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  EXPECT_EQ(report.count_ok(), 5);
  EXPECT_EQ(report.count_quarantined(), 0);

  const StationOutcome* partial = find_station(report, "SS01");
  ASSERT_NE(partial, nullptr);
  EXPECT_EQ(partial->ok, 2);
  EXPECT_EQ(partial->rotd_status, "skipped");
  EXPECT_EQ(partial->rotd_reason, "station.missing_component");
  EXPECT_TRUE(partial->rotd_output.empty());
  EXPECT_EQ(partial->checks,
            (std::vector<std::string>{"station.missing_component"}));

  const StationOutcome* full = find_station(report, "SS02");
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->rotd_status, "ok");

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
  EXPECT_EQ(audit.stations_rotd_ok, 1);
}

TEST(Stations, DtMismatchQuarantinesEveryParsedMember) {
  test::TempDir tmp("stations");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  ASSERT_TRUE(fs.write_file(input / "TT01l.v1",
                            formats::write_v1(station_record("TT01", "l", 80)))
                  .ok());
  ASSERT_TRUE(
      fs.write_file(
            input / "TT01t.v1",
            formats::write_v1(station_record("TT01", "t", 80, /*dt=*/0.01)))
          .ok());
  ASSERT_TRUE(fs.write_file(input / "TT01v.v1",
                            formats::write_v1(station_record("TT01", "v", 80)))
                  .ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  ASSERT_EQ(report.records.size(), 3u);
  for (const RecordOutcome& r : report.records) {
    EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined) << r.record;
    EXPECT_EQ(r.reason, "station.dt_mismatch") << r.record;
    EXPECT_TRUE(fs.exists(r.quarantine)) << r.record;
  }
  const StationOutcome* st = find_station(report, "TT01");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->quarantined, 3);
  EXPECT_EQ(st->rotd_status, "skipped");
  const auto& checks = st->checks;
  EXPECT_NE(std::find(checks.begin(), checks.end(), "station.dt_mismatch"),
            checks.end());

  const ValidationSummary audit = validate_workdir(fs, tmp.path() / "work");
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
}

TEST(Stations, DuplicateComponentClaimQuarantinesBothClaimants) {
  test::TempDir tmp("stations");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  ASSERT_TRUE(fs.write_file(input / "TT01l.v1",
                            formats::write_v1(station_record("TT01", "l", 80)))
                  .ok());
  ASSERT_TRUE(fs.write_file(input / "TT01t.v1",
                            formats::write_v1(station_record("TT01", "t", 80)))
                  .ok());
  // The file named TT01v carries a header that claims component l —
  // two inputs of one station claiming one axis, no way to pick a
  // winner, so both claimants quarantine.
  ASSERT_TRUE(fs.write_file(input / "TT01v.v1",
                            formats::write_v1(station_record("TT01", "l", 80)))
                  .ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();
  ASSERT_EQ(report.records.size(), 3u);
  for (const RecordOutcome& r : report.records) {
    if (r.record == "TT01t") {
      EXPECT_EQ(r.status, RecordOutcome::Status::kOk) << r.record;
    } else {
      EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined) << r.record;
      EXPECT_EQ(r.reason, "station.duplicate_component") << r.record;
    }
  }
  const StationOutcome* st = find_station(report, "TT01");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->ok, 1);
  EXPECT_EQ(st->quarantined, 2);
  // The surviving t has no l to pair with: a typed skip, not a failure.
  EXPECT_EQ(st->rotd_status, "skipped");
  EXPECT_EQ(st->rotd_reason, "station.missing_component");

  const ValidationSummary audit = validate_workdir(fs, tmp.path() / "work");
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
}

TEST(Stations, ShortDurationHeaderPrequarantinesBelowTheFloor) {
  test::TempDir tmp("stations");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  // 10 samples x 0.005 s = 0.05 s of signal, under the 0.1 s default
  // floor: quarantined by the pre-scan before any stage runs.
  ASSERT_TRUE(fs.write_file(input / "TT01l.v1",
                            formats::write_v1(station_record("TT01", "l", 10)))
                  .ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().records.size(), 1u);
  const RecordOutcome& r = run.value().records[0];
  EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined);
  EXPECT_EQ(r.reason, "station.short_duration");
  // No stage ever ran on the poisoned slot.
  for (const StageAttempt& s : r.stages) {
    EXPECT_NE(s.stage, "parse");
  }

  // Raising the floor off: the same record only makes it to the
  // bandpass stage's own too-short check, proving the pre-scan (not
  // the signal chain) owned the earlier verdict.
  RunnerConfig relaxed = test_config();
  relaxed.min_station_duration_s = 0.0;
  auto rerun = run_pipeline(fs, input, tmp.path() / "work2", relaxed);
  ASSERT_TRUE(rerun.ok());
  ASSERT_EQ(rerun.value().records.size(), 1u);
  EXPECT_EQ(rerun.value().records[0].reason, "signal.too_short");
}

}  // namespace
}  // namespace acx::pipeline
