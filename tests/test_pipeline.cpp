#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "formats/spectra.hpp"
#include "formats/v1.hpp"
#include "formats/v2.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace acx::pipeline {
namespace {

RunnerConfig test_config() {
  RunnerConfig cfg;
  cfg.sleep = [](int) {};  // no real backoff sleeps in tests
  return cfg;
}

void build_small_event(FileSystem& fs, const std::filesystem::path& dir,
                       int n_files = 6) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig cfg;
  cfg.scale = 0.02;
  auto written = synth::build_event_dataset(fs, dir, spec, cfg);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
}

TEST(Pipeline, HappyPathProducesAllOutputsAndCleanReport) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input);

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const RunReport& report = run.value();

  EXPECT_EQ(report.records.size(), 6u);
  EXPECT_EQ(report.count_ok(), 6);
  EXPECT_EQ(report.count_quarantined(), 0);
  EXPECT_EQ(report.count_retries(), 0);

  for (const RecordOutcome& r : report.records) {
    EXPECT_EQ(r.status, RecordOutcome::Status::kOk);
    auto content = fs.read_file(r.output);
    ASSERT_TRUE(content.ok());
    auto v2 = formats::read_v2(content.value());
    ASSERT_TRUE(v2.ok()) << v2.error().to_string();
    EXPECT_EQ(v2.value().record.header.units, "cm/s2");
    EXPECT_EQ(v2.value().processing,
              (std::vector<std::string>{"calibrate", "demean", "corners",
                                        "bandpass", "detrend", "integrate",
                                        "peaks", "fourier", "response",
                                        "write_v2"}));
    // Demean + band-pass + detrend really happened: mean is ~0.
    const auto& s = v2.value().record.samples;
    const double mean = std::accumulate(s.begin(), s.end(), 0.0) /
                        static_cast<double>(s.size());
    EXPECT_NEAR(mean, 0.0, 1e-3);
    // The peak block is present and PGA matches the data block exactly.
    ASSERT_TRUE(v2.value().peaks.present);
    double max_abs = 0.0;
    for (const double v : s) max_abs = std::max(max_abs, std::fabs(v));
    EXPECT_NEAR(std::fabs(v2.value().peaks.pga.value), max_abs,
                1e-4 * max_abs);  // %12.4e data cells keep 5 digits
    // Processing history rode along as comments.
    EXPECT_FALSE(v2.value().comments.empty());
    // The spectral outputs are claimed alongside the V2 and pass their
    // own strict readers.
    // outputs are sorted for byte-stable reports: .f, .r, .v2.
    ASSERT_EQ(r.outputs.size(), 3u);
    EXPECT_EQ(r.outputs[2], r.output);
    auto f_content = fs.read_file(r.outputs[0]);
    ASSERT_TRUE(f_content.ok());
    auto f = formats::read_f(f_content.value());
    ASSERT_TRUE(f.ok()) << f.error().to_string();
    EXPECT_EQ(f.value().header.id(), r.record);
    auto r_content = fs.read_file(r.outputs[1]);
    ASSERT_TRUE(r_content.ok());
    auto rr = formats::read_r(r_content.value());
    ASSERT_TRUE(rr.ok()) << rr.error().to_string();
    EXPECT_EQ(rr.value().header.id(), r.record);
    EXPECT_EQ(rr.value().periods.size(), 600u);
    EXPECT_EQ(rr.value().dampings.size(), 5u);
  }

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
  EXPECT_EQ(audit.records_ok, 6);
}

TEST(Pipeline, ReportRoundTripsThroughJson) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());

  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const RunReport& back = parsed.value();
  EXPECT_EQ(back.records.size(), run.value().records.size());
  EXPECT_EQ(back.count_ok(), run.value().count_ok());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].record, run.value().records[i].record);
    EXPECT_EQ(back.records[i].output, run.value().records[i].output);
    ASSERT_EQ(back.records[i].stages.size(),
              run.value().records[i].stages.size());
  }
}

TEST(Pipeline, EmptyInputDirYieldsEmptyReport) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().records.empty());
}

TEST(Pipeline, NonV1FilesAreIgnored) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_small_event(fs, input, 3);
  ASSERT_TRUE(fs.write_file(input / "notes.txt", "not a record").ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().records.size(), 3u);
}

TEST(Pipeline, FailFastStopsAtFirstPoisonedRecord) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_small_event(fs, input, 4);

  // Poison the alphabetically first record.
  auto listed = fs.list_dir(input);
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(fs.write_file(listed.value().front(), "garbage\n").ok());

  RunnerConfig cfg = test_config();
  cfg.keep_going = false;
  auto run = run_pipeline(fs, input, tmp.path() / "work", cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().records.size(), 1u);
  EXPECT_EQ(run.value().records[0].status, RecordOutcome::Status::kQuarantined);
}

TEST(Pipeline, ValidatorFlagsTamperedWorkdir) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);
  ASSERT_TRUE(run_pipeline(fs, input, work, test_config()).ok());

  // A leftover atomic temp and an unclaimed output must both be caught.
  ASSERT_TRUE(
      fs.write_file(work / "out" / ".acx-tmp.SS01l.v2.0", "partial").ok());
  ASSERT_TRUE(fs.write_file(work / "out" / "rogue.v2", "not claimed").ok());

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  bool saw_partial = false, saw_unexpected = false;
  for (const auto& issue : audit.issues) {
    if (issue.kind == "partial_write") saw_partial = true;
    if (issue.kind == "unexpected_file") saw_unexpected = true;
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_unexpected);
}

TEST(Pipeline, ReportCarriesPerStageWallClock) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());
  const RunReport& report = run.value();

  EXPECT_GT(report.total_seconds, 0.0);
  for (const RecordOutcome& r : report.records) {
    double stage_sum = 0.0;
    for (const StageAttempt& s : r.stages) {
      EXPECT_GE(s.seconds, 0.0) << r.record << "/" << s.stage;
      stage_sum += s.seconds;
    }
    EXPECT_NEAR(r.seconds, stage_sum, 1e-9);
  }
  // Every stage of the chain shows up in the per-stage totals.
  const auto totals = report.stage_totals();
  for (const char* stage :
       {"scratch_setup", "stage_in", "parse", "calibrate", "demean",
        "corners", "bandpass", "detrend", "integrate", "peaks", "fourier",
        "response", "write_v2"}) {
    ASSERT_TRUE(totals.count(stage)) << stage;
    EXPECT_GE(totals.at(stage), 0.0) << stage;
  }
  // Stage shares sum to 1 and cover the same stages (the handle for the
  // paper's "Stage IX is 57.2% of the sequential run" measurement).
  const auto shares = report.stage_shares();
  EXPECT_EQ(shares.size(), totals.size());
  double share_sum = 0.0;
  for (const auto& [stage, share] : shares) {
    ASSERT_TRUE(totals.count(stage)) << stage;
    EXPECT_GE(share, 0.0);
    share_sum += share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  // The timings survive the JSON round trip (acx_validate relies on it).
  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("\"stage_totals\""), std::string::npos);
  EXPECT_NE(text.value().find("\"total_seconds\""), std::string::npos);
  auto back = RunReport::from_json_text(text.value());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_NEAR(back.value().total_seconds, report.total_seconds,
              1e-9 + 1e-9 * report.total_seconds);
}

formats::Record make_tiny_record(long npts, double value,
                                 const std::string& units) {
  formats::Record rec;
  rec.header.station = "TT01";
  rec.header.component = "l";
  rec.header.event_id = "EV99";
  rec.header.date = "2020-01-01";
  rec.header.dt = 0.005;
  rec.header.npts = npts;
  rec.header.units = units;
  for (long i = 0; i < npts; ++i) {
    rec.samples.push_back(value * (1.0 + 0.01 * static_cast<double>(i % 7)));
  }
  return rec;
}

TEST(Pipeline, TooShortRecordQuarantinesWithTypedSignalReason) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  // 30 samples parse fine but cannot carry the minimum 21-tap FIR
  // (needs >= 63): poison at the bandpass stage, not a parse error.
  ASSERT_TRUE(fs.write_file(input / "TT01l.v1",
                            formats::write_v1(make_tiny_record(30, 100.0,
                                                               "counts")))
                  .ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().records.size(), 1u);
  const RecordOutcome& r = run.value().records[0];
  EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined);
  EXPECT_EQ(r.reason, "signal.too_short");
  EXPECT_FALSE(r.stages.empty());
  EXPECT_EQ(r.stages.back().stage, "bandpass");
}

TEST(Pipeline, OverflowingRecordQuarantinesAsNonFinite) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  // Every sample near DBL_MAX: each is finite (so the strict parser
  // accepts the file), but the demean sum overflows to infinity — the
  // numerical chain must catch what the parser cannot.
  ASSERT_TRUE(fs.write_file(input / "TT01l.v1",
                            formats::write_v1(make_tiny_record(80, 1e308,
                                                               "cm/s2")))
                  .ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.value().records.size(), 1u);
  const RecordOutcome& r = run.value().records[0];
  EXPECT_EQ(r.status, RecordOutcome::Status::kQuarantined);
  EXPECT_EQ(r.reason, "signal.non_finite");
  EXPECT_EQ(r.stages.back().stage, "demean");
}

TEST(Pipeline, ValidatorFlagsOutputWithoutPeakBlock) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);
  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());

  // Strip the whole peak block from one claimed output. The file is
  // still a well-formed V2 (the block is optional in the format), but
  // the pipeline contract says outputs must carry it.
  auto content = fs.read_file(run.value().records[0].output);
  ASSERT_TRUE(content.ok());
  std::string text = content.value();
  for (const char* prefix : {"PGA ", "PGV ", "PGD "}) {
    const auto pos = text.find(prefix);
    ASSERT_NE(pos, std::string::npos);
    text.erase(pos, text.find('\n', pos) - pos + 1);
  }
  ASSERT_TRUE(fs.write_file(run.value().records[0].output, text).ok());

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  bool saw_missing_peaks = false;
  for (const auto& issue : audit.issues) {
    if (issue.kind == "missing_peaks") saw_missing_peaks = true;
  }
  EXPECT_TRUE(saw_missing_peaks);
}

TEST(Pipeline, ValidatorFlagsCorruptOutput) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);
  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());

  // Corrupt one claimed output in place.
  ASSERT_TRUE(
      fs.write_file(run.value().records[0].output, "ACX-V2 1\nbroken").ok());
  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  EXPECT_EQ(audit.issues[0].kind, "corrupt_output");
}

}  // namespace
}  // namespace acx::pipeline
