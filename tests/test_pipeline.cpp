#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "formats/v2.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/validate.hpp"
#include "synth/synth.hpp"
#include "test_helpers.hpp"

namespace acx::pipeline {
namespace {

RunnerConfig test_config() {
  RunnerConfig cfg;
  cfg.sleep = [](int) {};  // no real backoff sleeps in tests
  return cfg;
}

void build_small_event(FileSystem& fs, const std::filesystem::path& dir,
                       int n_files = 6) {
  synth::EventSpec spec = synth::paper_events()[0];
  spec.n_files = n_files;
  synth::SynthConfig cfg;
  cfg.scale = 0.02;
  auto written = synth::build_event_dataset(fs, dir, spec, cfg);
  ASSERT_TRUE(written.ok()) << written.error().to_string();
}

TEST(Pipeline, HappyPathProducesAllOutputsAndCleanReport) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input);

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok()) << run.error().to_string();
  const RunReport& report = run.value();

  EXPECT_EQ(report.records.size(), 6u);
  EXPECT_EQ(report.count_ok(), 6);
  EXPECT_EQ(report.count_quarantined(), 0);
  EXPECT_EQ(report.count_retries(), 0);

  for (const RecordOutcome& r : report.records) {
    EXPECT_EQ(r.status, RecordOutcome::Status::kOk);
    auto content = fs.read_file(r.output);
    ASSERT_TRUE(content.ok());
    auto v2 = formats::read_v2(content.value());
    ASSERT_TRUE(v2.ok()) << v2.error().to_string();
    EXPECT_EQ(v2.value().record.header.units, "cm/s2");
    EXPECT_EQ(v2.value().processing,
              (std::vector<std::string>{"demean", "detrend", "write_v2"}));
    // Demean + detrend really happened: mean is ~0.
    const auto& s = v2.value().record.samples;
    const double mean = std::accumulate(s.begin(), s.end(), 0.0) /
                        static_cast<double>(s.size());
    EXPECT_NEAR(mean, 0.0, 1e-3);
  }

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_TRUE(audit.clean()) << audit.issues.front().kind << ": "
                             << audit.issues.front().detail;
  EXPECT_EQ(audit.records_ok, 6);
}

TEST(Pipeline, ReportRoundTripsThroughJson) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);

  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());

  auto text = fs.read_file(work / kRunReportFileName);
  ASSERT_TRUE(text.ok());
  auto parsed = RunReport::from_json_text(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const RunReport& back = parsed.value();
  EXPECT_EQ(back.records.size(), run.value().records.size());
  EXPECT_EQ(back.count_ok(), run.value().count_ok());
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].record, run.value().records[i].record);
    EXPECT_EQ(back.records[i].output, run.value().records[i].output);
    ASSERT_EQ(back.records[i].stages.size(),
              run.value().records[i].stages.size());
  }
}

TEST(Pipeline, EmptyInputDirYieldsEmptyReport) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  ASSERT_TRUE(fs.create_directories(input).ok());
  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().records.empty());
}

TEST(Pipeline, NonV1FilesAreIgnored) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_small_event(fs, input, 3);
  ASSERT_TRUE(fs.write_file(input / "notes.txt", "not a record").ok());

  auto run = run_pipeline(fs, input, tmp.path() / "work", test_config());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().records.size(), 3u);
}

TEST(Pipeline, FailFastStopsAtFirstPoisonedRecord) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  build_small_event(fs, input, 4);

  // Poison the alphabetically first record.
  auto listed = fs.list_dir(input);
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(fs.write_file(listed.value().front(), "garbage\n").ok());

  RunnerConfig cfg = test_config();
  cfg.keep_going = false;
  auto run = run_pipeline(fs, input, tmp.path() / "work", cfg);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().records.size(), 1u);
  EXPECT_EQ(run.value().records[0].status, RecordOutcome::Status::kQuarantined);
}

TEST(Pipeline, ValidatorFlagsTamperedWorkdir) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);
  ASSERT_TRUE(run_pipeline(fs, input, work, test_config()).ok());

  // A leftover atomic temp and an unclaimed output must both be caught.
  ASSERT_TRUE(
      fs.write_file(work / "out" / ".acx-tmp.SS01l.v2.0", "partial").ok());
  ASSERT_TRUE(fs.write_file(work / "out" / "rogue.v2", "not claimed").ok());

  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  bool saw_partial = false, saw_unexpected = false;
  for (const auto& issue : audit.issues) {
    if (issue.kind == "partial_write") saw_partial = true;
    if (issue.kind == "unexpected_file") saw_unexpected = true;
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_unexpected);
}

TEST(Pipeline, ValidatorFlagsCorruptOutput) {
  test::TempDir tmp("pipeline");
  RealFileSystem fs;
  const auto input = tmp.path() / "input";
  const auto work = tmp.path() / "work";
  build_small_event(fs, input, 3);
  auto run = run_pipeline(fs, input, work, test_config());
  ASSERT_TRUE(run.ok());

  // Corrupt one claimed output in place.
  ASSERT_TRUE(
      fs.write_file(run.value().records[0].output, "ACX-V2 1\nbroken").ok());
  const ValidationSummary audit = validate_workdir(fs, work);
  EXPECT_FALSE(audit.clean());
  EXPECT_EQ(audit.issues[0].kind, "corrupt_output");
}

}  // namespace
}  // namespace acx::pipeline
