// The stage graph's structural contract: the standard topology passes
// its own audit, pruning removes exactly the redundant nodes without
// severing a live edge, and verify() rejects malformed graphs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "pipeline/reasons.hpp"

namespace acx::pipeline {
namespace {

StageNode node(std::string name, std::vector<std::string> deps,
               bool redundant = false) {
  StageNode n;
  n.name = std::move(name);
  n.deps = std::move(deps);
  n.redundant = redundant;
  n.make = [] { return make_stage("demean", {}, {}); };  // any real stage
  return n;
}

TEST(StageGraph, StandardTopologyPassesItsOwnAudit) {
  const StageGraph g = StageGraph::standard();
  auto audit = g.verify();
  EXPECT_TRUE(audit.ok()) << audit.error();
}

TEST(StageGraph, StandardPlanMatchesTheReasonRegistry) {
  // The full plan (redundant included), prefixed with scratch_setup and
  // followed by the station-scoped plan, is exactly the registered
  // stage-name table — the quarantine reason registry and the graph can
  // never drift apart.
  const StageGraph g = StageGraph::standard();
  std::vector<std::string> plan = {"scratch_setup"};
  for (const StageNode* n : g.plan(/*prune_redundant=*/false)) {
    plan.push_back(n->name);
  }
  for (const StageNode* n : g.station_plan(/*prune_redundant=*/false)) {
    plan.push_back(n->name);
  }
  std::vector<std::string> table;
  for (const char* name : kStageNames) table.emplace_back(name);
  EXPECT_EQ(plan, table);
}

TEST(StageGraph, PruningRemovesExactlyTheRedundantNodes) {
  const StageGraph g = StageGraph::standard();
  const auto full = g.plan(false);
  const auto pruned = g.plan(true);
  ASSERT_EQ(full.size(), 15u);
  ASSERT_EQ(pruned.size(), 12u);

  std::vector<std::string> dropped;
  for (const StageNode* n : full) {
    bool kept = false;
    for (const StageNode* p : pruned) kept = kept || p == n;
    if (!kept) dropped.push_back(n->name);
  }
  // The paper's P#6/P#12/P#14 analogues, and nothing else.
  EXPECT_EQ(dropped,
            (std::vector<std::string>{"reparse", "fas_preview", "repeaks"}));
  for (const StageNode* n : pruned) EXPECT_FALSE(n->redundant) << n->name;
}

TEST(StageGraph, EveryStageFactoryProducesItsNamedStage) {
  const StageGraph g = StageGraph::standard();
  for (const StageNode* n : g.plan(false)) {
    auto stage = n->make();
    ASSERT_NE(stage, nullptr) << n->name;
    EXPECT_EQ(stage->name(), n->name);
  }
  EXPECT_EQ(make_stage("no_such_stage", {}, {}), nullptr);
}

TEST(StageGraph, VerifyRejectsUnknownAndForwardDeps) {
  StageGraph unknown;
  unknown.add(node("a", {"ghost"}));
  auto audit = unknown.verify();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.error().find("unknown stage 'ghost'"), std::string::npos);

  // Deps on later nodes are rejected: declaration order must be
  // topological, it doubles as the sequential execution order.
  StageGraph forward;
  forward.add(node("a", {"b"}));
  forward.add(node("b", {}));
  audit = forward.verify();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.error().find("later stage 'b'"), std::string::npos);
}

TEST(StageGraph, VerifyRejectsDuplicatesAndMissingFactories) {
  StageGraph dup;
  dup.add(node("a", {}));
  dup.add(node("a", {}));
  auto audit = dup.verify();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.error().find("duplicate"), std::string::npos);

  StageGraph unmade;
  StageNode n = node("a", {});
  n.make = nullptr;
  unmade.add(std::move(n));
  audit = unmade.verify();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.error().find("no factory"), std::string::npos);
}

TEST(StageGraph, VerifyRejectsLiveDependencyOnRedundantNode) {
  // Pruning must never sever an edge a surviving node depends on.
  StageGraph g;
  g.add(node("a", {}));
  g.add(node("extra", {"a"}, /*redundant=*/true));
  g.add(node("b", {"extra"}));
  auto audit = g.verify();
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.error().find("redundant stage 'extra'"), std::string::npos);

  // A redundant node depending on another redundant node is fine: they
  // are pruned together.
  StageGraph ok;
  ok.add(node("a", {}));
  ok.add(node("extra", {"a"}, true));
  ok.add(node("extra2", {"extra"}, true));
  EXPECT_TRUE(ok.verify().ok());
}

}  // namespace
}  // namespace acx::pipeline
