#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace acx::test {

// Unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("acx-test-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

// True when ThreadSanitizer instruments this build. GCC's libgomp
// synchronizes its thread teams with bare futexes tsan cannot see, so
// any multi-threaded OpenMP region reports false races under tsan.
// Tests whose threading exists only to scale an OpenMP team (rather
// than to exercise locking) clamp the team to one thread in that
// configuration; the std::thread-based cache tests keep full
// concurrency everywhere.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif
#else
inline constexpr bool kTsanBuild = false;
#endif

}  // namespace acx::test
