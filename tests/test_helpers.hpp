#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace acx::test {

// Unique scratch directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("acx-test-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace acx::test
