#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/result.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace acx {
namespace {

TEST(Result, HoldsValueOrError) {
  Result<int, std::string> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  Result<int, std::string> err(std::string("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "boom");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Rng, DeterministicStreams) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seeds diverge immediately (overwhelmingly likely).
  EXPECT_NE(Xoshiro256(123).next_u64(), c.next_u64());
  Xoshiro256 d(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Fs, ReadWriteRoundTrip) {
  test::TempDir tmp("fs");
  RealFileSystem fs;
  const auto path = tmp.path() / "a.txt";
  ASSERT_TRUE(fs.write_file(path, "hello").ok());
  auto read = fs.read_file(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello");
}

TEST(Fs, ReadMissingFileIsPoison) {
  test::TempDir tmp("fs");
  RealFileSystem fs;
  auto read = fs.read_file(tmp.path() / "nope.txt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, IoError::Code::kNotFound);
  EXPECT_EQ(read.error().klass, ErrorClass::kPoison);
}

TEST(Fs, AtomicWriteLeavesNoTemporary) {
  test::TempDir tmp("fs");
  RealFileSystem fs;
  const auto path = tmp.path() / "out.v2";
  ASSERT_TRUE(atomic_write_file(fs, path, "content").ok());
  auto files = fs.list_dir(tmp.path());
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 1u);
  EXPECT_EQ(files.value()[0].filename(), "out.v2");
  EXPECT_FALSE(is_atomic_tmp_name(files.value()[0]));
}

TEST(Fs, ListTreeIsRecursiveAndSorted) {
  test::TempDir tmp("fs");
  RealFileSystem fs;
  ASSERT_TRUE(fs.create_directories(tmp.path() / "sub").ok());
  ASSERT_TRUE(fs.write_file(tmp.path() / "sub" / "b.txt", "b").ok());
  ASSERT_TRUE(fs.write_file(tmp.path() / "a.txt", "a").ok());
  auto tree = fs.list_tree(tmp.path());
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree.value().size(), 2u);
  EXPECT_EQ(tree.value()[0].filename(), "a.txt");
  EXPECT_EQ(tree.value()[1].filename(), "b.txt");
}

TEST(Retry, BackoffIsCappedExponential) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.multiplier = 2.0;
  p.max_backoff_ms = 50;
  EXPECT_EQ(p.backoff_ms_for(1), 10);
  EXPECT_EQ(p.backoff_ms_for(2), 20);
  EXPECT_EQ(p.backoff_ms_for(3), 40);
  EXPECT_EQ(p.backoff_ms_for(4), 50);   // capped
  EXPECT_EQ(p.backoff_ms_for(10), 50);  // stays capped
}

TEST(Retry, JitteredBackoffIsDeterministicBoundedAndSaltDecorrelated) {
  RetryPolicy p;
  p.max_attempts = 6;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 250;
  p.jitter_fraction = 0.5;
  p.jitter_seed = 7;

  auto collect = [&](std::uint64_t salt) {
    std::vector<int> sleeps;
    (void)run_with_retry<Unit, IoError>(
        p, [&](int ms) { sleeps.push_back(ms); },
        [](const IoError& e) { return e.klass; },
        [&]() -> Result<Unit, IoError> {
          return IoError{IoError::Code::kWriteFailed, ErrorClass::kTransient,
                         "x", "flaky"};
        },
        nullptr, salt);
    return sleeps;
  };

  // Fixed (seed, salt) reproduces every sleep exactly; each one lands in
  // [ceiling/2, ceiling] of the jitter-free schedule.
  const auto first = collect(1);
  EXPECT_EQ(first, collect(1));
  ASSERT_EQ(first.size(), 5u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    const int ceiling = p.backoff_ms_for(static_cast<int>(i) + 1);
    EXPECT_GE(first[i], ceiling - ceiling / 2);
    EXPECT_LE(first[i], ceiling);
  }

  // Two call sites (think: two records retrying the same stage) draw
  // from decorrelated streams — the thundering-herd fix.
  EXPECT_NE(first, collect(2));

  // jitter_fraction 0 restores the exact exponential schedule.
  RetryPolicy plain = p;
  plain.jitter_fraction = 0;
  std::vector<int> sleeps;
  (void)run_with_retry<Unit, IoError>(
      plain, [&](int ms) { sleeps.push_back(ms); },
      [](const IoError& e) { return e.klass; },
      [&]() -> Result<Unit, IoError> {
        return IoError{IoError::Code::kWriteFailed, ErrorClass::kTransient, "x",
                       ""};
      });
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20, 40, 80, 160}));
}

TEST(Retry, BudgetVetoStopsRetryingEarly) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.jitter_fraction = 0;
  int calls = 0;
  std::vector<int> sleeps;
  // Budget admits only backoffs under 30ms: attempt 1 sleeps 10, attempt
  // 2 sleeps 20, then the 40ms backoff is vetoed and the last error is
  // returned without further attempts.
  auto r = run_with_retry<Unit, IoError>(
      p, [&](int ms) { sleeps.push_back(ms); },
      [](const IoError& e) { return e.klass; },
      [&]() -> Result<Unit, IoError> {
        ++calls;
        return IoError{IoError::Code::kWriteFailed, ErrorClass::kTransient, "x",
                       ""};
      },
      nullptr, 0, [](int next_backoff_ms) { return next_backoff_ms < 30; });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps, (std::vector<int>{10, 20}));
}

TEST(Retry, TransientRetriesUntilSuccess) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  std::vector<int> sleeps;
  int attempts = 0;
  auto r = run_with_retry<Unit, IoError>(
      p, [&](int ms) { sleeps.push_back(ms); },
      [](const IoError& e) { return e.klass; },
      [&]() -> Result<Unit, IoError> {
        if (++calls < 3) {
          return IoError{IoError::Code::kWriteFailed, ErrorClass::kTransient,
                         "x", "flaky"};
        }
        return Unit{};
      },
      &attempts);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(sleeps.size(), 2u);  // slept between attempts only
}

TEST(Retry, PoisonNeverRetries) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  auto r = run_with_retry<Unit, IoError>(
      p, nullptr, [](const IoError& e) { return e.klass; },
      [&]() -> Result<Unit, IoError> {
        ++calls;
        return IoError{IoError::Code::kNotFound, ErrorClass::kPoison, "x", ""};
      });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 1);
}

TEST(Retry, TransientGivesUpAfterMaxAttempts) {
  RetryPolicy p;
  p.max_attempts = 3;
  int calls = 0;
  auto r = run_with_retry<Unit, IoError>(
      p, nullptr, [](const IoError& e) { return e.klass; },
      [&]() -> Result<Unit, IoError> {
        ++calls;
        return IoError{IoError::Code::kWriteFailed, ErrorClass::kTransient, "x",
                       ""};
      });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(calls, 3);
}

TEST(Json, DumpParseRoundTrip) {
  Json root = Json::object();
  root.set("version", 1);
  root.set("name", "run \"quoted\"\nnewline");
  root.set("ratio", 0.25);
  root.set("flag", true);
  root.set("nothing", nullptr);
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object().set("k", "v"));
  root.set("items", std::move(arr));

  const std::string text = root.dump(2);
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  const Json& r = parsed.value();
  EXPECT_EQ(r.get_number("version"), 1);
  EXPECT_EQ(r.get_string("name"), "run \"quoted\"\nnewline");
  EXPECT_EQ(r.get_number("ratio"), 0.25);
  ASSERT_NE(r.find("items"), nullptr);
  EXPECT_EQ(r.find("items")->items().size(), 3u);
  EXPECT_EQ(r.find("items")->items()[2].get_string("k"), "v");
}

TEST(Json, RejectsGarbage) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{} trailing").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

}  // namespace
}  // namespace acx
