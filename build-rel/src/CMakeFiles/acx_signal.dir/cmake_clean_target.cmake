file(REMOVE_RECURSE
  "libacx_signal.a"
)
