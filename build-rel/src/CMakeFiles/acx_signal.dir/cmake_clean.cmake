file(REMOVE_RECURSE
  "CMakeFiles/acx_signal.dir/signal/baseline.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/baseline.cpp.o.d"
  "CMakeFiles/acx_signal.dir/signal/fft.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/fft.cpp.o.d"
  "CMakeFiles/acx_signal.dir/signal/fft_plan.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/fft_plan.cpp.o.d"
  "CMakeFiles/acx_signal.dir/signal/fir.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/fir.cpp.o.d"
  "CMakeFiles/acx_signal.dir/signal/integrate.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/integrate.cpp.o.d"
  "CMakeFiles/acx_signal.dir/signal/peaks.cpp.o"
  "CMakeFiles/acx_signal.dir/signal/peaks.cpp.o.d"
  "libacx_signal.a"
  "libacx_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
