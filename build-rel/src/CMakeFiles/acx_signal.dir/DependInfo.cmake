
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/baseline.cpp" "src/CMakeFiles/acx_signal.dir/signal/baseline.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/baseline.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/CMakeFiles/acx_signal.dir/signal/fft.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/fft.cpp.o.d"
  "/root/repo/src/signal/fft_plan.cpp" "src/CMakeFiles/acx_signal.dir/signal/fft_plan.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/fft_plan.cpp.o.d"
  "/root/repo/src/signal/fir.cpp" "src/CMakeFiles/acx_signal.dir/signal/fir.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/fir.cpp.o.d"
  "/root/repo/src/signal/integrate.cpp" "src/CMakeFiles/acx_signal.dir/signal/integrate.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/integrate.cpp.o.d"
  "/root/repo/src/signal/peaks.cpp" "src/CMakeFiles/acx_signal.dir/signal/peaks.cpp.o" "gcc" "src/CMakeFiles/acx_signal.dir/signal/peaks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/acx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
