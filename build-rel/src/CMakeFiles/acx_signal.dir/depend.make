# Empty dependencies file for acx_signal.
# This may be replaced when dependencies are built.
