# Empty dependencies file for acx_spectrum.
# This may be replaced when dependencies are built.
