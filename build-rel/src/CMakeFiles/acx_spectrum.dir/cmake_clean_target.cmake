file(REMOVE_RECURSE
  "libacx_spectrum.a"
)
