
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectrum/corners.cpp" "src/CMakeFiles/acx_spectrum.dir/spectrum/corners.cpp.o" "gcc" "src/CMakeFiles/acx_spectrum.dir/spectrum/corners.cpp.o.d"
  "/root/repo/src/spectrum/fourier.cpp" "src/CMakeFiles/acx_spectrum.dir/spectrum/fourier.cpp.o" "gcc" "src/CMakeFiles/acx_spectrum.dir/spectrum/fourier.cpp.o.d"
  "/root/repo/src/spectrum/response.cpp" "src/CMakeFiles/acx_spectrum.dir/spectrum/response.cpp.o" "gcc" "src/CMakeFiles/acx_spectrum.dir/spectrum/response.cpp.o.d"
  "/root/repo/src/spectrum/response_plan.cpp" "src/CMakeFiles/acx_spectrum.dir/spectrum/response_plan.cpp.o" "gcc" "src/CMakeFiles/acx_spectrum.dir/spectrum/response_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/acx_signal.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/acx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
