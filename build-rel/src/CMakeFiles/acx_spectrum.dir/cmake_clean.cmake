file(REMOVE_RECURSE
  "CMakeFiles/acx_spectrum.dir/spectrum/corners.cpp.o"
  "CMakeFiles/acx_spectrum.dir/spectrum/corners.cpp.o.d"
  "CMakeFiles/acx_spectrum.dir/spectrum/fourier.cpp.o"
  "CMakeFiles/acx_spectrum.dir/spectrum/fourier.cpp.o.d"
  "CMakeFiles/acx_spectrum.dir/spectrum/response.cpp.o"
  "CMakeFiles/acx_spectrum.dir/spectrum/response.cpp.o.d"
  "CMakeFiles/acx_spectrum.dir/spectrum/response_plan.cpp.o"
  "CMakeFiles/acx_spectrum.dir/spectrum/response_plan.cpp.o.d"
  "libacx_spectrum.a"
  "libacx_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
