file(REMOVE_RECURSE
  "CMakeFiles/acx_synth.dir/synth/synth.cpp.o"
  "CMakeFiles/acx_synth.dir/synth/synth.cpp.o.d"
  "libacx_synth.a"
  "libacx_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
