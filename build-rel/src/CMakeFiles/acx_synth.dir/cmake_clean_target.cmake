file(REMOVE_RECURSE
  "libacx_synth.a"
)
