# Empty dependencies file for acx_synth.
# This may be replaced when dependencies are built.
