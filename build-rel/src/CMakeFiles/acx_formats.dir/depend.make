# Empty dependencies file for acx_formats.
# This may be replaced when dependencies are built.
