file(REMOVE_RECURSE
  "libacx_formats.a"
)
