file(REMOVE_RECURSE
  "CMakeFiles/acx_formats.dir/formats/record_io.cpp.o"
  "CMakeFiles/acx_formats.dir/formats/record_io.cpp.o.d"
  "CMakeFiles/acx_formats.dir/formats/spectra_io.cpp.o"
  "CMakeFiles/acx_formats.dir/formats/spectra_io.cpp.o.d"
  "libacx_formats.a"
  "libacx_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
