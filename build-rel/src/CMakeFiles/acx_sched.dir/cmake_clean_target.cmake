file(REMOVE_RECURSE
  "libacx_sched.a"
)
