# Empty dependencies file for acx_sched.
# This may be replaced when dependencies are built.
