file(REMOVE_RECURSE
  "CMakeFiles/acx_sched.dir/sched/analysis.cpp.o"
  "CMakeFiles/acx_sched.dir/sched/analysis.cpp.o.d"
  "CMakeFiles/acx_sched.dir/sched/cost_model.cpp.o"
  "CMakeFiles/acx_sched.dir/sched/cost_model.cpp.o.d"
  "CMakeFiles/acx_sched.dir/sched/gantt.cpp.o"
  "CMakeFiles/acx_sched.dir/sched/gantt.cpp.o.d"
  "CMakeFiles/acx_sched.dir/sched/simulator.cpp.o"
  "CMakeFiles/acx_sched.dir/sched/simulator.cpp.o.d"
  "libacx_sched.a"
  "libacx_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
