file(REMOVE_RECURSE
  "libacx_pipeline.a"
)
