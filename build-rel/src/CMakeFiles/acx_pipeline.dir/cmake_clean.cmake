file(REMOVE_RECURSE
  "CMakeFiles/acx_pipeline.dir/pipeline/batch.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/batch.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/executor.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/executor.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/graph.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/graph.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/report.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/report.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/runner.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/runner.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/scheduler.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/scheduler.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/stages.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/stages.cpp.o.d"
  "CMakeFiles/acx_pipeline.dir/pipeline/validate.cpp.o"
  "CMakeFiles/acx_pipeline.dir/pipeline/validate.cpp.o.d"
  "libacx_pipeline.a"
  "libacx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
