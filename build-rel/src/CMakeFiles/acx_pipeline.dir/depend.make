# Empty dependencies file for acx_pipeline.
# This may be replaced when dependencies are built.
