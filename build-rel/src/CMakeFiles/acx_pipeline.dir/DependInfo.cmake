
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/batch.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/batch.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/batch.cpp.o.d"
  "/root/repo/src/pipeline/executor.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/executor.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/executor.cpp.o.d"
  "/root/repo/src/pipeline/graph.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/graph.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/graph.cpp.o.d"
  "/root/repo/src/pipeline/report.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/report.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/report.cpp.o.d"
  "/root/repo/src/pipeline/runner.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/runner.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/runner.cpp.o.d"
  "/root/repo/src/pipeline/scheduler.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/scheduler.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/scheduler.cpp.o.d"
  "/root/repo/src/pipeline/stages.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/stages.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/stages.cpp.o.d"
  "/root/repo/src/pipeline/validate.cpp" "src/CMakeFiles/acx_pipeline.dir/pipeline/validate.cpp.o" "gcc" "src/CMakeFiles/acx_pipeline.dir/pipeline/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rel/src/CMakeFiles/acx_formats.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/acx_signal.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/acx_spectrum.dir/DependInfo.cmake"
  "/root/repo/build-rel/src/CMakeFiles/acx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
