
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/breaker.cpp" "src/CMakeFiles/acx_util.dir/util/breaker.cpp.o" "gcc" "src/CMakeFiles/acx_util.dir/util/breaker.cpp.o.d"
  "/root/repo/src/util/faultfs.cpp" "src/CMakeFiles/acx_util.dir/util/faultfs.cpp.o" "gcc" "src/CMakeFiles/acx_util.dir/util/faultfs.cpp.o.d"
  "/root/repo/src/util/fs.cpp" "src/CMakeFiles/acx_util.dir/util/fs.cpp.o" "gcc" "src/CMakeFiles/acx_util.dir/util/fs.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/acx_util.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/acx_util.dir/util/json.cpp.o.d"
  "/root/repo/src/util/slowfs.cpp" "src/CMakeFiles/acx_util.dir/util/slowfs.cpp.o" "gcc" "src/CMakeFiles/acx_util.dir/util/slowfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
