# Empty dependencies file for acx_util.
# This may be replaced when dependencies are built.
