file(REMOVE_RECURSE
  "libacx_util.a"
)
