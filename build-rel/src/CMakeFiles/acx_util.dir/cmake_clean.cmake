file(REMOVE_RECURSE
  "CMakeFiles/acx_util.dir/util/breaker.cpp.o"
  "CMakeFiles/acx_util.dir/util/breaker.cpp.o.d"
  "CMakeFiles/acx_util.dir/util/faultfs.cpp.o"
  "CMakeFiles/acx_util.dir/util/faultfs.cpp.o.d"
  "CMakeFiles/acx_util.dir/util/fs.cpp.o"
  "CMakeFiles/acx_util.dir/util/fs.cpp.o.d"
  "CMakeFiles/acx_util.dir/util/json.cpp.o"
  "CMakeFiles/acx_util.dir/util/json.cpp.o.d"
  "CMakeFiles/acx_util.dir/util/slowfs.cpp.o"
  "CMakeFiles/acx_util.dir/util/slowfs.cpp.o.d"
  "libacx_util.a"
  "libacx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
