file(REMOVE_RECURSE
  "CMakeFiles/bench_signal.dir/bench_signal.cpp.o"
  "CMakeFiles/bench_signal.dir/bench_signal.cpp.o.d"
  "bench_signal"
  "bench_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
