file(REMOVE_RECURSE
  "CMakeFiles/bench_spectrum.dir/bench_spectrum.cpp.o"
  "CMakeFiles/bench_spectrum.dir/bench_spectrum.cpp.o.d"
  "bench_spectrum"
  "bench_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
