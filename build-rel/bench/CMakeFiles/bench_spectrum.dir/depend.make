# Empty dependencies file for bench_spectrum.
# This may be replaced when dependencies are built.
