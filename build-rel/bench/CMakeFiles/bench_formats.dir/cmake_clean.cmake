file(REMOVE_RECURSE
  "CMakeFiles/bench_formats.dir/bench_formats.cpp.o"
  "CMakeFiles/bench_formats.dir/bench_formats.cpp.o.d"
  "bench_formats"
  "bench_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
