# Empty compiler generated dependencies file for test_drivers.
# This may be replaced when dependencies are built.
