file(REMOVE_RECURSE
  "CMakeFiles/test_drivers.dir/test_drivers.cpp.o"
  "CMakeFiles/test_drivers.dir/test_drivers.cpp.o.d"
  "test_drivers"
  "test_drivers.pdb"
  "test_drivers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
