file(REMOVE_RECURSE
  "CMakeFiles/test_faultfs.dir/test_faultfs.cpp.o"
  "CMakeFiles/test_faultfs.dir/test_faultfs.cpp.o.d"
  "test_faultfs"
  "test_faultfs.pdb"
  "test_faultfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faultfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
