# Empty compiler generated dependencies file for test_faultfs.
# This may be replaced when dependencies are built.
