file(REMOVE_RECURSE
  "CMakeFiles/test_perf_cache.dir/test_perf_cache.cpp.o"
  "CMakeFiles/test_perf_cache.dir/test_perf_cache.cpp.o.d"
  "test_perf_cache"
  "test_perf_cache.pdb"
  "test_perf_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
