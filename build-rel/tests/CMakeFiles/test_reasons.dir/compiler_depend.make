# Empty compiler generated dependencies file for test_reasons.
# This may be replaced when dependencies are built.
