file(REMOVE_RECURSE
  "CMakeFiles/test_reasons.dir/test_reasons.cpp.o"
  "CMakeFiles/test_reasons.dir/test_reasons.cpp.o.d"
  "test_reasons"
  "test_reasons.pdb"
  "test_reasons[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reasons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
