# Empty compiler generated dependencies file for test_contract.
# This may be replaced when dependencies are built.
