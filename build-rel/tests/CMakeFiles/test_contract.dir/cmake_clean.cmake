file(REMOVE_RECURSE
  "CMakeFiles/test_contract.dir/test_contract.cpp.o"
  "CMakeFiles/test_contract.dir/test_contract.cpp.o.d"
  "test_contract"
  "test_contract.pdb"
  "test_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
