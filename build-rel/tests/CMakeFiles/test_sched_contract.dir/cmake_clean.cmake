file(REMOVE_RECURSE
  "CMakeFiles/test_sched_contract.dir/test_sched_contract.cpp.o"
  "CMakeFiles/test_sched_contract.dir/test_sched_contract.cpp.o.d"
  "test_sched_contract"
  "test_sched_contract.pdb"
  "test_sched_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
