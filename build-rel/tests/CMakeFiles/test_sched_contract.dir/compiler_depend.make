# Empty compiler generated dependencies file for test_sched_contract.
# This may be replaced when dependencies are built.
