# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-rel/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-rel/tests/test_util[1]_include.cmake")
include("/root/repo/build-rel/tests/test_faultfs[1]_include.cmake")
include("/root/repo/build-rel/tests/test_formats[1]_include.cmake")
include("/root/repo/build-rel/tests/test_synth[1]_include.cmake")
include("/root/repo/build-rel/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build-rel/tests/test_graph[1]_include.cmake")
include("/root/repo/build-rel/tests/test_drivers[1]_include.cmake")
include("/root/repo/build-rel/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build-rel/tests/test_signal[1]_include.cmake")
include("/root/repo/build-rel/tests/test_spectrum[1]_include.cmake")
include("/root/repo/build-rel/tests/test_reasons[1]_include.cmake")
include("/root/repo/build-rel/tests/test_perf_cache[1]_include.cmake")
include("/root/repo/build-rel/tests/test_contract[1]_include.cmake")
include("/root/repo/build-rel/tests/test_sched[1]_include.cmake")
include("/root/repo/build-rel/tests/test_sched_contract[1]_include.cmake")
include("/root/repo/build-rel/tests/test_storage[1]_include.cmake")
include("/root/repo/build-rel/tests/test_batch[1]_include.cmake")
add_test(docs.check_references "bash" "/root/repo/scripts/check_docs.sh")
set_tests_properties(docs.check_references PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
