file(REMOVE_RECURSE
  "CMakeFiles/tool_acx_process.dir/acx_process.cpp.o"
  "CMakeFiles/tool_acx_process.dir/acx_process.cpp.o.d"
  "acx_process"
  "acx_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_acx_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
