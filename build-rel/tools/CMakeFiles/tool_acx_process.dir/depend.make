# Empty dependencies file for tool_acx_process.
# This may be replaced when dependencies are built.
