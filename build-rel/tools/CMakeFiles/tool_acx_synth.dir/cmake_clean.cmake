file(REMOVE_RECURSE
  "CMakeFiles/tool_acx_synth.dir/acx_synth.cpp.o"
  "CMakeFiles/tool_acx_synth.dir/acx_synth.cpp.o.d"
  "acx_synth"
  "acx_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_acx_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
