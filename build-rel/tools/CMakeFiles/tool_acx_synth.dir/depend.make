# Empty dependencies file for tool_acx_synth.
# This may be replaced when dependencies are built.
