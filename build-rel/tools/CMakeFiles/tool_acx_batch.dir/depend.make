# Empty dependencies file for tool_acx_batch.
# This may be replaced when dependencies are built.
