file(REMOVE_RECURSE
  "CMakeFiles/tool_acx_batch.dir/acx_batch.cpp.o"
  "CMakeFiles/tool_acx_batch.dir/acx_batch.cpp.o.d"
  "acx_batch"
  "acx_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_acx_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
