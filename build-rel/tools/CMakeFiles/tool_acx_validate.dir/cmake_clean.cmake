file(REMOVE_RECURSE
  "CMakeFiles/tool_acx_validate.dir/acx_validate.cpp.o"
  "CMakeFiles/tool_acx_validate.dir/acx_validate.cpp.o.d"
  "acx_validate"
  "acx_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_acx_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
