# Empty dependencies file for tool_acx_validate.
# This may be replaced when dependencies are built.
