file(REMOVE_RECURSE
  "CMakeFiles/tool_acx_sched.dir/acx_sched.cpp.o"
  "CMakeFiles/tool_acx_sched.dir/acx_sched.cpp.o.d"
  "acx_sched"
  "acx_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_acx_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
