# Empty dependencies file for tool_acx_sched.
# This may be replaced when dependencies are built.
