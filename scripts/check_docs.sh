#!/usr/bin/env bash
# Docs-rot check: every repo path referenced in backticks from docs/*.md
# must exist, every `acx_*` tool named there must have a source file,
# and the run-report keys documented in docs/PIPELINE.md must still be
# emitted by the report writer. Run from the repo root (CI and ctest
# both do). Exits nonzero on the first class of rot found.
set -u

fail=0

# 1. Backtick-quoted repo paths must exist.
for doc in docs/*.md; do
  refs=$(grep -o '`[^`]*`' "$doc" | tr -d '`' | sort -u)
  while IFS= read -r ref; do
    [ -z "$ref" ] && continue
    # Spans with spaces/wildcards are prose or globs, not paths.
    case "$ref" in *' '*|*'*'*|*'<'*) continue ;; esac
    case "$ref" in
      src/*|docs/*|tests/*|bench/*|tools/*|scripts/*|examples/*|.github/*) ;;
      README.md|ROADMAP.md|DESIGN.md|CHANGES.md|PAPER.md) ;;
      *) continue ;;
    esac
    if [ ! -e "$ref" ]; then
      echo "docs-rot: $doc references missing path: $ref" >&2
      fail=1
    fi
  done <<<"$refs"
done

# 2. Tools named in the docs must have sources.
for doc in docs/*.md; do
  while IFS= read -r tool; do
    [ -z "$tool" ] && continue
    if [ ! -f "tools/$tool.cpp" ]; then
      echo "docs-rot: $doc names tool '$tool' but tools/$tool.cpp is gone" >&2
      fail=1
    fi
  done < <(grep -oE '\bacx_[a-z_]+\b' "$doc" | sort -u)
done

# 3. The report schema keys documented in docs/PIPELINE.md must still
#    exist in the writer (catches a schema rename that forgets the doc).
for key in version total_seconds stage_totals stage_shares stage_profile \
           counts records seconds outputs driver threads \
           speedup_vs_sequential cache_hits cache_misses setup_seconds \
           kernel_seconds status degraded shed points deadline breaker \
           stations station components checks rotd_status rotd_reason \
           rotd_output; do
  if ! grep -q "\"$key\"" src/pipeline/report.cpp; then
    echo "docs-rot: docs/PIPELINE.md documents run-report key '$key'" \
         "but src/pipeline/report.cpp no longer emits it" >&2
    fail=1
  fi
done

# 3c. The batch-report keys documented in docs/BATCH.md must still be
#     emitted by the batch writer.
for key in version input_root work_root event_workers priority \
           records_per_second points_per_second breaker counts events \
           resumed; do
  if ! grep -q "\"$key\"" src/pipeline/batch.cpp; then
    echo "docs-rot: docs/BATCH.md documents batch-report key '$key'" \
         "but src/pipeline/batch.cpp no longer emits it" >&2
    fail=1
  fi
done

# 3d. The serve-stats keys documented in docs/SERVE.md must still be
#     emitted by the serve writer (the serve_stats.json schema).
for key in version uptime_seconds driver threads event_workers capacity \
           depth admitted served ok degraded quarantined malformed \
           duplicates in_flight events_per_second records_per_second \
           points_per_second cumulative_hits cumulative_misses \
           first_event last_event trajectory hit_rate executed steals \
           stolen_tasks injector_takes overflow parks wakes inline_runs \
           rejected_ops opens half_open_recoveries scan_errors \
           stats_write_failures; do
  if ! grep -q "\"$key\"" src/pipeline/serve.cpp; then
    echo "docs-rot: docs/SERVE.md documents serve-stats key '$key'" \
         "but src/pipeline/serve.cpp no longer emits it" >&2
    fail=1
  fi
done

# 3b. The five driver names the docs advertise must stay the spellings
#     the CLI parses (catches a rename that forgets README/PIPELINE.md).
for d in seq seq-opt partial full pool; do
  if ! grep -q "\"$d\"" src/pipeline/config.hpp; then
    echo "docs-rot: documented driver name '$d' is no longer parsed by" \
         "src/pipeline/config.hpp" >&2
    fail=1
  fi
done

# 4. The format magics documented in docs/FORMATS.md must match the
#    headers that define them.
for pair in "ACX-V1:src/formats/v1.hpp" "ACX-V2:src/formats/v2.hpp" \
            "ACX-F:src/formats/spectra.hpp" "ACX-R:src/formats/spectra.hpp" \
            "ACX-RD:src/formats/spectra.hpp"; do
  magic=${pair%%:*}; header=${pair#*:}
  if ! grep -q "$magic" docs/FORMATS.md; then
    echo "docs-rot: docs/FORMATS.md no longer documents magic '$magic'" >&2
    fail=1
  fi
  if ! grep -q "\"$magic\"" "$header"; then
    echo "docs-rot: docs/FORMATS.md documents magic '$magic' but $header" \
         "does not define it" >&2
    fail=1
  fi
done

# 5. Every spectrum error slug named in docs/SPECTRUM.md must exist in
#    the taxonomy (and so stay a legal spectrum.<slug> reason).
while IFS= read -r slug; do
  [ -z "$slug" ] && continue
  if ! grep -q "\"${slug#spectrum.}\"" src/spectrum/error.hpp; then
    echo "docs-rot: docs/SPECTRUM.md names reason '$slug' but" \
         "src/spectrum/error.hpp has no such slug" >&2
    fail=1
  fi
done < <(grep -oE '\bspectrum\.[a-z_]+\b' docs/SPECTRUM.md | sort -u)

# 6. Every storage.*/batch.*/station.* reason slug named in the docs
#    must be in the registry, so acx_validate keeps accepting what the
#    docs promise (and vice versa: a slug dropped from the registry
#    rots here instead of silently failing validation).
while IFS= read -r slug; do
  [ -z "$slug" ] && continue
  # File references like batch.cpp / batch.hpp are paths, not slugs.
  case "$slug" in *.cpp|*.hpp|*.json|*.md|*.py|*.sh) continue ;; esac
  # station.* slugs are registered bare (the registry prepends the
  # family); storage.*/batch.* are registered with the full dotted form.
  case "$slug" in
    station.*) probe="\"${slug#station.}\"" ;;
    *) probe="\"$slug\"" ;;
  esac
  if ! grep -q "$probe" src/pipeline/reasons.hpp; then
    echo "docs-rot: docs name reason '$slug' but" \
         "src/pipeline/reasons.hpp does not register it" >&2
    fail=1
  fi
done < <(grep -ohE '\b(storage|batch|station)\.[a-z_]+\b' docs/*.md | sort -u)

# 7. The sched-report keys documented in docs/SCHED.md must still be
#    emitted by the analysis writer (the acx_sched --json schema).
for key in version tool procs seed response_split anchor source records \
           points excluded flagged measured drivers work span makespan \
           brent_lower brent_upper speedup stages stage redundant tasks \
           seq_seconds share modeled_seconds sweep floored_costs; do
  if ! grep -q "\"$key\"" src/sched/analysis.cpp; then
    echo "docs-rot: docs/SCHED.md documents sched-report key '$key'" \
         "but src/sched/analysis.cpp no longer emits it" >&2
    fail=1
  fi
done

# 8. Every CSV column scripts/paper_figures.py writes must be named in
#    docs/SCHED.md, and vice versa for the three CSV file names — a
#    renamed column or artifact rots here, not in a downstream reader.
for col in $(python3 - <<'EOF'
import re
src = open("scripts/paper_figures.py", encoding="utf-8").read()
cols = set()
for block in re.findall(r"COLUMNS = \[(.*?)\]", src, re.S):
    cols.update(re.findall(r'"([a-z0-9_]+)"', block))
print("\n".join(sorted(cols)))
EOF
); do
  if ! grep -q "\`$col\`" docs/SCHED.md; then
    echo "docs-rot: paper_figures.py writes CSV column '$col' but" \
         "docs/SCHED.md does not document it" >&2
    fail=1
  fi
done
for csv in table1.csv fig11.csv fig13.csv; do
  for place in docs/SCHED.md docs/EVALUATION.md scripts/paper_figures.py; do
    if ! grep -q "$csv" "$place"; then
      echo "docs-rot: $place no longer mentions artifact '$csv'" >&2
      fail=1
    fi
  done
done

# 9. The sched vocabulary the docs lean on must keep its anchors in the
#    simulator sources (a rename of the core concepts rots the docs).
for pair in "brent_lower:src/sched/analysis.hpp" \
            "critical_paths:src/sched/simulator.hpp" \
            "ok_stage_seconds:src/pipeline/report.hpp" \
            "scratch_setup:src/pipeline/graph.cpp" \
            "list_schedule:src/sched/simulator.hpp" \
            "render_gantt:src/sched/gantt.hpp"; do
  word=${pair%%:*}; where=${pair#*:}
  if ! grep -q "$word" "$where"; then
    echo "docs-rot: sched term '$word' documented in docs/SCHED.md is" \
         "no longer defined in $where" >&2
    fail=1
  fi
done

# 10. The serve vocabulary docs/SERVE.md leans on must keep its anchors
#     in the service sources (spool protocol, pool, queue semantics).
for pair in "kServeShutdownSentinel:src/pipeline/serve.hpp" \
            "kServeStatsFileName:src/pipeline/serve.hpp" \
            "TaskGroup:src/util/work_pool.hpp" \
            "take_from_injector:src/util/work_pool.cpp" \
            "kClosed:src/util/bounded_queue.hpp" \
            "kPool:src/pipeline/config.hpp"; do
  word=${pair%%:*}; where=${pair#*:}
  if ! grep -q "$word" "$where"; then
    echo "docs-rot: serve term '$word' documented in docs/SERVE.md is" \
         "no longer defined in $where" >&2
    fail=1
  fi
done

# 11. The SIMD-toggle / convolution / SOS vocabulary of docs/PERF.md
#     and docs/SIGNAL.md must keep its anchors in the sources (a rename
#     of the toggle API or a kernel entry point rots the docs here).
for pair in "ACX_SIMD:CMakeLists.txt" \
            "active_kernels:src/util/simd.hpp" \
            "avx2_supported:src/util/simd.hpp" \
            "fft_pow2_execute_split:src/signal/fft_plan.hpp" \
            "kOverlapSaveMinTaps:src/signal/fir.hpp" \
            "overlap_save_selected:src/signal/fir.hpp" \
            "kOverlapSave:src/signal/fir.hpp" \
            "design_butterworth_bandpass:src/signal/sos.hpp" \
            "filtfilt_sos:src/signal/sos.hpp" \
            "sdof_peak_response_batch:src/spectrum/response_plan.hpp"; do
  word=${pair%%:*}; where=${pair#*:}
  if ! grep -q "$word" "$where"; then
    echo "docs-rot: SIMD/SOS term '$word' documented in docs/PERF.md or" \
         "docs/SIGNAL.md is no longer defined in $where" >&2
    fail=1
  fi
done

# 12. Every gated bench name the perf docs cite must still be in the
#     baseline (a renamed bench would otherwise silently leave the
#     regression gate while the docs keep promising it's watched).
for bench in BM_FftPow2 signal.fft_scalar_ref BM_FirBandPass \
             BM_FirFiltfiltDirect BM_FirOverlapSave BM_SosFiltFilt \
             spectrum.response spectrum.sdof_batch32 spectrum.rotd_sweep; do
  if ! grep -q "$bench" bench/baseline.json; then
    echo "docs-rot: bench '$bench' is cited by the docs but absent from" \
         "bench/baseline.json (regression gate)" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs-rot check FAILED" >&2
  exit 1
fi
echo "docs-rot check OK"
