#!/usr/bin/env python3
"""Render the paper's Table I / Fig. 11 / Fig. 13 CSVs from sched reports.

Usage:
    paper_figures.py --out DIR [--check] EVENT=SCHED_JSON [EVENT=... ]

Each positional argument names one event and the acx_sched --json output
modeling it (``sanfernando=/tmp/sf/sched.json``).  Writes three CSVs to
DIR:

  table1.csv  one row per event: measured seq / seq-opt wall clock (when
              the sched report carries those anchors) next to the four
              modeled driver makespans and their speedups vs the
              report's anchor driver — the Table I reproduction.
  fig11.csv   one row per pipeline stage of the event with the most
              points: sequential cost, share of anchor work, modeled
              cost on P procs, per-stage modeled speedup — Fig. 11.
  fig13.csv   one row per event sorted by points ascending: full-driver
              modeled speedup and throughput (points per modeled
              second) — the Fig. 13 scaling story.

``--check`` additionally enforces the paper's qualitative claims on
every event and exits 1 on violation:

  * the full driver's modeled speedup exceeds the partial driver's,
    which exceeds the sequential-optimized driver's;
  * the response stage (Stage IX) has the largest modeled per-stage
    speedup;
  * every driver's makespan respects Brent's bounds
    max(T1/P, Tinf) <= Tp <= T1/P + Tinf (small float tolerance).

Exit codes: 0 ok, 1 --check violation, 2 usage/input error.
"""

import argparse
import json
import os
import sys

SCHED_VERSION = 1

TABLE1_COLUMNS = [
    "event", "records", "points", "seq_measured_s", "seq_opt_measured_s",
    "seq_model_s", "seq_opt_model_s", "partial_model_s", "full_model_s",
    "seq_opt_speedup", "partial_speedup", "full_speedup",
]
FIG11_COLUMNS = [
    "stage", "redundant", "tasks", "seq_seconds", "share",
    "modeled_seconds", "modeled_speedup",
]
FIG13_COLUMNS = [
    "event", "records", "points", "full_speedup", "points_per_second",
]


def load_sched(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"paper_figures: cannot read {path}: {exc}")
    if doc.get("version") != SCHED_VERSION or doc.get("tool") != "acx_sched":
        raise SystemExit(
            f"paper_figures: {path} is not an acx_sched v{SCHED_VERSION} "
            "report")
    for key in ("procs", "anchor", "records", "points", "drivers", "stages"):
        if key not in doc:
            raise SystemExit(f"paper_figures: {path} lacks '{key}'")
    return doc


def driver_row(doc, name):
    for row in doc["drivers"]:
        if row["driver"] == name:
            return row
    return None


def measured_seconds(doc, name):
    for row in doc.get("measured", []):
        if row["driver"] == name:
            return row["total_seconds"]
    return None


def fmt(value, places=6):
    if value is None:
        return ""
    return f"{value:.{places}f}"


def write_csv(path, columns, rows):
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(",".join(columns) + "\n")
        for row in rows:
            fh.write(",".join(str(row[c]) for c in columns) + "\n")


def check_event(event, doc, failures):
    procs = doc["procs"]
    seq_opt = driver_row(doc, "seq-opt")
    partial = driver_row(doc, "partial")
    full = driver_row(doc, "full")
    if not (seq_opt and partial and full):
        failures.append(f"{event}: missing a modeled driver row")
        return
    if not full["speedup"] > partial["speedup"] > seq_opt["speedup"]:
        failures.append(
            f"{event}: speedup order violated "
            f"(full {full['speedup']:.2f} / partial {partial['speedup']:.2f}"
            f" / seq-opt {seq_opt['speedup']:.2f})")
    best = max(doc["stages"], key=lambda s: s["speedup"])
    if best["stage"] != "response":
        failures.append(
            f"{event}: largest per-stage speedup is {best['stage']} "
            f"({best['speedup']:.2f}x), expected response")
    for row in doc["drivers"]:
        lower = max(row["work"] / procs, row["span"])
        upper = row["work"] / procs + row["span"]
        slack = 1e-9 + 1e-6 * upper
        if not (lower - slack <= row["makespan"] <= upper + slack):
            failures.append(
                f"{event}: {row['driver']} makespan {row['makespan']:.6f}"
                f" outside Brent bounds [{lower:.6f}, {upper:.6f}]")


def main(argv):
    parser = argparse.ArgumentParser(
        prog="paper_figures", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--check", action="store_true",
                        help="enforce the paper's qualitative claims")
    parser.add_argument("events", nargs="+", metavar="EVENT=SCHED_JSON")
    args = parser.parse_args(argv)

    pairs = []
    for spec in args.events:
        if "=" not in spec:
            parser.error(f"'{spec}' is not EVENT=SCHED_JSON")
        event, path = spec.split("=", 1)
        pairs.append((event, load_sched(path)))

    os.makedirs(args.out, exist_ok=True)

    table1 = []
    for event, doc in pairs:
        seq = driver_row(doc, "seq")
        seq_opt = driver_row(doc, "seq-opt")
        partial = driver_row(doc, "partial")
        full = driver_row(doc, "full")
        table1.append({
            "event": event,
            "records": doc["records"],
            "points": int(doc["points"]),
            "seq_measured_s": fmt(measured_seconds(doc, "seq")),
            "seq_opt_measured_s": fmt(measured_seconds(doc, "seq-opt")),
            "seq_model_s": fmt(seq["makespan"] if seq else None),
            "seq_opt_model_s": fmt(seq_opt["makespan"] if seq_opt else None),
            "partial_model_s": fmt(partial["makespan"] if partial else None),
            "full_model_s": fmt(full["makespan"] if full else None),
            "seq_opt_speedup": fmt(seq_opt["speedup"] if seq_opt else None,
                                   3),
            "partial_speedup": fmt(partial["speedup"] if partial else None,
                                   3),
            "full_speedup": fmt(full["speedup"] if full else None, 3),
        })
    write_csv(os.path.join(args.out, "table1.csv"), TABLE1_COLUMNS, table1)

    fig_event, fig_doc = max(pairs, key=lambda p: p[1]["points"])
    fig11 = []
    for stage in fig_doc["stages"]:
        fig11.append({
            "stage": stage["stage"],
            "redundant": int(stage["redundant"]),
            "tasks": stage["tasks"],
            "seq_seconds": fmt(stage["seq_seconds"]),
            "share": fmt(stage["share"], 4),
            "modeled_seconds": fmt(stage["modeled_seconds"]),
            "modeled_speedup": fmt(stage["speedup"], 3),
        })
    write_csv(os.path.join(args.out, "fig11.csv"), FIG11_COLUMNS, fig11)

    fig13 = []
    for event, doc in sorted(pairs, key=lambda p: p[1]["points"]):
        full = driver_row(doc, "full")
        throughput = None
        if full and full["makespan"] > 0:
            throughput = doc["points"] / full["makespan"]
        fig13.append({
            "event": event,
            "records": doc["records"],
            "points": int(doc["points"]),
            "full_speedup": fmt(full["speedup"] if full else None, 3),
            "points_per_second": fmt(throughput, 1),
        })
    write_csv(os.path.join(args.out, "fig13.csv"), FIG13_COLUMNS, fig13)

    print(f"paper_figures: wrote table1.csv ({len(table1)} events), "
          f"fig11.csv ({len(fig11)} stages of {fig_event}), "
          f"fig13.csv ({len(fig13)} events) to {args.out}")

    if args.check:
        failures = []
        for event, doc in pairs:
            check_event(event, doc, failures)
        for failure in failures:
            print(f"paper_figures: CHECK FAILED: {failure}",
                  file=sys.stderr)
        if failures:
            return 1
        print(f"paper_figures: checks passed on {len(pairs)} event(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
