#!/usr/bin/env python3
"""Render the paper's Table-I-style driver comparison from run reports.

Usage:
    speedup_table.py BASELINE_REPORT OTHER_REPORT [OTHER_REPORT ...]

``BASELINE_REPORT`` is the run_report.json of a sequential run (the
paper's Sequential Original); each ``OTHER_REPORT`` is any other
driver's report over the same workload.  Emits one row per stage with
the summed wall clock under each driver and the end-to-end total with
its speedup versus the baseline — the reproduction of the paper's
Table I comparison (2.4x-2.9x for the fully parallelized driver on
their machines).

Exit codes: 0 ok, 2 usage/input error (schema mismatch, different
record sets, zero-time baseline).
"""

import json
import sys

SCHEMA_VERSION = 6


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"speedup_table: cannot read {path}: {exc}")
    if doc.get("version") != SCHEMA_VERSION:
        raise SystemExit(
            f"speedup_table: {path} is schema v{doc.get('version')}, "
            f"need v{SCHEMA_VERSION}")
    for key in ("driver", "threads", "total_seconds", "stage_totals",
                "stage_profile", "records"):
        if key not in doc:
            raise SystemExit(f"speedup_table: {path} lacks '{key}'")
    return doc


def column_label(doc):
    label = doc["driver"]
    if doc["driver"] in ("partial", "full"):
        label += f" (t={doc['threads']})"
    return label


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    reports = [load_report(path) for path in argv]
    base = reports[0]

    base_records = sorted(r["record"] for r in base["records"])
    for doc, path in zip(reports[1:], argv[1:]):
        records = sorted(r["record"] for r in doc["records"])
        if records != base_records:
            raise SystemExit(
                f"speedup_table: {path} processed a different record set "
                "than the baseline; the comparison would be meaningless")

    # Stage rows in baseline (execution-order-ish: registry order is not
    # available here, so sort by baseline cost, heaviest first — the
    # paper's tables lead with the dominant stages too).
    stages = sorted(base["stage_totals"],
                    key=lambda s: -base["stage_totals"][s])
    for doc in reports[1:]:
        for stage in doc["stage_totals"]:
            if stage not in stages:
                stages.append(stage)

    labels = [column_label(doc) for doc in reports]
    stage_w = max([len("stage"), len("TOTAL")] + [len(s) for s in stages])
    col_w = max([12] + [len(lbl) + 2 for lbl in labels])

    def row(name, cells):
        return name.ljust(stage_w) + "".join(c.rjust(col_w) for c in cells)

    print(row("stage", labels))
    print("-" * (stage_w + col_w * len(labels)))
    for stage in stages:
        cells = []
        for doc in reports:
            seconds = doc["stage_totals"].get(stage)
            cells.append("-" if seconds is None else f"{seconds:.4f}s")
        print(row(stage, cells))
    print("-" * (stage_w + col_w * len(labels)))
    print(row("TOTAL", [f"{doc['total_seconds']:.4f}s" for doc in reports]))

    if base["total_seconds"] <= 0:
        raise SystemExit("speedup_table: baseline total_seconds is zero")
    speedups = ["1.00x"]
    for doc in reports[1:]:
        if doc["total_seconds"] > 0:
            speedups.append(f"{base['total_seconds'] / doc['total_seconds']:.2f}x")
        else:
            speedups.append("-")
    print(row("speedup", speedups))

    # Schema-v5 profiling appendix: per-stage plan-cache traffic and the
    # setup-vs-kernel split, for every stage that touched a plan cache
    # in any report. "setup" is amortizable plan lookup/build time; a
    # growing setup share at constant hit rate is a setup-cost
    # regression.
    profiled = [s for s in stages
                if any(any(doc["stage_profile"].get(s, {}).get(k)
                           for k in ("cache_hits", "cache_misses",
                                     "setup_seconds", "kernel_seconds"))
                       for doc in reports)]
    if profiled:
        def cell(doc, stage):
            p = doc["stage_profile"].get(stage)
            if p is None:
                return "-"
            return (f"{int(p['cache_hits'])}h/{int(p['cache_misses'])}m "
                    f"{p['setup_seconds']:.4f}+{p['kernel_seconds']:.4f}s")

        prof_w = max(col_w,
                     2 + max(len(cell(doc, s))
                             for s in profiled for doc in reports))

        def prow(name, cells):
            return name.ljust(stage_w) + "".join(c.rjust(prof_w)
                                                 for c in cells)

        print()
        print("plan caches (hits/misses, setup+kernel seconds)")
        print(prow("stage", labels))
        print("-" * (stage_w + prof_w * len(labels)))
        for stage in profiled:
            print(prow(stage, [cell(doc, stage) for doc in reports]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
