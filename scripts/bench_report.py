#!/usr/bin/env python3
"""Normalize google-benchmark JSON and gate on regressions.

Reads one or more ``--benchmark_format=json`` outputs, converts every
timing to nanoseconds, and writes a single normalized report (the
``BENCH_<sha>.json`` artifact CI uploads).  When a baseline is given,
any benchmark whose cpu time exceeds ``tolerance x`` its baseline value
fails the run; a benchmark present in the baseline but missing from the
current run also fails (a silently dropped bench would otherwise look
like a speedup).  Refresh the checked-in baseline with
``--update-baseline`` after a deliberate performance change.

``--trajectory DIR`` is a standalone mode: it reads every normalized
``BENCH_<sha>.json`` in DIR (the CI-accumulated ``bench/history/``
bundle), orders them by modification time, and prints each benchmark's
cpu-time trend across PRs — oldest to newest, with the newest/oldest
ratio (< 1.00x means the trajectory got faster).

Exit codes: 0 ok, 1 regression (or missing benchmark), 2 usage/input
error.
"""

import argparse
import glob
import json
import os
import sys

_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_runs(paths):
    """Merge benchmark entries from several gbench JSON files.

    Returns {name: {"real_time_ns": float, "cpu_time_ns": float}}, with
    repeated measurements collapsed to their minimum (the least noisy
    estimate of the true cost).
    """
    merged = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"bench_report: cannot read {path}: {exc}")
        benches = doc.get("benchmarks", [])
        if not isinstance(benches, list):
            raise SystemExit(
                f"bench_report: {path} is not raw google-benchmark output "
                "(did you pass a normalized BENCH_*.json back in?)")
        for bench in benches:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            unit = bench.get("time_unit", "ns")
            if name is None or unit not in _NS_PER_UNIT:
                raise SystemExit(
                    f"bench_report: malformed benchmark entry in {path}: "
                    f"{bench!r}")
            scale = _NS_PER_UNIT[unit]
            entry = {
                "real_time_ns": float(bench["real_time"]) * scale,
                "cpu_time_ns": float(bench["cpu_time"]) * scale,
            }
            if name in merged:
                for key in entry:
                    merged[name][key] = min(merged[name][key], entry[key])
            else:
                merged[name] = entry
    if not merged:
        raise SystemExit("bench_report: no benchmark entries found")
    return merged


def compare(current, baseline, tolerance):
    """Returns a list of human-readable failures."""
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        base_ns = base["cpu_time_ns"]
        cur_ns = current[name]["cpu_time_ns"]
        if base_ns <= 0:
            continue
        ratio = cur_ns / base_ns
        if ratio > tolerance:
            failures.append(
                f"{name}: {cur_ns:.0f} ns vs baseline {base_ns:.0f} ns "
                f"({ratio:.2f}x > {tolerance:.2f}x)")
    return failures


def trajectory(history_dir):
    """Print the per-benchmark cpu-time trend across a history bundle."""
    paths = sorted(glob.glob(os.path.join(history_dir, "BENCH_*.json")),
                   key=os.path.getmtime)
    if not paths:
        print(f"bench_report: no history yet in {history_dir} "
              "(no BENCH_*.json files; trajectory is empty)")
        return 0
    runs = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            runs.append((doc.get("sha", "unknown")[:9], doc["benchmarks"]))
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise SystemExit(f"bench_report: cannot read {path}: {exc}")

    names = sorted({name for _, benches in runs for name in benches})
    if not names:
        # History files exist but none carries a measurement (e.g. a
        # bundle seeded by runs whose bench step failed early): still a
        # clean "nothing to plot", not a stack trace.
        print(f"bench_report: no history yet in {history_dir} "
              f"({len(runs)} run file(s), zero benchmarks recorded)")
        return 0
    name_w = max(len("benchmark"), max(len(n) for n in names))
    shas = [sha for sha, _ in runs]
    col_w = max(12, max(len(s) for s in shas) + 2)

    print(f"bench_report: trajectory over {len(runs)} runs in {history_dir} "
          "(cpu ms, oldest to newest)")
    print("benchmark".ljust(name_w)
          + "".join(s.rjust(col_w) for s in shas)
          + "trend".rjust(10))
    for name in names:
        cells = []
        series = []
        for _, benches in runs:
            entry = benches.get(name)
            if entry is None:
                cells.append("-")
            else:
                ns = entry["cpu_time_ns"]
                series.append(ns)
                cells.append(f"{ns / 1e6:.3f}")
        if len(series) >= 2 and series[0] > 0:
            trend = f"{series[-1] / series[0]:.2f}x"
        else:
            trend = "-"
        print(name.ljust(name_w)
              + "".join(c.rjust(col_w) for c in cells)
              + trend.rjust(10))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*",
                        help="google-benchmark JSON files")
    parser.add_argument("--out",
                        help="normalized report to write (BENCH_<sha>.json)")
    parser.add_argument("--trajectory", metavar="DIR",
                        help="print the per-PR perf trend from a directory "
                             "of normalized BENCH_<sha>.json files and exit")
    parser.add_argument("--sha", default="unknown",
                        help="commit the measurements belong to")
    parser.add_argument("--baseline", default=None,
                        help="checked-in baseline to compare against")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("ACX_BENCH_TOLERANCE",
                                                     "1.25")),
                        help="failure threshold as a ratio (default 1.25, "
                             "i.e. fail on >25%% slowdown; env "
                             "ACX_BENCH_TOLERANCE overrides)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run instead of "
                             "comparing")
    args = parser.parse_args(argv)
    if args.trajectory is not None:
        return trajectory(args.trajectory)
    if not args.inputs:
        raise SystemExit("bench_report: no input files (and no --trajectory)")
    if args.out is None:
        raise SystemExit("bench_report: --out is required without --trajectory")
    if args.tolerance <= 1.0:
        raise SystemExit("bench_report: --tolerance must be > 1.0")

    current = load_runs(args.inputs)
    report = {"sha": args.sha, "tolerance": args.tolerance,
              "benchmarks": current}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench_report: wrote {args.out} ({len(current)} benchmarks)")

    if args.baseline is None:
        return 0
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"benchmarks": current}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench_report: baseline {args.baseline} updated")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)["benchmarks"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise SystemExit(
            f"bench_report: cannot read baseline {args.baseline}: {exc}")

    failures = compare(current, baseline, args.tolerance)
    for line in failures:
        print(f"bench_report: REGRESSION {line}", file=sys.stderr)
    if not failures:
        print(f"bench_report: all {len(baseline)} baselined benchmarks "
              f"within {args.tolerance:.2f}x")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
