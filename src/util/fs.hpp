#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/result.hpp"

namespace acx {

// Every filesystem touch in the pipeline goes through this interface so
// the fault-injection shim (util/faultfs.hpp) can intercept it. The
// pipeline never calls std::filesystem or iostreams directly.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::string, IoError> read_file(
      const std::filesystem::path& path) = 0;
  // Raw write. Pipeline code should normally use atomic_write_file().
  virtual Result<Unit, IoError> write_file(const std::filesystem::path& path,
                                           std::string_view content) = 0;
  virtual Result<Unit, IoError> rename(const std::filesystem::path& from,
                                       const std::filesystem::path& to) = 0;
  virtual Result<Unit, IoError> create_directories(
      const std::filesystem::path& path) = 0;
  // Regular files directly inside `dir`, sorted by name.
  virtual Result<std::vector<std::filesystem::path>, IoError> list_dir(
      const std::filesystem::path& dir) = 0;
  // Every regular file under `dir`, recursively, sorted by path.
  virtual Result<std::vector<std::filesystem::path>, IoError> list_tree(
      const std::filesystem::path& dir) = 0;
  virtual Result<Unit, IoError> remove_all(const std::filesystem::path& path) = 0;
  virtual bool exists(const std::filesystem::path& path) = 0;
  // Size in bytes, 0 when unknown. Advisory (the schedulers use it to
  // order record fan-out longest-first), so like exists() it reports no
  // error and is not a fault-injection point.
  virtual std::uintmax_t file_size(const std::filesystem::path& path) = 0;
};

class RealFileSystem final : public FileSystem {
 public:
  Result<std::string, IoError> read_file(
      const std::filesystem::path& path) override;
  Result<Unit, IoError> write_file(const std::filesystem::path& path,
                                   std::string_view content) override;
  Result<Unit, IoError> rename(const std::filesystem::path& from,
                               const std::filesystem::path& to) override;
  Result<Unit, IoError> create_directories(
      const std::filesystem::path& path) override;
  Result<std::vector<std::filesystem::path>, IoError> list_dir(
      const std::filesystem::path& dir) override;
  Result<std::vector<std::filesystem::path>, IoError> list_tree(
      const std::filesystem::path& dir) override;
  Result<Unit, IoError> remove_all(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;
};

// Prefix of every in-flight temporary; acx_validate audits the work tree
// for leftovers with this prefix to prove no partial write survived.
inline constexpr std::string_view kAtomicTmpPrefix = ".acx-tmp.";

bool is_atomic_tmp_name(const std::filesystem::path& path);

// The only sanctioned way to produce an output file: write the full
// content to <dir>/.acx-tmp.<name>.<unique>, then rename() over the
// destination. Readers therefore only ever observe absent or complete
// files. On any failure the temporary is removed (best effort) before
// the error is returned.
Result<Unit, IoError> atomic_write_file(FileSystem& fs,
                                        const std::filesystem::path& dest,
                                        std::string_view content);

}  // namespace acx
