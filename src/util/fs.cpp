#include "util/fs.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

namespace acx {

namespace stdfs = std::filesystem;

namespace {

IoError make_error(IoError::Code code, ErrorClass klass, const stdfs::path& p,
                   std::string detail) {
  return IoError{code, klass, p.string(), std::move(detail)};
}

}  // namespace

Result<std::string, IoError> RealFileSystem::read_file(const stdfs::path& path) {
  std::error_code ec;
  if (!stdfs::exists(path, ec)) {
    return make_error(IoError::Code::kNotFound, ErrorClass::kPoison, path,
                      "no such file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(IoError::Code::kOpenFailed, ErrorClass::kTransient, path,
                      std::strerror(errno));
  }
  std::string content;
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end < 0) {
    return make_error(IoError::Code::kReadFailed, ErrorClass::kTransient, path,
                      "tellg failed");
  }
  content.resize(static_cast<std::size_t>(end));
  in.seekg(0, std::ios::beg);
  if (!content.empty()) {
    in.read(content.data(), static_cast<std::streamsize>(content.size()));
  }
  if (!in) {
    return make_error(IoError::Code::kReadFailed, ErrorClass::kTransient, path,
                      "short read");
  }
  return content;
}

Result<Unit, IoError> RealFileSystem::write_file(const stdfs::path& path,
                                                 std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(IoError::Code::kOpenFailed, ErrorClass::kTransient, path,
                      std::strerror(errno));
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return make_error(IoError::Code::kWriteFailed, ErrorClass::kTransient, path,
                      "short write");
  }
  return Unit{};
}

Result<Unit, IoError> RealFileSystem::rename(const stdfs::path& from,
                                             const stdfs::path& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) {
    // A vanished source is a semantic miss (a racing consumer already
    // claimed the file), not a storage fault — report it as kNotFound
    // so callers (and the circuit breaker) can tell the two apart.
    if (ec == std::errc::no_such_file_or_directory) {
      return make_error(IoError::Code::kNotFound, ErrorClass::kPoison, from,
                        "no such file -> " + to.string());
    }
    return make_error(IoError::Code::kRenameFailed, ErrorClass::kTransient,
                      from, ec.message() + " -> " + to.string());
  }
  return Unit{};
}

Result<Unit, IoError> RealFileSystem::create_directories(const stdfs::path& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    return make_error(IoError::Code::kCreateDirFailed, ErrorClass::kTransient,
                      path, ec.message());
  }
  return Unit{};
}

Result<std::vector<stdfs::path>, IoError> RealFileSystem::list_dir(
    const stdfs::path& dir) {
  std::error_code ec;
  std::vector<stdfs::path> out;
  for (stdfs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    // Per-entry errors stay local: an entry that vanishes between the
    // readdir and the stat (a concurrent consumer claimed it) is simply
    // not part of the listing, not a failure of the listing.
    std::error_code entry_ec;
    if (it->is_regular_file(entry_ec)) out.push_back(it->path());
  }
  if (ec) {
    return make_error(IoError::Code::kListFailed, ErrorClass::kTransient, dir,
                      ec.message());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<stdfs::path>, IoError> RealFileSystem::list_tree(
    const stdfs::path& dir) {
  std::error_code ec;
  std::vector<stdfs::path> out;
  for (stdfs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code entry_ec;
    if (it->is_regular_file(entry_ec)) out.push_back(it->path());
  }
  if (ec) {
    return make_error(IoError::Code::kListFailed, ErrorClass::kTransient, dir,
                      ec.message());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<Unit, IoError> RealFileSystem::remove_all(const stdfs::path& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) {
    return make_error(IoError::Code::kRemoveFailed, ErrorClass::kTransient,
                      path, ec.message());
  }
  return Unit{};
}

bool RealFileSystem::exists(const stdfs::path& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

std::uintmax_t RealFileSystem::file_size(const stdfs::path& path) {
  std::error_code ec;
  const std::uintmax_t size = stdfs::file_size(path, ec);
  return ec ? 0 : size;
}

bool is_atomic_tmp_name(const stdfs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind(kAtomicTmpPrefix, 0) == 0;
}

Result<Unit, IoError> atomic_write_file(FileSystem& fs, const stdfs::path& dest,
                                        std::string_view content) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  stdfs::path tmp = dest.parent_path() /
                    (std::string(kAtomicTmpPrefix) + dest.filename().string() +
                     "." + std::to_string(id));
  auto wrote = fs.write_file(tmp, content);
  if (!wrote.ok()) {
    (void)fs.remove_all(tmp);
    return std::move(wrote).take_error();
  }
  auto renamed = fs.rename(tmp, dest);
  if (!renamed.ok()) {
    (void)fs.remove_all(tmp);
    return std::move(renamed).take_error();
  }
  return Unit{};
}

}  // namespace acx
