#pragma once

#include <filesystem>
#include <mutex>
#include <string>

#include "util/clock.hpp"
#include "util/fs.hpp"

namespace acx::storage {

// Per-backend circuit breaker: closed -> open -> half-open.
//   closed    — every operation proceeds; `failure_threshold`
//               consecutive failures trip the breaker open.
//   open      — operations are rejected instantly (storage.circuit_open,
//               classified transient) for `open_seconds`, so a dying
//               backend sheds load instead of stalling every worker in
//               a retry pile-up.
//   half-open — after the cooldown, operations probe the backend;
//               `half_open_probes` consecutive successes close the
//               breaker (a half-open recovery), any failure re-opens it
//               with a fresh cooldown.
struct BreakerConfig {
  int failure_threshold = 5;
  double open_seconds = 1.0;
  int half_open_probes = 2;
  NowFn now;  // defaults to the steady clock; tests drive a manual one
};

struct BreakerCounters {
  long long rejected_ops = 0;      // operations shed while open
  int opens = 0;                   // closed/half-open -> open transitions
  int half_open_recoveries = 0;    // half-open -> closed transitions
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {});

  // Gate, called before an operation: true = proceed (and report the
  // result back), false = reject with storage.circuit_open.
  bool allow();
  void record_success();
  void record_failure();

  State state() const;
  BreakerCounters counters() const;

 private:
  void trip_locked();

  BreakerConfig cfg_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  double opened_at_ = 0;
  BreakerCounters counters_;
};

// FileSystem shim that routes every operation through a breaker. Wraps
// the (possibly slow/flaky) backend stack; rejected operations return
// IoError::Code::kCircuitOpen as a *transient* error, so the executor's
// jittered backoff naturally spaces out the half-open probes.
class BreakerFileSystem final : public FileSystem {
 public:
  BreakerFileSystem(FileSystem& inner, CircuitBreaker& breaker);

  Result<std::string, IoError> read_file(
      const std::filesystem::path& path) override;
  Result<Unit, IoError> write_file(const std::filesystem::path& path,
                                   std::string_view content) override;
  Result<Unit, IoError> rename(const std::filesystem::path& from,
                               const std::filesystem::path& to) override;
  Result<Unit, IoError> create_directories(
      const std::filesystem::path& path) override;
  Result<std::vector<std::filesystem::path>, IoError> list_dir(
      const std::filesystem::path& dir) override;
  Result<std::vector<std::filesystem::path>, IoError> list_tree(
      const std::filesystem::path& dir) override;
  Result<Unit, IoError> remove_all(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;

  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  IoError rejected(const std::filesystem::path& path) const;

  FileSystem& inner_;
  CircuitBreaker& breaker_;
};

}  // namespace acx::storage
