#pragma once

#include <string>

namespace acx {

// The error taxonomy the whole execution layer is built on:
//  - transient: the same operation may succeed if retried (I/O blips,
//    injected write/rename faults). Retried with capped exponential
//    backoff by the stage runner.
//  - poison: deterministic for this record (malformed file, crash on a
//    specific input). Never retried; the record is quarantined and the
//    event run continues with the survivors.
enum class ErrorClass { kTransient, kPoison };

inline const char* to_string(ErrorClass c) {
  return c == ErrorClass::kTransient ? "transient" : "poison";
}

struct IoError {
  enum class Code {
    kNotFound,
    kOpenFailed,
    kReadFailed,
    kWriteFailed,
    kRenameFailed,
    kCreateDirFailed,
    kRemoveFailed,
    kListFailed,
    kInjectedReadFault,
    kInjectedWriteFault,
    kInjectedRenameFault,
    kInjectedMkdirFault,
    kInjectedListFault,
    kInjectedRemoveFault,
    kGraphInvalid,  // stage graph failed its structural audit
    kCircuitOpen,   // storage circuit breaker is shedding load
  };

  Code code{};
  ErrorClass klass = ErrorClass::kTransient;
  std::string path;
  std::string detail;

  std::string to_string() const;
};

// Short filesystem-safe identifier, used in quarantine file names and
// run_report.json ("io.write_failed", ...).
inline const char* slug(IoError::Code c) {
  switch (c) {
    case IoError::Code::kNotFound: return "not_found";
    case IoError::Code::kOpenFailed: return "open_failed";
    case IoError::Code::kReadFailed: return "read_failed";
    case IoError::Code::kWriteFailed: return "write_failed";
    case IoError::Code::kRenameFailed: return "rename_failed";
    case IoError::Code::kCreateDirFailed: return "create_dir_failed";
    case IoError::Code::kRemoveFailed: return "remove_failed";
    case IoError::Code::kListFailed: return "list_failed";
    case IoError::Code::kInjectedReadFault: return "injected_read_fault";
    case IoError::Code::kInjectedWriteFault: return "injected_write_fault";
    case IoError::Code::kInjectedRenameFault: return "injected_rename_fault";
    case IoError::Code::kInjectedMkdirFault: return "injected_mkdir_fault";
    case IoError::Code::kInjectedListFault: return "injected_list_fault";
    case IoError::Code::kInjectedRemoveFault: return "injected_remove_fault";
    case IoError::Code::kGraphInvalid: return "graph_invalid";
    case IoError::Code::kCircuitOpen: return "circuit_open";
  }
  return "unknown";
}

// The family-qualified reason slug an IoError contributes to quarantine
// names and run reports. Most I/O errors are "io.<slug>"; breaker
// rejections are "storage.circuit_open" — a storage-layer condition,
// not a property of the individual operation (pipeline/reasons.hpp
// registers the storage.* family separately).
inline std::string reason_slug(const IoError& e) {
  if (e.code == IoError::Code::kCircuitOpen) return "storage.circuit_open";
  return std::string("io.") + slug(e.code);
}

inline std::string IoError::to_string() const {
  std::string s = reason_slug(*this);
  s += " [";
  s += acx::to_string(klass);
  s += "] ";
  s += path;
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace acx
