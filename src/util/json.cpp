#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace acx {

Json& Json::set(std::string key, Json value) {
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  std::get<Array>(v_).push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : fields()) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return (v && v->is_string()) ? v->str() : fallback;
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return (v && v->is_number()) ? v->number() : fallback;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf; reports never contain them.
    return;
  }
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += boolean() ? "true" : "false";
  } else if (is_number()) {
    number_into(out, number());
  } else if (is_string()) {
    escape_into(out, str());
  } else if (is_array()) {
    const auto& arr = items();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = fields();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      escape_into(out, obj[i].first);
      out += indent > 0 ? ": " : ":";
      obj[i].second.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  Json::ParseFail fail(std::string detail) const { return {pos, std::move(detail)}; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view w) {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }

  Result<Json, Json::ParseFail> value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') {
      auto s = string();
      if (!s.ok()) return std::move(s).take_error();
      return Json(std::move(s).take());
    }
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (consume_word("null")) return Json(nullptr);
    return number();
  }

  Result<Json, Json::ParseFail> object(int depth) {
    ++pos;  // '{'
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      auto key = string();
      if (!key.ok()) return std::move(key).take_error();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto v = value(depth + 1);
      if (!v.ok()) return v;
      out.set(std::move(key).take(), std::move(v).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return out;
      return fail("expected ',' or '}'");
    }
  }

  Result<Json, Json::ParseFail> array(int depth) {
    ++pos;  // '['
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto v = value(depth + 1);
      if (!v.ok()) return v;
      out.push(std::move(v).take());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      return fail("expected ',' or ']'");
    }
  }

  Result<std::string, Json::ParseFail> string() {
    ++pos;  // '"'
    std::string out;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) return fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Reports only escape control chars, so ASCII is enough;
            // anything above is transcoded naively to UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Result<Json, Json::ParseFail> number() {
    const std::size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '-' ||
                         peek() == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + pos, d);
    if (ec != std::errc{} || ptr != text.data() + pos) {
      pos = start;
      return fail("malformed number");
    }
    return Json(d);
  }
};

}  // namespace

Result<Json, Json::ParseFail> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.value(0);
  if (!v.ok()) return v;
  p.skip_ws();
  if (!p.at_end()) return p.fail("trailing garbage");
  return v;
}

}  // namespace acx
