#include "util/work_pool.hpp"

#include <algorithm>
#include <chrono>

namespace acx {

namespace {

// Identifies the worker a thread belongs to, so recursive submits from
// inside a task take the cheap own-deque path.
struct WorkerIdentity {
  WorkPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity t_worker;

constexpr std::size_t kDequeCapacity = 4096;  // power of two
constexpr auto kParkBackstop = std::chrono::milliseconds(50);

}  // namespace

// ---------------------------------------------------------------------------
// Chase–Lev deque (fenced C11 variant of Lê et al., PPoPP'13).

WorkPool::Deque::Deque(std::size_t capacity_pow2)
    : mask_(capacity_pow2 - 1), cells_(capacity_pow2) {}

bool WorkPool::Deque::push(Task* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t >= static_cast<std::int64_t>(cells_.size())) return false;
  cells_[static_cast<std::size_t>(b) & mask_].store(task,
                                                    std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_relaxed);
  return true;
}

WorkPool::Task* WorkPool::Deque::take() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  Task* task = nullptr;
  if (t <= b) {
    task = cells_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it with the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

WorkPool::Task* WorkPool::Deque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Task* task = cells_[static_cast<std::size_t>(t) & mask_].load(
      std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race; the caller may retry elsewhere
  }
  return task;
}

std::size_t WorkPool::Deque::size_estimate() const {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<std::size_t>(b - t) : 0;
}

// ---------------------------------------------------------------------------
// Pool.

WorkPool::WorkPool(int threads) {
  int n = threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  workers_.resize(static_cast<std::size_t>(n));
  for (auto& w : workers_) w.deque = std::make_unique<Deque>(kDequeCapacity);
  for (int i = 0; i < n; ++i) {
    workers_[static_cast<std::size_t>(i)].thread =
        std::thread([this, i] { worker_loop(i); });
  }
}

WorkPool::~WorkPool() { shutdown(); }

void WorkPool::submit(std::function<void()> fn) {
  if (stop_.load(std::memory_order_acquire)) {
    // The pool is stopping (or stopped): run on the caller instead of
    // risking a task stranded behind exiting workers. Late work is
    // never dropped, so TaskGroup::wait() cannot hang.
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    fn();
    return;
  }
  enqueue(new Task{std::move(fn)});
}

void WorkPool::enqueue(Task* task) {
  const WorkerIdentity id = t_worker;
  if (id.pool == this && id.index >= 0) {
    // Recursive submit from inside a task: the owner's deque, no lock.
    if (!workers_[static_cast<std::size_t>(id.index)].deque->push(task)) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(injector_mu_);
      injector_.push_back(task);
    }
  } else {
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.push_back(task);
  }
  signal_.fetch_add(1, std::memory_order_release);
  wake_one();
}

void WorkPool::wake_one() {
  if (parked_.load(std::memory_order_acquire) > 0) {
    // Touch the park mutex so the notify cannot slip between a parking
    // worker's predicate check and its wait.
    { std::lock_guard<std::mutex> lock(park_mu_); }
    park_cv_.notify_one();
    wakes_.fetch_add(1, std::memory_order_relaxed);
  }
}

WorkPool::Task* WorkPool::take_from_injector(int self) {
  std::unique_lock<std::mutex> lock(injector_mu_);
  if (injector_.empty()) return nullptr;
  // Steal-half: claim half the backlog (at least one), run the first
  // task and shelve the rest on our own deque for the team to steal.
  const std::size_t half = std::max<std::size_t>(1, injector_.size() / 2);
  Task* first = injector_.front();
  injector_.pop_front();
  Deque& own = *workers_[static_cast<std::size_t>(self)].deque;
  std::size_t moved = 0;
  while (moved + 1 < half && !injector_.empty()) {
    Task* task = injector_.front();
    if (!own.push(task)) break;  // own deque full: leave the rest queued
    injector_.pop_front();
    ++moved;
  }
  lock.unlock();
  injector_takes_.fetch_add(1, std::memory_order_relaxed);
  if (moved > 0) {
    signal_.fetch_add(1, std::memory_order_release);
    wake_one();
  }
  return first;
}

WorkPool::Task* WorkPool::steal_from_victims(int self) {
  // Pick the most loaded victim (racy estimate — good enough to spread
  // a burst), then take half of what it appeared to hold, one proven
  // single-item CAS steal at a time.
  int victim = -1;
  std::size_t best = 0;
  for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
    if (i == self) continue;
    const std::size_t est =
        workers_[static_cast<std::size_t>(i)].deque->size_estimate();
    if (est > best) {
      best = est;
      victim = i;
    }
  }
  if (victim < 0) return nullptr;
  Deque& theirs = *workers_[static_cast<std::size_t>(victim)].deque;
  Task* first = theirs.steal();
  if (!first) return nullptr;
  Deque& own = *workers_[static_cast<std::size_t>(self)].deque;
  long long moved = 0;
  for (std::size_t i = 1; i < std::max<std::size_t>(1, best / 2); ++i) {
    Task* task = theirs.steal();
    if (!task) break;
    if (!own.push(task)) {
      // Own deque full — extremely unlikely mid-steal, but never drop.
      std::lock_guard<std::mutex> lock(injector_mu_);
      injector_.push_back(task);
    }
    ++moved;
  }
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolen_tasks_.fetch_add(moved + 1, std::memory_order_relaxed);
  if (moved > 0) {
    signal_.fetch_add(1, std::memory_order_release);
    wake_one();
  }
  return first;
}

WorkPool::Task* WorkPool::find_task(int self) {
  if (Task* task = workers_[static_cast<std::size_t>(self)].deque->take()) {
    return task;
  }
  if (Task* task = take_from_injector(self)) return task;
  return steal_from_victims(self);
}

void WorkPool::run_task(Task* task) {
  // Count before running: the TaskGroup latch fires inside fn, so a
  // waiter that saw its group drain must also see every one of its
  // tasks already counted here.
  executed_.fetch_add(1, std::memory_order_relaxed);
  task->fn();
  delete task;
}

void WorkPool::worker_loop(int index) {
  t_worker = WorkerIdentity{this, index};
  for (;;) {
    // Snapshot before scanning: any enqueue after this point flips the
    // park predicate, so a task landing mid-scan cannot be missed.
    const std::uint64_t snap = signal_.load(std::memory_order_acquire);
    if (Task* task = find_task(index)) {
      run_task(task);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    std::unique_lock<std::mutex> lock(park_mu_);
    parked_.fetch_add(1, std::memory_order_release);
    parks_.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait_for(lock, kParkBackstop, [&] {
      return signal_.load(std::memory_order_acquire) != snap ||
             stop_.load(std::memory_order_acquire);
    });
    parked_.fetch_sub(1, std::memory_order_release);
  }
  t_worker = WorkerIdentity{};
}

void WorkPool::shutdown() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
  // A submit() can race past the stop flag and strand its task on the
  // injector after the workers drained; finish any such stragglers on
  // the shutdown caller so drain really means drain.
  for (;;) {
    Task* task = nullptr;
    {
      std::lock_guard<std::mutex> lock(injector_mu_);
      if (injector_.empty()) break;
      task = injector_.front();
      injector_.pop_front();
    }
    run_task(task);
  }
}

WorkPoolStats WorkPool::stats() const {
  WorkPoolStats s;
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.stolen_tasks = stolen_tasks_.load(std::memory_order_relaxed);
  s.injector_takes = injector_takes_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.wakes = wakes_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// TaskGroup.

void WorkPool::TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.submit([this, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void WorkPool::TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace acx
