#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "util/error.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace acx {

// Capped exponential backoff with deterministic seeded jitter: attempt
// k (1-based) sleeps min(initial * multiplier^(k-1), max) shortened by
// up to jitter_fraction of itself. The jitter is drawn from a stream
// seeded with (jitter_seed, per-call-site salt), so a fixed seed always
// produces the same sleeps — but two records retrying the same stage
// concurrently get different salts and therefore desynchronize instead
// of hammering the storage backend in lockstep (the thundering-herd
// fix; tests/test_util.cpp pins the determinism).
struct RetryPolicy {
  int max_attempts = 4;
  int initial_backoff_ms = 10;
  double multiplier = 2.0;
  int max_backoff_ms = 250;
  // Each sleep is uniform in [ceiling*(1-jitter_fraction), ceiling].
  // 0 restores the old fully-synchronized behavior.
  double jitter_fraction = 0.5;
  std::uint64_t jitter_seed = 0;

  // The jitter-free ceiling of attempt k's sleep.
  int backoff_ms_for(int attempt) const {
    double ms = initial_backoff_ms;
    for (int i = 1; i < attempt; ++i) {
      ms *= multiplier;
      if (ms >= max_backoff_ms) return max_backoff_ms;
    }
    return std::min(static_cast<int>(ms), max_backoff_ms);
  }

  // Attempt k's actual sleep, jittered from the caller's stream.
  int jittered_backoff_ms(int attempt, Xoshiro256& rng) const {
    const int ceiling = backoff_ms_for(attempt);
    if (jitter_fraction <= 0 || ceiling <= 0) return ceiling;
    const double cut = std::min(1.0, jitter_fraction);
    return ceiling - static_cast<int>(rng.next_double() * cut * ceiling);
  }
};

// Injected so tests retry instantly; production uses a real sleep.
using SleepFn = std::function<void(int /*milliseconds*/)>;

// True when a backoff sleep of the given length still fits the caller's
// remaining budget; retrying stops early when it does not (the deadline
// plumbing of the batch runner). An empty function means "unbounded".
using RetryBudgetFn = std::function<bool(int /*next_backoff_ms*/)>;

// Re-runs `fn` while it returns a *transient* error, up to
// policy.max_attempts total attempts. Poison errors return immediately.
// `classify` maps E -> ErrorClass; `attempts_used` (optional) reports
// how many attempts ran. `jitter_salt` decorrelates this call site's
// jitter stream from every other's (pass a hash of the record/stage);
// `budget` (optional) can veto further retries when the next backoff
// would overrun a deadline.
template <class T, class E, class Fn, class Classify>
Result<T, E> run_with_retry(const RetryPolicy& policy, const SleepFn& sleep,
                            Classify classify, Fn fn,
                            int* attempts_used = nullptr,
                            std::uint64_t jitter_salt = 0,
                            const RetryBudgetFn& budget = {}) {
  std::uint64_t mix = policy.jitter_seed ^ (jitter_salt * 0x9e3779b97f4a7c15ULL);
  Xoshiro256 rng(splitmix64(mix));
  for (int attempt = 1;; ++attempt) {
    Result<T, E> r = fn();
    if (attempts_used) *attempts_used = attempt;
    if (r.ok()) return r;
    if (classify(r.error()) != ErrorClass::kTransient) return r;
    if (attempt >= policy.max_attempts) return r;
    const int backoff = policy.jittered_backoff_ms(attempt, rng);
    if (budget && !budget(backoff)) return r;
    if (sleep) sleep(backoff);
  }
}

}  // namespace acx
