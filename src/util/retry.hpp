#pragma once

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/result.hpp"

namespace acx {

// Capped exponential backoff: attempt k (1-based) sleeps
// min(initial * multiplier^(k-1), max) before attempt k+1.
struct RetryPolicy {
  int max_attempts = 4;
  int initial_backoff_ms = 10;
  double multiplier = 2.0;
  int max_backoff_ms = 250;

  int backoff_ms_for(int attempt) const {
    double ms = initial_backoff_ms;
    for (int i = 1; i < attempt; ++i) {
      ms *= multiplier;
      if (ms >= max_backoff_ms) return max_backoff_ms;
    }
    return std::min(static_cast<int>(ms), max_backoff_ms);
  }
};

// Injected so tests retry instantly; production uses a real sleep.
using SleepFn = std::function<void(int /*milliseconds*/)>;

// Re-runs `fn` while it returns a *transient* error, up to
// policy.max_attempts total attempts. Poison errors return immediately.
// `classify` maps E -> ErrorClass; `attempts_used` (optional) reports
// how many attempts ran.
template <class T, class E, class Fn, class Classify>
Result<T, E> run_with_retry(const RetryPolicy& policy, const SleepFn& sleep,
                            Classify classify, Fn fn,
                            int* attempts_used = nullptr) {
  for (int attempt = 1;; ++attempt) {
    Result<T, E> r = fn();
    if (attempts_used) *attempts_used = attempt;
    if (r.ok()) return r;
    if (classify(r.error()) != ErrorClass::kTransient) return r;
    if (attempt >= policy.max_attempts) return r;
    if (sleep) sleep(policy.backoff_ms_for(attempt));
  }
}

}  // namespace acx
