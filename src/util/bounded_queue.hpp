#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace acx {

// The typed outcome of a push against the queue's shutdown seam: a
// producer blocked on a full queue is woken by close() and told the
// service is stopping (kClosed) instead of hanging or silently losing
// its element — the contract tests/test_util.cpp pins under TSan.
enum class QueuePushResult {
  kAccepted,  // the element is in the queue
  kClosed,    // the queue closed first; the element was NOT admitted
};

// Bounded blocking priority queue — the batch/serve admission seam.
// push() blocks while the queue is at capacity (backpressure: the
// producer cannot run ahead of the workers by more than `capacity`
// events); pop() blocks while it is empty and returns the
// highest-priority element (`Less(a, b)` == "a is lower priority than
// b", std::priority_queue convention; ties resolve to the
// earliest-pushed element, so equal-priority traffic stays FIFO).
// close() wakes everyone: subsequent pushes are refused with kClosed
// and pops drain the remaining elements before reporting nullopt.
template <class T, class Less>
class BoundedPriorityQueue {
 public:
  BoundedPriorityQueue(std::size_t capacity, Less less = Less())
      : capacity_(capacity ? capacity : 1), less_(std::move(less)) {}

  // kClosed when the queue was closed before the element could be
  // added (the element is dropped; the producer owns the fallout).
  QueuePushResult push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return QueuePushResult::kClosed;
    items_.push_back(Entry{std::move(item), next_seq_++});
    std::push_heap(items_.begin(), items_.end(), entry_less());
    not_empty_.notify_one();
    return QueuePushResult::kAccepted;
  }

  // The highest-priority element, or nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::pop_heap(items_.begin(), items_.end(), entry_less());
    T out = std::move(items_.back().item);
    items_.pop_back();
    not_full_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  struct Entry {
    T item;
    std::size_t seq;
  };

  auto entry_less() const {
    return [this](const Entry& a, const Entry& b) {
      if (less_(a.item, b.item)) return true;
      if (less_(b.item, a.item)) return false;
      return a.seq > b.seq;  // equal priority: earlier push wins
    };
  }

  const std::size_t capacity_;
  Less less_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::vector<Entry> items_;
  std::size_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace acx
