#include "util/faultfs.hpp"

#include <algorithm>

namespace acx::faultfs {

namespace stdfs = std::filesystem;

FaultyFileSystem::FaultyFileSystem(FileSystem& inner, FaultConfig config)
    : inner_(inner), cfg_(std::move(config)), rng_(cfg_.seed) {}

bool FaultyFileSystem::matches(const stdfs::path& path) const {
  if (cfg_.path_filter.empty()) return true;
  return path.string().find(cfg_.path_filter) != std::string::npos;
}

// Caller must hold mu_: the seeded stream and the first_n countdowns
// are shared across every thread driving the shim.
bool FaultyFileSystem::should_fail(const stdfs::path& path, double p,
                                   int& first_n) {
  if (!matches(path)) return false;
  if (first_n > 0) {
    --first_n;
    return true;
  }
  return p > 0.0 && rng_.next_double() < p;
}

Result<std::string, IoError> FaultyFileSystem::read_file(
    const stdfs::path& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(path, cfg_.read_fail_p, cfg_.read_fail_first_n)) {
      ++stats_.injected_read_faults;
      return IoError{IoError::Code::kInjectedReadFault, ErrorClass::kTransient,
                     path.string(), "faultfs: injected read failure"};
    }
  }
  return inner_.read_file(path);
}

Result<Unit, IoError> FaultyFileSystem::write_file(const stdfs::path& path,
                                                   std::string_view content) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(path, cfg_.write_fail_p, cfg_.write_fail_first_n)) {
      ++stats_.injected_write_faults;
      if (cfg_.torn_writes) {
        // Simulate a crash mid-write: half the bytes land on disk.
        (void)inner_.write_file(path, content.substr(0, content.size() / 2));
      }
      return IoError{IoError::Code::kInjectedWriteFault, ErrorClass::kTransient,
                     path.string(), "faultfs: injected write failure"};
    }
  }
  return inner_.write_file(path, content);
}

Result<Unit, IoError> FaultyFileSystem::rename(const stdfs::path& from,
                                               const stdfs::path& to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(to, cfg_.rename_fail_p, cfg_.rename_fail_first_n)) {
      ++stats_.injected_rename_faults;
      return IoError{IoError::Code::kInjectedRenameFault, ErrorClass::kTransient,
                     to.string(), "faultfs: injected rename failure"};
    }
  }
  return inner_.rename(from, to);
}

Result<Unit, IoError> FaultyFileSystem::create_directories(
    const stdfs::path& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(path, cfg_.mkdir_fail_p, cfg_.mkdir_fail_first_n)) {
      ++stats_.injected_mkdir_faults;
      return IoError{IoError::Code::kInjectedMkdirFault, ErrorClass::kTransient,
                     path.string(), "faultfs: injected mkdir failure"};
    }
  }
  return inner_.create_directories(path);
}

Result<std::vector<stdfs::path>, IoError> FaultyFileSystem::list_dir(
    const stdfs::path& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(dir, cfg_.list_fail_p, cfg_.list_fail_first_n)) {
      ++stats_.injected_list_faults;
      return IoError{IoError::Code::kInjectedListFault, ErrorClass::kTransient,
                     dir.string(), "faultfs: injected list failure"};
    }
  }
  return inner_.list_dir(dir);
}

Result<std::vector<stdfs::path>, IoError> FaultyFileSystem::list_tree(
    const stdfs::path& dir) {
  return inner_.list_tree(dir);
}

Result<Unit, IoError> FaultyFileSystem::remove_all(const stdfs::path& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (should_fail(path, cfg_.remove_fail_p, cfg_.remove_fail_first_n)) {
      ++stats_.injected_remove_faults;
      return IoError{IoError::Code::kInjectedRemoveFault, ErrorClass::kTransient,
                     path.string(), "faultfs: injected remove failure"};
    }
  }
  return inner_.remove_all(path);
}

bool FaultyFileSystem::exists(const stdfs::path& path) {
  return inner_.exists(path);
}

std::uintmax_t FaultyFileSystem::file_size(const stdfs::path& path) {
  return inner_.file_size(path);
}

Result<Unit, IoError> flip_bytes(FileSystem& fs, const stdfs::path& path,
                                 int n_flips, std::uint64_t seed) {
  auto content = fs.read_file(path);
  if (!content.ok()) return std::move(content).take_error();
  std::string data = std::move(content).take();
  if (data.empty()) return Unit{};
  Xoshiro256 rng(seed);
  for (int i = 0; i < n_flips; ++i) {
    const std::size_t offset =
        static_cast<std::size_t>(rng.next_in(0, data.size() - 1));
    const int bit = static_cast<int>(rng.next_in(0, 7));
    data[offset] = static_cast<char>(data[offset] ^ (1 << bit));
  }
  return atomic_write_file(fs, path, data);
}

Result<Unit, IoError> truncate_file(FileSystem& fs, const stdfs::path& path,
                                    double keep_fraction) {
  auto content = fs.read_file(path);
  if (!content.ok()) return std::move(content).take_error();
  std::string data = std::move(content).take();
  keep_fraction = std::clamp(keep_fraction, 0.0, 1.0);
  const auto keep =
      static_cast<std::size_t>(static_cast<double>(data.size()) * keep_fraction);
  data.resize(keep);
  return atomic_write_file(fs, path, data);
}

}  // namespace acx::faultfs
