#include "util/breaker.hpp"

namespace acx::storage {

namespace stdfs = std::filesystem;

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : cfg_(std::move(config)) {
  if (!cfg_.now) cfg_.now = steady_now_seconds;
  if (cfg_.failure_threshold < 1) cfg_.failure_threshold = 1;
  if (cfg_.half_open_probes < 1) cfg_.half_open_probes = 1;
}

void CircuitBreaker::trip_locked() {
  state_ = State::kOpen;
  opened_at_ = cfg_.now();
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  counters_.opens += 1;
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (cfg_.now() - opened_at_ < cfg_.open_seconds) {
      counters_.rejected_ops += 1;
      return false;
    }
    // Cooldown over: probe the backend.
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= cfg_.half_open_probes) {
      state_ = State::kClosed;
      consecutive_failures_ = 0;
      counters_.half_open_recoveries += 1;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: the backend is still down.
    trip_locked();
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= cfg_.failure_threshold) {
    trip_locked();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

BreakerCounters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

BreakerFileSystem::BreakerFileSystem(FileSystem& inner, CircuitBreaker& breaker)
    : inner_(inner), breaker_(breaker) {}

IoError BreakerFileSystem::rejected(const stdfs::path& path) const {
  return IoError{IoError::Code::kCircuitOpen, ErrorClass::kTransient,
                 path.string(), "storage circuit breaker is open"};
}

namespace {

// kNotFound is an authoritative answer from a healthy backend (the
// path simply is not there — e.g. a racing spool consumer claimed it
// first), so it counts as breaker health, never as a failure.
template <typename T>
void record(CircuitBreaker& breaker, const Result<T, IoError>& r) {
  if (r.ok() || r.error().code == IoError::Code::kNotFound) {
    breaker.record_success();
  } else {
    breaker.record_failure();
  }
}

}  // namespace

Result<std::string, IoError> BreakerFileSystem::read_file(
    const stdfs::path& path) {
  if (!breaker_.allow()) return rejected(path);
  auto r = inner_.read_file(path);
  record(breaker_, r);
  return r;
}

Result<Unit, IoError> BreakerFileSystem::write_file(const stdfs::path& path,
                                                    std::string_view content) {
  if (!breaker_.allow()) return rejected(path);
  auto r = inner_.write_file(path, content);
  record(breaker_, r);
  return r;
}

Result<Unit, IoError> BreakerFileSystem::rename(const stdfs::path& from,
                                                const stdfs::path& to) {
  if (!breaker_.allow()) return rejected(from);
  auto r = inner_.rename(from, to);
  record(breaker_, r);
  return r;
}

Result<Unit, IoError> BreakerFileSystem::create_directories(
    const stdfs::path& path) {
  if (!breaker_.allow()) return rejected(path);
  auto r = inner_.create_directories(path);
  record(breaker_, r);
  return r;
}

Result<std::vector<stdfs::path>, IoError> BreakerFileSystem::list_dir(
    const stdfs::path& dir) {
  if (!breaker_.allow()) return rejected(dir);
  auto r = inner_.list_dir(dir);
  record(breaker_, r);
  return r;
}

Result<std::vector<stdfs::path>, IoError> BreakerFileSystem::list_tree(
    const stdfs::path& dir) {
  if (!breaker_.allow()) return rejected(dir);
  auto r = inner_.list_tree(dir);
  record(breaker_, r);
  return r;
}

Result<Unit, IoError> BreakerFileSystem::remove_all(const stdfs::path& path) {
  if (!breaker_.allow()) return rejected(path);
  auto r = inner_.remove_all(path);
  record(breaker_, r);
  return r;
}

bool BreakerFileSystem::exists(const stdfs::path& path) {
  // Advisory; never a breaker decision point.
  return inner_.exists(path);
}

std::uintmax_t BreakerFileSystem::file_size(const stdfs::path& path) {
  return inner_.file_size(path);
}

}  // namespace acx::storage
