#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>

#include "util/fs.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"

namespace acx::storage {

// Latency model of an object-store-flavored backend, layered under the
// same FileSystem interface as the faultfs error injector (compose the
// two for the full "slow AND flaky" storage scenario: Real -> Faulty ->
// Slow). Every operation pays base_ms, plus a uniform seeded jitter,
// plus a size-proportional term for reads/writes — the shape of the
// cloud-storage cost model (per-request overhead + bandwidth) from the
// Mohapatra et al. study the batch runner is engineered against.
struct SlowConfig {
  std::uint64_t seed = 0;
  double base_ms = 0;      // fixed per-operation latency
  double jitter_ms = 0;    // + uniform [0, jitter_ms)
  double per_kib_ms = 0;   // + per-KiB transfer cost (read/write only)
  // Injected so tests model latency without wall-clock sleeping;
  // defaults to a real sleep.
  SleepFn sleep;
};

struct SlowStats {
  long long ops = 0;             // delayed operations
  double total_latency_ms = 0;   // latency injected, summed
};

// Internally locked (the RNG and stats are shared across the batch
// runner's worker threads); the injected sleep runs outside the lock so
// slow operations do not serialize each other.
class SlowFileSystem final : public FileSystem {
 public:
  SlowFileSystem(FileSystem& inner, SlowConfig config);

  Result<std::string, IoError> read_file(
      const std::filesystem::path& path) override;
  Result<Unit, IoError> write_file(const std::filesystem::path& path,
                                   std::string_view content) override;
  Result<Unit, IoError> rename(const std::filesystem::path& from,
                               const std::filesystem::path& to) override;
  Result<Unit, IoError> create_directories(
      const std::filesystem::path& path) override;
  Result<std::vector<std::filesystem::path>, IoError> list_dir(
      const std::filesystem::path& dir) override;
  Result<std::vector<std::filesystem::path>, IoError> list_tree(
      const std::filesystem::path& dir) override;
  Result<Unit, IoError> remove_all(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;

  SlowStats stats() const;

 private:
  // Sample this op's latency and pay it (via the injected sleep).
  void delay(std::uintmax_t transfer_bytes);

  FileSystem& inner_;
  SlowConfig cfg_;
  mutable std::mutex mu_;  // guards rng_ and stats_
  Xoshiro256 rng_;
  SlowStats stats_;
};

}  // namespace acx::storage
