#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#ifndef ACX_SIMD_DEFAULT
#define ACX_SIMD_DEFAULT 1
#endif

namespace acx::simd {

namespace {

bool initial_state() {
  if (const char* env = std::getenv("ACX_SIMD")) {
    if (std::strcmp(env, "0") == 0) return false;
    if (std::strcmp(env, "1") == 0) return true;
  }
  return ACX_SIMD_DEFAULT != 0;
}

std::atomic<bool>& state() {
  static std::atomic<bool> on{initial_state()};
  return on;
}

}  // namespace

bool compiled_default() { return ACX_SIMD_DEFAULT != 0; }

bool avx2_supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool enabled() { return state().load(std::memory_order_relaxed); }

void set_enabled(bool on) { state().store(on, std::memory_order_relaxed); }

const char* active_kernels() {
  if (!enabled()) return "scalar";
  return avx2_supported() ? "simd+avx2" : "simd";
}

}  // namespace acx::simd
