#pragma once

#include <chrono>

namespace acx::perf {

// Thread-local profiling counters the kernel-plan caches and hot
// kernels feed, and the pipeline executor drains.
//
// Attribution model: a record's stage always runs start-to-finish on
// one thread (the schedulers hand out whole slots), so the executor
// can snapshot this thread's counters before a stage, run it, and
// charge the delta to that stage's report entry — no per-call stats
// plumbing through the signal/spectrum APIs, and no shared counters
// for tsan to find. The nested OpenMP team of the response kernel is
// invisible here by design: plan lookups happen on the calling thread
// before the parallel region, and kernel_seconds is the wall clock the
// calling thread observed around it (the cost the record actually paid).
struct Counters {
  unsigned long long cache_hits = 0;    // plan served from a cache
  unsigned long long cache_misses = 0;  // plan had to be built
  double setup_seconds = 0;   // plan lookup/build time (amortizable)
  double kernel_seconds = 0;  // time in the numeric kernels proper
};

inline Counters& local() {
  thread_local Counters counters;
  return counters;
}

inline void count_cache(bool hit) {
  if (hit) {
    ++local().cache_hits;
  } else {
    ++local().cache_misses;
  }
}

// Scoped wall-clock accumulator into one of the two time buckets:
//   { perf::ScopedTimer t(perf::ScopedTimer::kSetup); build_plan(); }
class ScopedTimer {
 public:
  enum Bucket { kSetup, kKernel };

  explicit ScopedTimer(Bucket bucket)
      : bucket_(bucket), started_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started_;
    (bucket_ == kSetup ? local().setup_seconds : local().kernel_seconds) +=
        elapsed.count();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Bucket bucket_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace acx::perf
