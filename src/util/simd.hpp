#pragma once

namespace acx::simd {

// The explicit-SIMD kernel toggle (docs/PERF.md, "SIMD kernels").
//
// The ACX_SIMD CMake option picks the process default at build time;
// the ACX_SIMD environment variable (0/1, read once at first query)
// and set_enabled() below override it at run time. Every SIMD kernel
// in src/signal and src/spectrum is bit-identical to the scalar path
// it replaces — vectorization only runs across independent lanes and
// preserves the scalar op order, and the AVX2 clones are compiled
// without FMA so no contraction can change a rounding — so flipping
// the toggle (or running on a non-AVX2 host) never changes a single
// output byte, only the speed.

// The build-time default (the ACX_SIMD CMake option).
bool compiled_default();

// True when this CPU can run the guarded AVX2 kernel clones.
bool avx2_supported();

// The process-wide runtime switch. Starts from the environment
// override when present, else the compiled default.
bool enabled();

// Test hook: force the toggle for the current process (the
// scalar-vs-SIMD bit-identity tests flip it around each kernel).
void set_enabled(bool on);

// Human-readable description of the kernels the current state
// selects: "scalar", "simd", or "simd+avx2".
const char* active_kernels();

}  // namespace acx::simd
