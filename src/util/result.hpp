#pragma once

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

namespace acx {

// Hard invariant check that survives NDEBUG: the robustness contract is
// "no silent corruption", so misuse of Result aborts loudly instead of
// reading the wrong variant alternative.
[[noreturn]] inline void fatal(const char* msg) {
  std::fputs("acx fatal: ", stderr);
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::abort();
}

// Empty success payload for Result<Unit, E>.
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};

// Minimal expected<>-style sum type. Every stage and filesystem boundary
// returns a Result; exceptions never cross those boundaries.
template <class T, class E>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & {
    if (!ok()) fatal("Result::value() called on error");
    return std::get<0>(v_);
  }
  const T& value() const& {
    if (!ok()) fatal("Result::value() called on error");
    return std::get<0>(v_);
  }
  T&& take() && {
    if (!ok()) fatal("Result::take() called on error");
    return std::get<0>(std::move(v_));
  }

  E& error() & {
    if (ok()) fatal("Result::error() called on success");
    return std::get<1>(v_);
  }
  const E& error() const& {
    if (ok()) fatal("Result::error() called on success");
    return std::get<1>(v_);
  }
  E&& take_error() && {
    if (ok()) fatal("Result::take_error() called on success");
    return std::get<1>(std::move(v_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

}  // namespace acx
