#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>

#include "util/fs.hpp"
#include "util/rng.hpp"

namespace acx::faultfs {

// Deterministic fault plan for FaultyFileSystem. Two modes per
// operation, combinable:
//  - fail_first_n: the first n matching calls fail (exact, for tests
//    that assert retry counts);
//  - fail_p: each matching call fails with probability p drawn from the
//    seeded stream (for randomized soak runs).
// `path_filter` (substring match on the target path) narrows the blast
// radius so a test can, e.g., only fail renames into out/.
struct FaultConfig {
  std::uint64_t seed = 0;
  std::string path_filter;

  double read_fail_p = 0.0;
  double write_fail_p = 0.0;
  double rename_fail_p = 0.0;
  double mkdir_fail_p = 0.0;
  double list_fail_p = 0.0;
  double remove_fail_p = 0.0;
  int read_fail_first_n = 0;
  int write_fail_first_n = 0;
  int rename_fail_first_n = 0;
  int mkdir_fail_first_n = 0;
  int list_fail_first_n = 0;
  int remove_fail_first_n = 0;

  // Injected write faults tear the write: the first half of the content
  // is written through before the failure is reported. This is what
  // makes the atomic-write audit meaningful.
  bool torn_writes = true;
};

struct FaultStats {
  int injected_read_faults = 0;
  int injected_write_faults = 0;
  int injected_rename_faults = 0;
  int injected_mkdir_faults = 0;
  int injected_list_faults = 0;
  int injected_remove_faults = 0;
  int total() const {
    return injected_read_faults + injected_write_faults +
           injected_rename_faults + injected_mkdir_faults +
           injected_list_faults + injected_remove_faults;
  }
};

// Shim over another FileSystem that injects transient I/O faults
// according to a FaultConfig. All decisions come from the seeded PRNG,
// so a given (seed, call sequence) always fails the same calls — under
// a parallel driver the *set* of failing calls is still seed-stable,
// but which record draws a given fault depends on thread interleaving.
// Internally locked: the pipeline's parallel drivers hit one shim from
// many threads.
class FaultyFileSystem final : public FileSystem {
 public:
  FaultyFileSystem(FileSystem& inner, FaultConfig config);

  Result<std::string, IoError> read_file(
      const std::filesystem::path& path) override;
  Result<Unit, IoError> write_file(const std::filesystem::path& path,
                                   std::string_view content) override;
  Result<Unit, IoError> rename(const std::filesystem::path& from,
                               const std::filesystem::path& to) override;
  Result<Unit, IoError> create_directories(
      const std::filesystem::path& path) override;
  Result<std::vector<std::filesystem::path>, IoError> list_dir(
      const std::filesystem::path& dir) override;
  Result<std::vector<std::filesystem::path>, IoError> list_tree(
      const std::filesystem::path& dir) override;
  Result<Unit, IoError> remove_all(const std::filesystem::path& path) override;
  bool exists(const std::filesystem::path& path) override;
  std::uintmax_t file_size(const std::filesystem::path& path) override;

  const FaultStats& stats() const { return stats_; }

 private:
  bool matches(const std::filesystem::path& path) const;
  bool should_fail(const std::filesystem::path& path, double p, int& first_n);

  FileSystem& inner_;
  FaultConfig cfg_;
  std::mutex mu_;  // guards rng_, stats_ and the first_n countdowns
  Xoshiro256 rng_;
  FaultStats stats_;
};

// --- Record-corruption utilities -----------------------------------------
// Deterministic mutations of on-disk inputs, used by the fault-injection
// suite to manufacture poisoned records. They operate through a
// FileSystem so they compose with the shim.

// Flip `n_flips` random bits at random byte offsets.
Result<Unit, IoError> flip_bytes(FileSystem& fs,
                                 const std::filesystem::path& path, int n_flips,
                                 std::uint64_t seed);

// Keep only the leading `keep_fraction` of the file (truncates a V1 file
// mid-data-block for any sensible fraction).
Result<Unit, IoError> truncate_file(FileSystem& fs,
                                    const std::filesystem::path& path,
                                    double keep_fraction);

}  // namespace acx::faultfs
