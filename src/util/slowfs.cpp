#include "util/slowfs.hpp"

#include <chrono>
#include <cmath>
#include <thread>

namespace acx::storage {

namespace stdfs = std::filesystem;

SlowFileSystem::SlowFileSystem(FileSystem& inner, SlowConfig config)
    : inner_(inner), cfg_(std::move(config)), rng_(cfg_.seed) {
  if (!cfg_.sleep) {
    cfg_.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

void SlowFileSystem::delay(std::uintmax_t transfer_bytes) {
  double ms = cfg_.base_ms;
  ms += cfg_.per_kib_ms * (static_cast<double>(transfer_bytes) / 1024.0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.jitter_ms > 0) ms += rng_.next_double() * cfg_.jitter_ms;
    if (ms <= 0) return;
    stats_.ops += 1;
    stats_.total_latency_ms += ms;
  }
  cfg_.sleep(static_cast<int>(std::lround(ms)));
}

Result<std::string, IoError> SlowFileSystem::read_file(
    const stdfs::path& path) {
  delay(inner_.file_size(path));
  return inner_.read_file(path);
}

Result<Unit, IoError> SlowFileSystem::write_file(const stdfs::path& path,
                                                 std::string_view content) {
  delay(content.size());
  return inner_.write_file(path, content);
}

Result<Unit, IoError> SlowFileSystem::rename(const stdfs::path& from,
                                             const stdfs::path& to) {
  delay(0);
  return inner_.rename(from, to);
}

Result<Unit, IoError> SlowFileSystem::create_directories(
    const stdfs::path& path) {
  delay(0);
  return inner_.create_directories(path);
}

Result<std::vector<stdfs::path>, IoError> SlowFileSystem::list_dir(
    const stdfs::path& dir) {
  delay(0);
  return inner_.list_dir(dir);
}

Result<std::vector<stdfs::path>, IoError> SlowFileSystem::list_tree(
    const stdfs::path& dir) {
  delay(0);
  return inner_.list_tree(dir);
}

Result<Unit, IoError> SlowFileSystem::remove_all(const stdfs::path& path) {
  delay(0);
  return inner_.remove_all(path);
}

bool SlowFileSystem::exists(const stdfs::path& path) {
  // Advisory, like file_size: not a latency point, so the schedulers'
  // cheap existence probes do not distort the model.
  return inner_.exists(path);
}

std::uintmax_t SlowFileSystem::file_size(const stdfs::path& path) {
  return inner_.file_size(path);
}

SlowStats SlowFileSystem::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace acx::storage
