#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace acx {

// Counters of one pool's lifetime, snapshotted by stats(). All monotone;
// the serve layer publishes the deltas in serve_stats.json.
struct WorkPoolStats {
  long long executed = 0;        // tasks run to completion
  long long steals = 0;          // successful steal rounds (victim found)
  long long stolen_tasks = 0;    // tasks moved between workers by stealing
  long long injector_takes = 0;  // batches a worker pulled off the injector
  long long overflow = 0;        // owner-deque-full pushes rerouted
  long long parks = 0;           // times a worker went to sleep
  long long wakes = 0;           // notify calls issued for parked workers
  long long inline_runs = 0;     // submits after shutdown, run on the caller
};

// Persistent work-stealing thread pool — the resident replacement for
// per-run OpenMP team spin-up (docs/SERVE.md). Workers are spawned once
// and live until shutdown(); record-level tasks are distributed over
//
//   * one Chase–Lev deque per worker (lock-free owner push/take at the
//     bottom, lock-free thief steal at the top, per Lê/Pop/Cohen/
//     Nardelli "Correct and Efficient Work-Stealing for Weak Memory
//     Models", PPoPP'13 — the fenced variant verified for C11 atomics),
//   * a mutex-guarded global injector fed by external submit() calls,
//
// with a steal-half policy: a worker that runs dry claims *half* of the
// injector's backlog (or half of the largest visible victim deque, one
// proven single-item CAS at a time) instead of one task, so a burst
// admitted by one event worker spreads across the team in O(log n)
// steal rounds. Idle workers park on a condvar and are woken by the
// next submit; a 50 ms wait backstop makes the liveness argument
// trivial under any missed-signal interleaving.
//
// Shutdown is drain-first: shutdown() stops admission, lets every
// queued task (and every task those tasks spawn) run to completion,
// then joins the workers. The destructor calls shutdown().
//
// Thread-safety: submit() may be called from any thread, including from
// inside a running task (the recursive case lands on the calling
// worker's own deque and is the cheap path). A submit() that races past
// shutdown() runs the task inline on the caller — late work is never
// dropped, so TaskGroup::wait() cannot hang on a stopping pool.
class WorkPool {
 public:
  // threads <= 0 means one worker per hardware thread.
  explicit WorkPool(int threads = 0);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  void submit(std::function<void()> fn);

  // Completion latch over one batch of tasks. Several TaskGroups may run
  // concurrently on one pool (that is the whole point of the resident
  // service: every event worker batches its records onto the same
  // pool), each waiting only for its own tasks.
  class TaskGroup {
   public:
    explicit TaskGroup(WorkPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    // Submits fn and tracks it; wait() blocks until every tracked task
    // (but nobody else's) finished.
    void run(std::function<void()> fn);
    void wait();

   private:
    WorkPool& pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    long long pending_ = 0;
  };

  // Stops admission, drains every queued task, joins the workers.
  // Idempotent; called by the destructor.
  void shutdown();

  WorkPoolStats stats() const;

 private:
  struct Task {
    std::function<void()> fn;
  };

  // Chase–Lev work-stealing deque over a fixed power-of-two ring of
  // atomic Task pointers. The owner pushes and takes at the bottom
  // without locks; thieves steal at the top with a seq_cst CAS. A full
  // ring is not grown — push() reports failure and the caller reroutes
  // to the injector (overflow counter), which keeps the memory
  // reclamation story trivial (no retired buffers to free).
  class Deque {
   public:
    explicit Deque(std::size_t capacity_pow2);
    bool push(Task* task);  // owner only; false when full
    Task* take();           // owner only; nullptr when empty
    Task* steal();          // any thief; nullptr when empty or race lost
    // Racy estimate for victim selection and the steal-half budget.
    std::size_t size_estimate() const;

   private:
    const std::size_t mask_;
    std::vector<std::atomic<Task*>> cells_;
    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
  };

  struct Worker {
    std::unique_ptr<Deque> deque;
    std::thread thread;
  };

  void worker_loop(int index);
  // One acquisition attempt: own deque, then injector (half), then the
  // other workers (half of the best victim). Null when everything is dry.
  Task* find_task(int self);
  Task* take_from_injector(int self);
  Task* steal_from_victims(int self);
  void enqueue(Task* task);
  void wake_one();
  void run_task(Task* task);

  std::vector<Worker> workers_;

  std::mutex injector_mu_;
  std::deque<Task*> injector_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};
  // Bumped by every enqueue; a worker snapshots it before scanning so a
  // submit that lands mid-scan flips the park predicate instead of
  // being missed.
  std::atomic<std::uint64_t> signal_{0};
  std::atomic<bool> stop_{false};

  mutable std::atomic<long long> executed_{0};
  mutable std::atomic<long long> steals_{0};
  mutable std::atomic<long long> stolen_tasks_{0};
  mutable std::atomic<long long> injector_takes_{0};
  mutable std::atomic<long long> overflow_{0};
  mutable std::atomic<long long> parks_{0};
  mutable std::atomic<long long> wakes_{0};
  mutable std::atomic<long long> inline_runs_{0};
};

}  // namespace acx
