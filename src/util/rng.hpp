#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace acx {

// FNV-1a: a stable, platform-independent string hash. Used to salt the
// retry-jitter streams per (record, stage) and to shard per-event work
// dirs — both need the same answer on every run and every machine,
// which std::hash does not promise.
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// SplitMix64: seeds the main generator and derives independent streams
// (one per record / per injected-fault site) from a single run seed.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** — deterministic, fast, and good enough for both the
// synthetic ground-motion generator and the fault injector.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = hi - lo + 1;
    return lo + next_u64() % span;
  }

  // Standard normal via Box–Muller (cached second deviate).
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace acx
