#pragma once

#include <chrono>
#include <functional>
#include <limits>

namespace acx {

// Monotonic time source, in seconds. Injectable so the deadline and
// circuit-breaker tests can drive a manual clock instead of sleeping;
// production uses steady_now_seconds.
using NowFn = std::function<double()>;

inline double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-event wall-clock budget. Soft: stop doing optional work (the
// executor sheds stages marked sheddable). Hard: stop doing any further
// work (records that have not reached their essential output are
// quarantined as batch.deadline_hard and the event finalizes with
// whatever completed). 0 disables either axis.
struct DeadlineConfig {
  double soft_seconds = 0;
  double hard_seconds = 0;

  bool enabled() const { return soft_seconds > 0 || hard_seconds > 0; }
};

// The armed budget of one event run. start() is called once by the
// runner before any worker touches it; afterwards every field is
// read-only, so any number of threads may poll it without locking.
class DeadlineTracker {
 public:
  DeadlineTracker() = default;
  DeadlineTracker(DeadlineConfig cfg, NowFn now)
      : cfg_(cfg), now_(std::move(now)) {}

  void start() {
    started_ = true;
    start_ = now_ ? now_() : steady_now_seconds();
  }

  double elapsed_seconds() const {
    if (!started_) return 0;
    return (now_ ? now_() : steady_now_seconds()) - start_;
  }

  bool soft_expired() const {
    return started_ && cfg_.soft_seconds > 0 &&
           elapsed_seconds() >= cfg_.soft_seconds;
  }

  bool hard_expired() const {
    return started_ && cfg_.hard_seconds > 0 &&
           elapsed_seconds() >= cfg_.hard_seconds;
  }

  // Milliseconds left before the hard deadline; +inf when unbounded.
  // The retry loop refuses to start a backoff sleep longer than this,
  // so retries always respect the remaining budget.
  double remaining_hard_ms() const {
    if (!started_ || cfg_.hard_seconds <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    return (cfg_.hard_seconds - elapsed_seconds()) * 1000.0;
  }

  const DeadlineConfig& config() const { return cfg_; }

 private:
  DeadlineConfig cfg_;
  NowFn now_;
  double start_ = 0;
  bool started_ = false;
};

}  // namespace acx
