#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace acx {

// Minimal JSON value: enough to write and re-read run_report.json.
// Objects preserve insertion order (reports stay diffable).
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  struct ParseFail {
    std::size_t offset = 0;
    std::string detail;
  };

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(long l) : v_(static_cast<double>(l)) {}
  Json(std::size_t s) : v_(static_cast<double>(s)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool boolean() const { return std::get<bool>(v_); }
  double number() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }
  const Array& items() const { return std::get<Array>(v_); }
  const Object& fields() const { return std::get<Object>(v_); }

  // Object: append (or replace) a field.
  Json& set(std::string key, Json value);
  // Array: append an element.
  Json& push(Json value);
  // Object lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  // Convenience typed lookups with fallbacks, for schema-tolerant reads.
  std::string get_string(std::string_view key, std::string fallback = "") const;
  double get_number(std::string_view key, double fallback = 0) const;

  std::string dump(int indent = 0) const;

  static Result<Json, ParseFail> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace acx
