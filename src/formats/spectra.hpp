#pragma once

// The spectral output formats (docs/FORMATS.md):
//   F  — Fourier amplitude spectrum of the corrected acceleration,
//        with the FPL/FSL corners the V2 band-pass used (when the
//        search succeeded).
//   R  — response spectra SD/SV/SA over the (period, damping) grid.
//   RD — orientation-independent RotD percentile SA spectra of one
//        *station* (both horizontal components combined over a
//        rotation-angle sweep), plus the geometric mean. Station-
//        level: there is no COMPONENT header line.
// All reuse the V1/V2 skeleton: "<MAGIC> 1" line, "KEY value" header,
// fixed-column DATA block, END trailer, strict ASCII/LF.

#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kFMagic = "ACX-F";
inline constexpr std::string_view kFExtension = ".f";
inline constexpr std::string_view kRMagic = "ACX-R";
inline constexpr std::string_view kRExtension = ".r";
inline constexpr std::string_view kRotdMagic = "ACX-RD";
inline constexpr std::string_view kRotdExtension = ".rotd";

// Fourier amplitude spectrum of one corrected component. The header
// block reuses RecordHeader with spectral semantics: `dt` is the
// time-domain sampling interval of the source record, `npts` counts
// frequency bins (= nfft/2 + 1), `units` is "cm/s" (the FAS of a
// cm/s2 record under the dt*|X[k]| convention, docs/SPECTRUM.md).
// Bin k sits at frequency k * df; the strict reader enforces
// df == 1 / (nfft * dt) to 1e-6 relative.
struct FRecord {
  RecordHeader header;
  double df = 0.0;      // bin spacing, Hz
  long nfft = 0;        // transform length (even, >= 2)
  std::string window;   // "none", "hann" or "hamming"
  bool has_corners = false;  // FPL/FSL pair is all-or-nothing
  double fsl_hz = 0.0;  // long-period corner (low frequency)
  double fpl_hz = 0.0;  // short-period corner (high frequency)
  std::vector<double> amplitude;  // npts bins, finite and >= 0
};

Result<FRecord, ParseError> read_f(std::string_view content);

std::string write_f(const FRecord& record);

// Response spectra of one corrected component. `header.dt` is the
// source record's sampling interval; `header.npts` counts periods;
// there is no UNITS line (the block mixes cm, cm/s and cm/s2). The
// data block holds periods[NPERIODS] followed, for each damping in
// header order, by SD[NPERIODS], SV[NPERIODS], SA[NPERIODS] — the same
// damping-major layout as spectrum::ResponseSpectrum.
struct RRecord {
  RecordHeader header;            // units empty; npts = periods.size()
  std::vector<double> dampings;   // DAMPINGS header, ascending in [0, 1)
  std::vector<double> periods;    // strictly ascending, positive
  std::vector<double> sd, sv, sa; // dampings.size() * periods.size()

  std::size_t index(std::size_t d, std::size_t p) const {
    return d * periods.size() + p;
  }
};

Result<RRecord, ParseError> read_r(std::string_view content);

std::string write_r(const RRecord& record);

// Orientation-independent RotD spectra of one station. The rotated
// horizontal acceleration a(θ) = l·cosθ + t·sinθ is swept over ANGLES
// equally spaced angles in [0°, 180°); per (period, damping) cell the
// SA percentiles over the sweep give RotD00 (min), RotD50 (median)
// and RotD100 (max); GEOMEAN is sqrt(SA_l · SA_t) of the unrotated
// components. Layout mirrors R: NPERIODS counts periods, the data
// block holds periods[NPERIODS] then, damping-major, ROTD00 / ROTD50 /
// ROTD100 / GEOMEAN rows of NPERIODS each.
struct RotdRecord {
  std::string station;            // STATION — no COMPONENT line
  std::string event_id;
  std::string date;
  double dt = 0.0;                // source record sampling interval
  long angles = 0;                // rotation angles swept, >= 1
  std::vector<double> dampings;   // ascending in [0, 1)
  std::vector<double> periods;    // strictly ascending, positive
  std::vector<double> rotd00, rotd50, rotd100, geomean;  // SA, cm/s2

  std::size_t index(std::size_t d, std::size_t p) const {
    return d * periods.size() + p;
  }
};

Result<RotdRecord, ParseError> read_rotd(std::string_view content);

std::string write_rotd(const RotdRecord& record);

}  // namespace acx::formats
