#pragma once

// The two spectral output formats (docs/FORMATS.md):
//   F — Fourier amplitude spectrum of the corrected acceleration, with
//       the FPL/FSL corners the V2 band-pass used (when the search
//       succeeded).
//   R — response spectra SD/SV/SA over the (period, damping) grid.
// Both reuse the V1/V2 skeleton: "<MAGIC> 1" line, "KEY value" header,
// fixed-column DATA block, END trailer, strict ASCII/LF.

#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kFMagic = "ACX-F";
inline constexpr std::string_view kFExtension = ".f";
inline constexpr std::string_view kRMagic = "ACX-R";
inline constexpr std::string_view kRExtension = ".r";

// Fourier amplitude spectrum of one corrected component. The header
// block reuses RecordHeader with spectral semantics: `dt` is the
// time-domain sampling interval of the source record, `npts` counts
// frequency bins (= nfft/2 + 1), `units` is "cm/s" (the FAS of a
// cm/s2 record under the dt*|X[k]| convention, docs/SPECTRUM.md).
// Bin k sits at frequency k * df; the strict reader enforces
// df == 1 / (nfft * dt) to 1e-6 relative.
struct FRecord {
  RecordHeader header;
  double df = 0.0;      // bin spacing, Hz
  long nfft = 0;        // transform length (even, >= 2)
  std::string window;   // "none", "hann" or "hamming"
  bool has_corners = false;  // FPL/FSL pair is all-or-nothing
  double fsl_hz = 0.0;  // long-period corner (low frequency)
  double fpl_hz = 0.0;  // short-period corner (high frequency)
  std::vector<double> amplitude;  // npts bins, finite and >= 0
};

Result<FRecord, ParseError> read_f(std::string_view content);

std::string write_f(const FRecord& record);

// Response spectra of one corrected component. `header.dt` is the
// source record's sampling interval; `header.npts` counts periods;
// there is no UNITS line (the block mixes cm, cm/s and cm/s2). The
// data block holds periods[NPERIODS] followed, for each damping in
// header order, by SD[NPERIODS], SV[NPERIODS], SA[NPERIODS] — the same
// damping-major layout as spectrum::ResponseSpectrum.
struct RRecord {
  RecordHeader header;            // units empty; npts = periods.size()
  std::vector<double> dampings;   // DAMPINGS header, ascending in [0, 1)
  std::vector<double> periods;    // strictly ascending, positive
  std::vector<double> sd, sv, sa; // dampings.size() * periods.size()

  std::size_t index(std::size_t d, std::size_t p) const {
    return d * periods.size() + p;
  }
};

Result<RRecord, ParseError> read_r(std::string_view content);

std::string write_r(const RRecord& record);

}  // namespace acx::formats
