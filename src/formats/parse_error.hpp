#pragma once

#include <cstddef>
#include <string>

namespace acx::formats {

// Typed parse diagnostics for the strict format readers (V1/V2 records,
// F/R spectra). Every rejection
// carries the code, the byte offset and 1-based line where the reader
// stopped, and a human-readable detail. Parse errors are always poison:
// re-reading the same bytes cannot succeed.
struct ParseError {
  enum class Code {
    kEmptyFile,
    kNonAsciiByte,
    kCrlfLineEnding,
    kBadMagic,
    kUnsupportedVersion,
    kMissingHeaderField,
    kBadHeaderField,
    kDuplicateHeaderField,
    kBadUnits,
    kMissingDataMarker,
    kBadColumnWidth,
    kMalformedNumber,
    kNonFiniteSample,
    kShortDataBlock,
    kExcessData,
    kMissingEndMarker,
    kTrailingGarbage,
    kBadValue,
  };

  Code code{};
  std::size_t byte_offset = 0;
  std::size_t line = 0;
  std::string detail;

  std::string to_string() const;
};

// Filesystem-safe identifier used in quarantine names and run_report.json
// ("parse.bad_magic", ...).
inline const char* slug(ParseError::Code c) {
  switch (c) {
    case ParseError::Code::kEmptyFile: return "empty_file";
    case ParseError::Code::kNonAsciiByte: return "non_ascii_byte";
    case ParseError::Code::kCrlfLineEnding: return "crlf_line_ending";
    case ParseError::Code::kBadMagic: return "bad_magic";
    case ParseError::Code::kUnsupportedVersion: return "unsupported_version";
    case ParseError::Code::kMissingHeaderField: return "missing_header_field";
    case ParseError::Code::kBadHeaderField: return "bad_header_field";
    case ParseError::Code::kDuplicateHeaderField:
      return "duplicate_header_field";
    case ParseError::Code::kBadUnits: return "bad_units";
    case ParseError::Code::kMissingDataMarker: return "missing_data_marker";
    case ParseError::Code::kBadColumnWidth: return "bad_column_width";
    case ParseError::Code::kMalformedNumber: return "malformed_number";
    case ParseError::Code::kNonFiniteSample: return "non_finite_sample";
    case ParseError::Code::kShortDataBlock: return "short_data_block";
    case ParseError::Code::kExcessData: return "excess_data";
    case ParseError::Code::kMissingEndMarker: return "missing_end_marker";
    case ParseError::Code::kTrailingGarbage: return "trailing_garbage";
    case ParseError::Code::kBadValue: return "bad_value";
  }
  return "unknown";
}

inline std::string ParseError::to_string() const {
  std::string s = "parse.";
  s += slug(code);
  s += " at byte " + std::to_string(byte_offset) + ", line " +
       std::to_string(line);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace acx::formats
