#pragma once

// Shared scanning machinery of the strict text-format readers (V1/V2 in
// record_io.cpp, F/R in spectra_io.cpp): line extraction with byte
// offsets, full-token numeric parsing, the ASCII/LF pre-scan, and the
// fixed-column data block (docs/FORMATS.md). Header-only so each reader
// keeps its own field grammar while sharing the byte-level contract.

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats::scan {

inline ParseError err(ParseError::Code code, std::size_t offset,
                      std::size_t line, std::string detail) {
  return ParseError{code, offset, line, std::move(detail)};
}

inline bool parse_full_double(std::string_view s, double& out) {
  // Leading spaces are the fixed-column padding; interior junk is not.
  std::size_t i = 0;
  while (i < s.size() && s[i] == ' ') ++i;
  s.remove_prefix(i);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

inline bool parse_full_long(std::string_view s, long& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

inline bool is_ident(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

inline bool is_date(std::string_view s) {
  if (s.size() != 10) return false;
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 4 || i == 7) {
      if (s[i] != '-') return false;
    } else if (s[i] < '0' || s[i] > '9') {
      return false;
    }
  }
  return true;
}

// Pulls lines out of the buffer, tracking byte offsets and 1-based line
// numbers for diagnostics.
struct LineReader {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;     // line number of the last returned line
  std::size_t line_start = 0;  // byte offset of the last returned line

  bool next(std::string_view& out) {
    if (pos >= text.size()) return false;
    line_start = pos;
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      out = text.substr(pos);
      pos = text.size();
    } else {
      out = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }
};

// Byte-level pre-scan: the formats are pure ASCII with LF endings, so
// binary corruption and CRLF conversions are caught with an exact
// offset before any structural parsing.
inline Result<Unit, ParseError> check_ascii(std::string_view content) {
  for (std::size_t i = 0; i < content.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(content[i]);
    if (c == '\r') {
      return err(ParseError::Code::kCrlfLineEnding, i, 0,
                 "carriage return: file has CRLF (or stray CR) line endings");
    }
    if (c != '\n' && c != '\t' && (c < 0x20 || c > 0x7e)) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "0x%02x", c);
      return err(ParseError::Code::kNonAsciiByte, i, 0,
                 std::string("byte ") + buf + " outside printable ASCII");
    }
  }
  return Unit{};
}

// First line: "<magic> <version>", version must be "1".
inline Result<Unit, ParseError> read_magic(LineReader& lines,
                                           std::string_view magic) {
  std::string_view line;
  if (!lines.next(line)) {
    return err(ParseError::Code::kEmptyFile, 0, 0, "file is empty");
  }
  const std::size_t sp = line.find(' ');
  const std::string_view file_magic = line.substr(0, sp);
  if (file_magic != magic) {
    return err(ParseError::Code::kBadMagic, lines.line_start, lines.line_no,
               "expected '" + std::string(magic) + "', got '" +
                   std::string(file_magic) + "'");
  }
  const std::string_view version =
      sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
  if (version != "1") {
    return err(ParseError::Code::kUnsupportedVersion, lines.line_start,
               lines.line_no,
               "unsupported version '" + std::string(version) + "'");
  }
  return Unit{};
}

// Fixed-column data block after the DATA marker: `npts` cells of
// exactly kColumnWidth characters, kValuesPerLine per full line, every
// cell a finite number, then the END trailer and nothing but blank
// lines. Shared verbatim by every format that carries a data block.
inline Result<std::vector<double>, ParseError> read_data_block(
    LineReader& lines, long npts, std::size_t content_size) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(npts));
  std::string_view line;
  long remaining = npts;
  while (remaining > 0) {
    if (!lines.next(line)) {
      return err(ParseError::Code::kShortDataBlock, content_size,
                 lines.line_no,
                 "EOF with " + std::to_string(remaining) + " of " +
                     std::to_string(npts) + " samples missing");
    }
    if (line == "END") {
      return err(ParseError::Code::kShortDataBlock, lines.line_start,
                 lines.line_no,
                 "END with " + std::to_string(remaining) + " of " +
                     std::to_string(npts) + " samples missing");
    }
    const long cells = std::min<long>(kValuesPerLine, remaining);
    const std::size_t expected_len =
        static_cast<std::size_t>(cells) * kColumnWidth;
    if (line.size() != expected_len) {
      return err(ParseError::Code::kBadColumnWidth, lines.line_start,
                 lines.line_no,
                 "data line is " + std::to_string(line.size()) +
                     " chars, expected " + std::to_string(expected_len) +
                     " (" + std::to_string(cells) + " cells of " +
                     std::to_string(kColumnWidth) + ")");
    }
    for (long c = 0; c < cells; ++c) {
      const std::size_t cell_off = static_cast<std::size_t>(c) * kColumnWidth;
      const std::string_view cell = line.substr(cell_off, kColumnWidth);
      double v = 0;
      if (!parse_full_double(cell, v)) {
        return err(ParseError::Code::kMalformedNumber,
                   lines.line_start + cell_off, lines.line_no,
                   "cell '" + std::string(cell) + "' is not a number");
      }
      if (!std::isfinite(v)) {
        return err(ParseError::Code::kNonFiniteSample,
                   lines.line_start + cell_off, lines.line_no,
                   "sample is " + std::string(cell));
      }
      samples.push_back(v);
    }
    remaining -= cells;
  }

  // END trailer, then nothing but blank lines.
  if (!lines.next(line)) {
    return err(ParseError::Code::kMissingEndMarker, content_size,
               lines.line_no, "EOF before END marker");
  }
  if (line != "END") {
    double probe = 0;
    const bool looks_like_data =
        line.size() >= kColumnWidth && line.size() % kColumnWidth == 0 &&
        parse_full_double(line.substr(0, kColumnWidth), probe);
    if (looks_like_data) {
      return err(ParseError::Code::kExcessData, lines.line_start,
                 lines.line_no,
                 "data past the declared NPTS=" + std::to_string(npts));
    }
    return err(ParseError::Code::kMissingEndMarker, lines.line_start,
               lines.line_no, "expected END, got '" + std::string(line) + "'");
  }
  while (lines.next(line)) {
    if (!line.empty()) {
      return err(ParseError::Code::kTrailingGarbage, lines.line_start,
                 lines.line_no, "content after END marker");
    }
  }
  return samples;
}

// The writer side of the same block (everything from DATA to END).
inline void append_data_block(std::string& out,
                              const std::vector<double>& samples) {
  out += "DATA\n";
  char buf[32];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%*.*e", kColumnWidth, 4, samples[i]);
    out += buf;
    if ((i + 1) % kValuesPerLine == 0 || i + 1 == samples.size()) out += '\n';
  }
  out += "END\n";
}

inline constexpr long kMaxNpts = 100'000'000;

}  // namespace acx::formats::scan
