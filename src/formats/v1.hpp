#pragma once

#include <string>
#include <string_view>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kV1Magic = "ACX-V1";
inline constexpr std::string_view kV1Extension = ".v1";

// Strict reader: validates magic/version, every header field, units
// ("counts" or "cm/s2"), the fixed-column data block (exact cell
// widths, finite values), the declared sample count, and the END
// trailer. Never throws; never accepts a malformed file.
Result<Record, ParseError> read_v1(std::string_view content);

// Writes the canonical form read_v1 round-trips.
std::string write_v1(const Record& record);

}  // namespace acx::formats
