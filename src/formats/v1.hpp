#pragma once

#include <string>
#include <string_view>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kV1Magic = "ACX-V1";
inline constexpr std::string_view kV1Extension = ".v1";

// Strict reader: validates magic/version, every header field, units
// ("counts" or "cm/s2"), the fixed-column data block (exact cell
// widths, finite values), the declared sample count, and the END
// trailer. Never throws; never accepts a malformed file.
Result<Record, ParseError> read_v1(std::string_view content);

// Header-only read: validates the magic and every header field up to
// the DATA marker with read_v1's strictness, but never materializes
// the sample block. The runner's station pre-scan uses this to group
// components and cross-check dt/npts cheaply before any stage runs.
Result<RecordHeader, ParseError> read_v1_header(std::string_view content);

// Writes the canonical form read_v1 round-trips.
std::string write_v1(const Record& record);

}  // namespace acx::formats
