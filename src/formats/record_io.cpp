#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "formats/v1.hpp"
#include "formats/v2.hpp"

namespace acx::formats {

namespace {

using Code = ParseError::Code;

ParseError err(Code code, std::size_t offset, std::size_t line,
               std::string detail) {
  return ParseError{code, offset, line, std::move(detail)};
}

bool parse_full_double(std::string_view s, double& out) {
  // Leading spaces are the fixed-column padding; interior junk is not.
  std::size_t i = 0;
  while (i < s.size() && s[i] == ' ') ++i;
  s.remove_prefix(i);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_full_long(std::string_view s, long& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool is_ident(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

bool is_date(std::string_view s) {
  if (s.size() != 10) return false;
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 4 || i == 7) {
      if (s[i] != '-') return false;
    } else if (s[i] < '0' || s[i] > '9') {
      return false;
    }
  }
  return true;
}

// Pulls lines out of the buffer, tracking byte offsets and 1-based line
// numbers for diagnostics.
struct LineReader {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;      // line number of the last returned line
  std::size_t line_start = 0;   // byte offset of the last returned line

  bool next(std::string_view& out) {
    if (pos >= text.size()) return false;
    line_start = pos;
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      out = text.substr(pos);
      pos = text.size();
    } else {
      out = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }
};

struct ParsedRecord {
  Record record;
  std::vector<std::string> processing;
  PeakSet peaks;
  std::vector<std::string> comments;
};

// "PGA <value> <time>": two finite numbers, time non-negative.
bool parse_peak_entry(std::string_view s, PeakEntry& out) {
  const std::size_t sp = s.find(' ');
  if (sp == std::string_view::npos) return false;
  double value = 0, time = 0;
  if (!parse_full_double(s.substr(0, sp), value) ||
      !parse_full_double(s.substr(sp + 1), time)) {
    return false;
  }
  if (!std::isfinite(value) || !std::isfinite(time) || time < 0) return false;
  out.value = value;
  out.time = time;
  return true;
}

constexpr long kMaxNpts = 100'000'000;

Result<ParsedRecord, ParseError> read_record(std::string_view content,
                                             std::string_view magic,
                                             bool is_v2) {
  if (content.empty()) return err(Code::kEmptyFile, 0, 0, "file is empty");

  // Byte-level pre-scan: the formats are pure ASCII with LF endings, so
  // binary corruption and CRLF conversions are caught with an exact
  // offset before any structural parsing.
  for (std::size_t i = 0; i < content.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(content[i]);
    if (c == '\r') {
      return err(Code::kCrlfLineEnding, i, 0,
                 "carriage return: file has CRLF (or stray CR) line endings");
    }
    if (c != '\n' && c != '\t' && (c < 0x20 || c > 0x7e)) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "0x%02x", c);
      return err(Code::kNonAsciiByte, i, 0,
                 std::string("byte ") + buf + " outside printable ASCII");
    }
  }

  LineReader lines{content};
  std::string_view line;

  // Magic + version.
  if (!lines.next(line)) return err(Code::kEmptyFile, 0, 0, "file is empty");
  {
    const std::size_t sp = line.find(' ');
    const std::string_view file_magic = line.substr(0, sp);
    if (file_magic != magic) {
      return err(Code::kBadMagic, lines.line_start, lines.line_no,
                 "expected '" + std::string(magic) + "', got '" +
                     std::string(file_magic) + "'");
    }
    const std::string_view version =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    if (version != "1") {
      return err(Code::kUnsupportedVersion, lines.line_start, lines.line_no,
                 "unsupported version '" + std::string(version) + "'");
    }
  }

  // Header fields until the DATA marker.
  ParsedRecord out;
  RecordHeader& h = out.record.header;
  bool seen[11] = {};  // STATION COMPONENT EVENT DATE DT NPTS UNITS PROCESSED
                       // PGA PGV PGD
  enum Field {
    kStation, kComponent, kEvent, kDate, kDt, kNpts, kUnits, kProcessed,
    kPga, kPgv, kPgd
  };
  static constexpr const char* kFieldNames[] = {
      "STATION", "COMPONENT", "EVENT", "DATE", "DT", "NPTS", "UNITS",
      "PROCESSED", "PGA", "PGV", "PGD"};
  constexpr int kFieldCount = 11;
  bool saw_data_marker = false;

  while (lines.next(line)) {
    if (line == "DATA") {
      saw_data_marker = true;
      break;
    }
    // Processing-history comments are part of the corrected format
    // only; V1 stays maximally strict.
    if (is_v2 && !line.empty() && line[0] == '#') {
      std::string_view body = line.substr(1);
      if (!body.empty() && body[0] == ' ') body.remove_prefix(1);
      out.comments.emplace_back(body);
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view val =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    const std::size_t off = lines.line_start;
    const std::size_t ln = lines.line_no;

    int field = -1;
    for (int f = 0; f < kFieldCount; ++f) {
      if (key == kFieldNames[f]) {
        field = f;
        break;
      }
    }
    if (field < 0 || (field >= kProcessed && !is_v2)) {
      return err(Code::kBadHeaderField, off, ln,
                 "unknown header field '" + std::string(key) + "'");
    }
    if (seen[field]) {
      return err(Code::kDuplicateHeaderField, off, ln,
                 "duplicate header field '" + std::string(key) + "'");
    }
    seen[field] = true;

    switch (field) {
      case kStation:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "STATION must be a non-empty identifier");
        }
        h.station = std::string(val);
        break;
      case kComponent:
        if (val != "l" && val != "t" && val != "v") {
          return err(Code::kBadHeaderField, off, ln,
                     "COMPONENT must be one of l, t, v; got '" +
                         std::string(val) + "'");
        }
        h.component = std::string(val);
        break;
      case kEvent:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "EVENT must be a non-empty identifier");
        }
        h.event_id = std::string(val);
        break;
      case kDate:
        if (!is_date(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "DATE must be yyyy-mm-dd; got '" + std::string(val) + "'");
        }
        h.date = std::string(val);
        break;
      case kDt: {
        double dt = 0;
        if (!parse_full_double(val, dt) || !std::isfinite(dt) || dt <= 0) {
          return err(Code::kBadHeaderField, off, ln,
                     "DT must be a finite positive number; got '" +
                         std::string(val) + "'");
        }
        h.dt = dt;
        break;
      }
      case kNpts: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NPTS must be in [1, " + std::to_string(kMaxNpts) +
                         "]; got '" + std::string(val) + "'");
        }
        h.npts = n;
        break;
      }
      case kUnits:
        if (val != "counts" && val != "cm/s2") {
          return err(Code::kBadUnits, off, ln,
                     "UNITS must be 'counts' or 'cm/s2'; got '" +
                         std::string(val) + "'");
        }
        if (is_v2 && val != "cm/s2") {
          return err(Code::kBadUnits, off, ln, "V2 records must be in cm/s2");
        }
        h.units = std::string(val);
        break;
      case kProcessed: {
        std::string_view rest = val;
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          const std::string_view stage = rest.substr(0, comma);
          if (!is_ident(stage)) {
            return err(Code::kBadHeaderField, off, ln,
                       "PROCESSED must be a comma-separated stage list");
          }
          out.processing.emplace_back(stage);
          rest = comma == std::string_view::npos ? std::string_view{}
                                                 : rest.substr(comma + 1);
        }
        if (out.processing.empty()) {
          return err(Code::kBadHeaderField, off, ln,
                     "PROCESSED must name at least one stage");
        }
        break;
      }
      case kPga:
      case kPgv:
      case kPgd: {
        PeakEntry& entry = field == kPga   ? out.peaks.pga
                           : field == kPgv ? out.peaks.pgv
                                           : out.peaks.pgd;
        if (!parse_peak_entry(val, entry)) {
          return err(Code::kBadHeaderField, off, ln,
                     std::string(kFieldNames[field]) +
                         " must be '<value> <time>' with finite value and "
                         "non-negative time; got '" +
                         std::string(val) + "'");
        }
        break;
      }
    }
  }

  if (!saw_data_marker) {
    return err(Code::kMissingDataMarker, content.size(), lines.line_no,
               "no DATA marker before end of file");
  }
  const int required = is_v2 ? 8 : 7;
  for (int f = 0; f < required; ++f) {
    if (!seen[f]) {
      return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
                 std::string("missing header field ") + kFieldNames[f]);
    }
  }
  // The peak block is optional but all-or-nothing.
  const int peaks_seen = (seen[kPga] ? 1 : 0) + (seen[kPgv] ? 1 : 0) +
                         (seen[kPgd] ? 1 : 0);
  if (peaks_seen != 0 && peaks_seen != 3) {
    return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
               "peak block is partial: PGA, PGV and PGD must appear together");
  }
  out.peaks.present = peaks_seen == 3;

  // Fixed-column data block.
  out.record.samples.reserve(static_cast<std::size_t>(h.npts));
  long remaining = h.npts;
  while (remaining > 0) {
    if (!lines.next(line)) {
      return err(Code::kShortDataBlock, content.size(), lines.line_no,
                 "EOF with " + std::to_string(remaining) +
                     " of " + std::to_string(h.npts) + " samples missing");
    }
    if (line == "END") {
      return err(Code::kShortDataBlock, lines.line_start, lines.line_no,
                 "END with " + std::to_string(remaining) +
                     " of " + std::to_string(h.npts) + " samples missing");
    }
    const long cells = std::min<long>(kValuesPerLine, remaining);
    const std::size_t expected_len =
        static_cast<std::size_t>(cells) * kColumnWidth;
    if (line.size() != expected_len) {
      return err(Code::kBadColumnWidth, lines.line_start, lines.line_no,
                 "data line is " + std::to_string(line.size()) +
                     " chars, expected " + std::to_string(expected_len) +
                     " (" + std::to_string(cells) + " cells of " +
                     std::to_string(kColumnWidth) + ")");
    }
    for (long c = 0; c < cells; ++c) {
      const std::size_t cell_off =
          static_cast<std::size_t>(c) * kColumnWidth;
      const std::string_view cell = line.substr(cell_off, kColumnWidth);
      double v = 0;
      if (!parse_full_double(cell, v)) {
        return err(Code::kMalformedNumber, lines.line_start + cell_off,
                   lines.line_no,
                   "cell '" + std::string(cell) + "' is not a number");
      }
      if (!std::isfinite(v)) {
        return err(Code::kNonFiniteSample, lines.line_start + cell_off,
                   lines.line_no, "sample is " + std::string(cell));
      }
      out.record.samples.push_back(v);
    }
    remaining -= cells;
  }

  // END trailer, then nothing but blank lines.
  if (!lines.next(line)) {
    return err(Code::kMissingEndMarker, content.size(), lines.line_no,
               "EOF before END marker");
  }
  if (line != "END") {
    double probe = 0;
    const bool looks_like_data =
        line.size() >= kColumnWidth && line.size() % kColumnWidth == 0 &&
        parse_full_double(line.substr(0, kColumnWidth), probe);
    if (looks_like_data) {
      return err(Code::kExcessData, lines.line_start, lines.line_no,
                 "data past the declared NPTS=" + std::to_string(h.npts));
    }
    return err(Code::kMissingEndMarker, lines.line_start, lines.line_no,
               "expected END, got '" + std::string(line) + "'");
  }
  while (lines.next(line)) {
    if (!line.empty()) {
      return err(Code::kTrailingGarbage, lines.line_start, lines.line_no,
                 "content after END marker");
    }
  }

  return out;
}

void write_common(std::string& out, std::string_view magic,
                  const RecordHeader& h,
                  const std::vector<std::string>* processing,
                  const PeakSet* peaks,
                  const std::vector<std::string>* comments,
                  const std::vector<double>& samples) {
  out += magic;
  out += " 1\n";
  out += "STATION " + h.station + "\n";
  out += "COMPONENT " + h.component + "\n";
  out += "EVENT " + h.event_id + "\n";
  out += "DATE " + h.date + "\n";
  char buf[80];
  std::snprintf(buf, sizeof buf, "DT %.6e\n", h.dt);
  out += buf;
  out += "NPTS " + std::to_string(h.npts) + "\n";
  out += "UNITS " + h.units + "\n";
  if (processing) {
    out += "PROCESSED ";
    for (std::size_t i = 0; i < processing->size(); ++i) {
      if (i) out += ',';
      out += (*processing)[i];
    }
    out += '\n';
  }
  if (peaks && peaks->present) {
    // %.9e survives the docs/SIGNAL.md 1e-6 relative contract.
    std::snprintf(buf, sizeof buf, "PGA %.9e %.9e\n", peaks->pga.value,
                  peaks->pga.time);
    out += buf;
    std::snprintf(buf, sizeof buf, "PGV %.9e %.9e\n", peaks->pgv.value,
                  peaks->pgv.time);
    out += buf;
    std::snprintf(buf, sizeof buf, "PGD %.9e %.9e\n", peaks->pgd.value,
                  peaks->pgd.time);
    out += buf;
  }
  if (comments) {
    for (const std::string& c : *comments) {
      out += "# ";
      out += c;
      out += '\n';
    }
  }
  out += "DATA\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%*.*e", kColumnWidth, 4, samples[i]);
    out += buf;
    if ((i + 1) % kValuesPerLine == 0 || i + 1 == samples.size()) out += '\n';
  }
  out += "END\n";
}

}  // namespace

Result<Record, ParseError> read_v1(std::string_view content) {
  auto parsed = read_record(content, kV1Magic, /*is_v2=*/false);
  if (!parsed.ok()) return std::move(parsed).take_error();
  return std::move(parsed).take().record;
}

std::string write_v1(const Record& record) {
  std::string out;
  write_common(out, kV1Magic, record.header, nullptr, nullptr, nullptr,
               record.samples);
  return out;
}

Result<V2Record, ParseError> read_v2(std::string_view content) {
  auto parsed = read_record(content, kV2Magic, /*is_v2=*/true);
  if (!parsed.ok()) return std::move(parsed).take_error();
  ParsedRecord p = std::move(parsed).take();
  return V2Record{std::move(p.record), std::move(p.processing), p.peaks,
                  std::move(p.comments)};
}

std::string write_v2(const V2Record& record) {
  std::string out;
  write_common(out, kV2Magic, record.record.header, &record.processing,
               &record.peaks, &record.comments, record.record.samples);
  return out;
}

}  // namespace acx::formats
