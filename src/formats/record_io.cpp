#include <cmath>
#include <cstdio>
#include <string_view>

#include "formats/scan.hpp"
#include "formats/v1.hpp"
#include "formats/v2.hpp"

namespace acx::formats {

namespace {

using Code = ParseError::Code;
using scan::err;
using scan::is_date;
using scan::is_ident;
using scan::parse_full_double;
using scan::parse_full_long;

struct ParsedRecord {
  Record record;
  std::vector<std::string> processing;
  PeakSet peaks;
  std::vector<std::string> comments;
};

// "PGA <value> <time>": two finite numbers, time non-negative.
bool parse_peak_entry(std::string_view s, PeakEntry& out) {
  const std::size_t sp = s.find(' ');
  if (sp == std::string_view::npos) return false;
  double value = 0, time = 0;
  if (!parse_full_double(s.substr(0, sp), value) ||
      !parse_full_double(s.substr(sp + 1), time)) {
    return false;
  }
  if (!std::isfinite(value) || !std::isfinite(time) || time < 0) return false;
  out.value = value;
  out.time = time;
  return true;
}

Result<ParsedRecord, ParseError> read_record(std::string_view content,
                                             std::string_view magic,
                                             bool is_v2,
                                             bool header_only = false) {
  if (content.empty()) return err(Code::kEmptyFile, 0, 0, "file is empty");

  auto ascii = scan::check_ascii(content);
  if (!ascii.ok()) return std::move(ascii).take_error();

  scan::LineReader lines{content};
  std::string_view line;

  auto magic_ok = scan::read_magic(lines, magic);
  if (!magic_ok.ok()) return std::move(magic_ok).take_error();

  // Header fields until the DATA marker.
  ParsedRecord out;
  RecordHeader& h = out.record.header;
  bool seen[11] = {};  // STATION COMPONENT EVENT DATE DT NPTS UNITS PROCESSED
                       // PGA PGV PGD
  enum Field {
    kStation, kComponent, kEvent, kDate, kDt, kNpts, kUnits, kProcessed,
    kPga, kPgv, kPgd
  };
  static constexpr const char* kFieldNames[] = {
      "STATION", "COMPONENT", "EVENT", "DATE", "DT", "NPTS", "UNITS",
      "PROCESSED", "PGA", "PGV", "PGD"};
  constexpr int kFieldCount = 11;
  bool saw_data_marker = false;

  while (lines.next(line)) {
    if (line == "DATA") {
      saw_data_marker = true;
      break;
    }
    // Processing-history comments are part of the corrected format
    // only; V1 stays maximally strict.
    if (is_v2 && !line.empty() && line[0] == '#') {
      std::string_view body = line.substr(1);
      if (!body.empty() && body[0] == ' ') body.remove_prefix(1);
      out.comments.emplace_back(body);
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view val =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    const std::size_t off = lines.line_start;
    const std::size_t ln = lines.line_no;

    int field = -1;
    for (int f = 0; f < kFieldCount; ++f) {
      if (key == kFieldNames[f]) {
        field = f;
        break;
      }
    }
    if (field < 0 || (field >= kProcessed && !is_v2)) {
      return err(Code::kBadHeaderField, off, ln,
                 "unknown header field '" + std::string(key) + "'");
    }
    if (seen[field]) {
      return err(Code::kDuplicateHeaderField, off, ln,
                 "duplicate header field '" + std::string(key) + "'");
    }
    seen[field] = true;

    switch (field) {
      case kStation:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "STATION must be a non-empty identifier");
        }
        h.station = std::string(val);
        break;
      case kComponent:
        if (val != "l" && val != "t" && val != "v") {
          return err(Code::kBadHeaderField, off, ln,
                     "COMPONENT must be one of l, t, v; got '" +
                         std::string(val) + "'");
        }
        h.component = std::string(val);
        break;
      case kEvent:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "EVENT must be a non-empty identifier");
        }
        h.event_id = std::string(val);
        break;
      case kDate:
        if (!is_date(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "DATE must be yyyy-mm-dd; got '" + std::string(val) + "'");
        }
        h.date = std::string(val);
        break;
      case kDt: {
        double dt = 0;
        if (!parse_full_double(val, dt) || !std::isfinite(dt) || dt <= 0) {
          return err(Code::kBadHeaderField, off, ln,
                     "DT must be a finite positive number; got '" +
                         std::string(val) + "'");
        }
        h.dt = dt;
        break;
      }
      case kNpts: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > scan::kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NPTS must be in [1, " + std::to_string(scan::kMaxNpts) +
                         "]; got '" + std::string(val) + "'");
        }
        h.npts = n;
        break;
      }
      case kUnits:
        if (val != "counts" && val != "cm/s2") {
          return err(Code::kBadUnits, off, ln,
                     "UNITS must be 'counts' or 'cm/s2'; got '" +
                         std::string(val) + "'");
        }
        if (is_v2 && val != "cm/s2") {
          return err(Code::kBadUnits, off, ln, "V2 records must be in cm/s2");
        }
        h.units = std::string(val);
        break;
      case kProcessed: {
        std::string_view rest = val;
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          const std::string_view stage = rest.substr(0, comma);
          if (!is_ident(stage)) {
            return err(Code::kBadHeaderField, off, ln,
                       "PROCESSED must be a comma-separated stage list");
          }
          out.processing.emplace_back(stage);
          rest = comma == std::string_view::npos ? std::string_view{}
                                                 : rest.substr(comma + 1);
        }
        if (out.processing.empty()) {
          return err(Code::kBadHeaderField, off, ln,
                     "PROCESSED must name at least one stage");
        }
        break;
      }
      case kPga:
      case kPgv:
      case kPgd: {
        PeakEntry& entry = field == kPga   ? out.peaks.pga
                           : field == kPgv ? out.peaks.pgv
                                           : out.peaks.pgd;
        if (!parse_peak_entry(val, entry)) {
          return err(Code::kBadHeaderField, off, ln,
                     std::string(kFieldNames[field]) +
                         " must be '<value> <time>' with finite value and "
                         "non-negative time; got '" +
                         std::string(val) + "'");
        }
        break;
      }
    }
  }

  if (!saw_data_marker) {
    return err(Code::kMissingDataMarker, content.size(), lines.line_no,
               "no DATA marker before end of file");
  }
  const int required = is_v2 ? 8 : 7;
  for (int f = 0; f < required; ++f) {
    if (!seen[f]) {
      return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
                 std::string("missing header field ") + kFieldNames[f]);
    }
  }
  // The peak block is optional but all-or-nothing.
  const int peaks_seen = (seen[kPga] ? 1 : 0) + (seen[kPgv] ? 1 : 0) +
                         (seen[kPgd] ? 1 : 0);
  if (peaks_seen != 0 && peaks_seen != 3) {
    return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
               "peak block is partial: PGA, PGV and PGD must appear together");
  }
  out.peaks.present = peaks_seen == 3;

  if (header_only) return out;

  auto samples = scan::read_data_block(lines, h.npts, content.size());
  if (!samples.ok()) return std::move(samples).take_error();
  out.record.samples = std::move(samples).take();

  return out;
}

void write_common(std::string& out, std::string_view magic,
                  const RecordHeader& h,
                  const std::vector<std::string>* processing,
                  const PeakSet* peaks,
                  const std::vector<std::string>* comments,
                  const std::vector<double>& samples) {
  out += magic;
  out += " 1\n";
  out += "STATION " + h.station + "\n";
  out += "COMPONENT " + h.component + "\n";
  out += "EVENT " + h.event_id + "\n";
  out += "DATE " + h.date + "\n";
  char buf[80];
  std::snprintf(buf, sizeof buf, "DT %.6e\n", h.dt);
  out += buf;
  out += "NPTS " + std::to_string(h.npts) + "\n";
  out += "UNITS " + h.units + "\n";
  if (processing) {
    out += "PROCESSED ";
    for (std::size_t i = 0; i < processing->size(); ++i) {
      if (i) out += ',';
      out += (*processing)[i];
    }
    out += '\n';
  }
  if (peaks && peaks->present) {
    // %.9e survives the docs/SIGNAL.md 1e-6 relative contract.
    std::snprintf(buf, sizeof buf, "PGA %.9e %.9e\n", peaks->pga.value,
                  peaks->pga.time);
    out += buf;
    std::snprintf(buf, sizeof buf, "PGV %.9e %.9e\n", peaks->pgv.value,
                  peaks->pgv.time);
    out += buf;
    std::snprintf(buf, sizeof buf, "PGD %.9e %.9e\n", peaks->pgd.value,
                  peaks->pgd.time);
    out += buf;
  }
  if (comments) {
    for (const std::string& c : *comments) {
      out += "# ";
      out += c;
      out += '\n';
    }
  }
  scan::append_data_block(out, samples);
}

}  // namespace

Result<Record, ParseError> read_v1(std::string_view content) {
  auto parsed = read_record(content, kV1Magic, /*is_v2=*/false);
  if (!parsed.ok()) return std::move(parsed).take_error();
  return std::move(parsed).take().record;
}

Result<RecordHeader, ParseError> read_v1_header(std::string_view content) {
  auto parsed =
      read_record(content, kV1Magic, /*is_v2=*/false, /*header_only=*/true);
  if (!parsed.ok()) return std::move(parsed).take_error();
  return std::move(parsed).take().record.header;
}

std::string write_v1(const Record& record) {
  std::string out;
  write_common(out, kV1Magic, record.header, nullptr, nullptr, nullptr,
               record.samples);
  return out;
}

Result<V2Record, ParseError> read_v2(std::string_view content) {
  auto parsed = read_record(content, kV2Magic, /*is_v2=*/true);
  if (!parsed.ok()) return std::move(parsed).take_error();
  ParsedRecord p = std::move(parsed).take();
  return V2Record{std::move(p.record), std::move(p.processing), p.peaks,
                  std::move(p.comments)};
}

std::string write_v2(const V2Record& record) {
  std::string out;
  write_common(out, kV2Magic, record.record.header, &record.processing,
               &record.peaks, &record.comments, record.record.samples);
  return out;
}

}  // namespace acx::formats
