#pragma once

#include <string>
#include <vector>

namespace acx::formats {

// Fixed-column data-block geometry shared by V1 and V2 (see
// docs/FORMATS.md): 8 cells of exactly 12 characters per full line,
// written as %12.4e.
inline constexpr int kValuesPerLine = 8;
inline constexpr int kColumnWidth = 12;

// Header fields common to V1 (uncorrected) and V2 (corrected) records.
struct RecordHeader {
  std::string station;    // e.g. "SS01"
  std::string component;  // "l" (longitudinal), "t" (transverse), "v"
  std::string event_id;   // e.g. "EV06"
  std::string date;       // "yyyy-mm-dd"
  double dt = 0.0;        // sampling interval, seconds
  long npts = 0;          // declared sample count
  std::string units;      // "counts" (V1) or "cm/s2" (V2)

  // "<station><component>", the record id used in file names,
  // quarantine entries and the run report.
  std::string id() const { return station + component; }
};

struct Record {
  RecordHeader header;
  std::vector<double> samples;
};

}  // namespace acx::formats
