#include <cmath>
#include <cstdio>
#include <string_view>

#include "formats/scan.hpp"
#include "formats/spectra.hpp"

namespace acx::formats {

namespace {

using Code = ParseError::Code;
using scan::err;
using scan::is_date;
using scan::is_ident;
using scan::parse_full_double;
using scan::parse_full_long;

bool parse_header_double(std::string_view val, double& out) {
  return parse_full_double(val, out) && std::isfinite(out);
}

// The shared STATION/COMPONENT/EVENT/DATE/DT fields; returns false with
// `error` set when the value is rejected.
bool set_common_field(RecordHeader& h, int field, std::string_view val,
                      std::size_t off, std::size_t ln, ParseError& error) {
  switch (field) {
    case 0:
      if (!is_ident(val)) {
        error = err(Code::kBadHeaderField, off, ln,
                    "STATION must be a non-empty identifier");
        return false;
      }
      h.station = std::string(val);
      return true;
    case 1:
      if (val != "l" && val != "t" && val != "v") {
        error = err(Code::kBadHeaderField, off, ln,
                    "COMPONENT must be one of l, t, v; got '" +
                        std::string(val) + "'");
        return false;
      }
      h.component = std::string(val);
      return true;
    case 2:
      if (!is_ident(val)) {
        error = err(Code::kBadHeaderField, off, ln,
                    "EVENT must be a non-empty identifier");
        return false;
      }
      h.event_id = std::string(val);
      return true;
    case 3:
      if (!is_date(val)) {
        error = err(Code::kBadHeaderField, off, ln,
                    "DATE must be yyyy-mm-dd; got '" + std::string(val) + "'");
        return false;
      }
      h.date = std::string(val);
      return true;
    case 4: {
      double dt = 0;
      if (!parse_header_double(val, dt) || dt <= 0) {
        error = err(Code::kBadHeaderField, off, ln,
                    "DT must be a finite positive number; got '" +
                        std::string(val) + "'");
        return false;
      }
      h.dt = dt;
      return true;
    }
  }
  error = err(Code::kBadHeaderField, off, ln, "internal: unknown field");
  return false;
}

void append_common_header(std::string& out, std::string_view magic,
                          const RecordHeader& h) {
  out += magic;
  out += " 1\n";
  out += "STATION " + h.station + "\n";
  out += "COMPONENT " + h.component + "\n";
  out += "EVENT " + h.event_id + "\n";
  out += "DATE " + h.date + "\n";
  char buf[80];
  std::snprintf(buf, sizeof buf, "DT %.6e\n", h.dt);
  out += buf;
}

}  // namespace

Result<FRecord, ParseError> read_f(std::string_view content) {
  if (content.empty()) return err(Code::kEmptyFile, 0, 0, "file is empty");
  auto ascii = scan::check_ascii(content);
  if (!ascii.ok()) return std::move(ascii).take_error();

  scan::LineReader lines{content};
  auto magic_ok = scan::read_magic(lines, kFMagic);
  if (!magic_ok.ok()) return std::move(magic_ok).take_error();

  FRecord out;
  RecordHeader& h = out.header;
  enum Field {
    kStation, kComponent, kEvent, kDate, kDt, kNpts, kUnits, kDf, kNfft,
    kWindow, kFsl, kFpl
  };
  static constexpr const char* kFieldNames[] = {
      "STATION", "COMPONENT", "EVENT", "DATE", "DT", "NPTS", "UNITS",
      "DF", "NFFT", "WINDOW", "FSL", "FPL"};
  constexpr int kFieldCount = 12;
  bool seen[kFieldCount] = {};
  bool saw_data_marker = false;

  std::string_view line;
  while (lines.next(line)) {
    if (line == "DATA") {
      saw_data_marker = true;
      break;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view val =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    const std::size_t off = lines.line_start;
    const std::size_t ln = lines.line_no;

    int field = -1;
    for (int f = 0; f < kFieldCount; ++f) {
      if (key == kFieldNames[f]) {
        field = f;
        break;
      }
    }
    if (field < 0) {
      return err(Code::kBadHeaderField, off, ln,
                 "unknown header field '" + std::string(key) + "'");
    }
    if (seen[field]) {
      return err(Code::kDuplicateHeaderField, off, ln,
                 "duplicate header field '" + std::string(key) + "'");
    }
    seen[field] = true;

    switch (field) {
      case kStation: case kComponent: case kEvent: case kDate: case kDt: {
        ParseError e;
        if (!set_common_field(h, field, val, off, ln, e)) return e;
        break;
      }
      case kNpts: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > scan::kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NPTS must be in [1, " + std::to_string(scan::kMaxNpts) +
                         "]; got '" + std::string(val) + "'");
        }
        h.npts = n;
        break;
      }
      case kUnits:
        if (val != "cm/s") {
          return err(Code::kBadUnits, off, ln,
                     "F spectra are in cm/s; got '" + std::string(val) + "'");
        }
        h.units = std::string(val);
        break;
      case kDf: {
        double df = 0;
        if (!parse_header_double(val, df) || df <= 0) {
          return err(Code::kBadHeaderField, off, ln,
                     "DF must be a finite positive number; got '" +
                         std::string(val) + "'");
        }
        out.df = df;
        break;
      }
      case kNfft: {
        long n = 0;
        if (!parse_full_long(val, n) || n < 2 || n % 2 != 0 ||
            n > scan::kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NFFT must be an even integer in [2, " +
                         std::to_string(scan::kMaxNpts) + "]; got '" +
                         std::string(val) + "'");
        }
        out.nfft = n;
        break;
      }
      case kWindow:
        if (val != "none" && val != "hann" && val != "hamming") {
          return err(Code::kBadHeaderField, off, ln,
                     "WINDOW must be none, hann or hamming; got '" +
                         std::string(val) + "'");
        }
        out.window = std::string(val);
        break;
      case kFsl: case kFpl: {
        double v = 0;
        if (!parse_header_double(val, v) || v <= 0) {
          return err(Code::kBadHeaderField, off, ln,
                     std::string(kFieldNames[field]) +
                         " must be a finite positive number; got '" +
                         std::string(val) + "'");
        }
        (field == kFsl ? out.fsl_hz : out.fpl_hz) = v;
        break;
      }
    }
  }

  if (!saw_data_marker) {
    return err(Code::kMissingDataMarker, content.size(), lines.line_no,
               "no DATA marker before end of file");
  }
  for (int f = 0; f <= kWindow; ++f) {
    if (!seen[f]) {
      return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
                 std::string("missing header field ") + kFieldNames[f]);
    }
  }
  // The corner pair is optional but all-or-nothing, like the V2 peaks.
  if (seen[kFsl] != seen[kFpl]) {
    return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
               "corner block is partial: FSL and FPL must appear together");
  }
  out.has_corners = seen[kFsl];
  if (out.has_corners && !(out.fsl_hz < out.fpl_hz)) {
    return err(Code::kBadValue, lines.line_start, lines.line_no,
               "corners are degenerate: FSL must be below FPL");
  }

  // Geometry cross-checks tie the header fields to each other.
  if (h.npts != out.nfft / 2 + 1) {
    return err(Code::kBadValue, lines.line_start, lines.line_no,
               "NPTS must equal NFFT/2 + 1 = " +
                   std::to_string(out.nfft / 2 + 1) + "; got " +
                   std::to_string(h.npts));
  }
  const double expected_df = 1.0 / (static_cast<double>(out.nfft) * h.dt);
  if (std::fabs(out.df - expected_df) > 1e-6 * expected_df) {
    return err(Code::kBadValue, lines.line_start, lines.line_no,
               "DF disagrees with 1 / (NFFT * DT)");
  }

  auto block = scan::read_data_block(lines, h.npts, content.size());
  if (!block.ok()) return std::move(block).take_error();
  out.amplitude = std::move(block).take();
  for (std::size_t i = 0; i < out.amplitude.size(); ++i) {
    if (out.amplitude[i] < 0) {
      return err(Code::kBadValue, 0, 0,
                 "amplitude bin " + std::to_string(i) + " is negative");
    }
  }
  return out;
}

std::string write_f(const FRecord& record) {
  std::string out;
  append_common_header(out, kFMagic, record.header);
  char buf[80];
  out += "NPTS " + std::to_string(record.header.npts) + "\n";
  out += "UNITS " + record.header.units + "\n";
  std::snprintf(buf, sizeof buf, "DF %.9e\n", record.df);
  out += buf;
  out += "NFFT " + std::to_string(record.nfft) + "\n";
  out += "WINDOW " + record.window + "\n";
  if (record.has_corners) {
    // %.9e survives the docs/SPECTRUM.md 1e-6 relative contract.
    std::snprintf(buf, sizeof buf, "FSL %.9e\n", record.fsl_hz);
    out += buf;
    std::snprintf(buf, sizeof buf, "FPL %.9e\n", record.fpl_hz);
    out += buf;
  }
  scan::append_data_block(out, record.amplitude);
  return out;
}

Result<RRecord, ParseError> read_r(std::string_view content) {
  if (content.empty()) return err(Code::kEmptyFile, 0, 0, "file is empty");
  auto ascii = scan::check_ascii(content);
  if (!ascii.ok()) return std::move(ascii).take_error();

  scan::LineReader lines{content};
  auto magic_ok = scan::read_magic(lines, kRMagic);
  if (!magic_ok.ok()) return std::move(magic_ok).take_error();

  RRecord out;
  RecordHeader& h = out.header;
  enum Field { kStation, kComponent, kEvent, kDate, kDt, kNperiods, kDampings };
  static constexpr const char* kFieldNames[] = {
      "STATION", "COMPONENT", "EVENT", "DATE", "DT", "NPERIODS", "DAMPINGS"};
  constexpr int kFieldCount = 7;
  bool seen[kFieldCount] = {};
  bool saw_data_marker = false;

  std::string_view line;
  while (lines.next(line)) {
    if (line == "DATA") {
      saw_data_marker = true;
      break;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view val =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    const std::size_t off = lines.line_start;
    const std::size_t ln = lines.line_no;

    int field = -1;
    for (int f = 0; f < kFieldCount; ++f) {
      if (key == kFieldNames[f]) {
        field = f;
        break;
      }
    }
    if (field < 0) {
      return err(Code::kBadHeaderField, off, ln,
                 "unknown header field '" + std::string(key) + "'");
    }
    if (seen[field]) {
      return err(Code::kDuplicateHeaderField, off, ln,
                 "duplicate header field '" + std::string(key) + "'");
    }
    seen[field] = true;

    switch (field) {
      case kStation: case kComponent: case kEvent: case kDate: case kDt: {
        ParseError e;
        if (!set_common_field(h, field, val, off, ln, e)) return e;
        break;
      }
      case kNperiods: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > scan::kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NPERIODS must be in [1, " +
                         std::to_string(scan::kMaxNpts) + "]; got '" +
                         std::string(val) + "'");
        }
        h.npts = n;
        break;
      }
      case kDampings: {
        std::string_view rest = val;
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          const std::string_view tok = rest.substr(0, comma);
          double z = 0;
          if (!parse_header_double(tok, z) || z < 0 || z >= 1) {
            return err(Code::kBadHeaderField, off, ln,
                       "DAMPINGS must be a comma-separated list of ratios in "
                       "[0, 1); got '" +
                           std::string(tok) + "'");
          }
          if (!out.dampings.empty() && z <= out.dampings.back()) {
            return err(Code::kBadHeaderField, off, ln,
                       "DAMPINGS must be strictly ascending");
          }
          out.dampings.push_back(z);
          rest = comma == std::string_view::npos ? std::string_view{}
                                                 : rest.substr(comma + 1);
        }
        if (out.dampings.empty()) {
          return err(Code::kBadHeaderField, off, ln,
                     "DAMPINGS must name at least one ratio");
        }
        break;
      }
    }
  }

  if (!saw_data_marker) {
    return err(Code::kMissingDataMarker, content.size(), lines.line_no,
               "no DATA marker before end of file");
  }
  for (int f = 0; f < kFieldCount; ++f) {
    if (!seen[f]) {
      return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
                 std::string("missing header field ") + kFieldNames[f]);
    }
  }

  // One flat block: periods, then SD/SV/SA per damping, damping-major.
  const long nper = h.npts;
  const long ndamp = static_cast<long>(out.dampings.size());
  const long total = nper * (1 + 3 * ndamp);
  auto block = scan::read_data_block(lines, total, content.size());
  if (!block.ok()) return std::move(block).take_error();
  std::vector<double> flat = std::move(block).take();

  const std::size_t np = static_cast<std::size_t>(nper);
  out.periods.assign(flat.begin(), flat.begin() + nper);
  for (std::size_t i = 0; i < np; ++i) {
    if (out.periods[i] <= 0) {
      return err(Code::kBadValue, 0, 0,
                 "period " + std::to_string(i) + " is not positive");
    }
    if (i > 0 && out.periods[i] <= out.periods[i - 1]) {
      return err(Code::kBadValue, 0, 0,
                 "periods must be strictly ascending (index " +
                     std::to_string(i) + ")");
    }
  }
  const std::size_t cells = np * static_cast<std::size_t>(ndamp);
  out.sd.resize(cells);
  out.sv.resize(cells);
  out.sa.resize(cells);
  std::size_t cursor = np;
  for (long d = 0; d < ndamp; ++d) {
    const std::size_t base = static_cast<std::size_t>(d) * np;
    for (std::vector<double>* dst : {&out.sd, &out.sv, &out.sa}) {
      for (std::size_t p = 0; p < np; ++p) {
        const double v = flat[cursor++];
        if (v < 0) {
          return err(Code::kBadValue, 0, 0,
                     "spectral value at damping " + std::to_string(d) +
                         ", period " + std::to_string(p) + " is negative");
        }
        (*dst)[base + p] = v;
      }
    }
  }
  return out;
}

Result<RotdRecord, ParseError> read_rotd(std::string_view content) {
  if (content.empty()) return err(Code::kEmptyFile, 0, 0, "file is empty");
  auto ascii = scan::check_ascii(content);
  if (!ascii.ok()) return std::move(ascii).take_error();

  scan::LineReader lines{content};
  auto magic_ok = scan::read_magic(lines, kRotdMagic);
  if (!magic_ok.ok()) return std::move(magic_ok).take_error();

  RotdRecord out;
  long nperiods = 0;
  // Station-level header: no COMPONENT field (the whole point of the
  // format is that the result is orientation-independent).
  enum Field { kStation, kEvent, kDate, kDt, kNperiods, kAngles, kDampings };
  static constexpr const char* kFieldNames[] = {
      "STATION", "EVENT", "DATE", "DT", "NPERIODS", "ANGLES", "DAMPINGS"};
  constexpr int kFieldCount = 7;
  bool seen[kFieldCount] = {};
  bool saw_data_marker = false;

  std::string_view line;
  while (lines.next(line)) {
    if (line == "DATA") {
      saw_data_marker = true;
      break;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view val =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    const std::size_t off = lines.line_start;
    const std::size_t ln = lines.line_no;

    int field = -1;
    for (int f = 0; f < kFieldCount; ++f) {
      if (key == kFieldNames[f]) {
        field = f;
        break;
      }
    }
    if (field < 0) {
      return err(Code::kBadHeaderField, off, ln,
                 "unknown header field '" + std::string(key) + "'");
    }
    if (seen[field]) {
      return err(Code::kDuplicateHeaderField, off, ln,
                 "duplicate header field '" + std::string(key) + "'");
    }
    seen[field] = true;

    switch (field) {
      case kStation:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "STATION must be a non-empty identifier");
        }
        out.station = std::string(val);
        break;
      case kEvent:
        if (!is_ident(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "EVENT must be a non-empty identifier");
        }
        out.event_id = std::string(val);
        break;
      case kDate:
        if (!is_date(val)) {
          return err(Code::kBadHeaderField, off, ln,
                     "DATE must be yyyy-mm-dd; got '" + std::string(val) + "'");
        }
        out.date = std::string(val);
        break;
      case kDt: {
        double dt = 0;
        if (!parse_header_double(val, dt) || dt <= 0) {
          return err(Code::kBadHeaderField, off, ln,
                     "DT must be a finite positive number; got '" +
                         std::string(val) + "'");
        }
        out.dt = dt;
        break;
      }
      case kNperiods: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > scan::kMaxNpts) {
          return err(Code::kBadHeaderField, off, ln,
                     "NPERIODS must be in [1, " +
                         std::to_string(scan::kMaxNpts) + "]; got '" +
                         std::string(val) + "'");
        }
        nperiods = n;
        break;
      }
      case kAngles: {
        long n = 0;
        if (!parse_full_long(val, n) || n <= 0 || n > 36000) {
          return err(Code::kBadHeaderField, off, ln,
                     "ANGLES must be in [1, 36000]; got '" + std::string(val) +
                         "'");
        }
        out.angles = n;
        break;
      }
      case kDampings: {
        std::string_view rest = val;
        while (!rest.empty()) {
          const std::size_t comma = rest.find(',');
          const std::string_view tok = rest.substr(0, comma);
          double z = 0;
          if (!parse_header_double(tok, z) || z < 0 || z >= 1) {
            return err(Code::kBadHeaderField, off, ln,
                       "DAMPINGS must be a comma-separated list of ratios in "
                       "[0, 1); got '" +
                           std::string(tok) + "'");
          }
          if (!out.dampings.empty() && z <= out.dampings.back()) {
            return err(Code::kBadHeaderField, off, ln,
                       "DAMPINGS must be strictly ascending");
          }
          out.dampings.push_back(z);
          rest = comma == std::string_view::npos ? std::string_view{}
                                                 : rest.substr(comma + 1);
        }
        if (out.dampings.empty()) {
          return err(Code::kBadHeaderField, off, ln,
                     "DAMPINGS must name at least one ratio");
        }
        break;
      }
    }
  }

  if (!saw_data_marker) {
    return err(Code::kMissingDataMarker, content.size(), lines.line_no,
               "no DATA marker before end of file");
  }
  for (int f = 0; f < kFieldCount; ++f) {
    if (!seen[f]) {
      return err(Code::kMissingHeaderField, lines.line_start, lines.line_no,
                 std::string("missing header field ") + kFieldNames[f]);
    }
  }

  // One flat block: periods, then ROTD00/ROTD50/ROTD100/GEOMEAN per
  // damping, damping-major.
  const long ndamp = static_cast<long>(out.dampings.size());
  const long total = nperiods * (1 + 4 * ndamp);
  auto block = scan::read_data_block(lines, total, content.size());
  if (!block.ok()) return std::move(block).take_error();
  std::vector<double> flat = std::move(block).take();

  const std::size_t np = static_cast<std::size_t>(nperiods);
  out.periods.assign(flat.begin(), flat.begin() + nperiods);
  for (std::size_t i = 0; i < np; ++i) {
    if (out.periods[i] <= 0) {
      return err(Code::kBadValue, 0, 0,
                 "period " + std::to_string(i) + " is not positive");
    }
    if (i > 0 && out.periods[i] <= out.periods[i - 1]) {
      return err(Code::kBadValue, 0, 0,
                 "periods must be strictly ascending (index " +
                     std::to_string(i) + ")");
    }
  }
  const std::size_t cells = np * static_cast<std::size_t>(ndamp);
  out.rotd00.resize(cells);
  out.rotd50.resize(cells);
  out.rotd100.resize(cells);
  out.geomean.resize(cells);
  std::size_t cursor = np;
  for (long d = 0; d < ndamp; ++d) {
    const std::size_t base = static_cast<std::size_t>(d) * np;
    for (std::vector<double>* dst :
         {&out.rotd00, &out.rotd50, &out.rotd100, &out.geomean}) {
      for (std::size_t p = 0; p < np; ++p) {
        const double v = flat[cursor++];
        if (v < 0) {
          return err(Code::kBadValue, 0, 0,
                     "spectral value at damping " + std::to_string(d) +
                         ", period " + std::to_string(p) + " is negative");
        }
        (*dst)[base + p] = v;
      }
    }
  }
  // The percentile ordering is an invariant of the sweep, not just a
  // convention: a file that breaks it was not produced by the kernel.
  for (std::size_t i = 0; i < cells; ++i) {
    if (out.rotd00[i] > out.rotd50[i] || out.rotd50[i] > out.rotd100[i]) {
      return err(Code::kBadValue, 0, 0,
                 "RotD percentiles out of order at cell " + std::to_string(i) +
                     ": ROTD00 <= ROTD50 <= ROTD100 must hold");
    }
  }
  return out;
}

std::string write_rotd(const RotdRecord& record) {
  std::string out;
  out += kRotdMagic;
  out += " 1\n";
  out += "STATION " + record.station + "\n";
  out += "EVENT " + record.event_id + "\n";
  out += "DATE " + record.date + "\n";
  char buf[80];
  std::snprintf(buf, sizeof buf, "DT %.6e\n", record.dt);
  out += buf;
  out += "NPERIODS " + std::to_string(record.periods.size()) + "\n";
  out += "ANGLES " + std::to_string(record.angles) + "\n";
  out += "DAMPINGS ";
  for (std::size_t i = 0; i < record.dampings.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof buf, "%.6e", record.dampings[i]);
    out += buf;
  }
  out += '\n';

  std::vector<double> flat;
  const std::size_t np = record.periods.size();
  flat.reserve(np * (1 + 4 * record.dampings.size()));
  flat.insert(flat.end(), record.periods.begin(), record.periods.end());
  for (std::size_t d = 0; d < record.dampings.size(); ++d) {
    const std::size_t base = d * np;
    for (const std::vector<double>* src :
         {&record.rotd00, &record.rotd50, &record.rotd100, &record.geomean}) {
      flat.insert(flat.end(), src->begin() + base, src->begin() + base + np);
    }
  }
  scan::append_data_block(out, flat);
  return out;
}

std::string write_r(const RRecord& record) {
  std::string out;
  append_common_header(out, kRMagic, record.header);
  out += "NPERIODS " + std::to_string(record.header.npts) + "\n";
  out += "DAMPINGS ";
  char buf[32];
  for (std::size_t i = 0; i < record.dampings.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof buf, "%.6e", record.dampings[i]);
    out += buf;
  }
  out += '\n';

  std::vector<double> flat;
  const std::size_t np = record.periods.size();
  flat.reserve(np * (1 + 3 * record.dampings.size()));
  flat.insert(flat.end(), record.periods.begin(), record.periods.end());
  for (std::size_t d = 0; d < record.dampings.size(); ++d) {
    const std::size_t base = d * np;
    for (const std::vector<double>* src : {&record.sd, &record.sv, &record.sa}) {
      flat.insert(flat.end(), src->begin() + base, src->begin() + base + np);
    }
  }
  scan::append_data_block(out, flat);
  return out;
}

}  // namespace acx::formats
