#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kV2Magic = "ACX-V2";
inline constexpr std::string_view kV2Extension = ".v2";

// Corrected record: V1 payload plus the ordered list of processing
// stages that produced it. Units must be "cm/s2".
struct V2Record {
  Record record;
  std::vector<std::string> processing;  // e.g. {"demean", "detrend"}
};

Result<V2Record, ParseError> read_v2(std::string_view content);

std::string write_v2(const V2Record& record);

}  // namespace acx::formats
