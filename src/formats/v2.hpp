#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "formats/record.hpp"
#include "util/result.hpp"

namespace acx::formats {

inline constexpr std::string_view kV2Magic = "ACX-V2";
inline constexpr std::string_view kV2Extension = ".v2";

// One peak header entry: signed value at the absolute maximum, and the
// time (seconds from the first sample) at which it occurs.
struct PeakEntry {
  double value = 0.0;
  double time = 0.0;
};

// The V2 peak block: PGA (cm/s2), PGV (cm/s), PGD (cm). The block is
// all-or-nothing — a V2 file carries either all three header lines or
// none (the strict reader rejects a partial set). Pipeline outputs
// always carry it; acx_validate enforces that.
struct PeakSet {
  bool present = false;
  PeakEntry pga, pgv, pgd;
};

// Corrected record: V1 payload plus the ordered list of processing
// stages that produced it, the peak block, and free-form
// processing-history comment lines ('# ...' in the header section,
// stored without the leading "# "). Units must be "cm/s2".
struct V2Record {
  Record record;
  std::vector<std::string> processing;  // e.g. {"demean", "detrend"}
  PeakSet peaks;
  std::vector<std::string> comments;
};

Result<V2Record, ParseError> read_v2(std::string_view content);

std::string write_v2(const V2Record& record);

}  // namespace acx::formats
