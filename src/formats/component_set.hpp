#pragma once

// Station/component grouping layer (docs/FORMATS.md, "Component sets").
// A record id is "<station><component>": the component is the final
// 'l' (longitudinal), 't' (transverse) or 'v' (vertical) character of
// the id. Ids without such a suffix are treated as single-component
// stations named by the whole id, with an empty component. The same
// split is applied everywhere a record id has to be grouped — runner,
// report, validator, sched — so the layers agree on station identity.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acx::formats {

// The three component suffixes, in canonical order.
inline constexpr std::string_view kComponentSuffixes = "ltv";

inline bool is_component_suffix(char c) {
  return c == 'l' || c == 't' || c == 'v';
}

// "<station><component>" -> {station, component}. Falls back to
// {id, ""} when the id has no recognizable suffix (single-character
// ids are all station, never all component).
std::pair<std::string, std::string> split_record_id(std::string_view id);

// One station's view of an event: which components showed up, and the
// record id each came from. `components[i]` is the suffix of
// `records[i]`; both are sorted by component suffix (so a duplicate
// suffix sorts adjacent and is easy to spot).
struct ComponentSet {
  std::string station;
  std::vector<std::string> components;
  std::vector<std::string> records;

  bool has_component(std::string_view c) const;
};

// Groups record ids into component sets, sorted by station name.
// Duplicate suffixes are kept (the caller decides whether that is a
// quarantinable inconsistency).
std::vector<ComponentSet> group_component_sets(
    const std::vector<std::string>& record_ids);

}  // namespace acx::formats
