#include "formats/component_set.hpp"

#include <algorithm>
#include <map>

namespace acx::formats {

std::pair<std::string, std::string> split_record_id(std::string_view id) {
  if (id.size() >= 2 && is_component_suffix(id.back())) {
    return {std::string(id.substr(0, id.size() - 1)),
            std::string(1, id.back())};
  }
  return {std::string(id), std::string()};
}

bool ComponentSet::has_component(std::string_view c) const {
  return std::find(components.begin(), components.end(), c) !=
         components.end();
}

std::vector<ComponentSet> group_component_sets(
    const std::vector<std::string>& record_ids) {
  std::map<std::string, ComponentSet> by_station;
  for (const std::string& id : record_ids) {
    auto [station, component] = split_record_id(id);
    ComponentSet& set = by_station[station];
    set.station = station;
    set.components.push_back(std::move(component));
    set.records.push_back(id);
  }
  std::vector<ComponentSet> out;
  out.reserve(by_station.size());
  for (auto& [station, set] : by_station) {
    // Sort members by component suffix, record id as tie-break, so a
    // duplicate suffix lands adjacent and the order is deterministic.
    std::vector<std::size_t> order(set.records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&set](std::size_t a, std::size_t b) {
      if (set.components[a] != set.components[b]) {
        return set.components[a] < set.components[b];
      }
      return set.records[a] < set.records[b];
    });
    ComponentSet sorted;
    sorted.station = set.station;
    sorted.components.reserve(order.size());
    sorted.records.reserve(order.size());
    for (std::size_t i : order) {
      sorted.components.push_back(std::move(set.components[i]));
      sorted.records.push_back(std::move(set.records[i]));
    }
    out.push_back(std::move(sorted));
  }
  return out;
}

}  // namespace acx::formats
