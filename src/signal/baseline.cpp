#include "signal/baseline.hpp"

#include <cmath>
#include <utility>

namespace acx::signal {

namespace {

Result<double, SignalError> finite_mean(const std::vector<double>& x) {
  double sum = 0.0;
  for (const double v : x) sum += v;
  const double mean = sum / static_cast<double>(x.size());
  if (!std::isfinite(mean)) {
    return SignalError{SignalError::Code::kNonFinite,
                       "mean is not finite (overflow or non-finite input)"};
  }
  return mean;
}

}  // namespace

Result<double, SignalError> remove_mean(std::vector<double>& x) {
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples to demean"};
  }
  auto mean = finite_mean(x);
  if (!mean.ok()) return std::move(mean).take_error();
  for (double& v : x) v -= mean.value();
  return mean.value();
}

Result<LinearTrend, SignalError> detrend_linear(std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n < 2) {
    return SignalError{SignalError::Code::kTooShort,
                       "linear detrend needs at least 2 samples"};
  }
  auto mean = finite_mean(x);
  if (!mean.ok()) return std::move(mean).take_error();

  // slope = cov(i, x) / var(i) around the index midpoint xm.
  const double xm = static_cast<double>(n - 1) / 2.0;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - xm;
    sxy += dx * (x[i] - mean.value());
    sxx += dx * dx;
  }
  LinearTrend trend;
  trend.intercept = mean.value();
  trend.slope = sxx > 0 ? sxy / sxx : 0.0;
  if (!std::isfinite(trend.slope)) {
    return SignalError{SignalError::Code::kNonFinite, "trend slope overflowed"};
  }
  for (std::size_t i = 0; i < n; ++i) {
    x[i] -= trend.intercept + trend.slope * (static_cast<double>(i) - xm);
  }
  return trend;
}

Result<std::vector<double>, SignalError> detrend_polynomial(
    std::vector<double>& x, int degree) {
  if (degree < 0 || degree > kMaxDetrendDegree) {
    return SignalError{SignalError::Code::kBadDegree,
                       "degree must be in [0, " +
                           std::to_string(kMaxDetrendDegree) + "]; got " +
                           std::to_string(degree)};
  }
  const std::size_t n = x.size();
  const std::size_t terms = static_cast<std::size_t>(degree) + 1;
  if (n < terms) {
    return SignalError{SignalError::Code::kTooShort,
                       "degree-" + std::to_string(degree) +
                           " detrend needs at least " + std::to_string(terms) +
                           " samples"};
  }

  // Normal equations G c = r over u in [-1, 1]:
  // G[a][b] = sum_i u_i^(a+b), r[a] = sum_i x_i u_i^a.
  std::vector<double> moments(2 * terms - 1, 0.0);
  std::vector<double> r(terms, 0.0);
  const double scale = n > 1 ? 2.0 / static_cast<double>(n - 1) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) * scale - 1.0;
    double p = 1.0;
    for (std::size_t a = 0; a < moments.size(); ++a) {
      moments[a] += p;
      if (a < terms) r[a] += x[i] * p;
      p *= u;
    }
  }
  std::vector<std::vector<double>> g(terms, std::vector<double>(terms));
  for (std::size_t a = 0; a < terms; ++a) {
    for (std::size_t b = 0; b < terms; ++b) g[a][b] = moments[a + b];
  }

  // Gaussian elimination with partial pivoting on the (tiny) system.
  std::vector<double> c = r;
  for (std::size_t col = 0; col < terms; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < terms; ++row) {
      if (std::fabs(g[row][col]) > std::fabs(g[pivot][col])) pivot = row;
    }
    std::swap(g[col], g[pivot]);
    std::swap(c[col], c[pivot]);
    if (g[col][col] == 0.0) {
      return SignalError{SignalError::Code::kBadDegree,
                         "normal equations are singular"};
    }
    for (std::size_t row = col + 1; row < terms; ++row) {
      const double f = g[row][col] / g[col][col];
      for (std::size_t k = col; k < terms; ++k) g[row][k] -= f * g[col][k];
      c[row] -= f * c[col];
    }
  }
  for (std::size_t col = terms; col-- > 0;) {
    for (std::size_t k = col + 1; k < terms; ++k) c[col] -= g[col][k] * c[k];
    c[col] /= g[col][col];
    if (!std::isfinite(c[col])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "polynomial coefficient overflowed"};
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) * scale - 1.0;
    double fit = 0.0;
    for (std::size_t a = terms; a-- > 0;) fit = fit * u + c[a];
    x[i] -= fit;
  }
  return c;
}

}  // namespace acx::signal
