#pragma once

#include <vector>

#include "signal/error.hpp"
#include "signal/timeseries.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Cumulative trapezoidal integration with zero initial condition:
// y[0] = 0, y[i] = y[i-1] + dt * (x[i-1] + x[i]) / 2.
// Requires finite positive dt and at least 2 samples; verifies the
// running sum stays finite.
Result<std::vector<double>, SignalError> integrate_trapezoid(
    const std::vector<double>& x, double dt);

// Units-aware wrapper: acceleration (cm/s2) -> velocity (cm/s) ->
// displacement (cm). Integrating counts or cm is a kBadUnits error —
// calibrate first, and nothing integrates past displacement.
Result<TimeSeries, SignalError> integrate(const TimeSeries& ts);

}  // namespace acx::signal
