#pragma once

#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Butterworth band-pass in second-order sections (SOS) — the
// ObsPy-style IIR alternative to the windowed-sinc FIR correction
// path (docs/SIGNAL.md, "Butterworth SOS band-pass"). The bilinear
// design runs once per (corners, dt); application is O(n * sections)
// regardless of the band, which is the cost ablation against the FIR
// path (BM_SosFiltFilt vs BM_FirBandPass).

// One second-order section, direct-form II transposed, with the
// denominator normalized to a0 == 1:
//   y[i] = b0*x[i] + z1
//   z1   = b1*x[i] - a1*y[i] + z2
//   z2   = b2*x[i] - a2*y[i]
struct Biquad {
  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

// Analog prototype order N; the band-pass transform doubles it, so
// the digital filter has N sections and 2N poles (ObsPy's
// bandpass(corners=4) equivalent).
struct ButterworthSpec {
  double low_hz = 0.0;   // lower pass-band corner, Hz
  double high_hz = 0.0;  // upper pass-band corner, Hz
  int order = 4;         // analog prototype order
};

inline constexpr int kMinSosOrder = 1;
inline constexpr int kMaxSosOrder = 16;

// Bilinear-transform Butterworth band-pass: prototype poles
// e^{i*pi*(2k+N+1)/(2N)}, corners pre-warped with (2/dt)*tan(pi*f*dt),
// quadratic band-pass substitution, bilinear map z = (2/dt+s)/(2/dt-s),
// conjugate poles paired per section, numerator (1, 0, -1) per section
// (one zero at z=1 and one at z=-1 each), gain normalized to unit
// magnitude at the digital geometric-centre frequency sqrt(low*high) —
// the same normalization point as the FIR design. Errors: bad dt,
// corners outside 0 < low < high < Nyquist, order out of
// [kMinSosOrder, kMaxSosOrder].
Result<std::vector<Biquad>, SignalError> design_butterworth_bandpass(
    const ButterworthSpec& spec, double dt);

// Single causal pass through the cascade, zero initial conditions.
std::vector<double> sosfilt(const std::vector<Biquad>& sos,
                            const std::vector<double>& x);

// Zero-phase application, ObsPy zerophase=True semantics: causal pass,
// time reversal, second causal pass, reversal back — no padding, zero
// initial conditions on both passes. The effective response is
// |H(f)|^2. Verifies the output is finite (an unstable section or
// non-finite input surfaces as kNonFinite, never silently).
Result<std::vector<double>, SignalError> filtfilt_sos(
    const std::vector<Biquad>& sos, const std::vector<double>& x);

}  // namespace acx::signal
