#include "signal/sos.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <string>

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

using Cplx = std::complex<double>;

// Digital denominator (1, a1, a2) of one section from its two digital
// poles — either a conjugate pair or two reals; both make the
// coefficients real (tiny imaginary residue from the complex
// arithmetic is dropped explicitly).
Biquad section_from_poles(const Cplx& z1, const Cplx& z2) {
  Biquad s;
  s.a1 = -(z1 + z2).real();
  s.a2 = (z1 * z2).real();
  return s;
}

}  // namespace

Result<std::vector<Biquad>, SignalError> design_butterworth_bandpass(
    const ButterworthSpec& spec, double dt) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (spec.order < kMinSosOrder || spec.order > kMaxSosOrder) {
    return SignalError{SignalError::Code::kBadTaps,
                       "butterworth order must be in [" +
                           std::to_string(kMinSosOrder) + ", " +
                           std::to_string(kMaxSosOrder) + "]; got " +
                           std::to_string(spec.order)};
  }
  const double nyquist = 0.5 / dt;
  if (!std::isfinite(spec.low_hz) || !std::isfinite(spec.high_hz) ||
      spec.low_hz <= 0 || spec.low_hz >= spec.high_hz ||
      spec.high_hz >= nyquist) {
    return SignalError{
        SignalError::Code::kBadCorners,
        "corners must satisfy 0 < low < high < Nyquist (" +
            std::to_string(nyquist) + " Hz); got [" +
            std::to_string(spec.low_hz) + ", " + std::to_string(spec.high_hz) +
            "]"};
  }

  const int order = spec.order;
  const double c = 2.0 / dt;  // bilinear constant
  // Pre-warped analog corners: the bilinear map compresses the
  // frequency axis, so the analog design uses (2/dt)*tan(pi*f*dt) to
  // land the digital corners exactly on low_hz/high_hz.
  const double wl = c * std::tan(kPi * spec.low_hz * dt);
  const double wh = c * std::tan(kPi * spec.high_hz * dt);
  const double bw = wh - wl;
  const double w0sq = wl * wh;

  // Analog prototype poles on the unit circle's left half,
  // p_k = e^{i*pi*(2k+N+1)/(2N)}; the band-pass substitution
  // s_lp -> (s^2 + w0^2)/(bw*s) sends each to the two roots of
  // s^2 - p*bw*s + w0^2 = 0. Conjugate prototype poles map to
  // conjugate root sets, so pairing root r of p with the matching
  // root of conj(p) (which is conj(r)) gives real sections; the odd
  // order's real prototype pole yields one real-coefficient section
  // on its own.
  std::vector<Biquad> sos;
  sos.reserve(static_cast<std::size_t>(order));
  auto digital_pole = [c](const Cplx& s) { return (c + s) / (c - s); };
  for (int k = 0; k < (order + 1) / 2; ++k) {
    const double theta =
        kPi * static_cast<double>(2 * k + order + 1) / (2.0 * order);
    const Cplx p{std::cos(theta), std::sin(theta)};
    const Cplx pb = p * bw;
    const Cplx disc = std::sqrt(pb * pb - 4.0 * w0sq);
    const Cplx q1 = (pb + disc) * 0.5;
    const Cplx q2 = (pb - disc) * 0.5;
    if (2 * k + 1 == order) {
      // Real prototype pole (odd order): q1, q2 are conjugates or
      // both real — one section holds both.
      sos.push_back(section_from_poles(digital_pole(q1), digital_pole(q2)));
    } else {
      // q paired with its conjugate from the mirror prototype pole.
      const Cplx zq1 = digital_pole(q1);
      const Cplx zq2 = digital_pole(q2);
      sos.push_back(section_from_poles(zq1, std::conj(zq1)));
      sos.push_back(section_from_poles(zq2, std::conj(zq2)));
    }
  }

  // The 2N analog zeros (N at s=0 -> z=1, N at s=inf -> z=-1) give
  // every section the numerator (z-1)(z+1)/z^2, i.e. (1, 0, -1).
  for (Biquad& s : sos) {
    s.b0 = 1.0;
    s.b1 = 0.0;
    s.b2 = -1.0;
  }

  // Unit gain at the digital geometric-centre frequency (the FIR
  // design's normalization point), spread evenly across the sections
  // so no intermediate stage amplifies.
  const double f0 = std::sqrt(spec.low_hz * spec.high_hz) * dt;
  const Cplx e1 = std::polar(1.0, -2.0 * kPi * f0);
  const Cplx e2 = e1 * e1;
  Cplx resp{1.0, 0.0};
  for (const Biquad& s : sos) {
    resp *= (s.b0 + s.b1 * e1 + s.b2 * e2) / (1.0 + s.a1 * e1 + s.a2 * e2);
  }
  const double gain = std::abs(resp);
  if (!(gain > 1e-12)) {
    return SignalError{SignalError::Code::kBadCorners,
                       "degenerate band: centre-frequency gain is ~0"};
  }
  const double per_section =
      std::pow(gain, -1.0 / static_cast<double>(sos.size()));
  for (Biquad& s : sos) {
    s.b0 *= per_section;
    s.b1 *= per_section;
    s.b2 *= per_section;
  }
  return sos;
}

std::vector<double> sosfilt(const std::vector<Biquad>& sos,
                            const std::vector<double>& x) {
  std::vector<double> y = x;
  for (const Biquad& s : sos) {
    double z1 = 0.0;
    double z2 = 0.0;
    for (double& v : y) {
      const double xi = v;
      const double yi = s.b0 * xi + z1;
      z1 = s.b1 * xi - s.a1 * yi + z2;
      z2 = s.b2 * xi - s.a2 * yi;
      v = yi;
    }
  }
  return y;
}

Result<std::vector<double>, SignalError> filtfilt_sos(
    const std::vector<Biquad>& sos, const std::vector<double>& x) {
  if (sos.empty()) {
    return SignalError{SignalError::Code::kBadTaps, "empty SOS cascade"};
  }
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples to filter"};
  }
  std::vector<double> y = sosfilt(sos, x);
  std::reverse(y.begin(), y.end());
  y = sosfilt(sos, y);
  std::reverse(y.begin(), y.end());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!std::isfinite(y[i])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "filter output sample " + std::to_string(i) +
                             " is not finite"};
    }
  }
  return y;
}

}  // namespace acx::signal
