#include "signal/fft.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "signal/fft_plan.hpp"
#include "util/perf.hpp"
#include "util/simd.hpp"

namespace acx::signal {

namespace {

// Bluestein chirp-z using a cached plan: chirp-premultiply, circular
// convolution with the precomputed kernel spectrum via two (not
// three) power-of-two FFTs, chirp-postmultiply. The inverse direction
// conjugates the chirp on the fly (exact sign flips).
std::vector<Complex> bluestein_execute(const std::vector<Complex>& x,
                                       const BluesteinPlan& plan,
                                       bool inverse) {
  const std::size_t n = x.size();
  const std::size_t m = plan.m;

  std::vector<Complex> a(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    const Complex c = inverse ? std::conj(plan.chirp[k]) : plan.chirp[k];
    a[k] = x[k] * c;
  }

  fft_pow2_execute_dispatch(a, *plan.pow2, false);
  const std::vector<Complex>& bfft = inverse ? plan.bfft_inv : plan.bfft_fwd;
  for (std::size_t k = 0; k < m; ++k) a[k] *= bfft[k];
  fft_pow2_execute_dispatch(a, *plan.pow2, true);

  std::vector<Complex> out(n);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex c = inverse ? std::conj(plan.chirp[k]) : plan.chirp[k];
    out[k] = a[k] * c * inv_m;
  }
  return out;
}

Result<Unit, SignalError> check_input(const std::vector<Complex>& x) {
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "fft of zero samples"};
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i].real()) || !std::isfinite(x[i].imag())) {
      return SignalError{SignalError::Code::kNonFinite,
                         "fft input sample " + std::to_string(i) +
                             " is not finite"};
    }
  }
  return Unit{};
}

}  // namespace

Result<std::vector<Complex>, SignalError> fft(std::vector<Complex> x) {
  auto valid = check_input(x);
  if (!valid.ok()) return std::move(valid).take_error();
  if (is_power_of_two(x.size())) {
    std::shared_ptr<const Pow2Plan> plan;
    {
      perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
      plan = FftPlanCache::instance().pow2(x.size());
    }
    perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
    fft_pow2_execute_dispatch(x, *plan, false);
    return x;
  }
  std::shared_ptr<const BluesteinPlan> plan;
  {
    perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
    plan = FftPlanCache::instance().bluestein(x.size());
  }
  perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
  return bluestein_execute(x, *plan, false);
}

Result<std::vector<Complex>, SignalError> ifft(std::vector<Complex> x) {
  auto valid = check_input(x);
  if (!valid.ok()) return std::move(valid).take_error();
  if (is_power_of_two(x.size())) {
    std::shared_ptr<const Pow2Plan> plan;
    {
      perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
      plan = FftPlanCache::instance().pow2(x.size());
    }
    perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
    fft_pow2_execute_dispatch(x, *plan, true);
  } else {
    std::shared_ptr<const BluesteinPlan> plan;
    {
      perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
      plan = FftPlanCache::instance().bluestein(x.size());
    }
    perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
    x = bluestein_execute(x, *plan, true);
  }
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (Complex& v : x) v *= inv_n;
  return x;
}

Result<std::vector<Complex>, SignalError> rfft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n == 0) {
    return SignalError{SignalError::Code::kEmptyInput, "fft of zero samples"};
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "fft input sample " + std::to_string(i) +
                             " is not finite"};
    }
  }

  if (n % 2 != 0) {
    // Odd lengths keep the complex-promotion path (the pipeline pads
    // to powers of two, so this is a cold corner).
    std::vector<Complex> cx(n);
    for (std::size_t i = 0; i < n; ++i) cx[i] = Complex(x[i], 0.0);
    auto full = fft(std::move(cx));
    if (!full.ok()) return std::move(full).take_error();
    std::vector<Complex> spec = std::move(full).take();
    spec.resize(n / 2 + 1);
    return spec;
  }

  // Even n: pack the real input into n/2 complex samples, run one
  // half-size transform, and untangle the even/odd sub-spectra:
  //   E[k] = (Z[k] + conj(Z[h-k])) / 2
  //   O[k] = (Z[k] - conj(Z[h-k])) / (2i)
  //   X[k] = E[k] + e^{-2*pi*i*k/n} O[k],  k = 0 .. n/2 (h = n/2).
  std::shared_ptr<const RfftPlan> plan;
  {
    perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
    plan = FftPlanCache::instance().rfft(n);
  }
  perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);

  const std::size_t half = n / 2;
  std::vector<Complex> z(half);
  if (plan->half_pow2 && simd::enabled() && half >= 2) {
    // Split-complex fast path: the even/odd packing doubles as the
    // plane deinterleave, fused with the bit-reversal gather; the
    // butterflies run on the planes and the natural-order result
    // interleaves back into z. Bit-identical to the scalar kernel
    // below (see fft_pow2_execute_split).
    const Pow2Plan& pp = *plan->half_pow2;
    std::vector<double> re(half);
    std::vector<double> im(half);
    for (std::size_t j = 0; j < half; ++j) {
      const std::size_t src = pp.bitrev[j];
      re[j] = x[2 * src];
      im[j] = x[2 * src + 1];
    }
    fft_pow2_execute_split(re.data(), im.data(), pp, false);
    for (std::size_t j = 0; j < half; ++j) z[j] = Complex(re[j], im[j]);
  } else {
    for (std::size_t j = 0; j < half; ++j) {
      z[j] = Complex(x[2 * j], x[2 * j + 1]);
    }
    if (plan->half_pow2) {
      fft_pow2_execute(z, *plan->half_pow2, false);
    } else {
      z = bluestein_execute(z, *plan->half_bluestein, false);
    }
  }

  std::vector<Complex> spec(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    const Complex zk = z[k == half ? 0 : k];
    const Complex zc = std::conj(z[(half - k) == half ? 0 : (half - k)]);
    const Complex even = (zk + zc) * 0.5;
    const Complex odd = (zk - zc) * Complex(0.0, -0.5);
    spec[k] = even + plan->untangle[k] * odd;
  }
  return spec;
}

std::vector<double> rfft_frequencies(std::size_t n, double dt) {
  std::vector<double> f(n == 0 ? 0 : n / 2 + 1);
  for (std::size_t k = 0; k < f.size(); ++k) {
    f[k] = static_cast<double>(k) /
           (static_cast<double>(n) * dt);
  }
  return f;
}

}  // namespace acx::signal
