#include "signal/fft.hpp"

#include <cmath>
#include <numbers>
#include <utility>

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

void bit_reverse_permute(std::vector<Complex>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

// In-place iterative radix-2 Cooley–Tukey. n must be a power of two.
// inverse=true conjugates the twiddles but does NOT apply 1/n — the
// callers own the normalization so Bluestein can reuse the kernel.
void fft_pow2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n < 2) return;
  bit_reverse_permute(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z: expresses an arbitrary-N DFT as a circular
// convolution of chirp-premultiplied input with the conjugate chirp,
// evaluated by zero-padded power-of-two FFTs of size m >= 2N-1.
// k^2 is reduced mod 2N before the angle is formed so the chirp stays
// exact for large N.
std::vector<Complex> bluestein(const std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;

  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    chirp[k] =
        std::polar(1.0, sign * kPi * static_cast<double>(k2) /
                            static_cast<double>(n));
  }

  std::size_t m = 1;
  while (m < 2 * n - 1) m <<= 1;

  std::vector<Complex> a(m, Complex{});
  std::vector<Complex> b(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);

  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);

  std::vector<Complex> out(n);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k] * inv_m;
  return out;
}

Result<Unit, SignalError> check_input(const std::vector<Complex>& x) {
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "fft of zero samples"};
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i].real()) || !std::isfinite(x[i].imag())) {
      return SignalError{SignalError::Code::kNonFinite,
                         "fft input sample " + std::to_string(i) +
                             " is not finite"};
    }
  }
  return Unit{};
}

}  // namespace

Result<std::vector<Complex>, SignalError> fft(std::vector<Complex> x) {
  auto valid = check_input(x);
  if (!valid.ok()) return std::move(valid).take_error();
  if (is_power_of_two(x.size())) {
    fft_pow2(x, false);
    return x;
  }
  return bluestein(x, false);
}

Result<std::vector<Complex>, SignalError> ifft(std::vector<Complex> x) {
  auto valid = check_input(x);
  if (!valid.ok()) return std::move(valid).take_error();
  if (is_power_of_two(x.size())) {
    fft_pow2(x, true);
  } else {
    x = bluestein(x, true);
  }
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (Complex& v : x) v *= inv_n;
  return x;
}

Result<std::vector<Complex>, SignalError> rfft(const std::vector<double>& x) {
  std::vector<Complex> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  auto full = fft(std::move(cx));
  if (!full.ok()) return std::move(full).take_error();
  std::vector<Complex> spec = std::move(full).take();
  spec.resize(spec.empty() ? 0 : x.size() / 2 + 1);
  return spec;
}

std::vector<double> rfft_frequencies(std::size_t n, double dt) {
  std::vector<double> f(n == 0 ? 0 : n / 2 + 1);
  for (std::size_t k = 0; k < f.size(); ++k) {
    f[k] = static_cast<double>(k) /
           (static_cast<double>(n) * dt);
  }
  return f;
}

}  // namespace acx::signal
