#include "signal/fir.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "signal/fft_plan.hpp"
#include "util/simd.hpp"

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

double sinc(double t) {
  if (t == 0.0) return 1.0;
  const double pt = kPi * t;
  return std::sin(pt) / pt;
}

std::size_t next_pow2(std::size_t v) {
  std::size_t m = 1;
  while (m < v) m <<= 1;
  return m;
}

// The historical scatter loop, kept verbatim: the ACX_SIMD=OFF direct
// path and the bit-identity oracle for the blocked form below. Each
// output y[o] accumulates its contributions x[i]*h[o-i] in ascending
// input order i.
std::vector<double> convolve_direct_scalar(const std::vector<double>& h,
                                           const std::vector<double>& x) {
  std::vector<double> y(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    for (std::size_t k = 0; k < h.size(); ++k) y[i + k] += xi * h[k];
  }
  return y;
}

// Outputs marched side by side per block: wide enough to fill the
// vector units from one broadcast tap, small enough that the
// accumulators stay in registers.
constexpr std::size_t kConvBlock = 16;

// Blocked gather form of the same convolution. Per output the adds
// happen in ascending input order i — the interior walks the tap
// index k DOWNWARDS so lane o accumulates x[o-k]*h[k] with i = o-k
// ascending, exactly the scatter loop's per-output chain — so the
// result is bit-identical; the blocked lanes only make x loads
// contiguous and h[k] a broadcast, which is what lets the loop
// vectorize (the scatter form is a strided read-modify-write).
// Instantiated per ISA via the tag; the AVX2 clone omits "fma" so no
// multiply-add contraction can change a rounding.
template <typename IsaTag>
__attribute__((always_inline)) inline void convolve_direct_blocked_body(
    const double* __restrict h, std::size_t t, const double* __restrict x,
    std::size_t n, double* __restrict y) {
  const std::size_t full = n + t - 1;
  // Head: outputs with a truncated tap range (o < t-1).
  const std::size_t head_end = std::min(t - 1, full);
  for (std::size_t o = 0; o < head_end; ++o) {
    double acc = 0.0;
    const std::size_t i_hi = std::min(o, n - 1);
    for (std::size_t i = 0; i <= i_hi; ++i) acc += x[i] * h[o - i];
    y[o] = acc;
  }
  // Interior: full tap range, blocked across outputs.
  std::size_t o = t - 1;
  if (n >= t) {
    for (; o + kConvBlock <= n; o += kConvBlock) {
      double acc[kConvBlock] = {};
      for (std::size_t k = t; k-- > 0;) {
        const double hk = h[k];
        const double* xs = x + (o - k);
#pragma omp simd
        for (std::size_t j = 0; j < kConvBlock; ++j) acc[j] += xs[j] * hk;
      }
      for (std::size_t j = 0; j < kConvBlock; ++j) y[o + j] = acc[j];
    }
    for (; o < n; ++o) {
      double acc = 0.0;
      for (std::size_t k = t; k-- > 0;) acc += x[o - k] * h[k];
      y[o] = acc;
    }
  }
  // Tail: outputs past the last input (o >= n).
  for (std::size_t o2 = std::max(t - 1, n); o2 < full; ++o2) {
    double acc = 0.0;
    for (std::size_t i = o2 - t + 1; i < n; ++i) acc += x[i] * h[o2 - i];
    y[o2] = acc;
  }
}

struct GenericIsa {};
struct Avx2Isa {};

void convolve_direct_blocked(const double* h, std::size_t t, const double* x,
                             std::size_t n, double* y) {
  convolve_direct_blocked_body<GenericIsa>(h, t, x, n, y);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void convolve_direct_blocked_avx2(
    const double* h, std::size_t t, const double* x, std::size_t n,
    double* y) {
  convolve_direct_blocked_body<Avx2Isa>(h, t, x, n, y);
}
#endif

std::vector<double> convolve_direct(const std::vector<double>& h,
                                    const std::vector<double>& x) {
  if (!simd::enabled()) return convolve_direct_scalar(h, x);
  std::vector<double> y(x.size() + h.size() - 1);
#if defined(__x86_64__) || defined(__i386__)
  if (simd::avx2_supported()) {
    convolve_direct_blocked_avx2(h.data(), h.size(), x.data(), x.size(),
                                 y.data());
    return y;
  }
#endif
  convolve_direct_blocked(h.data(), h.size(), x.data(), x.size(), y.data());
  return y;
}

// Overlap-save geometry for a (taps, n) pair: FFT length m (power of
// two, 4x the filter history, capped when a single block covers the
// whole output) and the per-block yield of valid outputs.
struct OverlapSavePlanShape {
  std::size_t m = 0;      // FFT length
  std::size_t step = 0;   // valid outputs per block (m - taps + 1)
  std::size_t full = 0;   // total outputs (n + taps - 1)
  std::size_t blocks = 0;
};

OverlapSavePlanShape overlap_save_shape(std::size_t taps, std::size_t n) {
  OverlapSavePlanShape s;
  s.full = n + taps - 1;
  s.m = std::max<std::size_t>(2, next_pow2(4 * (taps - 1)));
  const std::size_t single = std::max<std::size_t>(2, next_pow2(s.full));
  if (s.m >= single) s.m = single;
  s.step = s.m - (taps - 1);
  s.blocks = (s.full + s.step - 1) / s.step;
  return s;
}

// Cost-model constant: MAC-equivalents per FFT butterfly point-stage,
// calibrated against the scalar kernels so the OFF build never picks
// an overlap-save that loses to its direct loop (the SIMD build's
// split-complex FFT is cheaper still, so a kAuto overlap-save win in
// the OFF build is a larger win in the ON build).
constexpr double kFftMacEquiv = 12.0;

std::vector<double> convolve_overlap_save(const std::vector<double>& h,
                                          const std::vector<double>& x) {
  const std::size_t t = h.size();
  const std::size_t n = x.size();
  const OverlapSavePlanShape shape = overlap_save_shape(t, n);
  const std::size_t m = shape.m;
  const std::size_t overlap = t - 1;

  auto plan = FftPlanCache::instance().pow2(m);

  std::vector<Complex> kernel(m, Complex{});
  for (std::size_t i = 0; i < t; ++i) kernel[i] = Complex(h[i], 0.0);
  fft_pow2_execute_dispatch(kernel, *plan, false);

  std::vector<double> y(shape.full);
  std::vector<Complex> blk(m);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t out0 = 0; out0 < shape.full; out0 += shape.step) {
    // The block sees x[out0 - overlap .. out0 - overlap + m - 1],
    // zero-padded outside [0, n); its circular convolution with h is
    // linear-correct from position `overlap` on, which lands exactly
    // on outputs out0, out0+1, ...
    for (std::size_t j = 0; j < m; ++j) {
      const long long src = static_cast<long long>(out0 + j) -
                            static_cast<long long>(overlap);
      blk[j] = (src >= 0 && src < static_cast<long long>(n))
                   ? Complex(x[static_cast<std::size_t>(src)], 0.0)
                   : Complex{};
    }
    fft_pow2_execute_dispatch(blk, *plan, false);
    for (std::size_t j = 0; j < m; ++j) {
      const double ar = blk[j].real();
      const double ai = blk[j].imag();
      const double br = kernel[j].real();
      const double bi = kernel[j].imag();
      blk[j] = Complex(ar * br - ai * bi, ar * bi + ai * br);
    }
    fft_pow2_execute_dispatch(blk, *plan, true);
    const std::size_t count = std::min(shape.step, shape.full - out0);
    for (std::size_t j = 0; j < count; ++j) {
      y[out0 + j] = blk[overlap + j].real() * inv_m;
    }
  }
  return y;
}

}  // namespace

bool overlap_save_selected(std::size_t taps, std::size_t n) {
  if (taps < kOverlapSaveMinTaps || n < taps) return false;
  const OverlapSavePlanShape s = overlap_save_shape(taps, n);
  // 2 FFTs per block plus the one-time kernel transform, against the
  // direct loop's n*taps multiply-adds.
  const double log2_m = std::log2(static_cast<double>(s.m));
  const double os_cost = static_cast<double>(2 * s.blocks + 1) *
                         static_cast<double>(s.m) * log2_m * kFftMacEquiv;
  const double direct_cost =
      static_cast<double>(n) * static_cast<double>(taps);
  return os_cost < direct_cost;
}

std::vector<double> convolve_full(const std::vector<double>& h,
                                  const std::vector<double>& x,
                                  ConvolveMethod method) {
  if (h.empty() || x.empty()) return {};
  const bool save =
      method == ConvolveMethod::kOverlapSave ||
      (method == ConvolveMethod::kAuto &&
       overlap_save_selected(h.size(), x.size()));
  return save ? convolve_overlap_save(h, x) : convolve_direct(h, x);
}

Result<std::vector<double>, SignalError> design_bandpass(
    const BandPassSpec& spec, double dt) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (spec.taps < kMinTaps || spec.taps > kMaxTaps || spec.taps % 2 == 0) {
    return SignalError{SignalError::Code::kBadTaps,
                       "taps must be odd and in [" + std::to_string(kMinTaps) +
                           ", " + std::to_string(kMaxTaps) + "]; got " +
                           std::to_string(spec.taps)};
  }
  const double nyquist = 0.5 / dt;
  if (!std::isfinite(spec.low_hz) || !std::isfinite(spec.high_hz) ||
      spec.low_hz <= 0 || spec.low_hz >= spec.high_hz ||
      spec.high_hz >= nyquist) {
    return SignalError{
        SignalError::Code::kBadCorners,
        "corners must satisfy 0 < low < high < Nyquist (" +
            std::to_string(nyquist) + " Hz); got [" +
            std::to_string(spec.low_hz) + ", " + std::to_string(spec.high_hz) +
            "]"};
  }

  // Normalized (cycles/sample) corners; ideal band-pass = difference of
  // two ideal low-passes, shaped by a Hamming window.
  const double f1 = spec.low_hz * dt;
  const double f2 = spec.high_hz * dt;
  const int m = (spec.taps - 1) / 2;
  std::vector<double> h(static_cast<std::size_t>(spec.taps));
  for (int k = 0; k < spec.taps; ++k) {
    const double x = static_cast<double>(k - m);
    const double ideal =
        2.0 * f2 * sinc(2.0 * f2 * x) - 2.0 * f1 * sinc(2.0 * f1 * x);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(k) /
                               static_cast<double>(spec.taps - 1));
    h[static_cast<std::size_t>(k)] = ideal * window;
  }

  // Unit gain at the geometric-centre frequency sqrt(f1 f2).
  const double f0 = std::sqrt(f1 * f2);
  std::complex<double> resp{};
  for (int k = 0; k < spec.taps; ++k) {
    resp += h[static_cast<std::size_t>(k)] *
            std::polar(1.0, -2.0 * kPi * f0 * static_cast<double>(k));
  }
  const double gain = std::abs(resp);
  if (!(gain > 1e-12)) {
    return SignalError{SignalError::Code::kBadCorners,
                       "degenerate band: centre-frequency gain is ~0"};
  }
  for (double& v : h) v /= gain;
  return h;
}

Result<std::vector<double>, SignalError> filtfilt(
    const std::vector<double>& h, const std::vector<double>& x,
    ConvolveMethod method) {
  if (h.empty() || h.size() % 2 == 0) {
    return SignalError{SignalError::Code::kBadTaps,
                       "filter length must be odd and nonzero"};
  }
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples to filter"};
  }
  if (x.size() < h.size()) {
    return SignalError{SignalError::Code::kTooShort,
                       "record (" + std::to_string(x.size()) +
                           " samples) shorter than the filter (" +
                           std::to_string(h.size()) + " taps)"};
  }

  // Forward pass, time reversal, second pass, reversal back. The
  // zero-phase output of length n sits at offset taps-1 of the final
  // full convolution (see docs/SIGNAL.md).
  std::vector<double> y = convolve_full(h, x, method);
  std::reverse(y.begin(), y.end());
  y = convolve_full(h, y, method);
  std::reverse(y.begin(), y.end());

  std::vector<double> out(x.size());
  const std::size_t offset = h.size() - 1;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = y[offset + i];
    if (!std::isfinite(v)) {
      return SignalError{SignalError::Code::kNonFinite,
                         "filter output sample " + std::to_string(i) +
                             " is not finite"};
    }
    out[i] = v;
  }
  return out;
}

}  // namespace acx::signal
