#include "signal/fir.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

double sinc(double t) {
  if (t == 0.0) return 1.0;
  const double pt = kPi * t;
  return std::sin(pt) / pt;
}

// Full (length n + t - 1) causal convolution with zero initial
// conditions on both sides.
std::vector<double> convolve_full(const std::vector<double>& h,
                                  const std::vector<double>& x) {
  std::vector<double> y(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    for (std::size_t k = 0; k < h.size(); ++k) y[i + k] += xi * h[k];
  }
  return y;
}

}  // namespace

Result<std::vector<double>, SignalError> design_bandpass(
    const BandPassSpec& spec, double dt) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (spec.taps < kMinTaps || spec.taps > kMaxTaps || spec.taps % 2 == 0) {
    return SignalError{SignalError::Code::kBadTaps,
                       "taps must be odd and in [" + std::to_string(kMinTaps) +
                           ", " + std::to_string(kMaxTaps) + "]; got " +
                           std::to_string(spec.taps)};
  }
  const double nyquist = 0.5 / dt;
  if (!std::isfinite(spec.low_hz) || !std::isfinite(spec.high_hz) ||
      spec.low_hz <= 0 || spec.low_hz >= spec.high_hz ||
      spec.high_hz >= nyquist) {
    return SignalError{
        SignalError::Code::kBadCorners,
        "corners must satisfy 0 < low < high < Nyquist (" +
            std::to_string(nyquist) + " Hz); got [" +
            std::to_string(spec.low_hz) + ", " + std::to_string(spec.high_hz) +
            "]"};
  }

  // Normalized (cycles/sample) corners; ideal band-pass = difference of
  // two ideal low-passes, shaped by a Hamming window.
  const double f1 = spec.low_hz * dt;
  const double f2 = spec.high_hz * dt;
  const int m = (spec.taps - 1) / 2;
  std::vector<double> h(static_cast<std::size_t>(spec.taps));
  for (int k = 0; k < spec.taps; ++k) {
    const double x = static_cast<double>(k - m);
    const double ideal =
        2.0 * f2 * sinc(2.0 * f2 * x) - 2.0 * f1 * sinc(2.0 * f1 * x);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(k) /
                               static_cast<double>(spec.taps - 1));
    h[static_cast<std::size_t>(k)] = ideal * window;
  }

  // Unit gain at the geometric-centre frequency sqrt(f1 f2).
  const double f0 = std::sqrt(f1 * f2);
  std::complex<double> resp{};
  for (int k = 0; k < spec.taps; ++k) {
    resp += h[static_cast<std::size_t>(k)] *
            std::polar(1.0, -2.0 * kPi * f0 * static_cast<double>(k));
  }
  const double gain = std::abs(resp);
  if (!(gain > 1e-12)) {
    return SignalError{SignalError::Code::kBadCorners,
                       "degenerate band: centre-frequency gain is ~0"};
  }
  for (double& v : h) v /= gain;
  return h;
}

Result<std::vector<double>, SignalError> filtfilt(
    const std::vector<double>& h, const std::vector<double>& x) {
  if (h.empty() || h.size() % 2 == 0) {
    return SignalError{SignalError::Code::kBadTaps,
                       "filter length must be odd and nonzero"};
  }
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples to filter"};
  }
  if (x.size() < h.size()) {
    return SignalError{SignalError::Code::kTooShort,
                       "record (" + std::to_string(x.size()) +
                           " samples) shorter than the filter (" +
                           std::to_string(h.size()) + " taps)"};
  }

  // Forward pass, time reversal, second pass, reversal back. The
  // zero-phase output of length n sits at offset taps-1 of the final
  // full convolution (see docs/SIGNAL.md).
  std::vector<double> y = convolve_full(h, x);
  std::reverse(y.begin(), y.end());
  y = convolve_full(h, y);
  std::reverse(y.begin(), y.end());

  std::vector<double> out(x.size());
  const std::size_t offset = h.size() - 1;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = y[offset + i];
    if (!std::isfinite(v)) {
      return SignalError{SignalError::Code::kNonFinite,
                         "filter output sample " + std::to_string(i) +
                             " is not finite"};
    }
    out[i] = v;
  }
  return out;
}

}  // namespace acx::signal
