#pragma once

#include <complex>
#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

using Complex = std::complex<double>;

constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

// Forward DFT, X[k] = sum_n x[n] e^{-2*pi*i*k*n/N}, no normalization.
// Power-of-two N runs the iterative radix-2 kernel; any other N runs
// the Bluestein chirp-z transform on top of it. Rejects empty and
// non-finite input.
Result<std::vector<Complex>, SignalError> fft(std::vector<Complex> x);

// Inverse DFT with the 1/N convention: ifft(fft(x)) == x.
Result<std::vector<Complex>, SignalError> ifft(std::vector<Complex> x);

// Real-input helper: the first N/2+1 bins of fft(x) (the remaining
// bins are their complex conjugates).
Result<std::vector<Complex>, SignalError> rfft(const std::vector<double>& x);

// Bin centre frequencies (Hz) for the rfft layout: k / (N * dt),
// k = 0 .. N/2.
std::vector<double> rfft_frequencies(std::size_t n, double dt);

}  // namespace acx::signal
