#pragma once

#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Windowed-sinc FIR band-pass (Hamming window). Corners are the -6 dB
// edges of the single-pass design; the zero-phase application below
// squares the magnitude response, making them -12 dB points of the
// effective filter. See docs/SIGNAL.md for the design equations.
struct BandPassSpec {
  double low_hz = 0.0;   // lower pass-band corner, Hz
  double high_hz = 0.0;  // upper pass-band corner, Hz
  int taps = 101;        // filter length, odd
};

inline constexpr int kMinTaps = 3;
inline constexpr int kMaxTaps = 32767;

// Symmetric (linear-phase) coefficient vector of length spec.taps,
// normalized to unit single-pass gain at the geometric-centre frequency
// sqrt(low * high). Errors: bad dt, corners outside 0 < low < high <
// Nyquist, even/out-of-range taps.
Result<std::vector<double>, SignalError> design_bandpass(
    const BandPassSpec& spec, double dt);

// Zero-phase (forward-backward) application: y = reverse(h * reverse(
// h * x)) with zero initial conditions, trimmed back to x.size(). The
// effective response is |H(f)|^2 (zero phase, doubled attenuation).
// Requires x.size() >= h.size(); verifies the output is finite.
Result<std::vector<double>, SignalError> filtfilt(
    const std::vector<double>& h, const std::vector<double>& x);

}  // namespace acx::signal
