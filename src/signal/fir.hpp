#pragma once

#include <cstddef>
#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Windowed-sinc FIR band-pass (Hamming window). Corners are the -6 dB
// edges of the single-pass design; the zero-phase application below
// squares the magnitude response, making them -12 dB points of the
// effective filter. See docs/SIGNAL.md for the design equations.
struct BandPassSpec {
  double low_hz = 0.0;   // lower pass-band corner, Hz
  double high_hz = 0.0;  // upper pass-band corner, Hz
  int taps = 101;        // filter length, odd
};

inline constexpr int kMinTaps = 3;
inline constexpr int kMaxTaps = 32767;

// How convolve_full computes the convolution. kAuto picks direct vs
// FFT overlap-save with the deterministic cost model documented in
// docs/PERF.md ("Overlap-save crossover"): a pure function of
// (taps, n), never of the SIMD toggle or the host CPU, so every build
// picks the same algorithm and stays byte-identical. The two
// algorithms round differently, which is why the choice must not
// depend on anything but the sizes.
enum class ConvolveMethod {
  kAuto,
  kDirect,       // force the blocked time-domain loop
  kOverlapSave,  // force the FFT block convolution
};

// Overlap-save is only considered at kOverlapSaveMinTaps taps and
// above; the correction chain's adaptive rule caps its designs at 101
// taps (min(taps, odd(n/3))), so record correction always runs the
// direct path and its outputs are untouched by the crossover.
inline constexpr std::size_t kOverlapSaveMinTaps = 129;

// True when kAuto picks overlap-save for this (taps, n) pair.
bool overlap_save_selected(std::size_t taps, std::size_t n);

// Full (length n + taps - 1) causal convolution y = h * x with zero
// initial conditions on both sides. The direct path accumulates each
// output in ascending input order — the historical scatter loop's
// order, kept bit-identical by the blocked SIMD form (it only walks
// the tap loop backwards so lanes read contiguous input). The
// overlap-save path (m = smallest power of two >= 4*(taps-1), capped
// at one block when the record fits) reuses FftPlanCache and costs
// O(n log taps) instead of O(n * taps).
std::vector<double> convolve_full(const std::vector<double>& h,
                                  const std::vector<double>& x,
                                  ConvolveMethod method = ConvolveMethod::kAuto);

// Symmetric (linear-phase) coefficient vector of length spec.taps,
// normalized to unit single-pass gain at the geometric-centre frequency
// sqrt(low * high). Errors: bad dt, corners outside 0 < low < high <
// Nyquist, even/out-of-range taps.
Result<std::vector<double>, SignalError> design_bandpass(
    const BandPassSpec& spec, double dt);

// Zero-phase (forward-backward) application: y = reverse(h * reverse(
// h * x)) with zero initial conditions, trimmed back to x.size(). The
// effective response is |H(f)|^2 (zero phase, doubled attenuation).
// Requires x.size() >= h.size(); verifies the output is finite. Each
// pass convolves with `method` (kAuto = the crossover above).
Result<std::vector<double>, SignalError> filtfilt(
    const std::vector<double>& h, const std::vector<double>& x,
    ConvolveMethod method = ConvolveMethod::kAuto);

}  // namespace acx::signal
