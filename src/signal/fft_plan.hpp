#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace acx::signal {

using Complex = std::complex<double>;

// Precomputed transform plans. Building twiddle factors, bit-reversal
// permutations, and Bluestein chirp/convolution scratch dominates the
// cost of short transforms and is pure per-length setup, so the
// pipeline amortizes it across records via FftPlanCache below.
//
// All plans are immutable after construction and shared as
// shared_ptr<const T>; callers may use one plan from many threads
// concurrently.

// Radix-2 plan: full bit-reversal permutation plus the twiddles of
// every butterfly stage, flattened. Stage `len` (len = 2, 4, ..., n)
// holds the len/2 factors e^{-2*pi*i*k/len} starting at offset
// len/2 - 1; the inverse transform conjugates them on the fly (exact).
// tw_re/tw_im are the same factors as split planes (identical values,
// converted once at build time) for the split-complex kernel below.
struct Pow2Plan {
  std::size_t n = 0;
  std::vector<std::uint32_t> bitrev;
  std::vector<Complex> twiddle;     // n - 1 entries total
  std::vector<double> tw_re, tw_im;  // split layout of `twiddle`

  static Pow2Plan build(std::size_t n);  // n must be a power of two
};

// Bluestein chirp-z plan for arbitrary length n: the forward chirp
// e^{-i*pi*k^2/n} (k^2 reduced mod 2n), and the length-m forward FFT
// of the circular conjugate-chirp kernel for both transform
// directions (the inverse direction's kernel is the un-conjugated
// chirp, so it needs its own spectrum). m is the smallest power of
// two >= 2n - 1; `pow2` is the shared plan for m.
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<Complex> chirp;     // forward sign; conjugate for inverse
  std::vector<Complex> bfft_fwd;  // FFT_m of the forward kernel
  std::vector<Complex> bfft_inv;  // FFT_m of the inverse kernel
  std::shared_ptr<const Pow2Plan> pow2;

  static BluesteinPlan build(std::size_t n,
                             std::shared_ptr<const Pow2Plan> pow2_m);
};

// Real-input plan for even n: untangle twiddles e^{-2*pi*i*k/n}
// (k = 0 .. n/2) for recovering the length-n real spectrum from one
// length-n/2 complex transform, plus the shared child plan for n/2
// (exactly one of half_pow2 / half_bluestein is set).
struct RfftPlan {
  std::size_t n = 0;
  std::vector<Complex> untangle;
  std::shared_ptr<const Pow2Plan> half_pow2;
  std::shared_ptr<const BluesteinPlan> half_bluestein;
};

// In-place radix-2 butterflies driven by the plan's tables; no 1/n
// normalization (callers own it, as with the old kernel). a.size()
// must equal plan.n.
void fft_pow2_execute(std::vector<Complex>& a, const Pow2Plan& plan,
                      bool inverse);

// Split-complex butterflies over separate re[]/im[] planes of length
// plan.n that are ALREADY in bit-reversed order — callers fuse the
// permutation into the gather that fills the planes (bitrev is an
// involution, so re[i] = src[bitrev[i]] equals the swap-pass result).
// The twiddle multiply uses the same naive (ac - bd, ad + bc) formula
// and op order as the std::complex kernel, and the inverse direction
// negates the twiddle imaginary plane (exact), so the output is
// bit-identical to fft_pow2_execute for finite data — only faster,
// because the planes vectorize with unit stride and no NaN-recovery
// branch (docs/PERF.md, "Split-complex FFT"). Output in natural order.
void fft_pow2_execute_split(double* re, double* im, const Pow2Plan& plan,
                            bool inverse);

// Same contract as fft_pow2_execute; routes through the split-complex
// kernel (layout conversion included) when the SIMD toggle is on and
// through the scalar kernel when it is off. Byte-identical results
// either way.
void fft_pow2_execute_dispatch(std::vector<Complex>& a, const Pow2Plan& plan,
                               bool inverse);

// Process-global, internally-locked, read-mostly plan cache keyed by
// transform length. Lookups take a shared lock; a miss builds the
// plan outside any lock and publishes it under a unique lock (if two
// threads race, the first insert wins and the loser's build is
// discarded). Every lookup feeds acx::perf cache counters.
class FftPlanCache {
 public:
  static FftPlanCache& instance();

  std::shared_ptr<const Pow2Plan> pow2(std::size_t n);  // n: power of two
  std::shared_ptr<const BluesteinPlan> bluestein(std::size_t n);  // n >= 1
  std::shared_ptr<const RfftPlan> rfft(std::size_t n);            // n even

  // Drops every cached plan (cold-start for tests and microbenches).
  void clear();

 private:
  struct Impl;
  FftPlanCache();
  ~FftPlanCache();
  Impl* impl_;
};

}  // namespace acx::signal
