#pragma once

#include <cmath>
#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Physical units tracked through the correction chain. The V2 data
// block is corrected acceleration (cm/s2); velocity and displacement
// exist as intermediate series feeding PGV/PGD.
enum class Units { kCounts, kCmPerS2, kCmPerS, kCm };

inline const char* to_string(Units u) {
  switch (u) {
    case Units::kCounts: return "counts";
    case Units::kCmPerS2: return "cm/s2";
    case Units::kCmPerS: return "cm/s";
    case Units::kCm: return "cm";
  }
  return "unknown";
}

// Uniformly sampled series: the value type every kernel operates on.
struct TimeSeries {
  double dt = 0.0;  // sampling interval, seconds
  Units units = Units::kCounts;
  std::vector<double> samples;

  std::size_t size() const { return samples.size(); }
  double duration() const {
    return samples.empty() ? 0.0
                           : static_cast<double>(samples.size() - 1) * dt;
  }
  double time_at(std::size_t i) const { return static_cast<double>(i) * dt; }
};

// Structural validity: positive finite dt, at least one sample, every
// sample finite. The pipeline runs this once at the entry to the
// numerical chain; kernels may assume it afterwards but still verify
// their own outputs.
inline Result<Unit, SignalError> validate(const TimeSeries& ts) {
  if (!std::isfinite(ts.dt) || ts.dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (ts.samples.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples"};
  }
  for (std::size_t i = 0; i < ts.samples.size(); ++i) {
    if (!std::isfinite(ts.samples[i])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "sample " + std::to_string(i) + " is not finite"};
    }
  }
  return Unit{};
}

}  // namespace acx::signal
