#pragma once

#include <vector>

#include "signal/error.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Baseline correction kernels. All operate in place and return the
// removed model so callers can log it. Exact (to round-off) on inputs
// that are themselves polynomials of the fitted degree.

// Subtracts the arithmetic mean; returns the mean removed.
Result<double, SignalError> remove_mean(std::vector<double>& x);

// Least-squares line over sample index i = 0..n-1, parameterized
// around the index midpoint: value_i = intercept + slope*(i - (n-1)/2).
struct LinearTrend {
  double intercept = 0.0;  // value at the midpoint (== mean of x)
  double slope = 0.0;      // per-sample slope
};
Result<LinearTrend, SignalError> detrend_linear(std::vector<double>& x);

inline constexpr int kMaxDetrendDegree = 8;

// Least-squares polynomial of the given degree (0..kMaxDetrendDegree)
// over the normalized abscissa u_i = 2i/(n-1) - 1 in [-1, 1] (which
// keeps the normal equations well conditioned). Returns the removed
// coefficients c[0..degree], value_i = sum_j c[j] * u_i^j.
Result<std::vector<double>, SignalError> detrend_polynomial(
    std::vector<double>& x, int degree);

}  // namespace acx::signal
