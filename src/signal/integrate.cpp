#include "signal/integrate.hpp"

#include <cmath>
#include <utility>

namespace acx::signal {

Result<std::vector<double>, SignalError> integrate_trapezoid(
    const std::vector<double>& x, double dt) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (x.size() < 2) {
    return SignalError{SignalError::Code::kTooShort,
                       "integration needs at least 2 samples"};
  }
  std::vector<double> y(x.size());
  y[0] = 0.0;
  const double half_dt = dt / 2.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    y[i] = y[i - 1] + half_dt * (x[i - 1] + x[i]);
    if (!std::isfinite(y[i])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "integral overflowed at sample " + std::to_string(i)};
    }
  }
  return y;
}

Result<TimeSeries, SignalError> integrate(const TimeSeries& ts) {
  Units out_units;
  switch (ts.units) {
    case Units::kCmPerS2: out_units = Units::kCmPerS; break;
    case Units::kCmPerS: out_units = Units::kCm; break;
    default:
      return SignalError{SignalError::Code::kBadUnits,
                         std::string("cannot integrate a series in ") +
                             to_string(ts.units)};
  }
  auto y = integrate_trapezoid(ts.samples, ts.dt);
  if (!y.ok()) return std::move(y).take_error();
  return TimeSeries{ts.dt, out_units, std::move(y).take()};
}

}  // namespace acx::signal
