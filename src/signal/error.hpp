#pragma once

#include <string>

namespace acx::signal {

// Numerical failure taxonomy of the signal kernels. Every kernel
// returns Result<_, SignalError>; the pipeline maps each code to the
// poison reason "signal.<slug>" (see docs/SIGNAL.md, "Error taxonomy").
// All signal errors are deterministic for a given input, so they are
// always poison — never retried.
struct SignalError {
  enum class Code {
    kEmptyInput,           // no samples at all
    kTooShort,             // fewer samples than the operation requires
    kNonFinite,            // NaN/Inf in input, or produced by the kernel
    kBadSamplingInterval,  // dt not finite or not positive
    kBadCorners,           // band-pass corners violate 0 < low < high < Nyquist
    kBadTaps,              // FIR length not odd / out of range
    kBadDegree,            // detrend degree out of range
    kBadUnits,             // units transition not defined (e.g. integrate cm)
  };

  Code code{};
  std::string detail;

  std::string to_string() const;
};

inline const char* slug(SignalError::Code c) {
  switch (c) {
    case SignalError::Code::kEmptyInput: return "empty_input";
    case SignalError::Code::kTooShort: return "too_short";
    case SignalError::Code::kNonFinite: return "non_finite";
    case SignalError::Code::kBadSamplingInterval: return "bad_sampling_interval";
    case SignalError::Code::kBadCorners: return "bad_corners";
    case SignalError::Code::kBadTaps: return "bad_taps";
    case SignalError::Code::kBadDegree: return "bad_degree";
    case SignalError::Code::kBadUnits: return "bad_units";
  }
  return "unknown";
}

inline std::string SignalError::to_string() const {
  std::string s = "signal.";
  s += slug(code);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace acx::signal
