#include "signal/fft_plan.hpp"

#include <map>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <utility>

#include "signal/fft.hpp"
#include "util/perf.hpp"
#include "util/simd.hpp"

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

Pow2Plan Pow2Plan::build(std::size_t n) {
  Pow2Plan plan;
  plan.n = n;
  plan.bitrev.resize(n);
  for (std::size_t i = 1; i < n; ++i) {
    plan.bitrev[i] = static_cast<std::uint32_t>(
        (plan.bitrev[i >> 1] >> 1) | ((i & 1) ? (n >> 1) : 0));
  }
  if (n >= 2) plan.twiddle.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      plan.twiddle.push_back(std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(len)));
    }
  }
  plan.tw_re.resize(plan.twiddle.size());
  plan.tw_im.resize(plan.twiddle.size());
  for (std::size_t i = 0; i < plan.twiddle.size(); ++i) {
    plan.tw_re[i] = plan.twiddle[i].real();
    plan.tw_im[i] = plan.twiddle[i].imag();
  }
  return plan;
}

void fft_pow2_execute(std::vector<Complex>& a, const Pow2Plan& plan,
                      bool inverse) {
  const std::size_t n = a.size();
  if (n < 2) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Complex* tw = plan.twiddle.data() + (len / 2 - 1);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex w = inverse ? std::conj(tw[k]) : tw[k];
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

namespace {

// Split-complex butterfly sweep. Each (len, i) block's lanes are
// independent outputs, so `#pragma omp simd` across k vectorizes with
// unit stride; the per-lane arithmetic is exactly the std::complex
// kernel's finite-path formula — vr = xr*wr - xi*wi, vi = xr*wi +
// xi*wr, then u +/- v componentwise — in the same order, so results
// are bit-identical. The inverse conjugates by negating the twiddle
// imaginary part (sign flips are exact). Instantiated per ISA via the
// tag so each wrapper compiles the body under its own target options;
// the AVX2 clone omits "fma" from its target set, keeping
// -ffp-contract from fusing a multiply-add and changing a rounding.
template <bool Inverse, typename IsaTag>
__attribute__((always_inline)) inline void fft_split_body(
    double* __restrict re, double* __restrict im, const Pow2Plan& plan) {
  const std::size_t n = plan.n;
  const double* tw_re_base = plan.tw_re.data();
  const double* tw_im_base = plan.tw_im.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t h = len / 2;
    const double* wr = tw_re_base + (h - 1);
    const double* wi = tw_im_base + (h - 1);
    for (std::size_t i = 0; i < n; i += len) {
      double* r0 = re + i;
      double* i0 = im + i;
      double* r1 = re + i + h;
      double* i1 = im + i + h;
#pragma omp simd
      for (std::size_t k = 0; k < h; ++k) {
        const double wre = wr[k];
        const double wim = Inverse ? -wi[k] : wi[k];
        const double xr = r1[k];
        const double xi = i1[k];
        const double vr = xr * wre - xi * wim;
        const double vi = xr * wim + xi * wre;
        const double ur = r0[k];
        const double ui = i0[k];
        r0[k] = ur + vr;
        i0[k] = ui + vi;
        r1[k] = ur - vr;
        i1[k] = ui - vi;
      }
    }
  }
}

struct GenericIsa {};
struct Avx2Isa {};

void fft_split_generic(double* re, double* im, const Pow2Plan& plan,
                       bool inverse) {
  if (inverse) {
    fft_split_body<true, GenericIsa>(re, im, plan);
  } else {
    fft_split_body<false, GenericIsa>(re, im, plan);
  }
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void fft_split_avx2(double* re, double* im,
                                                    const Pow2Plan& plan,
                                                    bool inverse) {
  if (inverse) {
    fft_split_body<true, Avx2Isa>(re, im, plan);
  } else {
    fft_split_body<false, Avx2Isa>(re, im, plan);
  }
}
#endif

}  // namespace

void fft_pow2_execute_split(double* re, double* im, const Pow2Plan& plan,
                            bool inverse) {
  if (plan.n < 2) return;
#if defined(__x86_64__) || defined(__i386__)
  if (simd::avx2_supported()) {
    fft_split_avx2(re, im, plan, inverse);
    return;
  }
#endif
  fft_split_generic(re, im, plan, inverse);
}

void fft_pow2_execute_dispatch(std::vector<Complex>& a, const Pow2Plan& plan,
                               bool inverse) {
  const std::size_t n = a.size();
  if (n < 2) return;
  if (!simd::enabled()) {
    fft_pow2_execute(a, plan, inverse);
    return;
  }
  // Layout conversion fused with the bit-reversal permutation (the
  // gather through bitrev equals the scalar kernel's swap pass, since
  // bitrev is an involution); butterflies run on the planes, then the
  // natural-order result interleaves back.
  std::vector<double> re(n);
  std::vector<double> im(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex c = a[plan.bitrev[i]];
    re[i] = c.real();
    im[i] = c.imag();
  }
  fft_pow2_execute_split(re.data(), im.data(), plan, inverse);
  for (std::size_t i = 0; i < n; ++i) a[i] = Complex(re[i], im[i]);
}

BluesteinPlan BluesteinPlan::build(std::size_t n,
                                   std::shared_ptr<const Pow2Plan> pow2_m) {
  BluesteinPlan plan;
  plan.n = n;
  plan.pow2 = std::move(pow2_m);
  plan.m = plan.pow2->n;

  plan.chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    plan.chirp[k] = std::polar(
        1.0, -kPi * static_cast<double>(k2) / static_cast<double>(n));
  }

  // Circular convolution kernels, transformed once per direction. The
  // forward kernel is the conjugate chirp; the inverse direction's
  // chirp is conj(chirp), so its kernel is the chirp itself.
  std::vector<Complex> b(plan.m, Complex{});
  b[0] = std::conj(plan.chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[plan.m - k] = std::conj(plan.chirp[k]);
  }
  fft_pow2_execute(b, *plan.pow2, false);
  plan.bfft_fwd = std::move(b);

  std::vector<Complex> bi(plan.m, Complex{});
  bi[0] = plan.chirp[0];
  for (std::size_t k = 1; k < n; ++k) {
    bi[k] = bi[plan.m - k] = plan.chirp[k];
  }
  fft_pow2_execute(bi, *plan.pow2, false);
  plan.bfft_inv = std::move(bi);

  return plan;
}

struct FftPlanCache::Impl {
  std::shared_mutex mu;
  std::map<std::size_t, std::shared_ptr<const Pow2Plan>> pow2;
  std::map<std::size_t, std::shared_ptr<const BluesteinPlan>> bluestein;
  std::map<std::size_t, std::shared_ptr<const RfftPlan>> rfft;

  // Shared-lock probe, build outside any lock (builders may recurse
  // into sibling getters), publish under a unique lock; the first
  // insert wins so concurrent misses still converge on one shared
  // plan. A redundant build counts as a hit: exactly one miss is ever
  // recorded per cached key.
  template <typename T, typename Builder>
  std::shared_ptr<const T> get(
      std::map<std::size_t, std::shared_ptr<const T>>& map, std::size_t n,
      Builder&& builder) {
    {
      std::shared_lock lock(mu);
      auto it = map.find(n);
      if (it != map.end()) {
        perf::count_cache(true);
        return it->second;
      }
    }
    auto built = std::make_shared<const T>(builder());
    {
      std::unique_lock lock(mu);
      auto [it, inserted] = map.emplace(n, std::move(built));
      perf::count_cache(!inserted);
      return it->second;
    }
  }
};

FftPlanCache::FftPlanCache() : impl_(new Impl) {}
FftPlanCache::~FftPlanCache() { delete impl_; }

FftPlanCache& FftPlanCache::instance() {
  static FftPlanCache cache;
  return cache;
}

std::shared_ptr<const Pow2Plan> FftPlanCache::pow2(std::size_t n) {
  return impl_->get(impl_->pow2, n, [n] { return Pow2Plan::build(n); });
}

std::shared_ptr<const BluesteinPlan> FftPlanCache::bluestein(std::size_t n) {
  return impl_->get(impl_->bluestein, n, [this, n] {
    std::size_t m = 1;
    while (m < 2 * n - 1) m <<= 1;
    return BluesteinPlan::build(n, pow2(m));
  });
}

std::shared_ptr<const RfftPlan> FftPlanCache::rfft(std::size_t n) {
  return impl_->get(impl_->rfft, n, [this, n] {
    RfftPlan plan;
    plan.n = n;
    plan.untangle.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      plan.untangle[k] = std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
    }
    const std::size_t half = n / 2;
    if (is_power_of_two(half)) {
      plan.half_pow2 = pow2(half);
    } else {
      plan.half_bluestein = bluestein(half);
    }
    return plan;
  });
}

void FftPlanCache::clear() {
  std::unique_lock lock(impl_->mu);
  impl_->pow2.clear();
  impl_->bluestein.clear();
  impl_->rfft.clear();
}

}  // namespace acx::signal
