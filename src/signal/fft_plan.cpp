#include "signal/fft_plan.hpp"

#include <map>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <utility>

#include "signal/fft.hpp"
#include "util/perf.hpp"

namespace acx::signal {

namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

Pow2Plan Pow2Plan::build(std::size_t n) {
  Pow2Plan plan;
  plan.n = n;
  plan.bitrev.resize(n);
  for (std::size_t i = 1; i < n; ++i) {
    plan.bitrev[i] = static_cast<std::uint32_t>(
        (plan.bitrev[i >> 1] >> 1) | ((i & 1) ? (n >> 1) : 0));
  }
  if (n >= 2) plan.twiddle.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      plan.twiddle.push_back(std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(len)));
    }
  }
  return plan;
}

void fft_pow2_execute(std::vector<Complex>& a, const Pow2Plan& plan,
                      bool inverse) {
  const std::size_t n = a.size();
  if (n < 2) return;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Complex* tw = plan.twiddle.data() + (len / 2 - 1);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex w = inverse ? std::conj(tw[k]) : tw[k];
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
      }
    }
  }
}

BluesteinPlan BluesteinPlan::build(std::size_t n,
                                   std::shared_ptr<const Pow2Plan> pow2_m) {
  BluesteinPlan plan;
  plan.n = n;
  plan.pow2 = std::move(pow2_m);
  plan.m = plan.pow2->n;

  plan.chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    plan.chirp[k] = std::polar(
        1.0, -kPi * static_cast<double>(k2) / static_cast<double>(n));
  }

  // Circular convolution kernels, transformed once per direction. The
  // forward kernel is the conjugate chirp; the inverse direction's
  // chirp is conj(chirp), so its kernel is the chirp itself.
  std::vector<Complex> b(plan.m, Complex{});
  b[0] = std::conj(plan.chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[plan.m - k] = std::conj(plan.chirp[k]);
  }
  fft_pow2_execute(b, *plan.pow2, false);
  plan.bfft_fwd = std::move(b);

  std::vector<Complex> bi(plan.m, Complex{});
  bi[0] = plan.chirp[0];
  for (std::size_t k = 1; k < n; ++k) {
    bi[k] = bi[plan.m - k] = plan.chirp[k];
  }
  fft_pow2_execute(bi, *plan.pow2, false);
  plan.bfft_inv = std::move(bi);

  return plan;
}

struct FftPlanCache::Impl {
  std::shared_mutex mu;
  std::map<std::size_t, std::shared_ptr<const Pow2Plan>> pow2;
  std::map<std::size_t, std::shared_ptr<const BluesteinPlan>> bluestein;
  std::map<std::size_t, std::shared_ptr<const RfftPlan>> rfft;

  // Shared-lock probe, build outside any lock (builders may recurse
  // into sibling getters), publish under a unique lock; the first
  // insert wins so concurrent misses still converge on one shared
  // plan. A redundant build counts as a hit: exactly one miss is ever
  // recorded per cached key.
  template <typename T, typename Builder>
  std::shared_ptr<const T> get(
      std::map<std::size_t, std::shared_ptr<const T>>& map, std::size_t n,
      Builder&& builder) {
    {
      std::shared_lock lock(mu);
      auto it = map.find(n);
      if (it != map.end()) {
        perf::count_cache(true);
        return it->second;
      }
    }
    auto built = std::make_shared<const T>(builder());
    {
      std::unique_lock lock(mu);
      auto [it, inserted] = map.emplace(n, std::move(built));
      perf::count_cache(!inserted);
      return it->second;
    }
  }
};

FftPlanCache::FftPlanCache() : impl_(new Impl) {}
FftPlanCache::~FftPlanCache() { delete impl_; }

FftPlanCache& FftPlanCache::instance() {
  static FftPlanCache cache;
  return cache;
}

std::shared_ptr<const Pow2Plan> FftPlanCache::pow2(std::size_t n) {
  return impl_->get(impl_->pow2, n, [n] { return Pow2Plan::build(n); });
}

std::shared_ptr<const BluesteinPlan> FftPlanCache::bluestein(std::size_t n) {
  return impl_->get(impl_->bluestein, n, [this, n] {
    std::size_t m = 1;
    while (m < 2 * n - 1) m <<= 1;
    return BluesteinPlan::build(n, pow2(m));
  });
}

std::shared_ptr<const RfftPlan> FftPlanCache::rfft(std::size_t n) {
  return impl_->get(impl_->rfft, n, [this, n] {
    RfftPlan plan;
    plan.n = n;
    plan.untangle.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      plan.untangle[k] = std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
    }
    const std::size_t half = n / 2;
    if (is_power_of_two(half)) {
      plan.half_pow2 = pow2(half);
    } else {
      plan.half_bluestein = bluestein(half);
    }
    return plan;
  });
}

void FftPlanCache::clear() {
  std::unique_lock lock(impl_->mu);
  impl_->pow2.clear();
  impl_->bluestein.clear();
  impl_->rfft.clear();
}

}  // namespace acx::signal
