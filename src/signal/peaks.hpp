#pragma once

#include <cstddef>
#include <vector>

#include "signal/error.hpp"
#include "signal/timeseries.hpp"
#include "util/result.hpp"

namespace acx::signal {

// Peak of a corrected series: the signed sample value at the maximum
// absolute amplitude (first such index on ties), with its sample index
// and time index*dt. Applied to acceleration/velocity/displacement
// this yields PGA/PGV/PGD.
struct Peak {
  double value = 0.0;
  std::size_t index = 0;
  double time = 0.0;
};

Result<Peak, SignalError> extract_peak(const std::vector<double>& x, double dt);

inline Result<Peak, SignalError> extract_peak(const TimeSeries& ts) {
  return extract_peak(ts.samples, ts.dt);
}

}  // namespace acx::signal
