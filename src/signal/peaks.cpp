#include "signal/peaks.hpp"

#include <cmath>

namespace acx::signal {

Result<Peak, SignalError> extract_peak(const std::vector<double>& x,
                                       double dt) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SignalError{SignalError::Code::kBadSamplingInterval,
                       "dt must be finite and positive"};
  }
  if (x.empty()) {
    return SignalError{SignalError::Code::kEmptyInput, "no samples"};
  }
  Peak peak;
  double best = -1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) {
      return SignalError{SignalError::Code::kNonFinite,
                         "sample " + std::to_string(i) + " is not finite"};
    }
    const double mag = std::fabs(x[i]);
    if (mag > best) {
      best = mag;
      peak.value = x[i];
      peak.index = i;
    }
  }
  peak.time = static_cast<double>(peak.index) * dt;
  return peak;
}

}  // namespace acx::signal
