#pragma once

#include <filesystem>
#include <map>
#include <string>

#include "pipeline/report.hpp"
#include "pipeline/stage.hpp"
#include "util/fs.hpp"
#include "util/retry.hpp"

namespace acx::pipeline {

// Deterministic stage-crash injection: kill `stage` on its k-th
// invocation counted across the whole run. Poison by default (models a
// process crash on a specific record); transient=true models a flaky
// stage that succeeds when retried.
struct StageFault {
  std::string stage;
  int kill_on_invocation = 0;  // 1-based; 0 disables
  bool transient = false;
};

struct RunnerConfig {
  RetryPolicy retry;
  // Backoff sleep; defaults to a real sleep, tests inject a no-op.
  SleepFn sleep;
  StageFault stage_fault;
  // Fallback band corners / FIR length / gain of the V2 correction chain.
  CorrectionConfig correction;
  // FAS, corner-search and response-grid parameters of the spectral
  // stages (corners, fourier, response).
  SpectrumConfig spectrum;
  // keep_going=true is the production mode: quarantine poisoned records
  // and continue the event run with the survivors. false stops at the
  // first quarantined record (still writing the report).
  bool keep_going = true;
};

// The fault-tolerant execution layer. For every input record:
// scratch-dir isolation, per-stage retry with capped exponential
// backoff for transient errors, quarantine + continue for poison
// errors, and a machine-readable run_report.json of all outcomes.
//
// Work-dir layout:
//   <work>/out/<record>.v2              one per surviving record
//   <work>/out/<record>.f               Fourier amplitude spectrum
//   <work>/out/<record>.r               response spectra (SD/SV/SA)
//   <work>/quarantine/<record>.<reason> original bytes of poisoned records
//   <work>/run_report.json              per-record outcomes
//   <work>/scratch/                     removed after the run
class StageRunner {
 public:
  explicit StageRunner(FileSystem& fs, RunnerConfig config = {});

  // Processes every *.v1 file in input_dir. Only fails as a whole when
  // the work dir itself cannot be set up or the report cannot be
  // written; record-level failures are contained and reported.
  Result<RunReport, IoError> run_event(const std::filesystem::path& input_dir,
                                       const std::filesystem::path& work_dir);

 private:
  RecordOutcome process_record(const std::filesystem::path& input,
                               const std::filesystem::path& work_dir,
                               std::vector<std::unique_ptr<Stage>>& stages);
  Result<Unit, StageError> run_stage_once(Stage& stage, RecordContext& ctx);
  bool run_step(const std::string& name, RecordOutcome& outcome,
                StageError& failure,
                const std::function<Result<Unit, StageError>()>& fn);
  void quarantine_record(const std::filesystem::path& quarantine_dir,
                         const RecordContext& ctx, const StageError& failure,
                         RecordOutcome& outcome);

  FileSystem& fs_;
  RunnerConfig cfg_;
  std::map<std::string, int> invocations_;
};

// Convenience: run with the default stage chain and write the report.
Result<RunReport, IoError> run_pipeline(FileSystem& fs,
                                        const std::filesystem::path& input_dir,
                                        const std::filesystem::path& work_dir,
                                        const RunnerConfig& config = {});

}  // namespace acx::pipeline
