#pragma once

#include <filesystem>

#include "pipeline/config.hpp"
#include "pipeline/report.hpp"
#include "util/fs.hpp"

namespace acx::pipeline {

// The fault-tolerant execution layer: builds the standard StageGraph,
// hands it to the configured driver's Scheduler (pipeline/scheduler.hpp),
// and writes the run report. For every input record: scratch-dir
// isolation, per-stage retry with capped exponential backoff for
// transient errors, quarantine + continue for poison errors.
//
// Work-dir layout:
//   <work>/out/<record>.v2              one per surviving record
//   <work>/out/<record>.f               Fourier amplitude spectrum
//   <work>/out/<record>.r               response spectra (SD/SV/SA)
//   <work>/quarantine/<record>.<reason> original bytes of poisoned records
//   <work>/run_report.json              per-record outcomes
//   <work>/scratch/                     removed after the run
class StageRunner {
 public:
  explicit StageRunner(FileSystem& fs, RunnerConfig config = {});

  // Processes every *.v1 file in input_dir with the configured driver.
  // Only fails as a whole when the work dir itself cannot be set up,
  // the stage graph fails its structural audit, or the report cannot
  // be written; record-level failures are contained and reported.
  Result<RunReport, IoError> run_event(const std::filesystem::path& input_dir,
                                       const std::filesystem::path& work_dir);

 private:
  FileSystem& fs_;
  RunnerConfig cfg_;
};

// Convenience: run with the standard stage graph and write the report.
Result<RunReport, IoError> run_pipeline(FileSystem& fs,
                                        const std::filesystem::path& input_dir,
                                        const std::filesystem::path& work_dir,
                                        const RunnerConfig& config = {});

}  // namespace acx::pipeline
