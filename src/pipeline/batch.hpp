#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/config.hpp"
#include "pipeline/report.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace acx::pipeline {

// One event queued for processing: a directory of *.v1 records under
// the input root, bound to its sharded work dir.
struct EventJob {
  std::string event;                // event id (input subdir name)
  std::filesystem::path input_dir;  // the directory holding its records
  std::filesystem::path work_dir;   // <work_root>/events/<shard>/<event>
  // Summed record bytes: the priority key of the largest/smallest-first
  // policies, and a cheap straggler predictor.
  std::uintmax_t input_bytes = 0;
};

// The multi-event batch layer over StageRunner (docs/BATCH.md). Two
// scheduling axes compose: `event_workers` threads pull events off a
// bounded priority queue (inter-event), each running the configured
// driver's record fan-out inside the event (intra-event).
struct BatchConfig {
  // Per-event pipeline configuration, deadline budget included. The
  // breaker pointer, when set, also feeds the batch-level counters.
  RunnerConfig runner;
  // Inter-event concurrency; each worker drives one StageRunner at a
  // time. 1 = events run strictly one after another.
  int event_workers = 1;
  // Bound of the event queue. The producer blocks once this many events
  // are admitted but not yet claimed — backpressure, so a stalled
  // worker pool cannot accumulate unbounded queued state.
  std::size_t queue_capacity = 4;
  // Work dirs are sharded <work_root>/events/<fnv1a64(event) % shards>/
  // so a million-event batch does not pile every work dir into one
  // directory.
  int shards = 16;
  // Which admitted event a freed worker claims next.
  enum class Priority {
    kFifo,      // admission order
    kLargest,   // most input bytes first (straggler avoidance)
    kSmallest,  // fewest input bytes first (fast first results)
  };
  Priority priority = Priority::kFifo;
  // Resume mode: an event whose journal entry exists and whose work dir
  // still validates is skipped, its prior report taken as-is (and its
  // canonical projection therefore byte-identical). false reprocesses
  // everything.
  bool resume = true;
};

inline const char* to_string(BatchConfig::Priority p) {
  switch (p) {
    case BatchConfig::Priority::kFifo: return "fifo";
    case BatchConfig::Priority::kLargest: return "largest";
    case BatchConfig::Priority::kSmallest: return "smallest";
  }
  return "fifo";
}

inline std::optional<BatchConfig::Priority> parse_priority(
    std::string_view name) {
  if (name == "fifo") return BatchConfig::Priority::kFifo;
  if (name == "largest") return BatchConfig::Priority::kLargest;
  if (name == "smallest") return BatchConfig::Priority::kSmallest;
  return std::nullopt;
}

// One event's row in the batch report.
struct EventOutcome {
  std::string event;
  // "ok" | "degraded" | "quarantined" — the event report's status, or
  // "quarantined" when the run itself failed (see `error`).
  std::string status = "ok";
  bool resumed = false;   // skipped: a prior run's report validated
  std::string error;      // run-level failure slug; empty when the run ran
  std::string work_dir;
  int records_ok = 0;
  int records_degraded = 0;
  int records_quarantined = 0;
  long long points = 0;   // published data points
  double seconds = 0;     // wall clock of this event's run (0 if resumed)
};

// The machine-readable outcome of one batch, written atomically to
// <work_root>/batch_report.json. Schema documented in docs/BATCH.md.
struct BatchReport {
  static constexpr int kVersion = 1;

  std::string input_root;
  std::string work_root;
  std::string driver = "seq";
  int threads = 1;
  int event_workers = 1;
  std::string priority = "fifo";
  double total_seconds = 0;
  // Sustained throughput over the *fresh* (non-resumed) events: resumed
  // events cost no processing, so counting them would flatter the rate.
  double records_per_second = 0;
  double points_per_second = 0;
  // Breaker counter deltas across the whole batch (zero when no
  // breaker is wired into the filesystem stack).
  long long breaker_rejected_ops = 0;
  int breaker_opens = 0;
  int breaker_half_open_recoveries = 0;
  std::vector<EventOutcome> events;  // sorted by event id

  int count_status(std::string_view status) const;
  int count_resumed() const;

  Json to_json() const;
  std::string dump() const { return to_json().dump(2); }
  static Result<BatchReport, std::string> from_json_text(
      const std::string& text);
};

inline constexpr const char* kBatchReportFileName = "batch_report.json";

// Drives a whole batch: discovers events (directories holding *.v1
// records anywhere under input_root), admits them to the bounded queue
// under the configured priority, and runs them on the worker pool.
//
// Work-root layout:
//   <work>/events/<shard>/<event>/   one StageRunner work dir per event
//   <work>/journal/<event>.json      completion journal (atomic)
//   <work>/batch_report.json         the batch outcome
//
// Crash contract: the journal entry is written (atomically) only after
// an event's report landed, so a mid-batch crash leaves either a
// journaled, validating event (skipped on resume) or an unjournaled one
// (wiped and reprocessed). Completed events' canonical reports are
// therefore byte-identical across crash/resume cycles.
class BatchRunner {
 public:
  BatchRunner(FileSystem& fs, BatchConfig config = {});

  Result<BatchReport, IoError> run(const std::filesystem::path& input_root,
                                   const std::filesystem::path& work_root);

 private:
  Result<std::vector<EventJob>, IoError> discover(
      const std::filesystem::path& input_root,
      const std::filesystem::path& work_root);
  // True when the event's journal entry and work dir both check out, so
  // the event can be skipped on resume. Fills `out` from the journal.
  bool try_resume(const EventJob& job, EventOutcome& out);
  EventOutcome run_one(const EventJob& job);

  FileSystem& fs_;
  BatchConfig cfg_;
  std::filesystem::path journal_dir_;
};

}  // namespace acx::pipeline
