#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/stage.hpp"
#include "util/result.hpp"

namespace acx::pipeline {

// One node of the stage dependency graph. The graph carries what the
// old fixed stage vector could not express:
//   deps          — which stages must have completed for this record
//                   before this one may run (data dependencies, not
//                   just list position);
//   redundant     — a paper P#6/P#12/P#14 analogue: work the original
//                   pipeline performed whose results nothing consumes.
//                   The optimized variants drop these by *pruning the
//                   graph*, not by maintaining a second stage list;
//   parallel_safe — the stage touches only its own record's context
//                   and scratch dir, so the partial driver may fan it
//                   across records. Every per-record stage of the
//                   current chain qualifies; a future cross-record
//                   stage (event-level catalog, shared plot) would not.
//   sheddable     — the stage's output is a non-essential enrichment
//                   (spectra previews/products): under deadline or
//                   storage-breaker pressure the executor may skip or
//                   forgive it, publishing the record as *degraded*
//                   instead of quarantining it. The essential chain
//                   (parse -> ... -> write_v2) is never sheddable.
//   station_scoped — the stage runs once per *station* after every
//                   per-component stage of that station has settled
//                   (the rotd sweep combining both horizontals). Its
//                   deps name the per-component stages whose results
//                   it consumes from each member; schedulers dispatch
//                   component tasks independently and run the station
//                   phase after the record fan-out completes.
struct StageNode {
  std::string name;
  std::vector<std::string> deps;
  bool redundant = false;
  bool parallel_safe = false;
  bool sheddable = false;
  // Factory for the node's Stage instance. Instances must be
  // re-entrant: the schedulers share one instance per node across all
  // records (and, under the parallel drivers, across threads).
  std::function<std::unique_ptr<Stage>()> make;
  bool station_scoped = false;
  // Factory for station-scoped nodes; exactly one of make/make_station
  // is set (verify() enforces the pairing with station_scoped).
  std::function<std::unique_ptr<StationStage>()> make_station;
};

// The executable part of a StageNode stripped away: what a consumer
// that *models* the graph (the src/sched simulator) needs — names,
// dependency edges, and the scheduling flags — without dragging in the
// stage factories or their configs.
struct StageShape {
  std::string name;
  std::vector<std::string> deps;
  bool redundant = false;
  bool parallel_safe = false;
  bool sheddable = false;
  bool station_scoped = false;
};

// The declared pipeline: stages, dependency edges, and which of them
// are redundant. Declaration order doubles as the execution order of
// the sequential drivers, so verify() insists it is a topological
// order of the edges.
class StageGraph {
 public:
  // The reproduction's chain with the redundant stages included:
  //   stage_in -> parse -> reparse* -> calibrate -> demean -> corners
  //   -> fas_preview* -> bandpass -> detrend -> integrate -> peaks
  //   -> repeaks* -> fourier -> response -> write_v2
  // (* = redundant, pruned by every driver except Sequential Original),
  // plus the station-scoped rotd stage (deps: detrend of each member).
  static StageGraph standard(const CorrectionConfig& correction = {},
                             const SpectrumConfig& spectrum = {});

  void add(StageNode node) { nodes_.push_back(std::move(node)); }
  const std::vector<StageNode>& nodes() const { return nodes_; }
  const StageNode* find(std::string_view name) const;

  // The deterministic per-record execution plan: every per-component
  // node in declaration order, with the redundant nodes removed when
  // prune_redundant is set. All five drivers run the same plan
  // objects; they differ only in how they schedule it. Station-scoped
  // nodes are excluded — they run in the station phase (station_plan).
  std::vector<const StageNode*> plan(bool prune_redundant) const;

  // The station-phase plan: the station-scoped nodes in declaration
  // order, pruned the same way.
  std::vector<const StageNode*> station_plan(bool prune_redundant) const;

  // Shape-only projection in declaration order, for consumers that
  // model the graph rather than execute it (src/sched). Prepends the
  // implicit per-record scratch_setup step the executor runs before
  // stage_in, so the shape covers every stage a run report can carry.
  std::vector<StageShape> shape() const;

  // Structural audit: unique names, every dep names an earlier node
  // (declaration order must be topological), no surviving node depends
  // on a redundant one (pruning must never sever a live edge), each
  // node carries exactly the factory its scope requires, and no
  // per-record node depends on a station-scoped one (the station phase
  // runs strictly after the record fan-out).
  Result<Unit, std::string> verify() const;

 private:
  std::vector<StageNode> nodes_;
};

}  // namespace acx::pipeline
