#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/config.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/report.hpp"
#include "pipeline/stage.hpp"
#include "util/fs.hpp"

namespace acx::pipeline {

// One record's unit of scheduling: its context, its report entry, and
// its failure state. A slot is only ever touched by one thread at a
// time — the schedulers hand whole slots to threads, never shares of
// one — so the slot itself needs no locking.
struct RecordSlot {
  RecordContext ctx;
  RecordOutcome outcome;
  StageError failure;
  // Input size (bytes, 0 if unknown): a cheap proxy for record length,
  // used by the full driver to hand out long records first so one late
  // straggler cannot serialize the tail of the run.
  std::uintmax_t input_bytes = 0;
  bool failed = false;     // a stage (or scratch setup) failed
  bool processed = false;  // finalize() ran; the outcome is reportable
};

// A graph node bound to its (shared, re-entrant) Stage instance.
struct PlannedStage {
  const StageNode* node = nullptr;
  std::unique_ptr<Stage> stage;
};

// One station's unit of scheduling for the station phase that runs
// after the record fan-out: its context (component sample vectors
// borrowed from the owning RecordSlots), its report rollup, and its
// failure state. Same ownership rule as RecordSlot: whole slots move
// between threads, so no locking.
struct StationSlot {
  StationContext ctx;
  StationOutcome outcome;
  StageError failure;
  bool failed = false;  // a station stage failed (or pre-skipped)
};

// A station-scoped graph node bound to its StationStage instance.
struct PlannedStationStage {
  const StageNode* node = nullptr;
  std::unique_ptr<StationStage> stage;
};

// The per-record execution machinery every scheduler shares: stage
// instantiation from the graph plan, retry with capped backoff and
// seeded jitter, deterministic fault injection, deadline-pressure
// shedding, quarantine, and output publication.
// Thread-safety: the only cross-record state is the fault-injection
// invocation counter, which is taken under a lock, so any number of
// threads may drive disjoint slots concurrently. The deadline tracker
// is started before any worker runs and read-only afterwards.
class RecordExecutor {
 public:
  RecordExecutor(FileSystem& fs, const RunnerConfig& cfg);

  // Arms the per-event deadline budget; the tracker must outlive the
  // run and already be start()ed. Null (the default) = unbounded.
  void set_deadline(const DeadlineTracker* deadline) { deadline_ = deadline; }

  // Instantiates one Stage per surviving graph node (and one
  // StationStage per station-scoped node), in plan order.
  void instantiate(const StageGraph& graph, bool prune_redundant);
  const std::vector<PlannedStage>& plan() const { return plan_; }
  const std::vector<PlannedStationStage>& station_plan() const {
    return station_plan_;
  }

  // A fresh slot for one input record under <work_dir>.
  RecordSlot make_slot(const std::filesystem::path& input,
                       const std::filesystem::path& work_dir) const;

  // Re-creates the record's private scratch dir (with retry). Failure
  // marks the slot failed; later run_stage calls become no-ops. No-op
  // when the slot is already failed (station pre-scan quarantine).
  void setup_scratch(RecordSlot& slot);

  // Runs one planned stage on the slot (retry + timing + report entry).
  // No-op when the slot already failed.
  void run_stage(RecordSlot& slot, const PlannedStage& ps);

  // Publishes the outcome: on success records the (sorted) output list;
  // on failure removes any partially published outputs and quarantines
  // the original bytes. Drops the record's scratch dir either way.
  void finalize(RecordSlot& slot, const std::filesystem::path& work_dir);

  // setup_scratch + every planned stage + finalize, in order — the
  // whole per-record chain, as the sequential and full drivers run it.
  void run_record(RecordSlot& slot, const std::filesystem::path& work_dir);

  // Runs every planned station stage on the slot (hard-deadline guard,
  // retry + timing + report entry, shared fault-injection counters),
  // then settles the rotd verdict: "ok" with the published output
  // path, or "failed" with the registered reason and any partial
  // output scrubbed. The runner only hands over eligible slots — a
  // station that cannot run stays "skipped" and never reaches here.
  void run_station(StationSlot& slot);

 private:
  Result<Unit, StageError> run_stage_once(Stage& stage, RecordContext& ctx);
  Result<Unit, StageError> run_station_once(StationStage& stage,
                                            StationContext& ctx);
  // The retry/timing/report core shared by record and station steps:
  // `key` seeds the jitter salt (record id or station name), the
  // attempt group lands in `stages`, retries/seconds accumulate.
  bool run_step(const std::string& name, const std::string& key,
                std::vector<StageAttempt>& stages, int& retries,
                double& seconds, StageError& failure,
                const std::function<Result<Unit, StageError>()>& fn);
  bool run_step(const std::string& name, RecordOutcome& outcome,
                StageError& failure,
                const std::function<Result<Unit, StageError>()>& fn);
  // Marks a sheddable stage as skipped/forgiven: records the shed entry
  // with its registered reason, flags the record degraded, and scrubs
  // any output the stage may have partially published.
  void shed_stage(RecordSlot& slot, const PlannedStage& ps,
                  std::string reason);
  void quarantine_record(const std::filesystem::path& quarantine_dir,
                         RecordSlot& slot);

  FileSystem& fs_;
  const RunnerConfig& cfg_;
  const DeadlineTracker* deadline_ = nullptr;
  std::vector<PlannedStage> plan_;
  std::vector<PlannedStationStage> station_plan_;
  std::mutex invocations_mu_;  // guards the fault-injection counters
  std::map<std::string, int> invocations_;
};

}  // namespace acx::pipeline
