#include "pipeline/batch.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "formats/v1.hpp"
#include "pipeline/runner.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/validate.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

int BatchReport::count_status(std::string_view status) const {
  int n = 0;
  for (const EventOutcome& e : events) {
    if (e.status == status) ++n;
  }
  return n;
}

int BatchReport::count_resumed() const {
  int n = 0;
  for (const EventOutcome& e : events) {
    if (e.resumed) ++n;
  }
  return n;
}

namespace {

bool is_event_status(std::string_view s) {
  return s == "ok" || s == "degraded" || s == "quarantined";
}

Json outcome_to_json(const EventOutcome& e) {
  Json je = Json::object();
  je.set("event", e.event);
  je.set("status", e.status);
  je.set("resumed", e.resumed);
  if (!e.error.empty()) je.set("error", e.error);
  je.set("work_dir", e.work_dir);
  je.set("records_ok", e.records_ok);
  je.set("records_degraded", e.records_degraded);
  je.set("records_quarantined", e.records_quarantined);
  je.set("points", static_cast<double>(e.points));
  je.set("seconds", e.seconds);
  return je;
}

Result<EventOutcome, std::string> outcome_from_json(const Json& je) {
  if (!je.is_object()) return std::string("event entry is not an object");
  EventOutcome e;
  e.event = je.get_string("event");
  if (e.event.empty()) return std::string("event entry missing id");
  e.status = je.get_string("status");
  if (!is_event_status(e.status)) {
    return "event '" + e.event + "' has bad status '" + e.status + "'";
  }
  const Json* resumed = je.find("resumed");
  e.resumed = resumed && resumed->is_bool() && resumed->boolean();
  e.error = je.get_string("error");
  e.work_dir = je.get_string("work_dir");
  e.records_ok = static_cast<int>(je.get_number("records_ok", -1));
  e.records_degraded = static_cast<int>(je.get_number("records_degraded", -1));
  e.records_quarantined =
      static_cast<int>(je.get_number("records_quarantined", -1));
  e.points = static_cast<long long>(je.get_number("points", -1));
  e.seconds = je.get_number("seconds", -1);
  if (e.records_ok < 0 || e.records_degraded < 0 ||
      e.records_quarantined < 0 || e.points < 0 || e.seconds < 0) {
    return "event '" + e.event + "' has a negative or missing counter";
  }
  return e;
}

}  // namespace

Json BatchReport::to_json() const {
  Json root = Json::object();
  root.set("version", kVersion);
  root.set("input_root", input_root);
  root.set("work_root", work_root);
  root.set("driver", driver);
  root.set("threads", threads);
  root.set("event_workers", event_workers);
  root.set("priority", priority);
  root.set("total_seconds", total_seconds);
  root.set("records_per_second", records_per_second);
  root.set("points_per_second", points_per_second);

  Json breaker = Json::object();
  breaker.set("rejected_ops", static_cast<double>(breaker_rejected_ops));
  breaker.set("opens", breaker_opens);
  breaker.set("half_open_recoveries", breaker_half_open_recoveries);
  root.set("breaker", std::move(breaker));

  Json counts = Json::object();
  counts.set("events", static_cast<int>(events.size()));
  counts.set("ok", count_status("ok"));
  counts.set("degraded", count_status("degraded"));
  counts.set("quarantined", count_status("quarantined"));
  counts.set("resumed", count_resumed());
  root.set("counts", std::move(counts));

  Json evs = Json::array();
  for (const EventOutcome& e : events) evs.push(outcome_to_json(e));
  root.set("events", std::move(evs));
  return root;
}

Result<BatchReport, std::string> BatchReport::from_json_text(
    const std::string& text) {
  auto parsed = Json::parse(text);
  if (!parsed.ok()) {
    const auto& e = parsed.error();
    return "batch_report.json is not valid JSON at byte " +
           std::to_string(e.offset) + ": " + e.detail;
  }
  const Json root = std::move(parsed).take();
  if (!root.is_object()) {
    return std::string("batch report root is not an object");
  }
  if (root.get_number("version", -1) != kVersion) {
    return std::string("unsupported batch report version");
  }

  BatchReport report;
  report.input_root = root.get_string("input_root");
  report.work_root = root.get_string("work_root");
  report.driver = root.get_string("driver");
  if (!parse_driver(report.driver)) {
    return "batch report driver '" + report.driver + "' is not a known driver";
  }
  report.threads = static_cast<int>(root.get_number("threads", 0));
  report.event_workers = static_cast<int>(root.get_number("event_workers", 0));
  if (report.threads < 1 || report.event_workers < 1) {
    return std::string("batch report threads/event_workers must be >= 1");
  }
  report.priority = root.get_string("priority");
  if (!parse_priority(report.priority)) {
    return "batch report priority '" + report.priority + "' is unknown";
  }
  report.total_seconds = root.get_number("total_seconds", -1);
  report.records_per_second = root.get_number("records_per_second", -1);
  report.points_per_second = root.get_number("points_per_second", -1);
  if (report.total_seconds < 0 || report.records_per_second < 0 ||
      report.points_per_second < 0) {
    return std::string("batch report throughput fields negative or missing");
  }

  const Json* breaker = root.find("breaker");
  if (!breaker || !breaker->is_object()) {
    return std::string("batch report has no breaker block");
  }
  report.breaker_rejected_ops =
      static_cast<long long>(breaker->get_number("rejected_ops", -1));
  report.breaker_opens = static_cast<int>(breaker->get_number("opens", -1));
  report.breaker_half_open_recoveries =
      static_cast<int>(breaker->get_number("half_open_recoveries", -1));
  if (report.breaker_rejected_ops < 0 || report.breaker_opens < 0 ||
      report.breaker_half_open_recoveries < 0) {
    return std::string("batch report breaker counters negative or missing");
  }

  const Json* evs = root.find("events");
  if (!evs || !evs->is_array()) {
    return std::string("batch report has no events array");
  }
  for (const Json& je : evs->items()) {
    auto e = outcome_from_json(je);
    if (!e.ok()) return e.error();
    report.events.push_back(std::move(e).take());
  }
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    if (!(report.events[i - 1].event < report.events[i].event)) {
      return std::string("batch report events are not sorted unique by id");
    }
  }

  if (const Json* counts = root.find("counts")) {
    if (static_cast<int>(counts->get_number("events", -1)) !=
            static_cast<int>(report.events.size()) ||
        static_cast<int>(counts->get_number("ok", -1)) !=
            report.count_status("ok") ||
        static_cast<int>(counts->get_number("degraded", -1)) !=
            report.count_status("degraded") ||
        static_cast<int>(counts->get_number("quarantined", -1)) !=
            report.count_status("quarantined") ||
        static_cast<int>(counts->get_number("resumed", -1)) !=
            report.count_resumed()) {
      return std::string("batch report counts disagree with events array");
    }
  } else {
    return std::string("batch report has no counts block");
  }
  return report;
}

BatchRunner::BatchRunner(FileSystem& fs, BatchConfig config)
    : fs_(fs), cfg_(std::move(config)) {
  if (cfg_.event_workers < 1) cfg_.event_workers = 1;
  if (cfg_.shards < 1) cfg_.shards = 1;
  if (!cfg_.runner.sleep) {
    cfg_.runner.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

Result<std::vector<EventJob>, IoError> BatchRunner::discover(
    const stdfs::path& input_root, const stdfs::path& work_root) {
  auto tree = run_with_retry<std::vector<stdfs::path>, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep,
      [](const IoError& e) { return e.klass; },
      [&] { return fs_.list_tree(input_root); });
  if (!tree.ok()) return std::move(tree).take_error();

  // Group the records by their holding directory: every directory with
  // at least one *.v1 file anywhere under the root is one event. Nested
  // roots flatten to a path-derived id so the journal stays one flat
  // file per event.
  std::map<std::string, EventJob> events;
  for (const stdfs::path& p : tree.value()) {
    if (p.extension() != formats::kV1Extension) continue;
    const stdfs::path dir = p.parent_path();
    std::string id = dir.lexically_relative(input_root).generic_string();
    if (id.empty() || id == ".") id = "root";
    std::replace(id.begin(), id.end(), '/', '_');
    EventJob& job = events[id];
    if (job.event.empty()) {
      job.event = id;
      job.input_dir = dir;
      const std::string shard =
          "s" + std::to_string(fnv1a64(id) % static_cast<std::uint64_t>(
                                                 cfg_.shards));
      job.work_dir = work_root / "events" / shard / id;
    }
    job.input_bytes += fs_.file_size(p);
  }

  std::vector<EventJob> out;
  out.reserve(events.size());
  for (auto& [id, job] : events) out.push_back(std::move(job));
  return out;
}

bool BatchRunner::try_resume(const EventJob& job, EventOutcome& out) {
  const stdfs::path entry = journal_dir_ / (job.event + ".json");
  if (!fs_.exists(entry)) return false;
  auto text = fs_.read_file(entry);
  if (!text.ok()) return false;
  auto parsed = Json::parse(text.value());
  if (!parsed.ok()) return false;
  auto outcome = outcome_from_json(parsed.value());
  if (!outcome.ok()) return false;
  // The journal says the event completed — trust it only if the work
  // dir still audits clean (report present, outputs intact, no partial
  // writes). Anything less and the event is reprocessed from scratch.
  if (!validate_workdir(fs_, job.work_dir).clean()) return false;
  out = std::move(outcome).take();
  out.resumed = true;
  return true;
}

EventOutcome BatchRunner::run_one(const EventJob& job) {
  EventOutcome out;
  out.event = job.event;
  out.work_dir = job.work_dir.string();

  // A fresh (or crashed) event starts from a clean slate: a half-written
  // work dir from a killed run must not leak partial state into this one.
  (void)fs_.remove_all(job.work_dir);

  const auto started = std::chrono::steady_clock::now();
  StageRunner runner(fs_, cfg_.runner);
  auto report = runner.run_event(job.input_dir, job.work_dir);
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  if (!report.ok()) {
    // Run-level failure (work dir unusable, report unwritable): the
    // event is quarantined as a whole and — deliberately — left
    // unjournaled, so the next resume retries it.
    out.status = "quarantined";
    out.error = reason_slug(report.error());
    return out;
  }
  const RunReport& r = report.value();
  out.status = r.status();
  out.records_ok = r.count_ok();
  out.records_degraded = r.count_degraded();
  out.records_quarantined = r.count_quarantined();
  out.points = r.total_points();

  // Journal last: its (atomic) existence certifies the report landed.
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep,
      [](const IoError& e) { return e.klass; },
      [&] {
        return atomic_write_file(fs_, journal_dir_ / (job.event + ".json"),
                                 outcome_to_json(out).dump(2));
      });
  if (!wrote.ok()) {
    out.status = "quarantined";
    out.error = reason_slug(wrote.error());
  }
  return out;
}

Result<BatchReport, IoError> BatchRunner::run(const stdfs::path& input_root,
                                              const stdfs::path& work_root) {
  const auto run_started = std::chrono::steady_clock::now();
  journal_dir_ = work_root / "journal";
  const stdfs::path dirs[] = {work_root / "events", journal_dir_};
  for (const stdfs::path& dir : dirs) {
    auto made = run_with_retry<Unit, IoError>(
        cfg_.runner.retry, cfg_.runner.sleep,
        [](const IoError& e) { return e.klass; },
        [&] { return fs_.create_directories(dir); });
    if (!made.ok()) return std::move(made).take_error();
  }

  auto discovered = discover(input_root, work_root);
  if (!discovered.ok()) return std::move(discovered).take_error();
  const std::vector<EventJob> jobs = std::move(discovered).take();

  const storage::BreakerCounters breaker_before =
      cfg_.runner.breaker ? cfg_.runner.breaker->counters()
                          : storage::BreakerCounters{};

  struct QueuedJob {
    const EventJob* job = nullptr;
    std::size_t index = 0;
  };
  const BatchConfig::Priority priority = cfg_.priority;
  auto less = [priority](const QueuedJob& a, const QueuedJob& b) {
    switch (priority) {
      case BatchConfig::Priority::kLargest:
        return a.job->input_bytes < b.job->input_bytes;
      case BatchConfig::Priority::kSmallest:
        return a.job->input_bytes > b.job->input_bytes;
      case BatchConfig::Priority::kFifo: break;
    }
    return false;  // equal priority everywhere: pure FIFO
  };
  BoundedPriorityQueue<QueuedJob, decltype(less)> queue(cfg_.queue_capacity,
                                                        less);

  std::vector<EventOutcome> outcomes(jobs.size());
  const int workers = std::min(
      cfg_.event_workers,
      static_cast<int>(std::max<std::size_t>(jobs.size(), 1)));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (auto q = queue.pop()) {
        EventOutcome& out = outcomes[q->index];
        if (cfg_.resume && try_resume(*q->job, out)) continue;
        out = run_one(*q->job);
      }
    });
  }

  // Admission: the producer blocks once queue_capacity events are
  // pending — backpressure against a stalled worker pool. The queue
  // only closes after this loop, so every push is accepted.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (queue.push(QueuedJob{&jobs[i], i}) == QueuePushResult::kClosed) break;
  }
  queue.close();
  for (std::thread& t : pool) t.join();

  BatchReport report;
  report.input_root = input_root.string();
  report.work_root = work_root.string();
  report.driver = to_string(cfg_.runner.driver);
  report.threads =
      is_parallel(cfg_.runner.driver) ? resolve_threads(cfg_.runner.threads)
                                      : 1;
  report.event_workers = workers;
  report.priority = to_string(cfg_.priority);
  report.events = std::move(outcomes);
  std::sort(report.events.begin(), report.events.end(),
            [](const EventOutcome& a, const EventOutcome& b) {
              return a.event < b.event;
            });

  report.total_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - run_started)
                             .count();
  // Sustained throughput counts only the events this run actually
  // processed; resumed events were free and would flatter the rate.
  long long fresh_records = 0, fresh_points = 0;
  for (const EventOutcome& e : report.events) {
    if (e.resumed) continue;
    fresh_records += e.records_ok;
    fresh_points += e.points;
  }
  if (report.total_seconds > 0) {
    report.records_per_second =
        static_cast<double>(fresh_records) / report.total_seconds;
    report.points_per_second =
        static_cast<double>(fresh_points) / report.total_seconds;
  }
  if (cfg_.runner.breaker) {
    const storage::BreakerCounters after = cfg_.runner.breaker->counters();
    report.breaker_rejected_ops =
        after.rejected_ops - breaker_before.rejected_ops;
    report.breaker_opens = after.opens - breaker_before.opens;
    report.breaker_half_open_recoveries =
        after.half_open_recoveries - breaker_before.half_open_recoveries;
  }

  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep,
      [](const IoError& e) { return e.klass; },
      [&] {
        return atomic_write_file(fs_, work_root / kBatchReportFileName,
                                 report.dump());
      });
  if (!wrote.ok()) return std::move(wrote).take_error();
  return report;
}

}  // namespace acx::pipeline
