#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "pipeline/stage.hpp"
#include "util/breaker.hpp"
#include "util/clock.hpp"
#include "util/retry.hpp"

namespace acx {
class WorkPool;  // util/work_pool.hpp
}

namespace acx::pipeline {

// The four pipeline implementations of the paper plus the resident
// service driver, selected at run time (acx_process --driver ...).
// Each is a Scheduler over the same StageGraph (src/pipeline/graph.hpp):
//   kSequential          — §III  Sequential Original: every stage of the
//                          full graph, redundant processes included, one
//                          record after another.
//   kSequentialOptimized — §IV   Sequential Optimized: the pruned graph
//                          (redundant stages removed), still one record
//                          at a time.
//   kPartialParallel     — §V    Partially Parallelized: the pruned
//                          graph executed stage-by-stage, each
//                          parallel-safe stage fanned across records
//                          with an OpenMP loop and a barrier between
//                          stages.
//   kFullParallel        — §VI   Fully Parallelized: record-level OpenMP
//                          fan-out over the whole pruned graph, with the
//                          response stage's period loop as a nested
//                          `omp for`.
//   kPool                — record-level fan-out onto the persistent
//                          work-stealing WorkPool (util/work_pool.hpp)
//                          instead of a per-run OpenMP team — the
//                          resident-service driver (docs/SERVE.md).
//                          Same pruned graph, byte-identical canonical
//                          output to the other drivers.
enum class Driver {
  kSequential,
  kSequentialOptimized,
  kPartialParallel,
  kFullParallel,
  kPool,
};

// The CLI/report spellings: "seq", "seq-opt", "partial", "full", "pool".
inline const char* to_string(Driver d) {
  switch (d) {
    case Driver::kSequential: return "seq";
    case Driver::kSequentialOptimized: return "seq-opt";
    case Driver::kPartialParallel: return "partial";
    case Driver::kFullParallel: return "full";
    case Driver::kPool: return "pool";
  }
  return "seq";
}

inline std::optional<Driver> parse_driver(std::string_view name) {
  if (name == "seq") return Driver::kSequential;
  if (name == "seq-opt") return Driver::kSequentialOptimized;
  if (name == "partial") return Driver::kPartialParallel;
  if (name == "full") return Driver::kFullParallel;
  if (name == "pool") return Driver::kPool;
  return std::nullopt;
}

// True for the drivers that run records concurrently (and therefore
// always keep going: fail-fast needs a serial notion of "first").
inline bool is_parallel(Driver d) {
  return d == Driver::kPartialParallel || d == Driver::kFullParallel ||
         d == Driver::kPool;
}

// True for the drivers that execute the pruned graph (every driver
// except Sequential Original, which runs the redundant stages too).
inline bool prunes_redundant(Driver d) { return d != Driver::kSequential; }

// Deterministic stage-crash injection: kill `stage` on its k-th
// invocation counted across the whole run. Poison by default (models a
// process crash on a specific record); transient=true models a flaky
// stage that succeeds when retried. Under the parallel drivers the
// count is still exact (it is taken under a lock) but which record
// draws the k-th invocation depends on thread interleaving.
struct StageFault {
  std::string stage;
  int kill_on_invocation = 0;  // 1-based; 0 disables
  bool transient = false;
  // Kill the whole process (std::_Exit) instead of failing the stage —
  // models power loss / OOM-kill mid-batch. The checkpoint/resume tests
  // spawn acx_batch with this armed, then resume the survivor.
  bool kill_process = false;
};

struct RunnerConfig {
  // Which driver executes the stage graph (the paper's four, or the
  // resident pool driver).
  Driver driver = Driver::kSequential;
  // OpenMP team size for the parallel drivers; 0 = the OpenMP default
  // (all hardware threads). Ignored by the sequential drivers. For the
  // pool driver this sizes the *transient* pool when no shared one is
  // given below.
  int threads = 0;
  // The resident work-stealing pool the kPool driver dispatches onto.
  // Non-owning; null makes PoolScheduler spin up a transient pool of
  // `threads` workers for the run (acx_process), while acx_serve wires
  // one process-lifetime pool through every event so team spin-up is
  // paid exactly once (docs/SERVE.md).
  WorkPool* pool = nullptr;
  // total_seconds of a sequential baseline report; when > 0 the run
  // report carries speedup_vs_sequential = baseline / this run.
  double baseline_total_seconds = 0;
  RetryPolicy retry;
  // Backoff sleep; defaults to a real sleep, tests inject a no-op.
  SleepFn sleep;
  // Per-event wall-clock budget (util/clock.hpp). Soft expiry sheds the
  // graph's sheddable stages (record published as degraded); hard
  // expiry quarantines unfinished records as batch.deadline_hard and
  // finalizes the event with whatever completed. Retries never start a
  // backoff sleep that would overrun the remaining hard budget.
  DeadlineConfig deadline;
  // Monotonic clock for the deadline tracker; defaults to the steady
  // clock, tests inject a manual one.
  NowFn now;
  // Observed (never driven) by the runner: when the filesystem stack
  // includes a BreakerFileSystem, point this at its breaker and the run
  // report's v6 breaker block carries the counter deltas of this run.
  const storage::CircuitBreaker* breaker = nullptr;
  StageFault stage_fault;
  // Fallback band corners / FIR length / gain of the V2 correction chain.
  CorrectionConfig correction;
  // FAS, corner-search and response-grid parameters of the spectral
  // stages (corners, fourier, response).
  SpectrumConfig spectrum;
  // Station pre-scan floor: a record whose header announces less than
  // this many seconds of signal (npts * dt) is quarantined as
  // station.short_duration before any stage runs — too short for any
  // spectral product to mean anything.
  double min_station_duration_s = 0.1;
  // keep_going=true is the production mode: quarantine poisoned records
  // and continue the event run with the survivors. false stops at the
  // first quarantined record (still writing the report) — sequential
  // drivers only; the parallel drivers always keep going.
  bool keep_going = true;
};

}  // namespace acx::pipeline
