#include "pipeline/scheduler.hpp"

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/work_pool.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

// Longest-first issue order (input size descending, record id ascending
// as the deterministic tie-break): both record-level fan-outs use it so
// a long record dealt last cannot serialize the tail of the run.
std::vector<std::size_t> longest_first_order(
    const std::vector<RecordSlot>& slots) {
  std::vector<std::size_t> order(slots.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (slots[a].input_bytes != slots[b].input_bytes) {
      return slots[a].input_bytes > slots[b].input_bytes;
    }
    return slots[a].outcome.record < slots[b].outcome.record;
  });
  return order;
}

// §III / §IV of the paper: one record after another, every planned
// stage in order. Sequential Original and Sequential Optimized are the
// same scheduler — the difference is the plan (pruned or not), decided
// when the executor instantiates the graph. Honors keep_going=false by
// stopping at the first quarantined record, leaving the rest of the
// slots unprocessed.
class SequentialScheduler final : public Scheduler {
 public:
  explicit SequentialScheduler(bool keep_going) : keep_going_(keep_going) {}

  void run(RecordExecutor& exec, std::vector<RecordSlot>& slots,
           const stdfs::path& work_dir) override {
    for (RecordSlot& slot : slots) {
      exec.run_record(slot, work_dir);
      if (!keep_going_ &&
          slot.outcome.status == RecordOutcome::Status::kQuarantined) {
        break;
      }
    }
  }

 private:
  bool keep_going_;
};

// §V of the paper: stage-by-stage over the pruned plan, each
// parallel-safe stage fanned across records with an OpenMP loop and an
// implicit barrier before the next stage; stages not marked
// parallel-safe (none in the current chain, but the graph allows them)
// run serially. Scratch setup and finalization stay serial — they are
// cheap, and serial finalization keeps quarantine writes ordered.
class PartialParallelScheduler final : public Scheduler {
 public:
  explicit PartialParallelScheduler(int threads) : threads_(threads) {}

  void run(RecordExecutor& exec, std::vector<RecordSlot>& slots,
           const stdfs::path& work_dir) override {
    const long long n = static_cast<long long>(slots.size());
    for (RecordSlot& slot : slots) exec.setup_scratch(slot);
    for (const PlannedStage& ps : exec.plan()) {
      if (ps.node->parallel_safe) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads_)
        for (long long i = 0; i < n; ++i) {
          exec.run_stage(slots[static_cast<std::size_t>(i)], ps);
        }
      } else {
        for (RecordSlot& slot : slots) exec.run_stage(slot, ps);
      }
    }
    for (RecordSlot& slot : slots) exec.finalize(slot, work_dir);
  }

  // Station fan-out: one OpenMP loop over the eligible stations, the
  // stage-level analogue of the per-stage record loops above.
  void run_stations(RecordExecutor& exec,
                    std::vector<StationSlot*>& slots) override {
    const long long n = static_cast<long long>(slots.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads_)
    for (long long i = 0; i < n; ++i) {
      exec.run_station(*slots[static_cast<std::size_t>(i)]);
    }
  }

 private:
  int threads_;
};

// §VI of the paper: record-level fan-out — each thread takes whole
// records through the entire plan, scratch setup to finalization. The
// response stage's period loop is the nested `omp for` (the runner
// sets SpectrumConfig::response_threads for this driver), so
// max_active_levels must admit two levels.
//
// Records differ in length by up to ~7x within one event (5-19 files,
// 56K-384K points), so the fan-out combines schedule(dynamic, 1) with
// longest-first issue order: sort an index permutation by input size
// descending (record id ascending as the tie-break, so the order is
// deterministic) and let the dynamic schedule keep every thread fed.
// Without the ordering a long record dealt last serializes the tail of
// the run; bench_pipeline's full-driver bench measures the effect (see
// docs/PERF.md). Only the issue order changes — outcomes land in their
// original slots and the report is sorted by id regardless.
class FullParallelScheduler final : public Scheduler {
 public:
  explicit FullParallelScheduler(int threads) : threads_(threads) {}

  void run(RecordExecutor& exec, std::vector<RecordSlot>& slots,
           const stdfs::path& work_dir) override {
    omp_set_max_active_levels(2);
    const long long n = static_cast<long long>(slots.size());
    const std::vector<std::size_t> order = longest_first_order(slots);
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads_)
    for (long long i = 0; i < n; ++i) {
      exec.run_record(slots[order[static_cast<std::size_t>(i)]], work_dir);
    }
  }

  // Station fan-out mirrors the record fan-out: whole stations across
  // the team. The rotd kernel's own angle loop is the nested level,
  // like the response stage's period loop (max_active_levels is 2).
  void run_stations(RecordExecutor& exec,
                    std::vector<StationSlot*>& slots) override {
    const long long n = static_cast<long long>(slots.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads_)
    for (long long i = 0; i < n; ++i) {
      exec.run_station(*slots[static_cast<std::size_t>(i)]);
    }
  }

 private:
  int threads_;
};

// The resident-service driver (docs/SERVE.md): record-level fan-out
// onto the persistent work-stealing WorkPool instead of an OpenMP team.
// Records go out longest-first like the full driver; each record is one
// pool task running the whole per-record chain, and the TaskGroup latch
// waits only for this event's records — several events may batch onto
// the same pool concurrently from different event workers. The nested
// response-period loop stays serial (response_threads=1): under a
// shared pool, intra-record nesting would just fight the record-level
// tasks for the same workers. Outcomes land in their original slots, so
// the canonical report is byte-identical to the sequential drivers'.
class PoolScheduler final : public Scheduler {
 public:
  PoolScheduler(WorkPool* shared, int threads)
      : shared_(shared), threads_(threads) {}

  void run(RecordExecutor& exec, std::vector<RecordSlot>& slots,
           const stdfs::path& work_dir) override {
    WorkPool* pool = shared_;
    std::unique_ptr<WorkPool> transient;
    if (!pool) {
      // One-shot mode (acx_process --driver pool): pay the spin-up this
      // run — the resident service wires a process-lifetime pool in.
      transient = std::make_unique<WorkPool>(threads_);
      pool = transient.get();
    }
    const std::vector<std::size_t> order = longest_first_order(slots);
    WorkPool::TaskGroup group(*pool);
    for (std::size_t idx : order) {
      RecordSlot& slot = slots[idx];
      group.run([&exec, &slot, &work_dir] { exec.run_record(slot, work_dir); });
    }
    group.wait();
  }

  // Station fan-out onto the pool: one task per eligible station, same
  // one-shot/resident split as the record phase.
  void run_stations(RecordExecutor& exec,
                    std::vector<StationSlot*>& slots) override {
    WorkPool* pool = shared_;
    std::unique_ptr<WorkPool> transient;
    if (!pool) {
      transient = std::make_unique<WorkPool>(threads_);
      pool = transient.get();
    }
    WorkPool::TaskGroup group(*pool);
    for (StationSlot* slot : slots) {
      group.run([&exec, slot] { exec.run_station(*slot); });
    }
    group.wait();
  }

 private:
  WorkPool* shared_;
  int threads_;
};

}  // namespace

int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

std::unique_ptr<Scheduler> make_scheduler(Driver driver, int threads,
                                          bool keep_going, WorkPool* pool) {
  switch (driver) {
    case Driver::kSequential:
    case Driver::kSequentialOptimized:
      return std::make_unique<SequentialScheduler>(keep_going);
    case Driver::kPartialParallel:
      return std::make_unique<PartialParallelScheduler>(
          resolve_threads(threads));
    case Driver::kFullParallel:
      return std::make_unique<FullParallelScheduler>(resolve_threads(threads));
    case Driver::kPool:
      return std::make_unique<PoolScheduler>(pool, resolve_threads(threads));
  }
  return std::make_unique<SequentialScheduler>(keep_going);
}

}  // namespace acx::pipeline
