#pragma once

// The single registry of legal quarantine reasons. Every reason that
// can appear in run_report.json or a quarantine file name has the form
//   [transient_exhausted.]<family>.<slug>
// where <family>.<slug> is one of:
//   parse.<slug>        — formats::ParseError      (strict readers)
//   signal.<slug>       — signal::SignalError      (numerical kernels)
//   spectrum.<slug>     — spectrum::SpectrumError  (spectral kernels)
//   io.<slug>           — IoError                  (filesystem layer)
//   storage.<slug>      — storage backend layer (circuit breaker)
//   batch.<slug>        — batch-runner deadline budgets
//   station.<slug>      — cross-component station consistency checks
//   stage_crash.<stage> — injected/observed crash of a named stage
// The slug lists are generated from the enums via each family's slug()
// function, so a new error code is registered the moment it exists;
// tests/test_reasons.cpp pins the stage list to the actual chain.
// storage.* and batch.* appear both as quarantine reasons and as the
// degrade reasons of a record's shed (non-essential) stages.

#include <string>
#include <string_view>
#include <vector>

#include "formats/parse_error.hpp"
#include "signal/error.hpp"
#include "spectrum/error.hpp"
#include "util/error.hpp"

namespace acx::pipeline {

// Every stage the runner can execute, in chain order (scratch_setup is
// the executor's own setup step, not a Stage subclass; reparse,
// fas_preview and repeaks are the redundant stages only the Sequential
// Original driver runs; rotd is the station-scoped stage that runs
// after every per-component stage of its station).
inline constexpr const char* kStageNames[] = {
    "scratch_setup", "stage_in",  "parse",       "reparse",  "calibrate",
    "demean",        "corners",   "fas_preview", "bandpass", "detrend",
    "integrate",     "peaks",     "repeaks",     "fourier",  "response",
    "write_v2",      "rotd",
};

// Cross-component station consistency checks (docs/FORMATS.md,
// "Component sets"). The first three are pre-scan quarantine reasons
// (the record never enters the chain); the last two are rollup-only —
// they explain a skipped station stage in the report's stations block
// without quarantining any component.
inline constexpr const char* kStationReasonSlugs[] = {
    "duplicate_component",  // two inputs claim the same (station, comp)
    "dt_mismatch",          // components of one station disagree on DT
    "short_duration",       // npts * dt below the station minimum
    "missing_component",    // a horizontal needed by rotd is absent
    "length_mismatch",      // horizontals disagree in sample count
};

inline const std::vector<std::string>& registered_reasons() {
  static const std::vector<std::string> reasons = [] {
    std::vector<std::string> out;
    using PC = formats::ParseError::Code;
    for (PC c : {PC::kEmptyFile, PC::kNonAsciiByte, PC::kCrlfLineEnding,
                 PC::kBadMagic, PC::kUnsupportedVersion,
                 PC::kMissingHeaderField, PC::kBadHeaderField,
                 PC::kDuplicateHeaderField, PC::kBadUnits,
                 PC::kMissingDataMarker, PC::kBadColumnWidth,
                 PC::kMalformedNumber, PC::kNonFiniteSample,
                 PC::kShortDataBlock, PC::kExcessData, PC::kMissingEndMarker,
                 PC::kTrailingGarbage, PC::kBadValue}) {
      out.push_back(std::string("parse.") + formats::slug(c));
    }
    using SC = signal::SignalError::Code;
    for (SC c : {SC::kEmptyInput, SC::kTooShort, SC::kNonFinite,
                 SC::kBadSamplingInterval, SC::kBadCorners, SC::kBadTaps,
                 SC::kBadDegree, SC::kBadUnits}) {
      out.push_back(std::string("signal.") + signal::slug(c));
    }
    using XC = spectrum::SpectrumError::Code;
    for (XC c : {XC::kEmptyInput, XC::kTooShort, XC::kNonFinite,
                 XC::kBadSamplingInterval, XC::kBadWindow, XC::kBadPeriod,
                 XC::kBadDamping, XC::kBadGrid, XC::kNoCorner,
                 XC::kComponentMismatch, XC::kBadAngleCount}) {
      out.push_back(std::string("spectrum.") + spectrum::slug(c));
    }
    using IC = IoError::Code;
    for (IC c : {IC::kNotFound, IC::kOpenFailed, IC::kReadFailed,
                 IC::kWriteFailed, IC::kRenameFailed, IC::kCreateDirFailed,
                 IC::kRemoveFailed, IC::kListFailed, IC::kInjectedReadFault,
                 IC::kInjectedWriteFault, IC::kInjectedRenameFault,
                 IC::kInjectedMkdirFault, IC::kInjectedListFault,
                 IC::kInjectedRemoveFault, IC::kGraphInvalid}) {
      out.push_back(std::string("io.") + slug(c));
    }
    // Storage-backend layer: the circuit breaker shedding load
    // (IoError::Code::kCircuitOpen reports under the storage family —
    // see reason_slug() in util/error.hpp).
    out.push_back("storage.circuit_open");
    // Batch-runner deadline budgets: soft expiry sheds non-essential
    // stages (a degrade reason), hard expiry stops the record where it
    // stands (a quarantine reason).
    out.push_back("batch.deadline_soft");
    out.push_back("batch.deadline_hard");
    for (const char* slug : kStationReasonSlugs) {
      out.push_back(std::string("station.") + slug);
    }
    for (const char* stage : kStageNames) {
      out.push_back(std::string("stage_crash.") + stage);
    }
    return out;
  }();
  return reasons;
}

// True when `reason` (optionally wrapped in "transient_exhausted.") is
// in the registry. Used by the validator and the reason tests to reject
// ad-hoc strings before they leak into reports or file names.
inline bool is_registered_reason(std::string_view reason) {
  constexpr std::string_view kExhausted = "transient_exhausted.";
  if (reason.substr(0, kExhausted.size()) == kExhausted) {
    reason.remove_prefix(kExhausted.size());
  }
  for (const std::string& r : registered_reasons()) {
    if (reason == r) return true;
  }
  return false;
}

}  // namespace acx::pipeline
