#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/config.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace acx {
class WorkPool;  // util/work_pool.hpp
}

namespace acx::pipeline {

// The resident service layer (docs/SERVE.md): a long-lived process that
// watches a spool directory for event manifests, admits them through
// the bounded priority queue, and runs each event through the standard
// RecordExecutor + storage stack — with the record-level fan-out on one
// persistent work-stealing WorkPool shared across every event, so
// OpenMP-style team spin-up and plan-cache warm-up are paid once per
// process instead of once per event.
// The serve layer's RunnerConfig baseline: same defaults as a direct
// run, except the driver is the pool driver the service exists for.
inline RunnerConfig serve_default_runner() {
  RunnerConfig runner;
  runner.driver = Driver::kPool;
  return runner;
}

struct ServeConfig {
  // Per-event pipeline configuration; driver defaults to kPool and the
  // shared pool below is wired into it by the server.
  RunnerConfig runner = serve_default_runner();
  // Inter-event concurrency: how many events run at once, each batching
  // its records onto the shared pool.
  int event_workers = 2;
  std::size_t queue_capacity = 8;
  // Work dirs shard as <work>/events/s<fnv1a64(event)%shards>/<event>.
  int shards = 16;
  // Which admitted event a freed worker claims next (same policies as
  // the batch runner).
  BatchConfig::Priority priority = BatchConfig::Priority::kFifo;
  // Spool scan cadence while idle, milliseconds.
  int poll_ms = 50;
  // Stop admitting after this many events (0 = unbounded) — the soak
  // and smoke harnesses use it as a deterministic stop.
  long long max_events = 0;
  // Exit once the spool, queue, and workers have all been idle this
  // long (0 = resident until the shutdown sentinel appears).
  double idle_exit_seconds = 0;
  // Rewrite serve_stats.json every N event completions (>= 1).
  int stats_every = 1;
  // The resident record-level pool, shared across events. Null is legal
  // (each event then spins a transient pool — the anti-pattern the
  // service exists to avoid; acx_serve always passes one).
  WorkPool* pool = nullptr;
};

// One event's plan-cache measurement, sampled into the rolling
// trajectory that proves amortization across the event stream.
struct ServeEventSample {
  long long index = 0;  // 1-based completion order
  std::string event;
  std::string status;  // "ok" | "degraded" | "quarantined"
  long long hits = 0;
  long long misses = 0;
  double hit_rate = 0;  // hits / (hits + misses), 0 when untouched
  double seconds = 0;   // wall clock of the event's run
};

// The rolling snapshot written (atomically) to <work>/serve_stats.json
// after every stats_every completions and at shutdown. Schema
// documented in docs/SERVE.md.
struct ServeStats {
  static constexpr int kVersion = 1;

  double uptime_seconds = 0;
  std::string driver = "pool";
  int threads = 1;
  int event_workers = 1;
  std::size_t queue_capacity = 0;
  std::size_t queue_depth = 0;  // at snapshot time

  long long admitted = 0;    // manifests accepted onto the queue
  long long served = 0;      // events completed (reported), any status
  long long ok = 0;          // event-level statuses
  long long degraded = 0;
  long long quarantined = 0;
  long long malformed = 0;   // manifests rejected: unparseable/invalid
  long long duplicates = 0;  // manifests rejected: event id already seen
  long long in_flight = 0;   // popped but not yet completed

  long long records_ok = 0;
  long long records_degraded = 0;
  long long records_quarantined = 0;
  long long points = 0;

  long long cache_hits = 0;    // plan-cache traffic, summed over events
  long long cache_misses = 0;
  ServeEventSample first_event;  // index 0 = none served yet
  ServeEventSample last_event;
  std::vector<ServeEventSample> trajectory;  // downsampled, <= 256 rows

  // Pool counters (zeros when no shared pool is wired in).
  int pool_threads = 0;
  long long pool_executed = 0;
  long long pool_steals = 0;
  long long pool_stolen_tasks = 0;
  long long pool_injector_takes = 0;
  long long pool_overflow = 0;
  long long pool_parks = 0;
  long long pool_wakes = 0;
  long long pool_inline_runs = 0;

  // Breaker counter deltas since the service started.
  long long breaker_rejected_ops = 0;
  int breaker_opens = 0;
  int breaker_half_open_recoveries = 0;

  // Service-health counters: storage hiccups the service absorbed.
  long long scan_errors = 0;
  long long stats_write_failures = 0;

  Json to_json() const;
  std::string dump() const { return to_json().dump(2); }
};

inline constexpr const char* kServeStatsFileName = "serve_stats.json";
inline constexpr const char* kServeShutdownSentinel = "shutdown";

// Drives the resident service over one spool directory. Layout:
//   <spool>/<name>.json      incoming manifests (arrive by atomic rename)
//   <spool>/tmp/             producers stage here before renaming in
//   <spool>/claimed/         owned by the server while an event runs
//   <spool>/done/            manifest audit trail of completed events
//   <spool>/rejected/        malformed or duplicate manifests
//   <spool>/shutdown         sentinel: drain everything, then exit
//   <work>/events/<shard>/<event>/   one StageRunner work dir per event
//   <work>/serve_stats.json  the rolling snapshot
//
// A manifest is a JSON object {"event": ID, "input": DIR} with optional
// "priority_bytes" (admission priority under largest/smallest) and
// "deadline_soft_s"/"deadline_hard_s" per-event budget overrides.
// run() blocks until shutdown (sentinel, max_events, or idle_exit) and
// returns the final stats; record-level fan-out runs on config.pool.
class SpoolServer {
 public:
  SpoolServer(FileSystem& fs, ServeConfig config = {});

  Result<ServeStats, IoError> run(const std::filesystem::path& spool,
                                  const std::filesystem::path& work_root);

 private:
  struct ManifestJob {
    std::string manifest;  // file name inside claimed/
    std::string event;
    std::filesystem::path input_dir;
    std::uintmax_t priority_bytes = 0;
    double deadline_soft_s = -1;  // < 0 = inherit ServeConfig.runner
    double deadline_hard_s = -1;
  };

  // Parses and validates one claimed manifest; empty event on failure
  // with `error` describing why (for the rejected/ audit note).
  ManifestJob parse_manifest(const std::string& name, const std::string& text,
                             std::string& error) const;
  void process_event(const ManifestJob& job);
  void record_completion(const ManifestJob& job, const std::string& status,
                         const RunReport* report, double seconds);
  ServeStats snapshot_locked();  // caller holds stats_mu_
  void write_stats();

  FileSystem& fs_;
  ServeConfig cfg_;

  std::filesystem::path spool_, claimed_, rejected_, done_, work_root_;
  double started_at_ = 0;
  storage::BreakerCounters breaker_before_;

  std::mutex stats_mu_;
  ServeStats stats_;
  std::set<std::string> seen_events_;
  long long trajectory_stride_ = 1;
  std::atomic<long long> in_flight_{0};
  std::atomic<std::size_t> queue_depth_{0};
};

}  // namespace acx::pipeline
