#include "pipeline/report.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string_view>

#include "formats/component_set.hpp"
#include "pipeline/config.hpp"
#include "pipeline/reasons.hpp"

namespace acx::pipeline {

std::map<std::string, double> RecordOutcome::ok_stage_seconds() const {
  std::map<std::string, double> out;
  for (const StageAttempt& s : stages) {
    if (s.ok) out[s.stage] += s.seconds;
  }
  return out;
}

int RunReport::count_ok() const {
  int n = 0;
  for (const auto& r : records) {
    if (r.status == RecordOutcome::Status::kOk) ++n;
  }
  return n;
}

int RunReport::count_degraded() const {
  int n = 0;
  for (const auto& r : records) {
    if (r.status == RecordOutcome::Status::kOk && r.degraded) ++n;
  }
  return n;
}

int RunReport::count_quarantined() const {
  return static_cast<int>(records.size()) - count_ok();
}

long long RunReport::total_points() const {
  long long n = 0;
  for (const auto& r : records) n += r.points;
  return n;
}

const char* RunReport::status() const {
  if (!records.empty() && count_ok() == 0) return "quarantined";
  return count_degraded() > 0 ? "degraded" : "ok";
}

namespace {

// Strip the retry wrapper so reason comparisons see the family slug.
std::string_view unwrap_exhausted(std::string_view reason) {
  constexpr std::string_view kExhausted = "transient_exhausted.";
  if (reason.substr(0, kExhausted.size()) == kExhausted) {
    reason.remove_prefix(kExhausted.size());
  }
  return reason;
}

}  // namespace

int RunReport::deadline_soft_sheds() const {
  int n = 0;
  for (const auto& r : records) {
    for (const auto& s : r.shed) {
      if (unwrap_exhausted(s.reason) == "batch.deadline_soft") ++n;
    }
  }
  return n;
}

int RunReport::deadline_hard_stops() const {
  int n = 0;
  for (const auto& r : records) {
    if (r.status == RecordOutcome::Status::kQuarantined &&
        unwrap_exhausted(r.reason) == "batch.deadline_hard") {
      ++n;
    }
  }
  return n;
}

int RunReport::count_retries() const {
  int n = 0;
  for (const auto& r : records) n += r.retries;
  for (const auto& st : stations) n += st.retries;
  return n;
}

std::map<std::string, double> RunReport::stage_totals() const {
  std::map<std::string, double> totals;
  for (const auto& r : records) {
    for (const auto& s : r.stages) totals[s.stage] += s.seconds;
  }
  for (const auto& st : stations) {
    for (const auto& s : st.stages) totals[s.stage] += s.seconds;
  }
  return totals;
}

std::map<std::string, double> RunReport::stage_shares() const {
  std::map<std::string, double> shares = stage_totals();
  double sum = 0;
  for (const auto& [stage, seconds] : shares) sum += seconds;
  if (sum <= 0) {
    for (auto& [stage, share] : shares) share = 0;
    return shares;
  }
  for (auto& [stage, share] : shares) share /= sum;
  return shares;
}

std::map<std::string, StageProfile> RunReport::stage_profile() const {
  std::map<std::string, StageProfile> profile;
  const auto fold = [&profile](const std::vector<StageAttempt>& stages) {
    for (const auto& s : stages) {
      StageProfile& p = profile[s.stage];
      p.cache_hits += s.cache_hits;
      p.cache_misses += s.cache_misses;
      p.setup_seconds += s.setup_seconds;
      p.kernel_seconds += s.kernel_seconds;
    }
  };
  for (const auto& r : records) fold(r.stages);
  for (const auto& st : stations) fold(st.stages);
  return profile;
}

void RunReport::sort_records() {
  std::sort(records.begin(), records.end(),
            [](const RecordOutcome& a, const RecordOutcome& b) {
              return a.record < b.record;
            });
  for (RecordOutcome& r : records) {
    std::sort(r.outputs.begin(), r.outputs.end());
    std::sort(r.shed.begin(), r.shed.end(),
              [](const ShedStage& a, const ShedStage& b) {
                return a.stage < b.stage;
              });
  }
  std::sort(stations.begin(), stations.end(),
            [](const StationOutcome& a, const StationOutcome& b) {
              return a.station < b.station;
            });
  for (StationOutcome& st : stations) {
    std::sort(st.components.begin(), st.components.end());
    std::sort(st.checks.begin(), st.checks.end());
  }
}

namespace {

// Rebase `path` onto a placeholder when it lives under `dir`, so the
// canonical projection compares across work dirs.
std::string rebase(const std::string& path, const std::string& dir,
                   const char* placeholder) {
  if (!dir.empty() && path.rfind(dir, 0) == 0) {
    return placeholder + path.substr(dir.size());
  }
  return path;
}

}  // namespace

std::string RunReport::canonical_dump() const {
  RunReport sorted = *this;
  sorted.sort_records();

  Json root = Json::object();
  root.set("status", status());
  Json counts = Json::object();
  counts.set("input", static_cast<int>(records.size()));
  counts.set("ok", count_ok());
  counts.set("degraded", count_degraded());
  counts.set("quarantined", count_quarantined());
  counts.set("stations", static_cast<int>(stations.size()));
  root.set("counts", std::move(counts));

  Json recs = Json::array();
  for (const RecordOutcome& r : sorted.records) {
    Json jr = Json::object();
    jr.set("record", r.record);
    jr.set("input", rebase(r.input, input_dir, "<input>"));
    jr.set("status", r.status_string());
    if (r.status == RecordOutcome::Status::kOk) {
      jr.set("points", static_cast<double>(r.points));
      Json outs = Json::array();
      for (const std::string& o : r.outputs) {
        outs.push(Json(rebase(o, work_dir, "<work>")));
      }
      jr.set("outputs", std::move(outs));
      if (!r.shed.empty()) {
        Json shed = Json::array();
        for (const ShedStage& s : r.shed) {
          Json js = Json::object();
          js.set("stage", s.stage);
          js.set("reason", s.reason);
          shed.push(std::move(js));
        }
        jr.set("shed", std::move(shed));
      }
    } else {
      jr.set("reason", r.reason);
      jr.set("quarantine", rebase(r.quarantine, work_dir, "<work>"));
    }
    recs.push(std::move(jr));
  }
  root.set("records", std::move(recs));

  // v7 stations: the rollup minus timing. Which stations exist, which
  // components arrived, the station.* checks raised and the rotd
  // verdict are all interleaving-independent, so they belong to the
  // canonical projection the driver-equivalence tests diff.
  Json stats = Json::array();
  for (const StationOutcome& st : sorted.stations) {
    Json js = Json::object();
    js.set("station", st.station);
    Json comps = Json::array();
    for (const std::string& c : st.components) comps.push(Json(c));
    js.set("components", std::move(comps));
    js.set("ok", st.ok);
    js.set("quarantined", st.quarantined);
    if (!st.checks.empty()) {
      Json checks = Json::array();
      for (const std::string& c : st.checks) checks.push(Json(c));
      js.set("checks", std::move(checks));
    }
    js.set("rotd_status", st.rotd_status);
    if (!st.rotd_reason.empty()) js.set("rotd_reason", st.rotd_reason);
    if (!st.rotd_output.empty()) {
      js.set("rotd_output", rebase(st.rotd_output, work_dir, "<work>"));
    }
    stats.push(std::move(js));
  }
  root.set("stations", std::move(stats));
  return root.dump(2);
}

Json RunReport::to_json() const {
  Json root = Json::object();
  root.set("version", kVersion);
  root.set("input_dir", input_dir);
  root.set("work_dir", work_dir);
  root.set("driver", driver);
  root.set("threads", threads);
  root.set("status", status());
  if (speedup_vs_sequential > 0) {
    root.set("speedup_vs_sequential", speedup_vs_sequential);
  }
  root.set("total_seconds", total_seconds);

  // v6 robustness blocks — always present, zeroed when the run had no
  // deadline budget / no breaker in the filesystem stack.
  Json deadline = Json::object();
  deadline.set("soft_seconds", deadline_soft_seconds);
  deadline.set("hard_seconds", deadline_hard_seconds);
  deadline.set("soft_sheds", deadline_soft_sheds());
  deadline.set("hard_stops", deadline_hard_stops());
  root.set("deadline", std::move(deadline));

  Json breaker = Json::object();
  breaker.set("rejected_ops", static_cast<double>(breaker_rejected_ops));
  breaker.set("opens", breaker_opens);
  breaker.set("half_open_recoveries", breaker_half_open_recoveries);
  root.set("breaker", std::move(breaker));

  Json totals = Json::object();
  for (const auto& [stage, seconds] : stage_totals()) {
    totals.set(stage, seconds);
  }
  root.set("stage_totals", std::move(totals));

  Json shares = Json::object();
  for (const auto& [stage, share] : stage_shares()) {
    shares.set(stage, share);
  }
  root.set("stage_shares", std::move(shares));

  Json profile = Json::object();
  for (const auto& [stage, p] : stage_profile()) {
    Json jp = Json::object();
    jp.set("cache_hits", static_cast<double>(p.cache_hits));
    jp.set("cache_misses", static_cast<double>(p.cache_misses));
    jp.set("setup_seconds", p.setup_seconds);
    jp.set("kernel_seconds", p.kernel_seconds);
    profile.set(stage, std::move(jp));
  }
  root.set("stage_profile", std::move(profile));

  Json counts = Json::object();
  counts.set("input", static_cast<int>(records.size()));
  counts.set("ok", count_ok());
  counts.set("degraded", count_degraded());
  counts.set("quarantined", count_quarantined());
  counts.set("retries", count_retries());
  counts.set("stations", static_cast<int>(stations.size()));
  root.set("counts", std::move(counts));

  Json recs = Json::array();
  for (const auto& r : records) {
    Json jr = Json::object();
    jr.set("record", r.record);
    jr.set("input", r.input);
    jr.set("status", r.status_string());
    if (r.status == RecordOutcome::Status::kOk) {
      jr.set("output", r.output);
      jr.set("points", static_cast<double>(r.points));
      Json outs = Json::array();
      for (const std::string& o : r.outputs) outs.push(Json(o));
      jr.set("outputs", std::move(outs));
      if (!r.shed.empty()) {
        Json shed = Json::array();
        for (const ShedStage& s : r.shed) {
          Json js = Json::object();
          js.set("stage", s.stage);
          js.set("reason", s.reason);
          shed.push(std::move(js));
        }
        jr.set("shed", std::move(shed));
      }
    } else {
      jr.set("reason", r.reason);
      jr.set("quarantine", r.quarantine);
    }
    jr.set("retries", r.retries);
    jr.set("seconds", r.seconds);
    Json stages = Json::array();
    for (const auto& s : r.stages) {
      Json js = Json::object();
      js.set("stage", s.stage);
      js.set("attempts", s.attempts);
      js.set("ok", s.ok);
      if (!s.error.empty()) js.set("error", s.error);
      js.set("seconds", s.seconds);
      js.set("cache_hits", static_cast<double>(s.cache_hits));
      js.set("cache_misses", static_cast<double>(s.cache_misses));
      js.set("setup_seconds", s.setup_seconds);
      js.set("kernel_seconds", s.kernel_seconds);
      stages.push(std::move(js));
    }
    jr.set("stages", std::move(stages));
    recs.push(std::move(jr));
  }
  root.set("records", std::move(recs));

  // v7 stations block: component rollups plus the station-phase rotd
  // outcome with its own stage attempt groups.
  Json stats = Json::array();
  for (const auto& st : stations) {
    Json js = Json::object();
    js.set("station", st.station);
    Json comps = Json::array();
    for (const std::string& c : st.components) comps.push(Json(c));
    js.set("components", std::move(comps));
    js.set("ok", st.ok);
    js.set("quarantined", st.quarantined);
    if (!st.checks.empty()) {
      Json checks = Json::array();
      for (const std::string& c : st.checks) checks.push(Json(c));
      js.set("checks", std::move(checks));
    }
    js.set("rotd_status", st.rotd_status);
    if (!st.rotd_reason.empty()) js.set("rotd_reason", st.rotd_reason);
    if (!st.rotd_output.empty()) js.set("rotd_output", st.rotd_output);
    js.set("retries", st.retries);
    js.set("seconds", st.seconds);
    Json stages = Json::array();
    for (const auto& s : st.stages) {
      Json jst = Json::object();
      jst.set("stage", s.stage);
      jst.set("attempts", s.attempts);
      jst.set("ok", s.ok);
      if (!s.error.empty()) jst.set("error", s.error);
      jst.set("seconds", s.seconds);
      jst.set("cache_hits", static_cast<double>(s.cache_hits));
      jst.set("cache_misses", static_cast<double>(s.cache_misses));
      jst.set("setup_seconds", s.setup_seconds);
      jst.set("kernel_seconds", s.kernel_seconds);
      stages.push(std::move(jst));
    }
    js.set("stages", std::move(stages));
    stats.push(std::move(js));
  }
  root.set("stations", std::move(stats));
  return root;
}

namespace {

// One stages[] attempt-group array, shared by the record and station
// parsers. Returns an error message, empty on success; a missing or
// non-array stages field parses as no attempts (old reports).
std::string parse_stage_attempts(const Json& jr, const std::string& owner,
                                 std::vector<StageAttempt>& out) {
  const Json* stages = jr.find("stages");
  if (!stages || !stages->is_array()) return std::string();
  for (const Json& js : stages->items()) {
    StageAttempt s;
    s.stage = js.get_string("stage");
    s.attempts = static_cast<int>(js.get_number("attempts", 1));
    const Json* ok = js.find("ok");
    s.ok = ok && ok->is_bool() && ok->boolean();
    s.error = js.get_string("error");
    s.seconds = js.get_number("seconds", 0);
    if (s.seconds < 0) {
      return owner + " stage '" + s.stage + "' has negative seconds";
    }
    s.cache_hits = static_cast<long long>(js.get_number("cache_hits", 0));
    s.cache_misses = static_cast<long long>(js.get_number("cache_misses", 0));
    s.setup_seconds = js.get_number("setup_seconds", 0);
    s.kernel_seconds = js.get_number("kernel_seconds", 0);
    if (s.cache_hits < 0 || s.cache_misses < 0 || s.setup_seconds < 0 ||
        s.kernel_seconds < 0) {
      return owner + " stage '" + s.stage + "' has a negative profiling field";
    }
    out.push_back(std::move(s));
  }
  return std::string();
}

}  // namespace

Result<RunReport, std::string> RunReport::from_json_text(
    const std::string& text) {
  auto parsed = Json::parse(text);
  if (!parsed.ok()) {
    const auto& e = parsed.error();
    return "run_report.json is not valid JSON at byte " +
           std::to_string(e.offset) + ": " + e.detail;
  }
  const Json root = std::move(parsed).take();
  if (!root.is_object()) return std::string("run report root is not an object");
  if (root.get_number("version", -1) != kVersion) {
    return std::string("unsupported run report version");
  }

  RunReport report;
  report.input_dir = root.get_string("input_dir");
  report.work_dir = root.get_string("work_dir");
  report.driver = root.get_string("driver");
  if (!parse_driver(report.driver)) {
    return "run report driver '" + report.driver + "' is not a known driver";
  }
  report.threads = static_cast<int>(root.get_number("threads", 0));
  if (report.threads < 1) {
    return std::string("run report threads must be >= 1");
  }
  if (const Json* speedup = root.find("speedup_vs_sequential")) {
    if (!speedup->is_number() || !std::isfinite(speedup->number()) ||
        speedup->number() <= 0) {
      return std::string(
          "run report speedup_vs_sequential is not a positive number");
    }
    report.speedup_vs_sequential = speedup->number();
  }
  report.total_seconds = root.get_number("total_seconds", 0);
  if (report.total_seconds < 0) {
    return std::string("run report total_seconds is negative");
  }

  const Json* recs = root.find("records");
  if (!recs || !recs->is_array()) {
    return std::string("run report has no records array");
  }
  for (const Json& jr : recs->items()) {
    if (!jr.is_object()) return std::string("record entry is not an object");
    RecordOutcome r;
    r.record = jr.get_string("record");
    r.input = jr.get_string("input");
    const std::string status = jr.get_string("status");
    if (status == "ok") {
      r.status = RecordOutcome::Status::kOk;
    } else if (status == "degraded") {
      r.status = RecordOutcome::Status::kOk;
      r.degraded = true;
    } else if (status == "quarantined") {
      r.status = RecordOutcome::Status::kQuarantined;
    } else {
      return "record '" + r.record + "' has bad status '" + status + "'";
    }
    r.output = jr.get_string("output");
    r.points = static_cast<long long>(jr.get_number("points", 0));
    if (r.points < 0) {
      return "record '" + r.record + "' has negative points";
    }
    if (const Json* shed = jr.find("shed")) {
      if (!shed->is_array()) {
        return "record '" + r.record + "' shed is not an array";
      }
      for (const Json& js : shed->items()) {
        if (!js.is_object()) {
          return "record '" + r.record + "' shed entry is not an object";
        }
        ShedStage s;
        s.stage = js.get_string("stage");
        s.reason = js.get_string("reason");
        if (s.stage.empty() || s.reason.empty()) {
          return "record '" + r.record + "' shed entry missing stage or reason";
        }
        r.shed.push_back(std::move(s));
      }
    }
    // A degraded record is one that shed stages; the flag and the shed
    // array must agree (quarantined records carry neither).
    if (r.status == RecordOutcome::Status::kOk && r.degraded == r.shed.empty()) {
      return "record '" + r.record + "' degraded flag disagrees with shed list";
    }
    if (r.status == RecordOutcome::Status::kQuarantined &&
        (r.degraded || !r.shed.empty())) {
      return "quarantined record '" + r.record + "' carries shed stages";
    }
    if (const Json* outs = jr.find("outputs")) {
      if (!outs->is_array()) {
        return "record '" + r.record + "' outputs is not an array";
      }
      for (const Json& jo : outs->items()) {
        if (!jo.is_string()) {
          return "record '" + r.record + "' outputs entry is not a string";
        }
        r.outputs.push_back(jo.str());
      }
    }
    r.reason = jr.get_string("reason");
    r.quarantine = jr.get_string("quarantine");
    r.retries = static_cast<int>(jr.get_number("retries", 0));
    r.seconds = jr.get_number("seconds", 0);
    if (std::string err =
            parse_stage_attempts(jr, "record '" + r.record + "'", r.stages);
        !err.empty()) {
      return err;
    }
    if (r.record.empty()) return std::string("record entry missing id");
    report.records.push_back(std::move(r));
  }

  // v7 stations array: parse, then cross-check against the grouping the
  // record ids derive.
  const Json* stats = root.find("stations");
  if (!stats || !stats->is_array()) {
    return std::string("run report has no stations array");
  }
  for (const Json& js : stats->items()) {
    if (!js.is_object()) return std::string("station entry is not an object");
    StationOutcome st;
    st.station = js.get_string("station");
    if (st.station.empty()) return std::string("station entry missing name");
    const Json* comps = js.find("components");
    if (!comps || !comps->is_array()) {
      return "station '" + st.station + "' has no components array";
    }
    for (const Json& jc : comps->items()) {
      if (!jc.is_string()) {
        return "station '" + st.station + "' components entry is not a string";
      }
      st.components.push_back(jc.str());
    }
    st.ok = static_cast<int>(js.get_number("ok", -1));
    st.quarantined = static_cast<int>(js.get_number("quarantined", -1));
    if (st.ok < 0 || st.quarantined < 0) {
      return "station '" + st.station + "' counters are negative or missing";
    }
    if (const Json* checks = js.find("checks")) {
      if (!checks->is_array()) {
        return "station '" + st.station + "' checks is not an array";
      }
      for (const Json& jc : checks->items()) {
        if (!jc.is_string() || jc.str().rfind("station.", 0) != 0 ||
            !is_registered_reason(jc.str())) {
          return "station '" + st.station + "' carries an unregistered check";
        }
        st.checks.push_back(jc.str());
      }
    }
    st.rotd_status = js.get_string("rotd_status");
    st.rotd_reason = js.get_string("rotd_reason");
    st.rotd_output = js.get_string("rotd_output");
    if (st.rotd_status == "ok") {
      if (st.rotd_output.empty() || !st.rotd_reason.empty()) {
        return "station '" + st.station + "' rotd ok entry is inconsistent";
      }
    } else if (st.rotd_status == "skipped" || st.rotd_status == "failed") {
      if (st.rotd_reason.empty() || !is_registered_reason(st.rotd_reason) ||
          !st.rotd_output.empty()) {
        return "station '" + st.station + "' rotd " + st.rotd_status +
               " entry is inconsistent";
      }
    } else {
      return "station '" + st.station + "' has bad rotd_status '" +
             st.rotd_status + "'";
    }
    st.retries = static_cast<int>(js.get_number("retries", 0));
    st.seconds = js.get_number("seconds", 0);
    if (st.retries < 0 || st.seconds < 0) {
      return "station '" + st.station + "' has negative retries or seconds";
    }
    if (std::string err = parse_stage_attempts(
            js, "station '" + st.station + "'", st.stages);
        !err.empty()) {
      return err;
    }
    report.stations.push_back(std::move(st));
  }

  // The stations array must be exactly the grouping the record ids
  // derive (formats::split_record_id), with matching member rollups.
  {
    struct ExpectedStation {
      std::vector<std::string> components;
      int ok = 0;
      int quarantined = 0;
    };
    std::map<std::string, ExpectedStation> expected;
    for (const RecordOutcome& r : report.records) {
      const auto [name, comp] = formats::split_record_id(r.record);
      ExpectedStation& e = expected[name];
      e.components.push_back(comp);
      if (r.status == RecordOutcome::Status::kOk) {
        ++e.ok;
      } else {
        ++e.quarantined;
      }
    }
    if (report.stations.size() != expected.size()) {
      return std::string("stations array disagrees with the record grouping");
    }
    std::set<std::string> seen_station;
    for (const StationOutcome& st : report.stations) {
      if (!seen_station.insert(st.station).second) {
        return "duplicate station '" + st.station + "'";
      }
      auto it = expected.find(st.station);
      if (it == expected.end()) {
        return "station '" + st.station + "' matches no record id prefix";
      }
      ExpectedStation e = it->second;
      std::sort(e.components.begin(), e.components.end());
      std::vector<std::string> got = st.components;
      std::sort(got.begin(), got.end());
      if (got != e.components || st.ok != e.ok ||
          st.quarantined != e.quarantined) {
        return "station '" + st.station +
               "' rollup disagrees with the records array";
      }
      // A published .rotd needs both horizontal members to have
      // published — anything else is a doctored report.
      if (st.rotd_status == "ok") {
        bool l_ok = false;
        bool t_ok = false;
        for (const RecordOutcome& r : report.records) {
          if (r.status != RecordOutcome::Status::kOk) continue;
          const auto [name, comp] = formats::split_record_id(r.record);
          if (name != st.station) continue;
          if (comp == "l") l_ok = true;
          if (comp == "t") t_ok = true;
        }
        if (!l_ok || !t_ok) {
          return "station '" + st.station +
                 "' reports rotd ok without both horizontals";
        }
      }
    }
  }

  // Cross-check the counts block against the records array.
  if (const Json* counts = root.find("counts")) {
    if (static_cast<int>(counts->get_number("input", -1)) !=
            static_cast<int>(report.records.size()) ||
        static_cast<int>(counts->get_number("ok", -1)) != report.count_ok() ||
        static_cast<int>(counts->get_number("degraded", -1)) !=
            report.count_degraded() ||
        static_cast<int>(counts->get_number("quarantined", -1)) !=
            report.count_quarantined() ||
        static_cast<int>(counts->get_number("stations", -1)) !=
            static_cast<int>(report.stations.size())) {
      return std::string("run report counts disagree with records array");
    }
  } else {
    return std::string("run report has no counts block");
  }

  // The event-level status must be the one the records derive.
  if (root.get_string("status") != report.status()) {
    return std::string("run report status disagrees with records array");
  }

  // v6 deadline block: budget plus derived soft-shed/hard-stop counters.
  const Json* deadline = root.find("deadline");
  if (!deadline || !deadline->is_object()) {
    return std::string("run report has no deadline block");
  }
  report.deadline_soft_seconds = deadline->get_number("soft_seconds", -1);
  report.deadline_hard_seconds = deadline->get_number("hard_seconds", -1);
  if (report.deadline_soft_seconds < 0 || report.deadline_hard_seconds < 0) {
    return std::string("run report deadline budget is negative or missing");
  }
  if (static_cast<int>(deadline->get_number("soft_sheds", -1)) !=
          report.deadline_soft_sheds() ||
      static_cast<int>(deadline->get_number("hard_stops", -1)) !=
          report.deadline_hard_stops()) {
    return std::string(
        "run report deadline counters disagree with records array");
  }

  // v6 breaker block: non-negative counter deltas.
  const Json* breaker = root.find("breaker");
  if (!breaker || !breaker->is_object()) {
    return std::string("run report has no breaker block");
  }
  report.breaker_rejected_ops =
      static_cast<long long>(breaker->get_number("rejected_ops", -1));
  report.breaker_opens = static_cast<int>(breaker->get_number("opens", -1));
  report.breaker_half_open_recoveries =
      static_cast<int>(breaker->get_number("half_open_recoveries", -1));
  if (report.breaker_rejected_ops < 0 || report.breaker_opens < 0 ||
      report.breaker_half_open_recoveries < 0) {
    return std::string("run report breaker counters are negative or missing");
  }

  // The stage_totals block must agree with the per-stage seconds in the
  // records array (within float-formatting slack).
  const Json* totals = root.find("stage_totals");
  if (!totals || !totals->is_object()) {
    return std::string("run report has no stage_totals block");
  }
  const auto computed = report.stage_totals();
  for (const auto& [stage, seconds] : computed) {
    const Json* entry = totals->find(stage);
    if (!entry || !entry->is_number() ||
        std::fabs(entry->number() - seconds) > 1e-6 + 1e-6 * seconds) {
      return "stage_totals entry for '" + stage +
             "' disagrees with the records array";
    }
  }
  if (totals->fields().size() != computed.size()) {
    return std::string("stage_totals names a stage the records array lacks");
  }

  // Same for the derived stage_shares block.
  const Json* shares = root.find("stage_shares");
  if (!shares || !shares->is_object()) {
    return std::string("run report has no stage_shares block");
  }
  const auto computed_shares = report.stage_shares();
  for (const auto& [stage, share] : computed_shares) {
    const Json* entry = shares->find(stage);
    if (!entry || !entry->is_number() ||
        std::fabs(entry->number() - share) > 1e-6) {
      return "stage_shares entry for '" + stage +
             "' disagrees with the records array";
    }
  }
  if (shares->fields().size() != computed_shares.size()) {
    return std::string("stage_shares names a stage the records array lacks");
  }

  // The derived stage_profile block must agree with the per-stage
  // profiling fields in the records array (counts exactly, seconds
  // within float-formatting slack).
  const Json* profile = root.find("stage_profile");
  if (!profile || !profile->is_object()) {
    return std::string("run report has no stage_profile block");
  }
  const auto computed_profile = report.stage_profile();
  for (const auto& [stage, p] : computed_profile) {
    const Json* entry = profile->find(stage);
    if (!entry || !entry->is_object()) {
      return "stage_profile entry for '" + stage + "' is missing";
    }
    const bool counts_match =
        static_cast<long long>(entry->get_number("cache_hits", -1)) ==
            p.cache_hits &&
        static_cast<long long>(entry->get_number("cache_misses", -1)) ==
            p.cache_misses;
    const bool seconds_match =
        std::fabs(entry->get_number("setup_seconds", -1) - p.setup_seconds) <=
            1e-6 + 1e-6 * p.setup_seconds &&
        std::fabs(entry->get_number("kernel_seconds", -1) - p.kernel_seconds) <=
            1e-6 + 1e-6 * p.kernel_seconds;
    if (!counts_match || !seconds_match) {
      return "stage_profile entry for '" + stage +
             "' disagrees with the records array";
    }
  }
  if (profile->fields().size() != computed_profile.size()) {
    return std::string("stage_profile names a stage the records array lacks");
  }

  // An ok record's outputs array, when present, must include the
  // primary output.
  for (const RecordOutcome& r : report.records) {
    if (r.status != RecordOutcome::Status::kOk || r.outputs.empty()) continue;
    bool found = false;
    for (const std::string& o : r.outputs) found = found || o == r.output;
    if (!found) {
      return "record '" + r.record + "' outputs array omits its output";
    }
  }
  return report;
}

}  // namespace acx::pipeline
