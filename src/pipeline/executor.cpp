#include "pipeline/executor.hpp"

#include <algorithm>
#include <chrono>

#include "util/perf.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

StageError from_io(const IoError& e) {
  return StageError{e.klass, std::string("io.") + slug(e.code), e.to_string()};
}

}  // namespace

RecordExecutor::RecordExecutor(FileSystem& fs, const RunnerConfig& cfg)
    : fs_(fs), cfg_(cfg) {}

void RecordExecutor::instantiate(const StageGraph& graph,
                                 bool prune_redundant) {
  plan_.clear();
  for (const StageNode* node : graph.plan(prune_redundant)) {
    plan_.push_back({node, node->make()});
  }
}

RecordSlot RecordExecutor::make_slot(const stdfs::path& input,
                                     const stdfs::path& work_dir) const {
  RecordSlot slot;
  slot.outcome.record = input.stem().string();
  slot.outcome.input = input.string();
  slot.ctx.fs = &fs_;
  slot.ctx.input_path = input;
  slot.ctx.scratch_dir = work_dir / "scratch" / slot.outcome.record;
  slot.ctx.out_dir = work_dir / "out";
  slot.ctx.record_id = slot.outcome.record;
  slot.input_bytes = fs_.file_size(input);
  return slot;
}

Result<Unit, StageError> RecordExecutor::run_stage_once(Stage& stage,
                                                        RecordContext& ctx) {
  int invocation = 0;
  {
    std::lock_guard<std::mutex> lock(invocations_mu_);
    invocation = ++invocations_[stage.name()];
  }
  const StageFault& f = cfg_.stage_fault;
  if (!f.stage.empty() && f.stage == stage.name() &&
      invocation == f.kill_on_invocation) {
    return StageError{
        f.transient ? ErrorClass::kTransient : ErrorClass::kPoison,
        std::string("stage_crash.") + stage.name(),
        "injected stage fault on invocation " + std::to_string(invocation)};
  }
  return stage.run(ctx);
}

bool RecordExecutor::run_step(
    const std::string& name, RecordOutcome& outcome, StageError& failure,
    const std::function<Result<Unit, StageError>()>& fn) {
  int attempts = 0;
  // A stage runs start-to-finish on this thread, so the delta of the
  // thread-local perf counters across the retry loop is exactly the
  // cache traffic and setup/kernel time this stage incurred.
  const perf::Counters before = perf::local();
  const auto started = std::chrono::steady_clock::now();
  auto r = run_with_retry<Unit, StageError>(
      cfg_.retry, cfg_.sleep,
      [](const StageError& e) { return e.klass; }, fn, &attempts);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  const perf::Counters after = perf::local();
  StageAttempt attempt;
  attempt.stage = name;
  attempt.attempts = attempts;
  attempt.ok = r.ok();
  attempt.seconds = elapsed.count();
  attempt.cache_hits =
      static_cast<long long>(after.cache_hits - before.cache_hits);
  attempt.cache_misses =
      static_cast<long long>(after.cache_misses - before.cache_misses);
  attempt.setup_seconds = after.setup_seconds - before.setup_seconds;
  attempt.kernel_seconds = after.kernel_seconds - before.kernel_seconds;
  if (!r.ok()) {
    failure = r.error();
    attempt.error = failure.reason;
  }
  outcome.retries += attempts - 1;
  outcome.seconds += attempt.seconds;
  outcome.stages.push_back(std::move(attempt));
  return r.ok();
}

void RecordExecutor::setup_scratch(RecordSlot& slot) {
  const bool ok = run_step("scratch_setup", slot.outcome, slot.failure, [&] {
    (void)fs_.remove_all(slot.ctx.scratch_dir);
    auto made = fs_.create_directories(slot.ctx.scratch_dir);
    if (!made.ok()) {
      return Result<Unit, StageError>(from_io(made.error()));
    }
    return Result<Unit, StageError>(Unit{});
  });
  if (!ok) slot.failed = true;
}

void RecordExecutor::run_stage(RecordSlot& slot, const PlannedStage& ps) {
  if (slot.failed) return;
  if (!run_step(ps.node->name, slot.outcome, slot.failure,
                [&] { return run_stage_once(*ps.stage, slot.ctx); })) {
    slot.failed = true;
  }
}

void RecordExecutor::quarantine_record(const stdfs::path& quarantine_dir,
                                       RecordSlot& slot) {
  RecordOutcome& outcome = slot.outcome;
  outcome.status = RecordOutcome::Status::kQuarantined;
  outcome.reason = slot.failure.klass == ErrorClass::kPoison
                       ? slot.failure.reason
                       : "transient_exhausted." + slot.failure.reason;

  // Preserve the original bytes for post-mortem. If the input itself is
  // unreadable, quarantine a marker describing why.
  std::string content = slot.ctx.raw;
  if (content.empty()) {
    auto rd = fs_.read_file(slot.ctx.input_path);
    content = rd.ok() ? std::move(rd).take()
                      : "<input unreadable: " + rd.error().to_string() + ">\n";
  }
  const stdfs::path dest =
      quarantine_dir / (outcome.record + "." + outcome.reason);
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] { return atomic_write_file(fs_, dest, content); });
  if (wrote.ok()) outcome.quarantine = dest.string();
}

void RecordExecutor::finalize(RecordSlot& slot, const stdfs::path& work_dir) {
  if (!slot.failed) {
    slot.outcome.status = RecordOutcome::Status::kOk;
    slot.outcome.output = slot.ctx.output_path.string();
    for (const stdfs::path* p : {&slot.ctx.output_path, &slot.ctx.fourier_path,
                                 &slot.ctx.response_path}) {
      if (!p->empty()) slot.outcome.outputs.push_back(p->string());
    }
    // Byte-stable reports regardless of stage order: outputs are listed
    // alphabetically (.f, .r, .v2), not in publication order.
    std::sort(slot.outcome.outputs.begin(), slot.outcome.outputs.end());
  } else {
    // Earlier stages may already have published spectra into out/; a
    // quarantined record must leave no outputs behind, or the validator
    // (rightly) flags them as unclaimed.
    for (const stdfs::path* p : {&slot.ctx.output_path, &slot.ctx.fourier_path,
                                 &slot.ctx.response_path}) {
      if (!p->empty()) (void)fs_.remove_all(*p);
    }
    quarantine_record(work_dir / "quarantine", slot);
  }

  // Scratch is per-record; drop it either way (best effort — leftovers
  // are caught by the validator, not silently tolerated).
  (void)fs_.remove_all(slot.ctx.scratch_dir);
  slot.processed = true;
}

void RecordExecutor::run_record(RecordSlot& slot, const stdfs::path& work_dir) {
  setup_scratch(slot);
  for (const PlannedStage& ps : plan_) run_stage(slot, ps);
  finalize(slot, work_dir);
}

}  // namespace acx::pipeline
