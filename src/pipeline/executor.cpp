#include "pipeline/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/perf.hpp"
#include "util/rng.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

StageError from_io(const IoError& e) {
  // reason_slug keeps the family split: breaker rejections surface as
  // storage.circuit_open, everything else as io.<code>.
  return StageError{e.klass, reason_slug(e), e.to_string()};
}

// Failures the storage layer (filesystem, latency shim, breaker) caused,
// as opposed to the record's own data being bad. Only these are
// forgivable on sheddable stages — numerical poison still quarantines.
bool is_storage_reason(const std::string& reason) {
  return reason.rfind("io.", 0) == 0 || reason.rfind("storage.", 0) == 0;
}

}  // namespace

RecordExecutor::RecordExecutor(FileSystem& fs, const RunnerConfig& cfg)
    : fs_(fs), cfg_(cfg) {}

void RecordExecutor::instantiate(const StageGraph& graph,
                                 bool prune_redundant) {
  plan_.clear();
  for (const StageNode* node : graph.plan(prune_redundant)) {
    plan_.push_back({node, node->make()});
  }
  station_plan_.clear();
  for (const StageNode* node : graph.station_plan(prune_redundant)) {
    station_plan_.push_back({node, node->make_station()});
  }
}

RecordSlot RecordExecutor::make_slot(const stdfs::path& input,
                                     const stdfs::path& work_dir) const {
  RecordSlot slot;
  slot.outcome.record = input.stem().string();
  slot.outcome.input = input.string();
  slot.ctx.fs = &fs_;
  slot.ctx.input_path = input;
  slot.ctx.scratch_dir = work_dir / "scratch" / slot.outcome.record;
  slot.ctx.out_dir = work_dir / "out";
  slot.ctx.record_id = slot.outcome.record;
  slot.input_bytes = fs_.file_size(input);
  return slot;
}

namespace {

// Fault-injection gate shared by the record and station paths: counts
// the invocation under the lock, and when it matches the configured
// fault either kills the process or manufactures the stage_crash error.
Result<Unit, StageError> injected_fault_or(
    const StageFault& f, std::mutex& mu, std::map<std::string, int>& counters,
    const char* name, const std::function<Result<Unit, StageError>()>& run) {
  int invocation = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    invocation = ++counters[name];
  }
  if (!f.stage.empty() && f.stage == name &&
      invocation == f.kill_on_invocation) {
    // Whole-process death (power loss / OOM-kill model): no destructors,
    // no report — exactly the mid-batch crash the resume path recovers
    // from. 137 mirrors a SIGKILLed exit status.
    if (f.kill_process) std::_Exit(137);
    return StageError{
        f.transient ? ErrorClass::kTransient : ErrorClass::kPoison,
        std::string("stage_crash.") + name,
        "injected stage fault on invocation " + std::to_string(invocation)};
  }
  return run();
}

}  // namespace

Result<Unit, StageError> RecordExecutor::run_stage_once(Stage& stage,
                                                        RecordContext& ctx) {
  return injected_fault_or(cfg_.stage_fault, invocations_mu_, invocations_,
                           stage.name(), [&] { return stage.run(ctx); });
}

Result<Unit, StageError> RecordExecutor::run_station_once(
    StationStage& stage, StationContext& ctx) {
  return injected_fault_or(cfg_.stage_fault, invocations_mu_, invocations_,
                           stage.name(), [&] { return stage.run(ctx); });
}

bool RecordExecutor::run_step(
    const std::string& name, const std::string& key,
    std::vector<StageAttempt>& stages, int& retries, double& seconds,
    StageError& failure, const std::function<Result<Unit, StageError>()>& fn) {
  int attempts = 0;
  // A stage runs start-to-finish on this thread, so the delta of the
  // thread-local perf counters across the retry loop is exactly the
  // cache traffic and setup/kernel time this stage incurred.
  const perf::Counters before = perf::local();
  const auto started = std::chrono::steady_clock::now();
  // Jitter salt: stable per (record-or-station, stage) regardless of
  // scheduling, so a fixed jitter_seed reproduces every sleep while
  // concurrent slots retrying the same stage stay decorrelated.
  const std::uint64_t salt = fnv1a64(key) ^ fnv1a64(name);
  RetryBudgetFn budget;
  if (deadline_ && deadline_->config().hard_seconds > 0) {
    budget = [this](int backoff_ms) {
      return backoff_ms < deadline_->remaining_hard_ms();
    };
  }
  auto r = run_with_retry<Unit, StageError>(
      cfg_.retry, cfg_.sleep,
      [](const StageError& e) { return e.klass; }, fn, &attempts, salt,
      budget);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  const perf::Counters after = perf::local();
  StageAttempt attempt;
  attempt.stage = name;
  attempt.attempts = attempts;
  attempt.ok = r.ok();
  attempt.seconds = elapsed.count();
  attempt.cache_hits =
      static_cast<long long>(after.cache_hits - before.cache_hits);
  attempt.cache_misses =
      static_cast<long long>(after.cache_misses - before.cache_misses);
  attempt.setup_seconds = after.setup_seconds - before.setup_seconds;
  attempt.kernel_seconds = after.kernel_seconds - before.kernel_seconds;
  if (!r.ok()) {
    failure = r.error();
    attempt.error = failure.reason;
  }
  retries += attempts - 1;
  seconds += attempt.seconds;
  stages.push_back(std::move(attempt));
  return r.ok();
}

bool RecordExecutor::run_step(
    const std::string& name, RecordOutcome& outcome, StageError& failure,
    const std::function<Result<Unit, StageError>()>& fn) {
  return run_step(name, outcome.record, outcome.stages, outcome.retries,
                  outcome.seconds, failure, fn);
}

void RecordExecutor::setup_scratch(RecordSlot& slot) {
  // A slot the station pre-scan already quarantined skips the whole
  // chain: no scratch dir, no attempts — finalize() quarantines it with
  // the pre-scan's station.* reason.
  if (slot.failed) return;
  const bool ok = run_step("scratch_setup", slot.outcome, slot.failure, [&] {
    (void)fs_.remove_all(slot.ctx.scratch_dir);
    auto made = fs_.create_directories(slot.ctx.scratch_dir);
    if (!made.ok()) {
      return Result<Unit, StageError>(from_io(made.error()));
    }
    return Result<Unit, StageError>(Unit{});
  });
  if (!ok) slot.failed = true;
}

void RecordExecutor::shed_stage(RecordSlot& slot, const PlannedStage& ps,
                                std::string reason) {
  slot.outcome.degraded = true;
  slot.outcome.shed.push_back({ps.node->name, std::move(reason)});
  // Scrub anything the stage may have partially published into out/, so
  // the report's outputs array (and the validator's inventory) only see
  // what actually survived.
  stdfs::path* out = nullptr;
  if (ps.node->name == "fourier") out = &slot.ctx.fourier_path;
  if (ps.node->name == "response") out = &slot.ctx.response_path;
  if (out && !out->empty()) {
    (void)fs_.remove_all(*out);
    out->clear();
  }
}

void RecordExecutor::run_stage(RecordSlot& slot, const PlannedStage& ps) {
  if (slot.failed) return;
  // Hard deadline: no further work on any stage. The record quarantines
  // as batch.deadline_hard; the event finalizes with what completed.
  if (deadline_ && deadline_->hard_expired()) {
    StageAttempt attempt;
    attempt.stage = ps.node->name;
    attempt.attempts = 0;
    attempt.ok = false;
    attempt.error = "batch.deadline_hard";
    slot.outcome.stages.push_back(std::move(attempt));
    slot.failure = StageError{ErrorClass::kPoison, "batch.deadline_hard",
                              "hard deadline expired before stage '" +
                                  ps.node->name + "'"};
    slot.failed = true;
    return;
  }
  // Soft deadline: skip the non-essential enrichments outright; the
  // record publishes as degraded instead of blowing the budget.
  if (ps.node->sheddable && deadline_ && deadline_->soft_expired()) {
    shed_stage(slot, ps, "batch.deadline_soft");
    return;
  }
  if (!run_step(ps.node->name, slot.outcome, slot.failure,
                [&] { return run_stage_once(*ps.stage, slot.ctx); })) {
    // A sheddable stage lost to the storage layer (flaky backend, open
    // breaker) is forgiven: shed it and keep the record alive. Its own
    // data being bad (numerical poison) still quarantines.
    if (ps.node->sheddable && is_storage_reason(slot.failure.reason)) {
      shed_stage(slot, ps,
                 slot.failure.klass == ErrorClass::kPoison
                     ? slot.failure.reason
                     : "transient_exhausted." + slot.failure.reason);
      return;
    }
    slot.failed = true;
  }
}

void RecordExecutor::quarantine_record(const stdfs::path& quarantine_dir,
                                       RecordSlot& slot) {
  RecordOutcome& outcome = slot.outcome;
  outcome.status = RecordOutcome::Status::kQuarantined;
  outcome.reason = slot.failure.klass == ErrorClass::kPoison
                       ? slot.failure.reason
                       : "transient_exhausted." + slot.failure.reason;

  // Preserve the original bytes for post-mortem. If the input itself is
  // unreadable, quarantine a marker describing why.
  std::string content = slot.ctx.raw;
  if (content.empty()) {
    auto rd = fs_.read_file(slot.ctx.input_path);
    content = rd.ok() ? std::move(rd).take()
                      : "<input unreadable: " + rd.error().to_string() + ">\n";
  }
  const stdfs::path dest =
      quarantine_dir / (outcome.record + "." + outcome.reason);
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] { return atomic_write_file(fs_, dest, content); });
  if (wrote.ok()) outcome.quarantine = dest.string();
}

void RecordExecutor::finalize(RecordSlot& slot, const stdfs::path& work_dir) {
  if (!slot.failed) {
    slot.outcome.status = RecordOutcome::Status::kOk;
    slot.outcome.output = slot.ctx.output_path.string();
    slot.outcome.points =
        static_cast<long long>(slot.ctx.record.samples.size());
    for (const stdfs::path* p : {&slot.ctx.output_path, &slot.ctx.fourier_path,
                                 &slot.ctx.response_path}) {
      if (!p->empty()) slot.outcome.outputs.push_back(p->string());
    }
    // Byte-stable reports regardless of stage order: outputs are listed
    // alphabetically (.f, .r, .v2), not in publication order.
    std::sort(slot.outcome.outputs.begin(), slot.outcome.outputs.end());
  } else {
    // Earlier stages may already have published spectra into out/; a
    // quarantined record must leave no outputs behind, or the validator
    // (rightly) flags them as unclaimed.
    for (const stdfs::path* p : {&slot.ctx.output_path, &slot.ctx.fourier_path,
                                 &slot.ctx.response_path}) {
      if (!p->empty()) (void)fs_.remove_all(*p);
    }
    quarantine_record(work_dir / "quarantine", slot);
  }

  // Scratch is per-record; drop it either way (best effort — leftovers
  // are caught by the validator, not silently tolerated).
  (void)fs_.remove_all(slot.ctx.scratch_dir);
  slot.processed = true;
}

void RecordExecutor::run_record(RecordSlot& slot, const stdfs::path& work_dir) {
  setup_scratch(slot);
  for (const PlannedStage& ps : plan_) run_stage(slot, ps);
  finalize(slot, work_dir);
}

void RecordExecutor::run_station(StationSlot& slot) {
  // A graph without station stages has no verdict to settle — the slot
  // keeps whatever status the runner seeded (skipped).
  if (station_plan_.empty()) return;
  for (const PlannedStationStage& ps : station_plan_) {
    if (slot.failed) break;
    // Hard deadline: the station phase stops where it stands, exactly
    // like a record mid-chain.
    if (deadline_ && deadline_->hard_expired()) {
      StageAttempt attempt;
      attempt.stage = ps.node->name;
      attempt.attempts = 0;
      attempt.ok = false;
      attempt.error = "batch.deadline_hard";
      slot.outcome.stages.push_back(std::move(attempt));
      slot.failure = StageError{ErrorClass::kPoison, "batch.deadline_hard",
                                "hard deadline expired before stage '" +
                                    ps.node->name + "'"};
      slot.failed = true;
      break;
    }
    if (!run_step(ps.node->name, slot.outcome.station, slot.outcome.stages,
                  slot.outcome.retries, slot.outcome.seconds, slot.failure,
                  [&] { return run_station_once(*ps.stage, slot.ctx); })) {
      slot.failed = true;
    }
  }
  if (!slot.failed) {
    slot.outcome.rotd_status = "ok";
    slot.outcome.rotd_output = slot.ctx.rotd_path.string();
  } else {
    slot.outcome.rotd_status = "failed";
    slot.outcome.rotd_reason =
        slot.failure.klass == ErrorClass::kPoison
            ? slot.failure.reason
            : "transient_exhausted." + slot.failure.reason;
    // The rotd stage publishes atomically on success only, but scrub
    // defensively: a failed station must leave no station output behind.
    if (!slot.ctx.rotd_path.empty()) {
      (void)fs_.remove_all(slot.ctx.rotd_path);
      slot.ctx.rotd_path.clear();
    }
  }
}

}  // namespace acx::pipeline
