#include "pipeline/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <thread>

#include "formats/component_set.hpp"
#include "formats/v1.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/scheduler.hpp"
#include "util/work_pool.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

StageRunner::StageRunner(FileSystem& fs, RunnerConfig config)
    : fs_(fs), cfg_(std::move(config)) {
  if (!cfg_.sleep) {
    cfg_.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

Result<RunReport, IoError> StageRunner::run_event(const stdfs::path& input_dir,
                                                  const stdfs::path& work_dir) {
  const auto run_started = std::chrono::steady_clock::now();
  // The reported team size: the pool driver's is the shared pool's real
  // worker count when one is wired in (the resident service), otherwise
  // the transient pool it will spin up.
  int threads = 1;
  if (cfg_.driver == Driver::kPool && cfg_.pool) {
    threads = cfg_.pool->thread_count();
  } else if (is_parallel(cfg_.driver)) {
    threads = resolve_threads(cfg_.threads);
  }

  RunReport report;
  report.input_dir = input_dir.string();
  report.work_dir = work_dir.string();
  report.driver = to_string(cfg_.driver);
  report.threads = threads;

  for (const char* sub : {"out", "quarantine", "scratch"}) {
    auto made = run_with_retry<Unit, IoError>(
        cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
        [&] { return fs_.create_directories(work_dir / sub); });
    if (!made.ok()) return std::move(made).take_error();
  }

  auto listed = run_with_retry<std::vector<stdfs::path>, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] { return fs_.list_dir(input_dir); });
  if (!listed.ok()) return std::move(listed).take_error();

  // The full driver's response stage runs its period loop as the nested
  // `omp for` of the paper's fully-parallelized variant; the graph's
  // stage factories capture the team size at construction.
  RunnerConfig effective = cfg_;
  if (cfg_.driver == Driver::kFullParallel) {
    effective.spectrum.response_threads = threads;
  }
  const StageGraph graph =
      StageGraph::standard(effective.correction, effective.spectrum);
  if (auto audit = graph.verify(); !audit.ok()) {
    return IoError{IoError::Code::kGraphInvalid, ErrorClass::kPoison,
                   work_dir.string(), audit.error()};
  }

  RecordExecutor exec(fs_, effective);
  exec.instantiate(graph, prunes_redundant(cfg_.driver));

  // Arm the per-event deadline budget before any worker starts; the
  // tracker is read-only from here on, so the parallel drivers may poll
  // it without locking. Stamp the budget (and the breaker's counters,
  // when one is wired in) into the v6 report.
  DeadlineTracker deadline(cfg_.deadline, cfg_.now);
  deadline.start();
  exec.set_deadline(&deadline);
  report.deadline_soft_seconds = cfg_.deadline.soft_seconds;
  report.deadline_hard_seconds = cfg_.deadline.hard_seconds;
  const storage::BreakerCounters breaker_before =
      cfg_.breaker ? cfg_.breaker->counters() : storage::BreakerCounters{};

  // Sorted inputs give a deterministic slot order, so the report (and
  // the fail-fast stopping point of the sequential drivers) does not
  // depend on directory enumeration order.
  std::vector<stdfs::path> inputs;
  for (const stdfs::path& path : listed.value()) {
    if (path.extension() == formats::kV1Extension) inputs.push_back(path);
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<RecordSlot> slots;
  slots.reserve(inputs.size());
  for (const stdfs::path& input : inputs) {
    slots.push_back(exec.make_slot(input, work_dir));
  }

  // ---- Station pre-scan (docs/FORMATS.md, "Component sets") ----
  // Cross-component consistency checks on the V1 headers before any
  // stage runs: records that fail are pre-quarantined with a typed
  // station.* reason (slot.failed is already set, so the executor skips
  // their whole chain and finalize() quarantines them). Headers that
  // cannot be read or parsed are deferred silently — the parse stage
  // owns those failures and reports them with the richer parse.*
  // taxonomy. The scan is serial and driver-independent, so the
  // canonical report stays byte-identical across drivers.
  std::vector<bool> parsed(slots.size(), false);
  std::vector<formats::RecordHeader> headers(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    auto rd = run_with_retry<std::string, IoError>(
        cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
        [&] { return fs_.read_file(inputs[i]); });
    if (!rd.ok()) continue;
    auto hdr = formats::read_v1_header(rd.value());
    if (!hdr.ok()) continue;
    headers[i] = std::move(hdr).take();
    parsed[i] = true;
  }

  // Stations are derived from record ids (formats::split_record_id),
  // never from header metadata — the grouping must be recomputable from
  // the report alone. std::map iteration gives station-sorted order.
  std::map<std::string, std::vector<std::size_t>> station_members;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    station_members[formats::split_record_id(slots[i].outcome.record).first]
        .push_back(i);
  }

  std::map<std::string, std::vector<std::string>> station_checks;
  auto flag = [&station_checks](const std::string& station, const char* slug) {
    std::vector<std::string>& checks = station_checks[station];
    std::string reason = std::string("station.") + slug;
    if (std::find(checks.begin(), checks.end(), reason) == checks.end()) {
      checks.push_back(reason);
    }
    return reason;
  };
  auto prequarantine = [&slots](std::size_t i, const std::string& reason,
                                std::string detail) {
    if (slots[i].failed) return;  // first reason wins
    slots[i].failed = true;
    slots[i].failure =
        StageError{ErrorClass::kPoison, reason, std::move(detail)};
  };

  for (const auto& [station, members] : station_members) {
    // short_duration: the header announces less signal than the floor —
    // too short for any spectral product to mean anything.
    for (std::size_t i : members) {
      if (!parsed[i]) continue;
      const double duration =
          headers[i].dt * static_cast<double>(headers[i].npts);
      if (duration < cfg_.min_station_duration_s) {
        prequarantine(i, flag(station, "short_duration"),
                      "header announces " + std::to_string(duration) +
                          " s of signal; the station floor is " +
                          std::to_string(cfg_.min_station_duration_s) + " s");
      }
    }
    // duplicate_component: two headers of one station claim the same
    // component — every claimant quarantines (no way to pick a winner).
    std::map<std::string, std::vector<std::size_t>> claims;
    for (std::size_t i : members) {
      if (parsed[i]) claims[headers[i].component].push_back(i);
    }
    for (const auto& [component, claimants] : claims) {
      if (claimants.size() < 2) continue;
      const std::string reason = flag(station, "duplicate_component");
      for (std::size_t i : claimants) {
        prequarantine(i, reason,
                      "header claims component '" + component +
                          "' already claimed by another input of station '" +
                          station + "'");
      }
    }
    // dt_mismatch: the parsed headers of one station disagree on the
    // sampling interval — no member is trustworthy, all quarantine.
    bool have_dt = false;
    bool mismatch = false;
    double dt0 = 0;
    for (std::size_t i : members) {
      if (!parsed[i]) continue;
      if (!have_dt) {
        dt0 = headers[i].dt;
        have_dt = true;
      } else if (headers[i].dt != dt0) {
        mismatch = true;
      }
    }
    if (mismatch) {
      const std::string reason = flag(station, "dt_mismatch");
      for (std::size_t i : members) {
        if (parsed[i]) {
          prequarantine(i, reason,
                        "components of station '" + station +
                            "' disagree on the sampling interval");
        }
      }
    }
  }

  auto scheduler =
      make_scheduler(cfg_.driver, threads, cfg_.keep_going, cfg_.pool);
  scheduler->run(exec, slots, work_dir);

  // ---- Station phase ----
  // Group the processed slots back into stations, decide eligibility
  // for the station-scoped stages, and fan the eligible ones out under
  // the same scheduling policy as the records. Component sample vectors
  // are borrowed from the record slots (post-detrend corrected
  // acceleration), so the slots must outlive this phase.
  std::vector<StationSlot> station_slots;
  station_slots.reserve(station_members.size());
  for (const auto& [station, members] : station_members) {
    StationSlot st;
    st.ctx.fs = &fs_;
    st.ctx.out_dir = work_dir / "out";
    st.ctx.station = station;
    st.outcome.station = station;
    if (auto it = station_checks.find(station); it != station_checks.end()) {
      st.outcome.checks = it->second;
    }
    RecordSlot* comp_l = nullptr;
    RecordSlot* comp_t = nullptr;
    RecordSlot* comp_v = nullptr;
    bool any = false;
    for (std::size_t i : members) {
      RecordSlot& slot = slots[i];
      if (!slot.processed) continue;
      any = true;
      const auto [name, component] =
          formats::split_record_id(slot.outcome.record);
      st.outcome.components.push_back(component);
      if (slot.outcome.status == RecordOutcome::Status::kOk) {
        ++st.outcome.ok;
        if (component == "l") comp_l = &slot;
        if (component == "t") comp_t = &slot;
        if (component == "v") comp_v = &slot;
      } else {
        ++st.outcome.quarantined;
      }
    }
    // Fail-fast stop: a station none of whose members were processed
    // has no report entry to roll up.
    if (!any) continue;
    // Eligibility for the rotd sweep: both horizontals published, with
    // equal lengths and sampling intervals. Anything else is a typed
    // skip — the component records stay published, only the station
    // product is withheld.
    const char* skip = nullptr;
    if (!comp_l || !comp_t) {
      skip = "missing_component";
    } else if (comp_l->ctx.record.samples.size() !=
               comp_t->ctx.record.samples.size()) {
      skip = "length_mismatch";
    } else if (comp_l->ctx.record.header.dt != comp_t->ctx.record.header.dt) {
      skip = "dt_mismatch";
    }
    if (skip) {
      st.outcome.rotd_status = "skipped";
      st.outcome.rotd_reason = flag(station, skip);
      st.outcome.checks = station_checks[station];
    } else {
      st.ctx.event_id = comp_l->ctx.record.header.event_id;
      st.ctx.date = comp_l->ctx.record.header.date;
      st.ctx.dt = comp_l->ctx.record.header.dt;
      st.ctx.comp_l = &comp_l->ctx.record.samples;
      st.ctx.comp_t = &comp_t->ctx.record.samples;
      if (comp_v) st.ctx.comp_v = &comp_v->ctx.record.samples;
    }
    station_slots.push_back(std::move(st));
  }
  // Collect the eligible slots only after the vector is final — the
  // scheduler gets stable pointers.
  std::vector<StationSlot*> eligible;
  for (StationSlot& st : station_slots) {
    if (st.outcome.rotd_reason.empty()) eligible.push_back(&st);
  }
  scheduler->run_stations(exec, eligible);

  for (RecordSlot& slot : slots) {
    if (slot.processed) report.records.push_back(std::move(slot.outcome));
  }
  for (StationSlot& st : station_slots) {
    report.stations.push_back(std::move(st.outcome));
  }

  (void)fs_.remove_all(work_dir / "scratch");

  const std::chrono::duration<double> run_elapsed =
      std::chrono::steady_clock::now() - run_started;
  report.total_seconds = run_elapsed.count();
  if (cfg_.baseline_total_seconds > 0 && report.total_seconds > 0) {
    report.speedup_vs_sequential =
        cfg_.baseline_total_seconds / report.total_seconds;
  }
  if (cfg_.breaker) {
    const storage::BreakerCounters after = cfg_.breaker->counters();
    report.breaker_rejected_ops =
        after.rejected_ops - breaker_before.rejected_ops;
    report.breaker_opens = after.opens - breaker_before.opens;
    report.breaker_half_open_recoveries =
        after.half_open_recoveries - breaker_before.half_open_recoveries;
  }
  report.sort_records();

  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] {
        return atomic_write_file(fs_, work_dir / kRunReportFileName,
                                 report.dump());
      });
  if (!wrote.ok()) return std::move(wrote).take_error();
  return report;
}

Result<RunReport, IoError> run_pipeline(FileSystem& fs,
                                        const stdfs::path& input_dir,
                                        const stdfs::path& work_dir,
                                        const RunnerConfig& config) {
  StageRunner runner(fs, config);
  return runner.run_event(input_dir, work_dir);
}

}  // namespace acx::pipeline
