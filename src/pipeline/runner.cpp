#include "pipeline/runner.hpp"

#include <chrono>
#include <thread>

#include "formats/v1.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

StageError from_io(const IoError& e) {
  return StageError{e.klass, std::string("io.") + slug(e.code), e.to_string()};
}

}  // namespace

StageRunner::StageRunner(FileSystem& fs, RunnerConfig config)
    : fs_(fs), cfg_(std::move(config)) {
  if (!cfg_.sleep) {
    cfg_.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

Result<Unit, StageError> StageRunner::run_stage_once(Stage& stage,
                                                     RecordContext& ctx) {
  const int invocation = ++invocations_[stage.name()];
  const StageFault& f = cfg_.stage_fault;
  if (!f.stage.empty() && f.stage == stage.name() &&
      invocation == f.kill_on_invocation) {
    return StageError{
        f.transient ? ErrorClass::kTransient : ErrorClass::kPoison,
        std::string("stage_crash.") + stage.name(),
        "injected stage fault on invocation " + std::to_string(invocation)};
  }
  return stage.run(ctx);
}

bool StageRunner::run_step(
    const std::string& name, RecordOutcome& outcome, StageError& failure,
    const std::function<Result<Unit, StageError>()>& fn) {
  int attempts = 0;
  const auto started = std::chrono::steady_clock::now();
  auto r = run_with_retry<Unit, StageError>(
      cfg_.retry, cfg_.sleep,
      [](const StageError& e) { return e.klass; }, fn, &attempts);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  StageAttempt attempt;
  attempt.stage = name;
  attempt.attempts = attempts;
  attempt.ok = r.ok();
  attempt.seconds = elapsed.count();
  if (!r.ok()) {
    failure = r.error();
    attempt.error = failure.reason;
  }
  outcome.retries += attempts - 1;
  outcome.seconds += attempt.seconds;
  outcome.stages.push_back(std::move(attempt));
  return r.ok();
}

void StageRunner::quarantine_record(const stdfs::path& quarantine_dir,
                                    const RecordContext& ctx,
                                    const StageError& failure,
                                    RecordOutcome& outcome) {
  outcome.status = RecordOutcome::Status::kQuarantined;
  outcome.reason = failure.klass == ErrorClass::kPoison
                       ? failure.reason
                       : "transient_exhausted." + failure.reason;

  // Preserve the original bytes for post-mortem. If the input itself is
  // unreadable, quarantine a marker describing why.
  std::string content = ctx.raw;
  if (content.empty()) {
    auto rd = fs_.read_file(ctx.input_path);
    content = rd.ok() ? std::move(rd).take()
                      : "<input unreadable: " + rd.error().to_string() + ">\n";
  }
  const stdfs::path dest =
      quarantine_dir / (outcome.record + "." + outcome.reason);
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] { return atomic_write_file(fs_, dest, content); });
  if (wrote.ok()) outcome.quarantine = dest.string();
}

RecordOutcome StageRunner::process_record(
    const stdfs::path& input, const stdfs::path& work_dir,
    std::vector<std::unique_ptr<Stage>>& stages) {
  RecordOutcome outcome;
  outcome.record = input.stem().string();
  outcome.input = input.string();

  RecordContext ctx;
  ctx.fs = &fs_;
  ctx.input_path = input;
  ctx.scratch_dir = work_dir / "scratch" / outcome.record;
  ctx.out_dir = work_dir / "out";
  ctx.record_id = outcome.record;

  StageError failure;
  bool ok = run_step("scratch_setup", outcome, failure, [&] {
    (void)fs_.remove_all(ctx.scratch_dir);
    auto made = fs_.create_directories(ctx.scratch_dir);
    if (!made.ok()) {
      return Result<Unit, StageError>(from_io(made.error()));
    }
    return Result<Unit, StageError>(Unit{});
  });

  if (ok) {
    for (auto& stage : stages) {
      if (!run_step(stage->name(), outcome, failure,
                    [&] { return run_stage_once(*stage, ctx); })) {
        ok = false;
        break;
      }
    }
  }

  if (ok) {
    outcome.status = RecordOutcome::Status::kOk;
    outcome.output = ctx.output_path.string();
    for (const stdfs::path* p :
         {&ctx.output_path, &ctx.fourier_path, &ctx.response_path}) {
      if (!p->empty()) outcome.outputs.push_back(p->string());
    }
  } else {
    // Earlier stages may already have published spectra into out/; a
    // quarantined record must leave no outputs behind, or the validator
    // (rightly) flags them as unclaimed.
    for (const stdfs::path* p :
         {&ctx.output_path, &ctx.fourier_path, &ctx.response_path}) {
      if (!p->empty()) (void)fs_.remove_all(*p);
    }
    quarantine_record(work_dir / "quarantine", ctx, failure, outcome);
  }

  // Scratch is per-record; drop it either way (best effort — leftovers
  // are caught by the validator, not silently tolerated).
  (void)fs_.remove_all(ctx.scratch_dir);
  return outcome;
}

Result<RunReport, IoError> StageRunner::run_event(const stdfs::path& input_dir,
                                                  const stdfs::path& work_dir) {
  const auto run_started = std::chrono::steady_clock::now();
  RunReport report;
  report.input_dir = input_dir.string();
  report.work_dir = work_dir.string();

  for (const char* sub : {"out", "quarantine", "scratch"}) {
    auto made = run_with_retry<Unit, IoError>(
        cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
        [&] { return fs_.create_directories(work_dir / sub); });
    if (!made.ok()) return std::move(made).take_error();
  }

  auto listed = fs_.list_dir(input_dir);
  if (!listed.ok()) return std::move(listed).take_error();

  auto stages = default_stages(cfg_.correction, cfg_.spectrum);
  for (const stdfs::path& path : listed.value()) {
    if (path.extension() != formats::kV1Extension) continue;
    report.records.push_back(process_record(path, work_dir, stages));
    if (!cfg_.keep_going &&
        report.records.back().status == RecordOutcome::Status::kQuarantined) {
      break;
    }
  }

  (void)fs_.remove_all(work_dir / "scratch");

  const std::chrono::duration<double> run_elapsed =
      std::chrono::steady_clock::now() - run_started;
  report.total_seconds = run_elapsed.count();

  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] {
        return atomic_write_file(fs_, work_dir / kRunReportFileName,
                                 report.dump());
      });
  if (!wrote.ok()) return std::move(wrote).take_error();
  return report;
}

Result<RunReport, IoError> run_pipeline(FileSystem& fs,
                                        const stdfs::path& input_dir,
                                        const stdfs::path& work_dir,
                                        const RunnerConfig& config) {
  StageRunner runner(fs, config);
  return runner.run_event(input_dir, work_dir);
}

}  // namespace acx::pipeline
