#include "pipeline/runner.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "formats/v1.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/scheduler.hpp"
#include "util/work_pool.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

StageRunner::StageRunner(FileSystem& fs, RunnerConfig config)
    : fs_(fs), cfg_(std::move(config)) {
  if (!cfg_.sleep) {
    cfg_.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

Result<RunReport, IoError> StageRunner::run_event(const stdfs::path& input_dir,
                                                  const stdfs::path& work_dir) {
  const auto run_started = std::chrono::steady_clock::now();
  // The reported team size: the pool driver's is the shared pool's real
  // worker count when one is wired in (the resident service), otherwise
  // the transient pool it will spin up.
  int threads = 1;
  if (cfg_.driver == Driver::kPool && cfg_.pool) {
    threads = cfg_.pool->thread_count();
  } else if (is_parallel(cfg_.driver)) {
    threads = resolve_threads(cfg_.threads);
  }

  RunReport report;
  report.input_dir = input_dir.string();
  report.work_dir = work_dir.string();
  report.driver = to_string(cfg_.driver);
  report.threads = threads;

  for (const char* sub : {"out", "quarantine", "scratch"}) {
    auto made = run_with_retry<Unit, IoError>(
        cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
        [&] { return fs_.create_directories(work_dir / sub); });
    if (!made.ok()) return std::move(made).take_error();
  }

  auto listed = run_with_retry<std::vector<stdfs::path>, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] { return fs_.list_dir(input_dir); });
  if (!listed.ok()) return std::move(listed).take_error();

  // The full driver's response stage runs its period loop as the nested
  // `omp for` of the paper's fully-parallelized variant; the graph's
  // stage factories capture the team size at construction.
  RunnerConfig effective = cfg_;
  if (cfg_.driver == Driver::kFullParallel) {
    effective.spectrum.response_threads = threads;
  }
  const StageGraph graph =
      StageGraph::standard(effective.correction, effective.spectrum);
  if (auto audit = graph.verify(); !audit.ok()) {
    return IoError{IoError::Code::kGraphInvalid, ErrorClass::kPoison,
                   work_dir.string(), audit.error()};
  }

  RecordExecutor exec(fs_, effective);
  exec.instantiate(graph, prunes_redundant(cfg_.driver));

  // Arm the per-event deadline budget before any worker starts; the
  // tracker is read-only from here on, so the parallel drivers may poll
  // it without locking. Stamp the budget (and the breaker's counters,
  // when one is wired in) into the v6 report.
  DeadlineTracker deadline(cfg_.deadline, cfg_.now);
  deadline.start();
  exec.set_deadline(&deadline);
  report.deadline_soft_seconds = cfg_.deadline.soft_seconds;
  report.deadline_hard_seconds = cfg_.deadline.hard_seconds;
  const storage::BreakerCounters breaker_before =
      cfg_.breaker ? cfg_.breaker->counters() : storage::BreakerCounters{};

  // Sorted inputs give a deterministic slot order, so the report (and
  // the fail-fast stopping point of the sequential drivers) does not
  // depend on directory enumeration order.
  std::vector<stdfs::path> inputs;
  for (const stdfs::path& path : listed.value()) {
    if (path.extension() == formats::kV1Extension) inputs.push_back(path);
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<RecordSlot> slots;
  slots.reserve(inputs.size());
  for (const stdfs::path& input : inputs) {
    slots.push_back(exec.make_slot(input, work_dir));
  }

  auto scheduler =
      make_scheduler(cfg_.driver, threads, cfg_.keep_going, cfg_.pool);
  scheduler->run(exec, slots, work_dir);

  for (RecordSlot& slot : slots) {
    if (slot.processed) report.records.push_back(std::move(slot.outcome));
  }

  (void)fs_.remove_all(work_dir / "scratch");

  const std::chrono::duration<double> run_elapsed =
      std::chrono::steady_clock::now() - run_started;
  report.total_seconds = run_elapsed.count();
  if (cfg_.baseline_total_seconds > 0 && report.total_seconds > 0) {
    report.speedup_vs_sequential =
        cfg_.baseline_total_seconds / report.total_seconds;
  }
  if (cfg_.breaker) {
    const storage::BreakerCounters after = cfg_.breaker->counters();
    report.breaker_rejected_ops =
        after.rejected_ops - breaker_before.rejected_ops;
    report.breaker_opens = after.opens - breaker_before.opens;
    report.breaker_half_open_recoveries =
        after.half_open_recoveries - breaker_before.half_open_recoveries;
  }
  report.sort_records();

  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.retry, cfg_.sleep, [](const IoError& e) { return e.klass; },
      [&] {
        return atomic_write_file(fs_, work_dir / kRunReportFileName,
                                 report.dump());
      });
  if (!wrote.ok()) return std::move(wrote).take_error();
  return report;
}

Result<RunReport, IoError> run_pipeline(FileSystem& fs,
                                        const stdfs::path& input_dir,
                                        const stdfs::path& work_dir,
                                        const RunnerConfig& config) {
  StageRunner runner(fs, config);
  return runner.run_event(input_dir, work_dir);
}

}  // namespace acx::pipeline
