#include "pipeline/graph.hpp"

#include <set>

namespace acx::pipeline {

const StageNode* StageGraph::find(std::string_view name) const {
  for (const StageNode& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

std::vector<const StageNode*> StageGraph::plan(bool prune_redundant) const {
  std::vector<const StageNode*> out;
  out.reserve(nodes_.size());
  for (const StageNode& node : nodes_) {
    if (prune_redundant && node.redundant) continue;
    out.push_back(&node);
  }
  return out;
}

std::vector<StageShape> StageGraph::shape() const {
  std::vector<StageShape> out;
  out.reserve(nodes_.size() + 1);
  // The executor's implicit first step: private scratch dir per record,
  // run before the graph's own stage_in (RecordExecutor::setup_scratch).
  out.push_back({"scratch_setup", {}, false, true, false});
  for (const StageNode& node : nodes_) {
    StageShape s{node.name, node.deps, node.redundant, node.parallel_safe,
                 node.sheddable};
    if (node.deps.empty()) s.deps.push_back("scratch_setup");
    out.push_back(std::move(s));
  }
  return out;
}

Result<Unit, std::string> StageGraph::verify() const {
  std::set<std::string> seen;
  for (const StageNode& node : nodes_) {
    if (node.name.empty()) return std::string("graph has an unnamed stage");
    if (!node.make) return "stage '" + node.name + "' has no factory";
    if (!seen.insert(node.name).second) {
      return "duplicate stage '" + node.name + "'";
    }
    for (const std::string& dep : node.deps) {
      if (!seen.count(dep)) {
        const bool exists = find(dep) != nullptr;
        return "stage '" + node.name + "' depends on " +
               (exists ? "later stage '" : "unknown stage '") + dep +
               "' (declaration order must be topological)";
      }
      if (!node.redundant && find(dep)->redundant) {
        return "stage '" + node.name + "' depends on redundant stage '" +
               dep + "'; pruning would sever the edge";
      }
    }
  }
  return Unit{};
}

StageGraph StageGraph::standard(const CorrectionConfig& correction,
                                const SpectrumConfig& spectrum) {
  auto mk = [correction, spectrum](const char* name) {
    return [correction, spectrum, name] {
      return make_stage(name, correction, spectrum);
    };
  };
  StageGraph g;
  g.add({"stage_in", {}, false, true, false, mk("stage_in")});
  g.add({"parse", {"stage_in"}, false, true, false, mk("parse")});
  // P#6 analogue: the original pipeline re-validated its input list
  // after staging; the result duplicates what parse already proved.
  g.add({"reparse", {"parse"}, true, false, false, mk("reparse")});
  g.add({"calibrate", {"parse"}, false, true, false, mk("calibrate")});
  g.add({"demean", {"calibrate"}, false, true, false, mk("demean")});
  g.add({"corners", {"demean"}, false, true, false, mk("corners")});
  // P#12 analogue: a second FAS of the demeaned record, written as a
  // scratch preview artifact nothing downstream reads. Sheddable: it is
  // pure preview, so deadline pressure drops it first.
  g.add({"fas_preview", {"demean"}, true, false, true, mk("fas_preview")});
  g.add({"bandpass", {"corners"}, false, true, false, mk("bandpass")});
  g.add({"detrend", {"bandpass"}, false, true, false, mk("detrend")});
  g.add({"integrate", {"detrend"}, false, true, false, mk("integrate")});
  g.add({"peaks", {"integrate"}, false, true, false, mk("peaks")});
  // P#14 analogue: the original pipeline re-extracted the max values it
  // had already extracted.
  g.add({"repeaks", {"peaks"}, true, false, false, mk("repeaks")});
  // The spectral products are enrichments of the corrected record: a
  // record that loses them under deadline or storage-breaker pressure
  // is still publishable (as degraded), so both are sheddable. The V2
  // chain through write_v2 is essential and never sheds.
  g.add({"fourier", {"detrend"}, false, true, true, mk("fourier")});
  g.add({"response", {"detrend"}, false, true, true, mk("response")});
  g.add({"write_v2", {"peaks", "fourier", "response"}, false, true, false,
         mk("write_v2")});
  return g;
}

std::vector<std::unique_ptr<Stage>> default_stages(
    const CorrectionConfig& correction, const SpectrumConfig& spectrum) {
  // The graph must outlive the plan: plan() returns pointers into it.
  const StageGraph graph = StageGraph::standard(correction, spectrum);
  std::vector<std::unique_ptr<Stage>> stages;
  for (const StageNode* node : graph.plan(/*prune_redundant=*/false)) {
    stages.push_back(node->make());
  }
  return stages;
}

}  // namespace acx::pipeline
