#include "pipeline/graph.hpp"

#include <set>

namespace acx::pipeline {

const StageNode* StageGraph::find(std::string_view name) const {
  for (const StageNode& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

std::vector<const StageNode*> StageGraph::plan(bool prune_redundant) const {
  std::vector<const StageNode*> out;
  out.reserve(nodes_.size());
  for (const StageNode& node : nodes_) {
    if (node.station_scoped) continue;
    if (prune_redundant && node.redundant) continue;
    out.push_back(&node);
  }
  return out;
}

std::vector<const StageNode*> StageGraph::station_plan(
    bool prune_redundant) const {
  std::vector<const StageNode*> out;
  for (const StageNode& node : nodes_) {
    if (!node.station_scoped) continue;
    if (prune_redundant && node.redundant) continue;
    out.push_back(&node);
  }
  return out;
}

std::vector<StageShape> StageGraph::shape() const {
  std::vector<StageShape> out;
  out.reserve(nodes_.size() + 1);
  // The executor's implicit first step: private scratch dir per record,
  // run before the graph's own stage_in (RecordExecutor::setup_scratch).
  out.push_back({"scratch_setup", {}, false, true, false});
  for (const StageNode& node : nodes_) {
    StageShape s{node.name,          node.deps,      node.redundant,
                 node.parallel_safe, node.sheddable, node.station_scoped};
    if (node.deps.empty()) s.deps.push_back("scratch_setup");
    out.push_back(std::move(s));
  }
  return out;
}

Result<Unit, std::string> StageGraph::verify() const {
  std::set<std::string> seen;
  for (const StageNode& node : nodes_) {
    if (node.name.empty()) return std::string("graph has an unnamed stage");
    if (node.station_scoped) {
      if (!node.make_station) {
        return "station stage '" + node.name + "' has no station factory";
      }
      if (node.make) {
        return "station stage '" + node.name +
               "' also carries a per-record factory";
      }
    } else {
      if (!node.make) return "stage '" + node.name + "' has no factory";
      if (node.make_station) {
        return "stage '" + node.name + "' carries a station factory but is "
               "not station-scoped";
      }
    }
    if (!seen.insert(node.name).second) {
      return "duplicate stage '" + node.name + "'";
    }
    for (const std::string& dep : node.deps) {
      if (!seen.count(dep)) {
        const bool exists = find(dep) != nullptr;
        return "stage '" + node.name + "' depends on " +
               (exists ? "later stage '" : "unknown stage '") + dep +
               "' (declaration order must be topological)";
      }
      if (!node.redundant && find(dep)->redundant) {
        return "stage '" + node.name + "' depends on redundant stage '" +
               dep + "'; pruning would sever the edge";
      }
      if (!node.station_scoped && find(dep)->station_scoped) {
        return "stage '" + node.name + "' depends on station stage '" + dep +
               "'; the station phase runs after every per-record stage";
      }
    }
  }
  return Unit{};
}

StageGraph StageGraph::standard(const CorrectionConfig& correction,
                                const SpectrumConfig& spectrum) {
  auto mk = [correction, spectrum](const char* name) {
    return [correction, spectrum, name] {
      return make_stage(name, correction, spectrum);
    };
  };
  auto rec = [&mk](const char* name, std::vector<std::string> deps,
                   bool redundant, bool parallel_safe, bool sheddable) {
    StageNode n;
    n.name = name;
    n.deps = std::move(deps);
    n.redundant = redundant;
    n.parallel_safe = parallel_safe;
    n.sheddable = sheddable;
    n.make = mk(name);
    return n;
  };
  StageGraph g;
  g.add(rec("stage_in", {}, false, true, false));
  g.add(rec("parse", {"stage_in"}, false, true, false));
  // P#6 analogue: the original pipeline re-validated its input list
  // after staging; the result duplicates what parse already proved.
  g.add(rec("reparse", {"parse"}, true, false, false));
  g.add(rec("calibrate", {"parse"}, false, true, false));
  g.add(rec("demean", {"calibrate"}, false, true, false));
  g.add(rec("corners", {"demean"}, false, true, false));
  // P#12 analogue: a second FAS of the demeaned record, written as a
  // scratch preview artifact nothing downstream reads. Sheddable: it is
  // pure preview, so deadline pressure drops it first.
  g.add(rec("fas_preview", {"demean"}, true, false, true));
  g.add(rec("bandpass", {"corners"}, false, true, false));
  g.add(rec("detrend", {"bandpass"}, false, true, false));
  g.add(rec("integrate", {"detrend"}, false, true, false));
  g.add(rec("peaks", {"integrate"}, false, true, false));
  // P#14 analogue: the original pipeline re-extracted the max values it
  // had already extracted.
  g.add(rec("repeaks", {"peaks"}, true, false, false));
  // The spectral products are enrichments of the corrected record: a
  // record that loses them under deadline or storage-breaker pressure
  // is still publishable (as degraded), so both are sheddable. The V2
  // chain through write_v2 is essential and never sheds.
  g.add(rec("fourier", {"detrend"}, false, true, true));
  g.add(rec("response", {"detrend"}, false, true, true));
  g.add(rec("write_v2", {"peaks", "fourier", "response"}, false, true,
            false));
  // Station-scoped: the RotD sweep consumes the detrended (corrected)
  // acceleration of both horizontal members of a station. Not
  // sheddable — a station that cannot run it is reported skipped with
  // a typed reason, never degraded component records.
  StageNode rotd;
  rotd.name = "rotd";
  rotd.deps = {"detrend"};
  rotd.parallel_safe = true;
  rotd.station_scoped = true;
  rotd.make_station = [spectrum] { return make_station_stage("rotd", spectrum); };
  g.add(std::move(rotd));
  return g;
}

std::vector<std::unique_ptr<Stage>> default_stages(
    const CorrectionConfig& correction, const SpectrumConfig& spectrum) {
  // The graph must outlive the plan: plan() returns pointers into it.
  const StageGraph graph = StageGraph::standard(correction, spectrum);
  std::vector<std::unique_ptr<Stage>> stages;
  for (const StageNode* node : graph.plan(/*prune_redundant=*/false)) {
    stages.push_back(node->make());
  }
  return stages;
}

}  // namespace acx::pipeline
