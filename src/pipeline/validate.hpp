#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "util/fs.hpp"

namespace acx::pipeline {

struct ValidationIssue {
  std::string kind;    // "partial_write", "missing_output", ...
  std::string detail;
};

struct ValidationSummary {
  int records_ok = 0;
  int records_quarantined = 0;
  int stations_rotd_ok = 0;  // stations whose .rotd passed the audit
  std::vector<ValidationIssue> issues;

  bool clean() const { return issues.empty(); }
};

// Audits a pipeline work dir against its run_report.json:
//  - no atomic-write temporaries anywhere under the tree (proves no
//    partially-written file survived any fault);
//  - every "ok" record's claimed outputs pass the strict reader for
//    their format (.v2, .f, .r), and the F/R spectra are present;
//  - every quarantined record has its quarantine file and a reason
//    from the src/pipeline/reasons.hpp registry;
//  - every station whose rotd_status is "ok" claims a .rotd that the
//    strict reader accepts and whose header names that station;
//    skipped/failed stations carry a registered reason and no output
//    (component-set consistency itself is cross-checked against the
//    record grouping by RunReport::from_json_text);
//  - out/ and quarantine/ contain nothing the report doesn't claim;
//  - scratch/ is gone (or empty);
//  - the report's counts block matches its records array.
ValidationSummary validate_workdir(FileSystem& fs,
                                   const std::filesystem::path& work_dir);

}  // namespace acx::pipeline
