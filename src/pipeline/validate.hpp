#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "util/fs.hpp"

namespace acx::pipeline {

struct ValidationIssue {
  std::string kind;    // "partial_write", "missing_output", ...
  std::string detail;
};

struct ValidationSummary {
  int records_ok = 0;
  int records_quarantined = 0;
  std::vector<ValidationIssue> issues;

  bool clean() const { return issues.empty(); }
};

// Audits a pipeline work dir against its run_report.json:
//  - no atomic-write temporaries anywhere under the tree (proves no
//    partially-written file survived any fault);
//  - every "ok" record has a V2 output that passes the strict reader;
//  - every quarantined record has its quarantine file and a reason;
//  - out/ and quarantine/ contain nothing the report doesn't claim;
//  - scratch/ is gone (or empty);
//  - the report's counts block matches its records array.
ValidationSummary validate_workdir(FileSystem& fs,
                                   const std::filesystem::path& work_dir);

}  // namespace acx::pipeline
