#include "pipeline/validate.hpp"

#include <cmath>
#include <set>

#include "formats/spectra.hpp"
#include "formats/v2.hpp"
#include "pipeline/reasons.hpp"
#include "pipeline/report.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

void add_issue(ValidationSummary& summary, std::string kind,
               std::string detail) {
  summary.issues.push_back({std::move(kind), std::move(detail)});
}

}  // namespace

ValidationSummary validate_workdir(FileSystem& fs,
                                   const stdfs::path& work_dir) {
  ValidationSummary summary;

  if (!fs.exists(work_dir)) {
    add_issue(summary, "missing_workdir", work_dir.string());
    return summary;
  }

  // Atomic-write audit over the whole tree, plus inventory of out/,
  // quarantine/ and scratch/ contents by base name.
  std::set<std::string> out_files, quarantine_files;
  auto tree = fs.list_tree(work_dir);
  if (!tree.ok()) {
    add_issue(summary, "unreadable_workdir", tree.error().to_string());
    return summary;
  }
  const stdfs::path out_dir = work_dir / "out";
  const stdfs::path quarantine_dir = work_dir / "quarantine";
  const stdfs::path scratch_dir = work_dir / "scratch";
  for (const stdfs::path& p : tree.value()) {
    if (is_atomic_tmp_name(p)) {
      add_issue(summary, "partial_write",
                "leftover atomic-write temporary: " + p.string());
      continue;
    }
    if (p.parent_path() == out_dir) out_files.insert(p.filename().string());
    if (p.parent_path() == quarantine_dir) {
      quarantine_files.insert(p.filename().string());
    }
    if (p.string().rfind(scratch_dir.string() + "/", 0) == 0) {
      add_issue(summary, "scratch_leftover", p.string());
    }
  }

  auto report_text = fs.read_file(work_dir / kRunReportFileName);
  if (!report_text.ok()) {
    add_issue(summary, "missing_report", report_text.error().to_string());
    return summary;
  }
  auto parsed = RunReport::from_json_text(report_text.value());
  if (!parsed.ok()) {
    add_issue(summary, "bad_report", parsed.error());
    return summary;
  }
  const RunReport report = std::move(parsed).take();

  std::set<std::string> claimed_out, claimed_quarantine;
  for (const RecordOutcome& r : report.records) {
    if (r.status == RecordOutcome::Status::kOk) {
      ++summary.records_ok;
      if (r.output.empty()) {
        add_issue(summary, "missing_output",
                  "record " + r.record + " is ok but names no output");
        continue;
      }
      // Audit every claimed output, dispatching the strict reader on
      // the extension. Reports from before the spectral stages carried
      // only `output`; fall back to that single path.
      std::vector<std::string> claimed = r.outputs;
      if (claimed.empty()) claimed.push_back(r.output);
      bool has_f = false, has_r = false;
      for (const std::string& claim : claimed) {
        const stdfs::path out_path(claim);
        const std::string ext = out_path.extension().string();
        claimed_out.insert(out_path.filename().string());
        auto content = fs.read_file(out_path);
        if (!content.ok()) {
          add_issue(summary, "missing_output",
                    "record " + r.record + ": " + content.error().to_string());
          continue;
        }
        if (ext == formats::kFExtension) {
          has_f = true;
          auto f = formats::read_f(content.value());
          if (!f.ok()) {
            add_issue(summary, "corrupt_output",
                      "record " + r.record + ": " + f.error().to_string());
          } else if (f.value().header.id() != r.record) {
            add_issue(summary, "mismatched_output",
                      "record " + r.record + ": F header says '" +
                          f.value().header.id() + "'");
          }
          continue;
        }
        if (ext == formats::kRExtension) {
          has_r = true;
          auto rr = formats::read_r(content.value());
          if (!rr.ok()) {
            add_issue(summary, "corrupt_output",
                      "record " + r.record + ": " + rr.error().to_string());
          } else if (rr.value().header.id() != r.record) {
            add_issue(summary, "mismatched_output",
                      "record " + r.record + ": R header says '" +
                          rr.value().header.id() + "'");
          }
          continue;
        }
        if (ext != formats::kV2Extension) {
          add_issue(summary, "unexpected_file",
                    "record " + r.record + " claims output with unknown "
                    "extension: " + claim);
          continue;
        }
        auto v2 = formats::read_v2(content.value());
        if (!v2.ok()) {
          add_issue(summary, "corrupt_output",
                    "record " + r.record + ": " + v2.error().to_string());
          continue;
        }
        if (v2.value().record.header.id() != r.record) {
          add_issue(summary, "mismatched_output",
                    "record " + r.record + ": output header says '" +
                        v2.value().record.header.id() + "'");
        }
        // A claimed V2 must carry usable science: finite samples and a
        // complete, finite peak block. The strict reader already rejects
        // non-finite data cells; this re-check keeps the audit honest
        // even if the reader's guarantees ever loosen.
        const formats::V2Record& out_rec = v2.value();
        bool all_finite = !out_rec.record.samples.empty();
        for (const double s : out_rec.record.samples) {
          if (!std::isfinite(s)) {
            all_finite = false;
            break;
          }
        }
        if (!all_finite) {
          add_issue(summary, "nonfinite_output",
                    "record " + r.record +
                        ": output has empty or non-finite samples");
        }
        if (!out_rec.peaks.present) {
          add_issue(summary, "missing_peaks",
                    "record " + r.record +
                        ": output lacks PGA/PGV/PGD headers");
        } else {
          const double t_max =
              static_cast<double>(out_rec.record.samples.size()) *
              out_rec.record.header.dt;
          auto check_peak = [&](const char* label,
                                const formats::PeakEntry& entry) {
            if (!std::isfinite(entry.value) || !std::isfinite(entry.time) ||
                entry.time < 0 || entry.time > t_max) {
              add_issue(summary, "bad_peaks",
                        "record " + r.record + ": " + std::string(label) +
                            " is non-finite or out of the record's time range");
            }
          };
          check_peak("PGA", out_rec.peaks.pga);
          check_peak("PGV", out_rec.peaks.pgv);
          check_peak("PGD", out_rec.peaks.pgd);
        }
      }
      // v6 degradation audit: a degraded record must say which stages it
      // shed, and every shed reason must be registered — degradation is
      // a typed contract, not a free-form excuse.
      std::set<std::string> shed_stages;
      if (r.degraded && r.shed.empty()) {
        add_issue(summary, "missing_shed",
                  "record " + r.record + " is degraded but lists no shed "
                  "stages");
      }
      for (const ShedStage& s : r.shed) {
        shed_stages.insert(s.stage);
        if (!is_registered_reason(s.reason)) {
          add_issue(summary, "unregistered_reason",
                    "record " + r.record + " shed stage '" + s.stage +
                        "' with reason '" + s.reason +
                        "' not in the registry");
        }
      }
      // A surviving record must have produced its spectra when the
      // report is new enough to list them — unless it (legitimately)
      // shed the producing stage and published as degraded.
      const bool f_excused = shed_stages.count("fourier") > 0;
      const bool r_excused = shed_stages.count("response") > 0;
      if (!r.outputs.empty() &&
          ((!has_f && !f_excused) || (!has_r && !r_excused))) {
        add_issue(summary, "missing_spectra",
                  "record " + r.record + " is ok but claims no " +
                      (has_f ? "R" : has_r ? "F" : "F or R") + " output");
      }
    } else {
      ++summary.records_quarantined;
      if (r.reason.empty()) {
        add_issue(summary, "missing_reason",
                  "record " + r.record + " quarantined without a reason");
      } else if (!is_registered_reason(r.reason)) {
        add_issue(summary, "unregistered_reason",
                  "record " + r.record + " quarantined with reason '" +
                      r.reason + "' not in the registry");
      }
      if (r.quarantine.empty()) {
        add_issue(summary, "missing_quarantine",
                  "record " + r.record + " quarantined but no file written");
        continue;
      }
      const stdfs::path q_path(r.quarantine);
      claimed_quarantine.insert(q_path.filename().string());
      if (!fs.exists(q_path)) {
        add_issue(summary, "missing_quarantine",
                  "record " + r.record + ": " + r.quarantine + " not found");
      }
    }
  }

  // v7 station audit. The strict report parser already cross-checked
  // the rollups (components, ok/quarantined counts) against the record
  // grouping and the reason registry; here we audit the artifacts.
  for (const StationOutcome& st : report.stations) {
    if (st.rotd_status == "ok") {
      if (st.rotd_output.empty()) {
        add_issue(summary, "missing_output",
                  "station " + st.station + " rotd is ok but names no output");
        continue;
      }
      const stdfs::path out_path(st.rotd_output);
      claimed_out.insert(out_path.filename().string());
      auto content = fs.read_file(out_path);
      if (!content.ok()) {
        add_issue(summary, "missing_output",
                  "station " + st.station + ": " + content.error().to_string());
        continue;
      }
      // The strict reader enforces the RotD00 <= RotD50 <= RotD100
      // ordering invariant per cell; the audit adds the identity check.
      auto rd = formats::read_rotd(content.value());
      if (!rd.ok()) {
        add_issue(summary, "corrupt_output",
                  "station " + st.station + ": " + rd.error().to_string());
        continue;
      }
      if (rd.value().station != st.station) {
        add_issue(summary, "mismatched_output",
                  "station " + st.station + ": RD header says '" +
                      rd.value().station + "'");
        continue;
      }
      ++summary.stations_rotd_ok;
    } else if (!is_registered_reason(st.rotd_reason)) {
      add_issue(summary, "unregistered_reason",
                "station " + st.station + " rotd " + st.rotd_status +
                    " with reason '" + st.rotd_reason +
                    "' not in the registry");
    }
  }

  for (const std::string& name : out_files) {
    if (!claimed_out.count(name)) {
      add_issue(summary, "unexpected_file",
                "out/" + name + " not claimed by the run report");
    }
  }
  for (const std::string& name : quarantine_files) {
    if (!claimed_quarantine.count(name)) {
      add_issue(summary, "unexpected_file",
                "quarantine/" + name + " not claimed by the run report");
    }
  }

  return summary;
}

}  // namespace acx::pipeline
