#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "pipeline/config.hpp"
#include "pipeline/executor.hpp"

namespace acx::pipeline {

// A scheduling policy over the shared execution machinery: every
// driver runs the same plan objects through the same RecordExecutor;
// they differ only in which loop fans out and where the barriers sit.
// run() must leave every processed slot finalized (outcome complete);
// slots left unprocessed (fail-fast stop) are excluded from the report.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void run(RecordExecutor& exec, std::vector<RecordSlot>& slots,
                   const std::filesystem::path& work_dir) = 0;

  // The station phase: runs after every record slot has finalized, over
  // the slots the runner deemed eligible. The default is serial (the
  // sequential drivers); the parallel drivers fan stations out the way
  // they fan records. Outputs are bit-identical either way — the rotd
  // sweep is static-scheduled and its combination pass is serial.
  virtual void run_stations(RecordExecutor& exec,
                            std::vector<StationSlot*>& slots) {
    for (StationSlot* slot : slots) exec.run_station(*slot);
  }
};

// The team size a parallel driver will actually use: `requested` when
// positive, the OpenMP default (all hardware threads) when 0.
int resolve_threads(int requested);

// The driver's scheduler. `threads` only matters for the parallel
// drivers; `keep_going=false` only matters for the sequential ones
// (the parallel drivers have no serial notion of "first failure" and
// always keep going). `pool` is the resident WorkPool the kPool driver
// dispatches onto — null makes PoolScheduler own a transient pool of
// `threads` workers for the duration of the run.
std::unique_ptr<Scheduler> make_scheduler(Driver driver, int threads,
                                          bool keep_going,
                                          WorkPool* pool = nullptr);

}  // namespace acx::pipeline
