#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "formats/record.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/result.hpp"

namespace acx::pipeline {

// Stage failure: classified (transient errors are retried, poison
// quarantines the record), with a filesystem-safe reason slug that
// becomes the quarantine suffix and the report entry.
struct StageError {
  ErrorClass klass = ErrorClass::kPoison;
  std::string reason;  // e.g. "parse.bad_magic", "io.write_failed"
  std::string detail;
};

// Per-record working state threaded through the stages. Each record is
// processed inside its own scratch directory (the paper's temp-folder
// protocol), so a failing record can never corrupt a neighbour's state.
struct RecordContext {
  FileSystem* fs = nullptr;
  std::filesystem::path input_path;
  std::filesystem::path scratch_dir;
  std::filesystem::path out_dir;
  std::string record_id;  // "<station><component>", e.g. "SS01l"

  std::string raw;                       // staged-in bytes
  formats::Record record;                // parsed V1, then corrected
  std::vector<std::string> processing;   // stages applied so far
  std::filesystem::path output_path;     // set by the write stage
};

// A pipeline process (the reproduction's P#k). Stages must be
// idempotent: a retried stage re-runs from the same context state.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Result<Unit, StageError> run(RecordContext& ctx) = 0;
};

// The PR-1 minimal chain: stage_in -> parse -> demean -> detrend ->
// write_v2. Later PRs extend this toward the paper's full P#0–P#19.
std::vector<std::unique_ptr<Stage>> default_stages();

}  // namespace acx::pipeline
