#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "formats/record.hpp"
#include "formats/v2.hpp"
#include "signal/timeseries.hpp"
#include "spectrum/corners.hpp"
#include "spectrum/fourier.hpp"
#include "spectrum/response.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/result.hpp"

namespace acx::pipeline {

// Stage failure: classified (transient errors are retried, poison
// quarantines the record), with a filesystem-safe reason slug that
// becomes the quarantine suffix and the report entry.
struct StageError {
  ErrorClass klass = ErrorClass::kPoison;
  std::string reason;  // e.g. "parse.bad_magic", "signal.too_short"
  std::string detail;
};

// Correction parameters of the V2 chain. The low/high corners are the
// FALLBACK band: the corners stage derives per-record FPL/FSL corners
// from the Fourier spectrum and the band-pass prefers those, dropping
// back to this fixed band only when the search reports no usable
// corner (docs/SPECTRUM.md, "Corner search"). taps is the FIR design
// length, shortened per record to min(taps, largest odd <= n/3) and
// never below kMinCorrectionTaps (shorter records are signal.too_short
// poison). See docs/SIGNAL.md.
// Which filter family the band-pass stage applies: the V2 chain's
// default windowed-sinc FIR, or the Butterworth SOS filtfilt scenario
// (the ObsPy-style IIR alternative — docs/SIGNAL.md, "Butterworth SOS
// band-pass"; selected with acx_process --bandpass butter).
enum class BandPassKind { kFir, kButterworth };

inline const char* to_string(BandPassKind k) {
  return k == BandPassKind::kFir ? "fir" : "butter";
}

struct CorrectionConfig {
  double low_hz = 0.5;    // fallback long-period corner
  double high_hz = 25.0;  // fallback short-period corner
  int taps = 101;
  // Nominal instrument gain for counts -> cm/s2; replaced by
  // per-station calibration when station metadata lands.
  double counts_to_cms2 = 1.0 / 1000.0;
  // Filter family of the band-pass stage; kFir is the canonical chain
  // (the byte-equality contract is defined over it), kButterworth the
  // ObsPy-parity scenario.
  BandPassKind bandpass = BandPassKind::kFir;
  // Analog prototype order of the Butterworth path (ObsPy corners=4).
  int butter_order = 4;
};

inline constexpr int kMinCorrectionTaps = 21;

// Parameters of the spectral stages (corners, fourier, response).
struct SpectrumConfig {
  spectrum::FourierSpec fourier;         // FAS of the corrected record
  spectrum::CornerSearchConfig corners;  // FPL/FSL search tuning
  spectrum::ResponseGrid grid = spectrum::paper_grid();
  // OpenMP team size of the response stage's nested period loop (the
  // paper's inner `omp for` of the fully-parallel driver). 1 keeps the
  // kernel serial; the full driver sets it to the run's team size.
  int response_threads = 1;
  // Rotation angles of the station-scoped RotD sweep (1° steps over
  // a half turn by default — see src/spectrum/rotd.hpp). The sweep
  // fans across response_threads like the response stage.
  int rotd_angles = 180;
};

// Per-record working state threaded through the stages. Each record is
// processed inside its own scratch directory (the paper's temp-folder
// protocol), so a failing record can never corrupt a neighbour's state.
struct RecordContext {
  FileSystem* fs = nullptr;
  std::filesystem::path input_path;
  std::filesystem::path scratch_dir;
  std::filesystem::path out_dir;
  std::string record_id;  // "<station><component>", e.g. "SS01l"

  std::string raw;                       // staged-in bytes
  formats::Record record;                // parsed V1; corrected acc (cm/s2)
  std::vector<double> velocity;          // cm/s, from the integrate stage
  std::vector<double> displacement;      // cm, from the integrate stage
  formats::PeakSet peaks;                // PGA/PGV/PGD, from the peaks stage
  std::optional<spectrum::Corners> corners;  // FPL/FSL, when the search hit
  std::vector<std::string> processing;   // stages applied so far
  std::vector<std::string> history;      // V2 '#' comment lines
  std::filesystem::path output_path;     // set by the write stage
  std::filesystem::path fourier_path;    // set by the fourier stage
  std::filesystem::path response_path;   // set by the response stage
};

// A pipeline process (the reproduction's P#k). Stages must be
// idempotent: a retried stage re-runs from the same context state.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Result<Unit, StageError> run(RecordContext& ctx) = 0;
};

// Instantiate one stage of the chain by name (the names of
// StageGraph::standard and pipeline/reasons.hpp kStageNames). Returns
// nullptr for an unknown name. Instances are re-entrant: they hold only
// their configuration, so the schedulers share one per graph node
// across records and threads.
std::unique_ptr<Stage> make_stage(std::string_view name,
                                  const CorrectionConfig& correction,
                                  const SpectrumConfig& spectrum);

// Station-scoped working state: the per-component chain has finished
// for every member of the station; the station stages combine the
// surviving components and publish station-level outputs to out_dir.
// The component sample vectors point into the owning RecordSlots'
// contexts (corrected acceleration, cm/s2) — valid for the duration of
// the station phase, null when that component is absent or failed.
struct StationContext {
  FileSystem* fs = nullptr;
  std::filesystem::path out_dir;
  std::string station;
  std::string event_id;
  std::string date;
  double dt = 0.0;
  const std::vector<double>* comp_l = nullptr;
  const std::vector<double>* comp_t = nullptr;
  const std::vector<double>* comp_v = nullptr;
  std::filesystem::path rotd_path;  // set by the rotd stage
};

// A station-scoped pipeline process. Same contract as Stage, over a
// StationContext: idempotent, re-entrant, shared across stations and
// threads by the schedulers.
class StationStage {
 public:
  virtual ~StationStage() = default;
  virtual const char* name() const = 0;
  virtual Result<Unit, StageError> run(StationContext& ctx) = 0;
};

// Instantiate one station-scoped stage by name ("rotd"). Returns
// nullptr for an unknown name.
std::unique_ptr<StationStage> make_station_stage(
    std::string_view name, const SpectrumConfig& spectrum);

// The full original chain (redundant stages included), instantiated in
// execution order from StageGraph::standard (src/pipeline/graph.hpp):
// stage_in -> parse -> reparse -> calibrate -> demean -> corners ->
// fas_preview -> bandpass -> detrend -> integrate -> peaks -> repeaks
// -> fourier -> response -> write_v2. Later PRs extend this toward the
// paper's full P#0–P#19 (plots, GEM). Stage-to-paper mapping:
// docs/PIPELINE.md.
std::vector<std::unique_ptr<Stage>> default_stages(
    const CorrectionConfig& correction = {},
    const SpectrumConfig& spectrum = {});

}  // namespace acx::pipeline
