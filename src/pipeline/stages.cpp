#include <cmath>
#include <numeric>

#include "formats/v1.hpp"
#include "formats/v2.hpp"
#include "pipeline/stage.hpp"

namespace acx::pipeline {

namespace {

StageError from_io(const IoError& e) {
  return StageError{e.klass, std::string("io.") + slug(e.code), e.to_string()};
}

// Stage-in: copy the input V1 into the record's private scratch dir and
// keep the bytes in memory. All downstream stages work on the staged
// copy, never on the shared input tree.
class StageIn final : public Stage {
 public:
  const char* name() const override { return "stage_in"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto content = ctx.fs->read_file(ctx.input_path);
    if (!content.ok()) return from_io(content.error());
    ctx.raw = std::move(content).take();
    auto staged = atomic_write_file(
        *ctx.fs, ctx.scratch_dir / ctx.input_path.filename(), ctx.raw);
    if (!staged.ok()) return from_io(staged.error());
    return Unit{};
  }
};

// Parse: strict V1 validation. Any ParseError is poison by definition.
class ParseStage final : public Stage {
 public:
  const char* name() const override { return "parse"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto rec = formats::read_v1(ctx.raw);
    if (!rec.ok()) {
      const formats::ParseError& e = rec.error();
      return StageError{ErrorClass::kPoison,
                        std::string("parse.") + formats::slug(e.code),
                        e.to_string()};
    }
    ctx.record = std::move(rec).take();
    return Unit{};
  }
};

// Demean: remove the DC offset (the paper's baseline step one).
class DemeanStage final : public Stage {
 public:
  const char* name() const override { return "demean"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto& s = ctx.record.samples;
    if (s.empty()) {
      return StageError{ErrorClass::kPoison, "demean.empty_record",
                        "no samples after parse"};
    }
    const double mean =
        std::accumulate(s.begin(), s.end(), 0.0) / static_cast<double>(s.size());
    for (double& v : s) v -= mean;
    ctx.processing.push_back("demean");
    return Unit{};
  }
};

// Detrend: least-squares linear detrend (instrument drift removal).
class DetrendStage final : public Stage {
 public:
  const char* name() const override { return "detrend"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto& s = ctx.record.samples;
    const std::size_t n = s.size();
    if (n < 2) {
      return StageError{ErrorClass::kPoison, "detrend.too_short",
                        "need at least 2 samples"};
    }
    // x = 0..n-1; slope = cov(x, y) / var(x), both around their means.
    const double xm = static_cast<double>(n - 1) / 2.0;
    double sxy = 0.0, sxx = 0.0, ym = 0.0;
    for (std::size_t i = 0; i < n; ++i) ym += s[i];
    ym /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - xm;
      sxy += dx * (s[i] - ym);
      sxx += dx * dx;
    }
    const double slope = sxx > 0 ? sxy / sxx : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] -= ym + slope * (static_cast<double>(i) - xm);
    }
    ctx.processing.push_back("detrend");
    return Unit{};
  }
};

// Write: counts -> cm/s2, emit the V2 into scratch, then stage it out
// into out/ — both through the atomic-write helper, so a crash or an
// injected fault can never leave a partial output visible.
class WriteV2Stage final : public Stage {
 public:
  const char* name() const override { return "write_v2"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    formats::V2Record v2;
    v2.record = ctx.record;
    v2.processing = ctx.processing;
    v2.processing.push_back("write_v2");
    if (v2.record.header.units == "counts") {
      // Nominal instrument gain; replaced by per-station calibration
      // when the real P#1 lands.
      constexpr double kCountsToCms2 = 1.0 / 1000.0;
      for (double& s : v2.record.samples) s *= kCountsToCms2;
    }
    v2.record.header.units = "cm/s2";

    const std::string name =
        ctx.record_id + std::string(formats::kV2Extension);
    const std::string content = formats::write_v2(v2);
    auto scratch = atomic_write_file(*ctx.fs, ctx.scratch_dir / name, content);
    if (!scratch.ok()) return from_io(scratch.error());
    auto out = atomic_write_file(*ctx.fs, ctx.out_dir / name, content);
    if (!out.ok()) return from_io(out.error());
    ctx.output_path = ctx.out_dir / name;
    return Unit{};
  }
};

}  // namespace

std::vector<std::unique_ptr<Stage>> default_stages() {
  std::vector<std::unique_ptr<Stage>> stages;
  stages.push_back(std::make_unique<StageIn>());
  stages.push_back(std::make_unique<ParseStage>());
  stages.push_back(std::make_unique<DemeanStage>());
  stages.push_back(std::make_unique<DetrendStage>());
  stages.push_back(std::make_unique<WriteV2Stage>());
  return stages;
}

}  // namespace acx::pipeline
