#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "formats/spectra.hpp"
#include "formats/v1.hpp"
#include "formats/v2.hpp"
#include "pipeline/stage.hpp"
#include "signal/baseline.hpp"
#include "signal/fir.hpp"
#include "signal/integrate.hpp"
#include "signal/sos.hpp"
#include "signal/peaks.hpp"
#include "signal/timeseries.hpp"
#include "spectrum/rotd.hpp"

namespace acx::pipeline {

namespace {

StageError from_io(const IoError& e) {
  // reason_slug keeps the family split: breaker rejections surface as
  // storage.circuit_open, everything else as io.<code>.
  return StageError{e.klass, reason_slug(e), e.to_string()};
}

// Numerical failures are deterministic for the record's data, so every
// SignalError is poison with a "signal.<slug>" quarantine reason.
StageError from_signal(const signal::SignalError& e) {
  return StageError{ErrorClass::kPoison,
                    std::string("signal.") + signal::slug(e.code),
                    e.to_string()};
}

// Same for the spectral kernels: "spectrum.<slug>", always poison. The
// corners stage filters its soft codes before reaching this.
StageError from_spectrum(const spectrum::SpectrumError& e) {
  return StageError{ErrorClass::kPoison,
                    std::string("spectrum.") + spectrum::slug(e.code),
                    e.to_string()};
}

// Stage-in: copy the input V1 into the record's private scratch dir and
// keep the bytes in memory. All downstream stages work on the staged
// copy, never on the shared input tree.
class StageIn final : public Stage {
 public:
  const char* name() const override { return "stage_in"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto content = ctx.fs->read_file(ctx.input_path);
    if (!content.ok()) return from_io(content.error());
    ctx.raw = std::move(content).take();
    auto staged = atomic_write_file(
        *ctx.fs, ctx.scratch_dir / ctx.input_path.filename(), ctx.raw);
    if (!staged.ok()) return from_io(staged.error());
    return Unit{};
  }
};

// Parse: strict V1 validation. Any ParseError is poison by definition.
class ParseStage final : public Stage {
 public:
  const char* name() const override { return "parse"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto rec = formats::read_v1(ctx.raw);
    if (!rec.ok()) {
      const formats::ParseError& e = rec.error();
      return StageError{ErrorClass::kPoison,
                        std::string("parse.") + formats::slug(e.code),
                        e.to_string()};
    }
    ctx.record = std::move(rec).take();
    return Unit{};
  }
};

// Calibrate: entry gate of the numerical chain. Validates the series
// (finite samples, positive dt) and converts counts to physical
// acceleration (cm/s2).
class CalibrateStage final : public Stage {
 public:
  explicit CalibrateStage(const CorrectionConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "calibrate"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    signal::TimeSeries probe{ctx.record.header.dt, signal::Units::kCounts,
                             {}};
    probe.samples = ctx.record.samples;  // validated, then discarded
    auto valid = signal::validate(probe);
    if (!valid.ok()) return from_signal(valid.error());

    if (ctx.record.header.units == "counts") {
      for (double& s : ctx.record.samples) s *= cfg_.counts_to_cms2;
      char buf[96];
      std::snprintf(buf, sizeof buf, "calibrate: counts -> cm/s2 (gain %.3e)",
                    cfg_.counts_to_cms2);
      ctx.history.push_back(buf);
    }
    ctx.record.header.units = "cm/s2";
    ctx.processing.push_back("calibrate");
    return Unit{};
  }

 private:
  CorrectionConfig cfg_;
};

// Demean: remove the DC offset (the paper's baseline step one).
class DemeanStage final : public Stage {
 public:
  const char* name() const override { return "demean"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    // Idempotence under retry: work on a copy, commit on success.
    std::vector<double> samples = ctx.record.samples;
    auto mean = signal::remove_mean(samples);
    if (!mean.ok()) return from_signal(mean.error());
    ctx.record.samples = std::move(samples);
    ctx.processing.push_back("demean");
    return Unit{};
  }
};

// Corners: per-record FPL/FSL search on the Fourier amplitude spectrum
// of the demeaned (still unfiltered) acceleration — the paper's
// CalculateInflectionPoint. A failed search (spectrum too short or no
// confirmed crossing) is NOT poison: the record falls back to the
// fixed CorrectionConfig band, and the history records which path was
// taken. Hard kernel errors (non-finite data, bad config) stay poison.
class CornersStage final : public Stage {
 public:
  CornersStage(const CorrectionConfig& correction, const SpectrumConfig& cfg)
      : correction_(correction), cfg_(cfg) {}
  const char* name() const override { return "corners"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto fas = spectrum::fourier_amplitude(ctx.record.samples,
                                           ctx.record.header.dt, cfg_.fourier);
    if (!fas.ok()) return from_spectrum(fas.error());

    auto found = spectrum::find_corners(fas.value(), cfg_.corners);
    char buf[128];
    if (found.ok()) {
      ctx.corners = found.value();
      std::snprintf(buf, sizeof buf,
                    "corners: fsl %.4f Hz, fpl %.4f Hz (spectrum search)",
                    ctx.corners->fsl_hz, ctx.corners->fpl_hz);
    } else {
      const spectrum::SpectrumError& e = found.error();
      const bool soft = e.code == spectrum::SpectrumError::Code::kNoCorner ||
                        e.code == spectrum::SpectrumError::Code::kTooShort;
      if (!soft) return from_spectrum(e);
      ctx.corners.reset();
      std::snprintf(buf, sizeof buf,
                    "corners: search failed (spectrum.%s), falling back to "
                    "fixed %.2f-%.2f Hz band",
                    spectrum::slug(e.code), correction_.low_hz,
                    correction_.high_hz);
    }
    ctx.history.push_back(buf);
    ctx.processing.push_back("corners");
    return Unit{};
  }

 private:
  CorrectionConfig correction_;
  SpectrumConfig cfg_;
};

// Reparse (redundant, paper P#6 analogue): the original pipeline
// re-validated the staged bytes it had already parsed. Nothing
// consumes the result; the optimized drivers prune this node.
class ReparseStage final : public Stage {
 public:
  const char* name() const override { return "reparse"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto rec = formats::read_v1(ctx.raw);
    if (!rec.ok()) {
      const formats::ParseError& e = rec.error();
      return StageError{ErrorClass::kPoison,
                        std::string("parse.") + formats::slug(e.code),
                        e.to_string()};
    }
    return Unit{};  // result discarded — that is the point
  }
};

// FAS preview (redundant, paper P#12 analogue): a second Fourier
// amplitude spectrum of the demeaned record, written as a scratch
// preview artifact nothing downstream reads. Pruned by the optimized
// drivers; the real FAS output is the fourier stage's F file.
class FasPreviewStage final : public Stage {
 public:
  explicit FasPreviewStage(const SpectrumConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "fas_preview"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto fas = spectrum::fourier_amplitude(ctx.record.samples,
                                           ctx.record.header.dt, cfg_.fourier);
    if (!fas.ok()) return from_spectrum(fas.error());
    const spectrum::FourierSpectrum& spec = fas.value();
    char head[96];
    std::snprintf(head, sizeof head, "# fas preview: %zu bins, df %.6f\n",
                  spec.size(), spec.df);
    auto wrote = atomic_write_file(
        *ctx.fs, ctx.scratch_dir / (ctx.record_id + ".fas-preview"), head);
    if (!wrote.ok()) return from_io(wrote.error());
    return Unit{};
  }

 private:
  SpectrumConfig cfg_;
};

// Band-pass: zero-phase filter between the record's FPL/FSL corners
// (fixed instrument band when the search fell back). The default
// family is the windowed-sinc FIR, whose design length adapts to
// short records (min(taps, odd(n/3))); the Butterworth SOS scenario
// (cfg.bandpass == kButterworth) applies the ObsPy-style IIR filtfilt
// with the same corners instead. Both paths share the too-short
// poison rule so quarantine behavior is family-independent; a record
// too short for even kMinCorrectionTaps is poison.
class BandPassStage final : public Stage {
 public:
  explicit BandPassStage(const CorrectionConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "bandpass"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    const std::size_t n = ctx.record.samples.size();
    int taps = static_cast<int>(n / 3);
    if (taps % 2 == 0) --taps;
    taps = std::min(taps, cfg_.taps);
    if (taps < kMinCorrectionTaps) {
      return from_signal(signal::SignalError{
          signal::SignalError::Code::kTooShort,
          "record has " + std::to_string(n) + " samples; band-pass needs >= " +
              std::to_string(3 * kMinCorrectionTaps)});
    }
    const double low = ctx.corners ? ctx.corners->fsl_hz : cfg_.low_hz;
    const double high = ctx.corners ? ctx.corners->fpl_hz : cfg_.high_hz;
    char buf[128];
    if (cfg_.bandpass == BandPassKind::kButterworth) {
      signal::ButterworthSpec spec{low, high, cfg_.butter_order};
      auto sos = signal::design_butterworth_bandpass(spec,
                                                     ctx.record.header.dt);
      if (!sos.ok()) return from_signal(sos.error());
      auto filtered = signal::filtfilt_sos(sos.value(), ctx.record.samples);
      if (!filtered.ok()) return from_signal(filtered.error());
      ctx.record.samples = std::move(filtered).take();
      std::snprintf(buf, sizeof buf,
                    "bandpass: butter %.4f-%.4f Hz, order %d, sos, "
                    "zero-phase (%s)",
                    low, high, cfg_.butter_order,
                    ctx.corners ? "fsl/fpl" : "fixed band");
    } else {
      signal::BandPassSpec spec{low, high, taps};
      auto h = signal::design_bandpass(spec, ctx.record.header.dt);
      if (!h.ok()) return from_signal(h.error());
      auto filtered = signal::filtfilt(h.value(), ctx.record.samples);
      if (!filtered.ok()) return from_signal(filtered.error());
      ctx.record.samples = std::move(filtered).take();
      std::snprintf(buf, sizeof buf,
                    "bandpass: fir %.4f-%.4f Hz, %d taps, hamming, "
                    "zero-phase (%s)",
                    low, high, taps, ctx.corners ? "fsl/fpl" : "fixed band");
    }
    ctx.history.push_back(buf);
    ctx.processing.push_back("bandpass");
    return Unit{};
  }

 private:
  CorrectionConfig cfg_;
};

// Detrend: least-squares linear detrend (instrument drift removal).
class DetrendStage final : public Stage {
 public:
  const char* name() const override { return "detrend"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    std::vector<double> samples = ctx.record.samples;
    auto trend = signal::detrend_linear(samples);
    if (!trend.ok()) return from_signal(trend.error());
    ctx.record.samples = std::move(samples);
    ctx.processing.push_back("detrend");
    return Unit{};
  }
};

// Integrate: corrected acceleration -> velocity -> displacement
// (cm/s2 -> cm/s -> cm), trapezoidal rule, zero initial conditions.
class IntegrateStage final : public Stage {
 public:
  const char* name() const override { return "integrate"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    signal::TimeSeries acc{ctx.record.header.dt, signal::Units::kCmPerS2, {}};
    acc.samples = ctx.record.samples;
    auto vel = signal::integrate(acc);
    if (!vel.ok()) return from_signal(vel.error());
    auto disp = signal::integrate(vel.value());
    if (!disp.ok()) return from_signal(disp.error());
    ctx.velocity = std::move(vel.value().samples);
    ctx.displacement = std::move(disp.value().samples);
    ctx.history.push_back(
        "integrate: trapezoid, cm/s2 -> cm/s -> cm, v0 = d0 = 0");
    ctx.processing.push_back("integrate");
    return Unit{};
  }
};

// Peaks: PGA/PGV/PGD with sample index and time, from the corrected
// acceleration and the integrated series.
class PeaksStage final : public Stage {
 public:
  const char* name() const override { return "peaks"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    const double dt = ctx.record.header.dt;
    auto pga = signal::extract_peak(ctx.record.samples, dt);
    if (!pga.ok()) return from_signal(pga.error());
    auto pgv = signal::extract_peak(ctx.velocity, dt);
    if (!pgv.ok()) return from_signal(pgv.error());
    auto pgd = signal::extract_peak(ctx.displacement, dt);
    if (!pgd.ok()) return from_signal(pgd.error());
    ctx.peaks.present = true;
    ctx.peaks.pga = {pga.value().value, pga.value().time};
    ctx.peaks.pgv = {pgv.value().value, pgv.value().time};
    ctx.peaks.pgd = {pgd.value().value, pgd.value().time};
    ctx.processing.push_back("peaks");
    return Unit{};
  }
};

// Re-peaks (redundant, paper P#14 analogue): the original pipeline
// re-extracted the max values the peaks stage had already extracted,
// then threw them away. Pruned by the optimized drivers.
class RepeaksStage final : public Stage {
 public:
  const char* name() const override { return "repeaks"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    const double dt = ctx.record.header.dt;
    auto pga = signal::extract_peak(ctx.record.samples, dt);
    if (!pga.ok()) return from_signal(pga.error());
    auto pgv = signal::extract_peak(ctx.velocity, dt);
    if (!pgv.ok()) return from_signal(pgv.error());
    auto pgd = signal::extract_peak(ctx.displacement, dt);
    if (!pgd.ok()) return from_signal(pgd.error());
    return Unit{};  // results discarded
  }
};

// Fourier: FAS of the corrected acceleration, written as the F output
// (Stage VIII of the paper). Carries the FPL/FSL corners the band-pass
// actually used, when the search produced them.
class FourierStage final : public Stage {
 public:
  explicit FourierStage(const SpectrumConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "fourier"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto fas = spectrum::fourier_amplitude(ctx.record.samples,
                                           ctx.record.header.dt, cfg_.fourier);
    if (!fas.ok()) return from_spectrum(fas.error());
    const spectrum::FourierSpectrum& spec = fas.value();

    formats::FRecord f;
    f.header = ctx.record.header;
    f.header.npts = static_cast<long>(spec.size());
    f.header.units = "cm/s";
    f.df = spec.df;
    f.nfft = static_cast<long>(spec.nfft);
    f.window = spectrum::to_string(spec.window);
    if (ctx.corners) {
      f.has_corners = true;
      f.fsl_hz = ctx.corners->fsl_hz;
      f.fpl_hz = ctx.corners->fpl_hz;
    }
    f.amplitude = spec.amplitude;

    const std::string name =
        ctx.record_id + std::string(formats::kFExtension);
    const std::string content = formats::write_f(f);
    auto scratch = atomic_write_file(*ctx.fs, ctx.scratch_dir / name, content);
    if (!scratch.ok()) return from_io(scratch.error());
    auto out = atomic_write_file(*ctx.fs, ctx.out_dir / name, content);
    if (!out.ok()) return from_io(out.error());
    ctx.fourier_path = ctx.out_dir / name;

    char buf[96];
    std::snprintf(buf, sizeof buf, "fourier: fas dt*|X[k]|, nfft %ld, window %s",
                  f.nfft, f.window.c_str());
    ctx.history.push_back(buf);
    ctx.processing.push_back("fourier");
    return Unit{};
  }

 private:
  SpectrumConfig cfg_;
};

// Response: SD/SV/SA over the (period, damping) grid via the exact
// Nigam–Jennings recurrence, written as the R output. This is the
// paper's Stage IX — the dominant share of sequential runtime and the
// primary OpenMP target.
class ResponseStage final : public Stage {
 public:
  explicit ResponseStage(const SpectrumConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "response"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    auto spec = spectrum::response_spectrum(ctx.record.samples,
                                            ctx.record.header.dt, cfg_.grid,
                                            cfg_.response_threads);
    if (!spec.ok()) return from_spectrum(spec.error());
    spectrum::ResponseSpectrum rs = std::move(spec).take();

    formats::RRecord r;
    r.header = ctx.record.header;
    r.header.npts = static_cast<long>(rs.periods.size());
    r.header.units.clear();  // the R block mixes cm, cm/s and cm/s2
    r.dampings = std::move(rs.dampings);
    r.periods = std::move(rs.periods);
    r.sd = std::move(rs.sd);
    r.sv = std::move(rs.sv);
    r.sa = std::move(rs.sa);

    const std::string name =
        ctx.record_id + std::string(formats::kRExtension);
    const std::string content = formats::write_r(r);
    auto scratch = atomic_write_file(*ctx.fs, ctx.scratch_dir / name, content);
    if (!scratch.ok()) return from_io(scratch.error());
    auto out = atomic_write_file(*ctx.fs, ctx.out_dir / name, content);
    if (!out.ok()) return from_io(out.error());
    ctx.response_path = ctx.out_dir / name;

    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "response: nigam-jennings, %zu periods x %zu dampings",
                  r.periods.size(), r.dampings.size());
    ctx.history.push_back(buf);
    ctx.processing.push_back("response");
    return Unit{};
  }

 private:
  SpectrumConfig cfg_;
};

// Write: emit the V2 into scratch, then stage it out into out/ — both
// through the atomic-write helper, so a crash or an injected fault can
// never leave a partial output visible.
class WriteV2Stage final : public Stage {
 public:
  const char* name() const override { return "write_v2"; }
  Result<Unit, StageError> run(RecordContext& ctx) override {
    formats::V2Record v2;
    v2.record = ctx.record;
    v2.processing = ctx.processing;
    v2.processing.push_back("write_v2");
    v2.peaks = ctx.peaks;
    v2.comments = ctx.history;

    const std::string name =
        ctx.record_id + std::string(formats::kV2Extension);
    const std::string content = formats::write_v2(v2);
    auto scratch = atomic_write_file(*ctx.fs, ctx.scratch_dir / name, content);
    if (!scratch.ok()) return from_io(scratch.error());
    auto out = atomic_write_file(*ctx.fs, ctx.out_dir / name, content);
    if (!out.ok()) return from_io(out.error());
    ctx.output_path = ctx.out_dir / name;
    return Unit{};
  }
};

// Rotd (station-scoped): orientation-independent RotD00/50/100 + the
// geometric mean over both horizontal components, published as the
// station's .rotd output. The runner guarantees comp_l/comp_t are the
// detrended (corrected) accelerations of surviving members with equal
// lengths and a shared dt before this stage is dispatched; the kernel
// still re-checks, so a broken precondition is typed poison, never UB.
class RotdStage final : public StationStage {
 public:
  explicit RotdStage(const SpectrumConfig& cfg) : cfg_(cfg) {}
  const char* name() const override { return "rotd"; }
  Result<Unit, StageError> run(StationContext& ctx) override {
    auto spec =
        spectrum::rotd_spectrum(*ctx.comp_l, *ctx.comp_t, ctx.dt, cfg_.grid,
                                cfg_.rotd_angles, cfg_.response_threads);
    if (!spec.ok()) return from_spectrum(spec.error());
    spectrum::RotdSpectrum rs = std::move(spec).take();

    formats::RotdRecord rd;
    rd.station = ctx.station;
    rd.event_id = ctx.event_id;
    rd.date = ctx.date;
    rd.dt = ctx.dt;
    rd.angles = rs.angles;
    rd.dampings = std::move(rs.dampings);
    rd.periods = std::move(rs.periods);
    rd.rotd00 = std::move(rs.rotd00);
    rd.rotd50 = std::move(rs.rotd50);
    rd.rotd100 = std::move(rs.rotd100);
    rd.geomean = std::move(rs.geomean);

    // Single atomic publish: the station output appears in out/ whole
    // or not at all, no matter how the component tasks were scheduled.
    const std::string name =
        ctx.station + std::string(formats::kRotdExtension);
    auto out = atomic_write_file(*ctx.fs, ctx.out_dir / name,
                                 formats::write_rotd(rd));
    if (!out.ok()) return from_io(out.error());
    ctx.rotd_path = ctx.out_dir / name;
    return Unit{};
  }

 private:
  SpectrumConfig cfg_;
};

}  // namespace

std::unique_ptr<StationStage> make_station_stage(
    std::string_view name, const SpectrumConfig& spectrum) {
  if (name == "rotd") return std::make_unique<RotdStage>(spectrum);
  return nullptr;
}

std::unique_ptr<Stage> make_stage(std::string_view name,
                                  const CorrectionConfig& correction,
                                  const SpectrumConfig& spectrum) {
  if (name == "stage_in") return std::make_unique<StageIn>();
  if (name == "parse") return std::make_unique<ParseStage>();
  if (name == "reparse") return std::make_unique<ReparseStage>();
  if (name == "calibrate") return std::make_unique<CalibrateStage>(correction);
  if (name == "demean") return std::make_unique<DemeanStage>();
  if (name == "corners")
    return std::make_unique<CornersStage>(correction, spectrum);
  if (name == "fas_preview") return std::make_unique<FasPreviewStage>(spectrum);
  if (name == "bandpass") return std::make_unique<BandPassStage>(correction);
  if (name == "detrend") return std::make_unique<DetrendStage>();
  if (name == "integrate") return std::make_unique<IntegrateStage>();
  if (name == "peaks") return std::make_unique<PeaksStage>();
  if (name == "repeaks") return std::make_unique<RepeaksStage>();
  if (name == "fourier") return std::make_unique<FourierStage>(spectrum);
  if (name == "response") return std::make_unique<ResponseStage>(spectrum);
  if (name == "write_v2") return std::make_unique<WriteV2Stage>();
  return nullptr;
}

}  // namespace acx::pipeline
