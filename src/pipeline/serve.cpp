#include "pipeline/serve.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "pipeline/runner.hpp"
#include "pipeline/scheduler.hpp"
#include "util/bounded_queue.hpp"
#include "util/clock.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/work_pool.hpp"

namespace acx::pipeline {

namespace stdfs = std::filesystem;

namespace {

constexpr std::size_t kTrajectoryCap = 256;
constexpr const char* kManifestExtension = ".json";

bool valid_event_id(const std::string& id) {
  if (id.empty() || id.size() > 128 || id.front() == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Json sample_to_json(const ServeEventSample& s) {
  Json j = Json::object();
  j.set("index", static_cast<double>(s.index));
  j.set("event", s.event);
  j.set("status", s.status);
  j.set("hits", static_cast<double>(s.hits));
  j.set("misses", static_cast<double>(s.misses));
  j.set("hit_rate", s.hit_rate);
  j.set("seconds", s.seconds);
  return j;
}

constexpr ErrorClass classify_io(const IoError& e) { return e.klass; }

}  // namespace

Json ServeStats::to_json() const {
  Json root = Json::object();
  root.set("version", kVersion);
  root.set("uptime_seconds", uptime_seconds);
  root.set("driver", driver);
  root.set("threads", threads);
  root.set("event_workers", event_workers);

  Json queue = Json::object();
  queue.set("capacity", static_cast<double>(queue_capacity));
  queue.set("depth", static_cast<double>(queue_depth));
  root.set("queue", std::move(queue));

  Json events = Json::object();
  events.set("admitted", static_cast<double>(admitted));
  events.set("served", static_cast<double>(served));
  events.set("ok", static_cast<double>(ok));
  events.set("degraded", static_cast<double>(degraded));
  events.set("quarantined", static_cast<double>(quarantined));
  events.set("malformed", static_cast<double>(malformed));
  events.set("duplicates", static_cast<double>(duplicates));
  events.set("in_flight", static_cast<double>(in_flight));
  root.set("events", std::move(events));

  Json records = Json::object();
  records.set("ok", static_cast<double>(records_ok));
  records.set("degraded", static_cast<double>(records_degraded));
  records.set("quarantined", static_cast<double>(records_quarantined));
  root.set("records", std::move(records));
  root.set("points", static_cast<double>(points));

  Json sustained = Json::object();
  const double up = uptime_seconds > 0 ? uptime_seconds : 0;
  sustained.set("events_per_second", up > 0 ? served / up : 0.0);
  sustained.set("records_per_second",
                up > 0 ? (records_ok + records_degraded) / up : 0.0);
  sustained.set("points_per_second", up > 0 ? points / up : 0.0);
  root.set("sustained", std::move(sustained));

  Json plan = Json::object();
  plan.set("cumulative_hits", static_cast<double>(cache_hits));
  plan.set("cumulative_misses", static_cast<double>(cache_misses));
  plan.set("first_event", sample_to_json(first_event));
  plan.set("last_event", sample_to_json(last_event));
  Json traj = Json::array();
  for (const ServeEventSample& s : trajectory) traj.push(sample_to_json(s));
  plan.set("trajectory", std::move(traj));
  root.set("plan_cache", std::move(plan));

  Json pool = Json::object();
  pool.set("threads", pool_threads);
  pool.set("executed", static_cast<double>(pool_executed));
  pool.set("steals", static_cast<double>(pool_steals));
  pool.set("stolen_tasks", static_cast<double>(pool_stolen_tasks));
  pool.set("injector_takes", static_cast<double>(pool_injector_takes));
  pool.set("overflow", static_cast<double>(pool_overflow));
  pool.set("parks", static_cast<double>(pool_parks));
  pool.set("wakes", static_cast<double>(pool_wakes));
  pool.set("inline_runs", static_cast<double>(pool_inline_runs));
  root.set("pool", std::move(pool));

  Json breaker = Json::object();
  breaker.set("rejected_ops", static_cast<double>(breaker_rejected_ops));
  breaker.set("opens", breaker_opens);
  breaker.set("half_open_recoveries", breaker_half_open_recoveries);
  root.set("breaker", std::move(breaker));

  Json health = Json::object();
  health.set("scan_errors", static_cast<double>(scan_errors));
  health.set("stats_write_failures", static_cast<double>(stats_write_failures));
  root.set("health", std::move(health));
  return root;
}

SpoolServer::SpoolServer(FileSystem& fs, ServeConfig config)
    : fs_(fs), cfg_(std::move(config)) {
  if (cfg_.event_workers < 1) cfg_.event_workers = 1;
  if (cfg_.shards < 1) cfg_.shards = 1;
  if (cfg_.stats_every < 1) cfg_.stats_every = 1;
  if (cfg_.poll_ms < 1) cfg_.poll_ms = 1;
  if (!cfg_.runner.sleep) {
    cfg_.runner.sleep = [](int ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  // The record fan-out of every event lands on the shared pool.
  cfg_.runner.pool = cfg_.pool;
}

SpoolServer::ManifestJob SpoolServer::parse_manifest(
    const std::string& name, const std::string& text,
    std::string& error) const {
  ManifestJob job;
  job.manifest = name;
  auto parsed = Json::parse(text);
  if (!parsed.ok()) {
    error = "not valid JSON at byte " + std::to_string(parsed.error().offset);
    return job;
  }
  const Json doc = std::move(parsed).take();
  if (!doc.is_object()) {
    error = "manifest root is not an object";
    return job;
  }
  const std::string event = doc.get_string("event");
  if (!valid_event_id(event)) {
    error = "missing or invalid event id";
    return job;
  }
  const std::string input = doc.get_string("input");
  if (input.empty()) {
    error = "missing input directory";
    return job;
  }
  job.priority_bytes =
      static_cast<std::uintmax_t>(std::max(0.0, doc.get_number("priority_bytes", 0)));
  job.deadline_soft_s = doc.get_number("deadline_soft_s", -1);
  job.deadline_hard_s = doc.get_number("deadline_hard_s", -1);
  job.input_dir = input;
  job.event = event;  // set last: non-empty event == parsed successfully
  return job;
}

void SpoolServer::process_event(const ManifestJob& job) {
  const std::string shard =
      "s" + std::to_string(fnv1a64(job.event) %
                           static_cast<std::uint64_t>(cfg_.shards));
  const stdfs::path work_dir = work_root_ / "events" / shard / job.event;

  // Fresh slate: a re-submitted event id after a crash must not inherit
  // a half-written work dir.
  (void)fs_.remove_all(work_dir);

  RunnerConfig runner = cfg_.runner;
  if (job.deadline_soft_s >= 0) runner.deadline.soft_seconds = job.deadline_soft_s;
  if (job.deadline_hard_s >= 0) runner.deadline.hard_seconds = job.deadline_hard_s;

  const auto started = std::chrono::steady_clock::now();
  StageRunner event_runner(fs_, runner);
  auto report = event_runner.run_event(job.input_dir, work_dir);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  if (report.ok()) {
    record_completion(job, report.value().status(), &report.value(), seconds);
  } else {
    // Run-level failure (input dir unusable, report unwritable): the
    // event is reported as quarantined — counted, never lost.
    record_completion(job, "quarantined", nullptr, seconds);
  }

  // Manifest audit trail: claimed -> done once the event is reported.
  // Retried like every other storage touch: an injected transient fault
  // here must not strand the manifest in claimed/ on an otherwise
  // healthy service.
  (void)run_with_retry<Unit, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep, classify_io,
      [&] { return fs_.rename(claimed_ / job.manifest, done_ / job.manifest); });
}

void SpoolServer::record_completion(const ManifestJob& job,
                                    const std::string& status,
                                    const RunReport* report, double seconds) {
  bool write = false;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.served;
    if (status == "ok") ++stats_.ok;
    else if (status == "degraded") ++stats_.degraded;
    else ++stats_.quarantined;

    ServeEventSample sample;
    sample.index = stats_.served;
    sample.event = job.event;
    sample.status = status;
    sample.seconds = seconds;
    if (report) {
      stats_.records_ok += report->count_ok() - report->count_degraded();
      stats_.records_degraded += report->count_degraded();
      stats_.records_quarantined += report->count_quarantined();
      stats_.points += report->total_points();
      for (const auto& [stage, profile] : report->stage_profile()) {
        sample.hits += profile.cache_hits;
        sample.misses += profile.cache_misses;
      }
      const long long touched = sample.hits + sample.misses;
      sample.hit_rate =
          touched > 0 ? static_cast<double>(sample.hits) / touched : 0;
      stats_.cache_hits += sample.hits;
      stats_.cache_misses += sample.misses;
    }
    if (stats_.served == 1) stats_.first_event = sample;
    stats_.last_event = sample;
    // Downsampled trajectory: keep every stride-th completion; once the
    // cap is hit, halve the resolution (drop every other kept row and
    // double the stride), so a million-event service still carries a
    // bounded, evenly spaced amortization curve.
    if ((sample.index - 1) % trajectory_stride_ == 0) {
      if (stats_.trajectory.size() >= kTrajectoryCap) {
        std::vector<ServeEventSample> thinned;
        thinned.reserve(kTrajectoryCap / 2 + 1);
        for (std::size_t i = 0; i < stats_.trajectory.size(); i += 2) {
          thinned.push_back(stats_.trajectory[i]);
        }
        stats_.trajectory = std::move(thinned);
        trajectory_stride_ *= 2;
        if ((sample.index - 1) % trajectory_stride_ == 0) {
          stats_.trajectory.push_back(sample);
        }
      } else {
        stats_.trajectory.push_back(sample);
      }
    }
    write = stats_.served % cfg_.stats_every == 0;
  }
  if (write) write_stats();
}

ServeStats SpoolServer::snapshot_locked() {
  ServeStats snap = stats_;
  snap.uptime_seconds = steady_now_seconds() - started_at_;
  snap.driver = to_string(cfg_.runner.driver);
  snap.threads = cfg_.pool ? cfg_.pool->thread_count()
                           : resolve_threads(cfg_.runner.threads);
  snap.event_workers = cfg_.event_workers;
  snap.queue_capacity = cfg_.queue_capacity;
  snap.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  if (cfg_.pool) {
    const WorkPoolStats p = cfg_.pool->stats();
    snap.pool_threads = cfg_.pool->thread_count();
    snap.pool_executed = p.executed;
    snap.pool_steals = p.steals;
    snap.pool_stolen_tasks = p.stolen_tasks;
    snap.pool_injector_takes = p.injector_takes;
    snap.pool_overflow = p.overflow;
    snap.pool_parks = p.parks;
    snap.pool_wakes = p.wakes;
    snap.pool_inline_runs = p.inline_runs;
  }
  if (cfg_.runner.breaker) {
    const storage::BreakerCounters after = cfg_.runner.breaker->counters();
    snap.breaker_rejected_ops =
        after.rejected_ops - breaker_before_.rejected_ops;
    snap.breaker_opens = after.opens - breaker_before_.opens;
    snap.breaker_half_open_recoveries =
        after.half_open_recoveries - breaker_before_.half_open_recoveries;
  }
  return snap;
}

void SpoolServer::write_stats() {
  ServeStats snap;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snap = snapshot_locked();
  }
  const std::string body = snap.dump();
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep, classify_io, [&] {
        return atomic_write_file(fs_, work_root_ / kServeStatsFileName, body);
      });
  if (!wrote.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.stats_write_failures;  // absorbed; the next completion retries
  }
}

Result<ServeStats, IoError> SpoolServer::run(const stdfs::path& spool,
                                             const stdfs::path& work_root) {
  spool_ = spool;
  claimed_ = spool / "claimed";
  rejected_ = spool / "rejected";
  done_ = spool / "done";
  work_root_ = work_root;
  started_at_ = steady_now_seconds();
  breaker_before_ = cfg_.runner.breaker ? cfg_.runner.breaker->counters()
                                        : storage::BreakerCounters{};

  for (const stdfs::path& dir :
       {spool_, spool_ / "tmp", claimed_, rejected_, done_,
        work_root_ / "events"}) {
    auto made = fs_.create_directories(dir);
    if (!made.ok()) return std::move(made).take_error();
  }

  const BatchConfig::Priority priority = cfg_.priority;
  auto less = [priority](const ManifestJob& a, const ManifestJob& b) {
    switch (priority) {
      case BatchConfig::Priority::kLargest:
        return a.priority_bytes < b.priority_bytes;
      case BatchConfig::Priority::kSmallest:
        return a.priority_bytes > b.priority_bytes;
      case BatchConfig::Priority::kFifo: break;
    }
    return false;  // equal priority everywhere: pure FIFO
  };
  BoundedPriorityQueue<ManifestJob, decltype(less)> queue(cfg_.queue_capacity,
                                                          less);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg_.event_workers));
  for (int w = 0; w < cfg_.event_workers; ++w) {
    workers.emplace_back([&] {
      while (auto job = queue.pop()) {
        queue_depth_.store(queue.size(), std::memory_order_relaxed);
        in_flight_.fetch_add(1, std::memory_order_relaxed);
        process_event(*job);
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }

  // The request stream: scan, claim by atomic rename, parse, admit.
  double idle_since = steady_now_seconds();
  bool admitting = true;
  for (;;) {
    std::vector<stdfs::path> manifests;
    if (admitting) {
      auto listed = fs_.list_dir(spool_);
      if (listed.ok()) {
        for (const stdfs::path& p : listed.value()) {
          if (p.extension() == kManifestExtension) manifests.push_back(p);
        }
        std::sort(manifests.begin(), manifests.end());
      } else {
        // A storage hiccup on the scan path must not kill the service:
        // count it and retry on the next poll.
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.scan_errors;
      }
    }

    for (const stdfs::path& manifest : manifests) {
      // max_events can trip mid-scan; the rest of this scan's manifests
      // stay unclaimed in the spool root for the next service instance.
      if (!admitting) break;
      const std::string name = manifest.filename().string();
      // Claiming is the atomic handoff: whoever renames the manifest
      // out of the spool root owns it. A failed rename (producer still
      // writing via tmp/, or a racing claimer) is retried next scan.
      if (!fs_.rename(manifest, claimed_ / name).ok()) continue;
      auto text = run_with_retry<std::string, IoError>(
          cfg_.runner.retry, cfg_.runner.sleep, classify_io,
          [&] { return fs_.read_file(claimed_ / name); });
      std::string error;
      ManifestJob job = text.ok()
                            ? parse_manifest(name, text.value(), error)
                            : ManifestJob{};
      if (!text.ok()) error = "unreadable manifest";
      bool duplicate = false;
      if (!job.event.empty()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        duplicate = !seen_events_.insert(job.event).second;
      }
      if (job.event.empty() || duplicate) {
        if (duplicate) error = "duplicate event id: " + job.event;
        (void)fs_.rename(claimed_ / name, rejected_ / name);
        (void)fs_.write_file(rejected_ / (name + ".reason"), error + "\n");
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (duplicate) {
          ++stats_.duplicates;
        } else {
          ++stats_.malformed;
        }
        continue;
      }
      // Backpressure: blocks while queue_capacity events are pending.
      if (queue.push(std::move(job)) == QueuePushResult::kClosed) break;
      queue_depth_.store(queue.size(), std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.admitted;
        if (cfg_.max_events > 0 && stats_.admitted >= cfg_.max_events) {
          admitting = false;
        }
      }
      idle_since = steady_now_seconds();
    }

    if (!admitting && queue.size() == 0 &&
        in_flight_.load(std::memory_order_relaxed) == 0) {
      break;  // max_events reached and everything drained
    }
    if (manifests.empty()) {
      // The sentinel is only honored once the spool is visibly empty,
      // so "drop N manifests, then the sentinel" admits all N first.
      if (fs_.exists(spool_ / kServeShutdownSentinel)) break;
      if (cfg_.idle_exit_seconds > 0 && queue.size() == 0 &&
          in_flight_.load(std::memory_order_relaxed) == 0 &&
          steady_now_seconds() - idle_since >= cfg_.idle_exit_seconds) {
        break;
      }
    } else {
      idle_since = steady_now_seconds();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.poll_ms));
  }

  // Drain: stop admission, let the workers finish every queued event.
  queue.close();
  for (std::thread& t : workers) t.join();
  queue_depth_.store(0, std::memory_order_relaxed);

  // Consume the sentinel so the next serve run does not instantly exit.
  if (fs_.exists(spool_ / kServeShutdownSentinel)) {
    (void)fs_.remove_all(spool_ / kServeShutdownSentinel);
  }

  ServeStats final_stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    final_stats = snapshot_locked();
  }
  const std::string body = final_stats.dump();
  auto wrote = run_with_retry<Unit, IoError>(
      cfg_.runner.retry, cfg_.runner.sleep, classify_io, [&] {
        return atomic_write_file(fs_, work_root_ / kServeStatsFileName, body);
      });
  if (!wrote.ok()) return std::move(wrote).take_error();
  return final_stats;
}

}  // namespace acx::pipeline
