#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/result.hpp"

namespace acx::pipeline {

// One attempt-group per stage executed for a record.
struct StageAttempt {
  std::string stage;
  int attempts = 1;  // total invocations (1 = no retry)
  bool ok = false;
  std::string error;   // reason slug of the final failure, empty when ok
  double seconds = 0;  // wall clock across all attempts of this stage
  // v5 profiling split, drained from the thread-local acx::perf
  // counters around the stage: how often the plan caches (ResponsePlan,
  // FftPlan, smoothing extents) served vs built, and how the stage's
  // time divides into amortizable plan setup vs the numeric kernels
  // proper. Untimed glue (I/O, validation) is in `seconds` only.
  long long cache_hits = 0;
  long long cache_misses = 0;
  double setup_seconds = 0;
  double kernel_seconds = 0;
};

// v6: one non-essential stage the executor skipped (deadline pressure)
// or forgave after a storage-layer failure, with the registered reason
// ("batch.deadline_soft", "storage.circuit_open", ...). A record with
// shed stages that still publishes its essential V2 is *degraded*, not
// quarantined — the graceful-degradation contract of docs/BATCH.md.
struct ShedStage {
  std::string stage;
  std::string reason;
};

struct RecordOutcome {
  enum class Status { kOk, kQuarantined };

  std::string record;      // record id, e.g. "SS01l"
  std::string input;       // input file path
  Status status = Status::kOk;
  // v6: published, but with non-essential stages shed. Only meaningful
  // for ok records; status_string() folds it into "degraded".
  bool degraded = false;
  std::vector<ShedStage> shed;
  // v6: published data points (sample count of the corrected record);
  // 0 for quarantined records. Feeds the batch runner's sustained
  // points/s metric.
  long long points = 0;
  std::string output;      // primary V2 path (ok records)
  // Every file the record produced, V2 first, then the F and R spectra
  // — the set acx_validate audits against out/.
  std::vector<std::string> outputs;
  std::string reason;      // quarantine reason slug (quarantined records)
  std::string quarantine;  // quarantine file path
  std::vector<StageAttempt> stages;
  int retries = 0;     // extra attempts beyond the first, summed over stages
  double seconds = 0;  // wall clock of this record, summed over stages

  // "ok" | "degraded" | "quarantined".
  const char* status_string() const {
    if (status == Status::kQuarantined) return "quarantined";
    return degraded ? "degraded" : "ok";
  }

  // Cost-extraction hook for the src/sched simulator: wall seconds per
  // *successful* stage of this record. Failed attempt groups are
  // excluded — a stage that never completed did not yield a cost
  // measurement, only a truncation of one.
  std::map<std::string, double> ok_stage_seconds() const;
};

// v7: one station's component rollup plus the outcome of its
// station-scoped phase (the rotd sweep). Stations are derived from
// record ids via formats::split_record_id — every record belongs to
// exactly one station (single-component ids form a station of their
// own with an empty component suffix).
struct StationOutcome {
  std::string station;
  // Component suffixes present in the input, sorted; duplicates kept.
  std::vector<std::string> components;
  int ok = 0;           // members published (degraded included)
  int quarantined = 0;  // members quarantined
  // Cross-component consistency flags raised for this station, sorted
  // registered "station.<slug>" reasons (docs/FORMATS.md).
  std::vector<std::string> checks;
  // "ok" (published .rotd) | "skipped" (ineligible: missing/unequal
  // horizontals, hard deadline) | "failed" (the sweep itself errored).
  std::string rotd_status = "skipped";
  std::string rotd_reason;  // registered reason when not ok, else ""
  std::string rotd_output;  // published .rotd path when ok, else ""
  std::vector<StageAttempt> stages;  // station-phase attempt groups
  int retries = 0;
  double seconds = 0;
};

// Per-stage aggregate of the v5 profiling fields, summed over records.
struct StageProfile {
  long long cache_hits = 0;
  long long cache_misses = 0;
  double setup_seconds = 0;
  double kernel_seconds = 0;
};

// The machine-readable outcome of one event run, written atomically to
// <work_dir>/run_report.json. Schema documented in docs/PIPELINE.md.
// v4 added the driver block: which of the four paper implementations
// ran, with how many threads, and the measured speedup against a
// sequential baseline when one was supplied. v5 adds the profiling
// split: per-stage cache_hits/cache_misses and setup_seconds vs
// kernel_seconds (plus the derived stage_profile block), so the
// plan-cache layer's effect is visible per run. canonical_dump() is
// unchanged — cache attribution depends on which record warmed a plan
// first, which is interleaving-dependent under the parallel drivers.
// v6 adds the robustness block: event-level status (ok|degraded|
// quarantined), per-record degraded/shed/points, the deadline budget
// with its soft-shed/hard-stop counters, and the storage circuit
// breaker's counter deltas for this run (docs/BATCH.md).
// v7 adds the stations block: per-station component rollups (which
// suffixes arrived, how many members published), the station.*
// consistency checks raised, and the station-phase rotd outcome with
// its own stage attempt groups (docs/PIPELINE.md, "Stations").
struct RunReport {
  static constexpr int kVersion = 7;

  std::string input_dir;
  std::string work_dir;
  std::string driver = "seq";  // "seq"|"seq-opt"|"partial"|"full"|"pool"
  int threads = 1;             // resolved team size (1 for sequential)
  // baseline_total_seconds / total_seconds, when a baseline report was
  // supplied (acx_process --baseline); 0 = not measured, omitted.
  double speedup_vs_sequential = 0;
  double total_seconds = 0;  // wall clock of the whole event run
  // v6: the deadline budget this event ran under (0 = unbounded) and
  // the breaker counter deltas observed during the run (all zero when
  // no BreakerFileSystem is in the stack).
  double deadline_soft_seconds = 0;
  double deadline_hard_seconds = 0;
  long long breaker_rejected_ops = 0;
  int breaker_opens = 0;
  int breaker_half_open_recoveries = 0;
  std::vector<RecordOutcome> records;
  std::vector<StationOutcome> stations;  // v7, one per station

  // v6 event-level status: "quarantined" when the event published
  // nothing (every record quarantined), "degraded" when any surviving
  // record shed stages, else "ok".
  const char* status() const;

  int count_ok() const;         // ok records, degraded included
  int count_degraded() const;
  int count_quarantined() const;
  int count_retries() const;
  long long total_points() const;  // published data points, summed
  // Derived deadline counters: shed entries attributed to the soft
  // deadline, and records stopped by the hard one.
  int deadline_soft_sheds() const;
  int deadline_hard_stops() const;
  // Wall clock summed per stage name over every record and every
  // station-phase attempt group — the numbers the Table I per-stage
  // benches are driven from.
  std::map<std::string, double> stage_totals() const;
  // Each stage's fraction of the summed stage wall clock (0..1). This
  // is how the paper's "Stage IX is 57.2% of the sequential run" claim
  // is measured on our own runs: stage_shares()["response"].
  std::map<std::string, double> stage_shares() const;
  // v5: per-stage cache traffic and setup-vs-kernel seconds, summed
  // over records — what scripts/speedup_table.py renders and the bench
  // gate watches for setup-cost regressions.
  std::map<std::string, StageProfile> stage_profile() const;

  // Determinism: records ordered by id, each record's outputs array
  // sorted; stations ordered by name, each station's checks sorted.
  // The runner calls this before serializing, so the report is
  // byte-stable across drivers and thread interleavings (timings aside).
  void sort_records();

  Json to_json() const;
  std::string dump() const { return to_json().dump(2); }

  // The driver-independent projection: record ids, statuses, sorted
  // outputs and quarantine reasons, and the counts block — with the
  // work/input dirs rebased to "<work>"/"<input>" placeholders and all
  // timing-derived values dropped. Byte-identical across the four
  // drivers (modulo the redundant stages having no observable output)
  // and across thread counts; the equivalence tests diff it directly.
  std::string canonical_dump() const;

  // Strict re-read (used by acx_validate and the tests).
  static Result<RunReport, std::string> from_json_text(const std::string& text);
};

inline constexpr const char* kRunReportFileName = "run_report.json";

}  // namespace acx::pipeline
