#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "formats/record.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/result.hpp"

namespace acx::synth {

// One synthetic seismic event: n_files V1 records whose per-file sample
// counts sum to ~total_points within [min_pts, max_pts], matching the
// paper's published workload shape (DESIGN.md §2).
struct EventSpec {
  std::string id;
  std::string date;
  int n_files = 0;
  long total_points = 0;
  long min_pts = 0;
  long max_pts = 0;
  double dt = 0.005;  // 200 Hz, the dominant sampling rate in the paper
};

// The six events of the paper's evaluation: 5/5/9/15/18/19 files,
// 56K/115K/145K/309K/361K/384K total data points, 7.3K–35K per file.
std::vector<EventSpec> paper_events();

struct SynthConfig {
  std::uint64_t seed = 42;
  // Scales per-file data points (not file counts); 1.0 = paper sizes.
  double scale = 1.0;
};

// Deterministic per-file sample counts for an event (sum ≈ scaled total,
// each in [min_pts, max_pts] scaled).
std::vector<long> points_per_file(const EventSpec& spec, const SynthConfig& cfg);

// Generates record i of the event: enveloped band-limited noise in raw
// "counts" with a DC offset and linear drift (what the demean/detrend
// stages remove). Same (spec, cfg, index) -> identical record.
formats::Record make_record(const EventSpec& spec, const SynthConfig& cfg,
                            int index);

// Writes the whole event as <station><comp>.v1 files under out_dir
// through the given FileSystem (atomic writes). Returns the file names
// written.
Result<std::vector<std::string>, IoError> build_event_dataset(
    FileSystem& fs, const std::filesystem::path& out_dir,
    const EventSpec& spec, const SynthConfig& cfg);

}  // namespace acx::synth
