#include "synth/synth.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "formats/v1.hpp"
#include "util/rng.hpp"

namespace acx::synth {

std::vector<EventSpec> paper_events() {
  return {
      {"EV01", "2017-04-19", 5, 56000, 7300, 35000, 0.005},
      {"EV02", "2017-05-10", 5, 115000, 7300, 35000, 0.005},
      {"EV03", "2018-01-24", 9, 145000, 7300, 35000, 0.005},
      {"EV04", "2018-08-26", 15, 309000, 7300, 35000, 0.005},
      {"EV05", "2019-05-30", 18, 361000, 7300, 35000, 0.005},
      {"EV06", "2019-07-07", 19, 384000, 7300, 35000, 0.005},
  };
}

std::vector<long> points_per_file(const EventSpec& spec,
                                  const SynthConfig& cfg) {
  const double s = cfg.scale;
  const long lo = std::max<long>(64, std::lround(spec.min_pts * s));
  const long hi = std::max(lo, std::lround(spec.max_pts * s));
  const long total = std::max<long>(spec.n_files,
                                    std::lround(spec.total_points * s));
  std::vector<long> pts(static_cast<std::size_t>(spec.n_files));

  // Deterministic spread around the even split so *stations* differ in
  // size (the heterogeneity the fault-tolerance layer has to cope
  // with). All members of one station share a length — the RotD sweep
  // needs equal horizontal sample counts — so the jitter is drawn once
  // per station and applied to each of its (up to three) components.
  Xoshiro256 rng(cfg.seed ^ 0x5eed5eedULL);
  const long base = total / spec.n_files;
  long assigned = 0;
  for (int i = 0; i < spec.n_files; i += 3) {
    const double jitter = 0.6 + 0.8 * rng.next_double();  // 0.6x .. 1.4x
    const long p = std::clamp(std::lround(base * jitter), lo, hi);
    for (int j = i; j < std::min(i + 3, spec.n_files); ++j) {
      pts[static_cast<std::size_t>(j)] = p;
      assigned += p;
    }
  }
  // Nudge toward the exact total without leaving [lo, hi], in whole-
  // station steps so members keep their shared length. The per-member
  // truncation can leave a residue smaller than one station's worth of
  // samples; the totals contract tolerates it.
  long delta = total - assigned;
  for (int i = 0; delta != 0 && i < spec.n_files; i += 3) {
    const int members = std::min(3, spec.n_files - i);
    long& first = pts[static_cast<std::size_t>(i)];
    const long step =
        std::clamp(delta / members, lo - first, hi - first);
    if (step == 0) continue;
    for (int j = i; j < i + members; ++j) {
      pts[static_cast<std::size_t>(j)] += step;
      delta -= step;
    }
  }
  return pts;
}

namespace {

std::string station_name(int index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "SS%02d", index / 3 + 1);
  return buf;
}

const char* component_name(int index) {
  static constexpr const char* kComps[] = {"l", "t", "v"};
  return kComps[index % 3];
}

}  // namespace

formats::Record make_record(const EventSpec& spec, const SynthConfig& cfg,
                            int index) {
  std::vector<long> pts = points_per_file(spec, cfg);
  const long n = pts[static_cast<std::size_t>(index)];

  formats::Record rec;
  rec.header.station = station_name(index);
  rec.header.component = component_name(index);
  rec.header.event_id = spec.id;
  rec.header.date = spec.date;
  rec.header.dt = spec.dt;
  rec.header.npts = n;
  rec.header.units = "counts";

  // Independent stream per (event seed, station, component): members of
  // one station get decorrelated phases (so the RotD sweep has two
  // genuinely different horizontals to combine) while the same seed
  // reproduces every sample byte-identically. Keyed by name rather than
  // file index, so a record keeps its waveform even if the event's file
  // count changes around it.
  std::uint64_t sm = cfg.seed ^ fnv1a64(rec.header.station) ^
                     (fnv1a64(rec.header.component) * 0x9e3779b97f4a7c15ULL);
  Xoshiro256 rng(splitmix64(sm));

  // Saragoni–Hart-style envelope: t^2 rise, exponential decay, peaking
  // at t_peak; raw counts with gain, DC offset and slow drift.
  const double duration = static_cast<double>(n) * spec.dt;
  const double t_peak = 0.15 * duration;
  const double decay = 3.0 / duration;
  const double gain = 850.0 + 300.0 * rng.next_double();
  const double offset = 40.0 * (rng.next_double() - 0.5);
  const double drift = 2.0 * (rng.next_double() - 0.5) / duration;

  // Enveloped Gaussian noise, then Kanai–Tajimi-style band shaping:
  // white noise has no spectral corners, so the FPL/FSL search would
  // have nothing physical to find. Two cascaded one-pole low-passes at
  // kBandHighHz and two DC-blocking high-passes at kBandLowHz put the
  // ground-motion energy in a band, like a real accelerogram (the
  // rolloffs are 12 dB/octave each way).
  constexpr double kBandLowHz = 1.0;
  constexpr double kBandHighHz = 12.0;
  std::vector<double> noise(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * spec.dt;
    const double rise = t / t_peak;
    const double envelope = rise * rise * std::exp(-decay * (t - t_peak));
    noise[static_cast<std::size_t>(i)] = envelope * rng.next_gaussian();
  }
  const double alpha =
      1.0 - std::exp(-2.0 * 3.14159265358979323846 * kBandHighHz * spec.dt);
  const double rho =
      std::exp(-2.0 * 3.14159265358979323846 * kBandLowHz * spec.dt);
  double raw_rms = 0;
  for (const double v : noise) raw_rms += v * v;
  for (int pass = 0; pass < 2; ++pass) {
    double lp = 0;
    for (double& v : noise) {
      lp += alpha * (v - lp);
      v = lp;
    }
  }
  for (int pass = 0; pass < 2; ++pass) {
    double hp = 0, prev = 0;
    for (double& v : noise) {
      const double x = v;
      hp = rho * (hp + x - prev);
      prev = x;
      v = hp;
    }
  }
  // Re-normalize so the shaping does not change the record's RMS level.
  double shaped_rms = 0;
  for (const double v : noise) shaped_rms += v * v;
  const double level =
      shaped_rms > 0 ? std::sqrt(raw_rms / shaped_rms) : 1.0;

  rec.samples.resize(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * spec.dt;
    rec.samples[static_cast<std::size_t>(i)] =
        gain * level * noise[static_cast<std::size_t>(i)] + offset + drift * t;
  }
  return rec;
}

Result<std::vector<std::string>, IoError> build_event_dataset(
    FileSystem& fs, const std::filesystem::path& out_dir,
    const EventSpec& spec, const SynthConfig& cfg) {
  auto made = fs.create_directories(out_dir);
  if (!made.ok()) return std::move(made).take_error();

  std::vector<std::string> names;
  for (int i = 0; i < spec.n_files; ++i) {
    const formats::Record rec = make_record(spec, cfg, i);
    const std::string name =
        rec.header.id() + std::string(formats::kV1Extension);
    auto wrote =
        atomic_write_file(fs, out_dir / name, formats::write_v1(rec));
    if (!wrote.ok()) return std::move(wrote).take_error();
    names.push_back(name);
  }
  return names;
}

}  // namespace acx::synth
