#pragma once

#include "spectrum/error.hpp"
#include "spectrum/fourier.hpp"
#include "util/result.hpp"

namespace acx::spectrum {

// Parameters of the FPL/FSL search (docs/SPECTRUM.md, "Corner search").
// Defaults follow the paper's CalculateInflectionPoint shape: smooth the
// spectrum, clear the dominant peak, then confirm each threshold
// crossing over several consecutive bins before accepting it.
struct CornerSearchConfig {
  // Floor of the centered moving-average width (odd). The window's
  // half-width also grows with frequency as relative_bandwidth * bin,
  // Konno–Ohmachi style: constant relative bandwidth keeps the smoother
  // narrow across the low-frequency rolloff (so band energy does not
  // leak into the FSL trough) while still averaging away the amplitude
  // fluctuation of noisy records at high frequency.
  int smoothing_bins = 9;
  double relative_bandwidth = 0.05;  // extra half-width per bin index
  double threshold = 0.10;     // crossing level, fraction of smoothed peak
  int confirm_bins = 3;        // consecutive sub-threshold bins required
  double min_fsl_hz = 0.10;    // FSL search floor (excludes the DC bins)
  double max_fpl_frac = 0.90;  // FPL search ceiling, fraction of Nyquist
};

// Per-record band-pass corners derived from the spectrum: FSL is the
// long-period (low-frequency) corner, FPL the short-period one. These
// replace the fixed instrument band of `pipeline::CorrectionConfig`
// when the search succeeds.
struct Corners {
  double fsl_hz = 0.0;
  double fpl_hz = 0.0;
};

// Searches a Fourier amplitude spectrum for the corners: smooth with a
// centered moving average, locate the dominant peak above the FSL
// floor, then walk outward in both directions until the smoothed
// amplitude stays below threshold * peak for confirm_bins consecutive
// bins. Errors are soft from the pipeline's point of view: kNoCorner /
// kTooShort mean "use the fixed fallback band", never poison.
Result<Corners, SpectrumError> find_corners(const FourierSpectrum& spectrum,
                                            const CornerSearchConfig& cfg = {});

// Drops the cached smoothing-window extents (keyed by n_bins,
// smoothing_bins, relative_bandwidth and shared across records);
// cold-start hook for tests and microbenches.
void smoothing_plan_cache_clear();

}  // namespace acx::spectrum
