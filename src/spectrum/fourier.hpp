#pragma once

#include <cstddef>
#include <vector>

#include "spectrum/error.hpp"
#include "util/result.hpp"

namespace acx::spectrum {

// Taper applied before the transform. The window is normalized to unit
// coherent gain (mean(w) == 1), so a pass-band sinusoid keeps the same
// spectral amplitude whichever window is chosen.
enum class Window { kNone, kHann, kHamming };

const char* to_string(Window w);
// Reverse mapping for the F-format reader; false on unknown names.
bool window_from_string(const std::string& name, Window& out);

struct FourierSpec {
  Window window = Window::kNone;
  // Zero-pad the (windowed) input to the next power of two so the
  // transform takes the radix-2 path. Padding refines the bin spacing
  // df = 1 / (nfft * dt); it does not change the spectrum's envelope.
  bool pad_pow2 = true;
};

// One-sided Fourier amplitude spectrum (FAS) of an acceleration record:
//   amplitude[k] = dt * |X[k]|,  k = 0 .. nfft/2,
// where X = fft(windowed, zero-padded input). The dt factor makes the
// discrete transform approximate the continuous one, so acceleration in
// cm/s2 yields FAS in cm/s (see docs/SPECTRUM.md).
struct FourierSpectrum {
  double dt = 0.0;          // source sampling interval, seconds
  double df = 0.0;          // bin spacing, Hz: 1 / (nfft * dt)
  std::size_t nfft = 0;     // transform length after padding
  Window window = Window::kNone;
  std::vector<double> amplitude;  // nfft/2 + 1 bins, cm/s

  std::size_t size() const { return amplitude.size(); }
  double frequency_at(std::size_t k) const {
    return df * static_cast<double>(k);
  }
  double nyquist_hz() const { return 0.5 / dt; }
};

// Errors: empty input, bad dt, non-finite samples (or a non-finite
// transform output, which would indicate an FFT bug, not bad data).
Result<FourierSpectrum, SpectrumError> fourier_amplitude(
    const std::vector<double>& acc, double dt, const FourierSpec& spec = {});

}  // namespace acx::spectrum
