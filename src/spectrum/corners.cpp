#include "spectrum/corners.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/perf.hpp"

namespace acx::spectrum {

namespace {

// Window extents of the constant-relative-bandwidth smoother. They
// depend only on (n, smoothing_bins, relative_bandwidth), never on
// the spectrum values, so they are computed once per key and shared
// across records (Konno–Ohmachi-style weights reduce to these
// truncated [lo, hi] ranges under the moving-average kernel).
struct SmoothingPlan {
  std::vector<int> lo, hi;
};

class SmoothingPlanCache {
 public:
  static SmoothingPlanCache& instance() {
    static SmoothingPlanCache cache;
    return cache;
  }

  std::shared_ptr<const SmoothingPlan> get(int n, int bins, double rel) {
    const Key key{n, bins, rel};
    {
      std::shared_lock lock(mu_);
      auto it = plans_.find(key);
      if (it != plans_.end()) {
        perf::count_cache(true);
        return it->second;
      }
    }
    auto plan = std::make_shared<SmoothingPlan>();
    plan->lo.resize(static_cast<std::size_t>(n));
    plan->hi.resize(static_cast<std::size_t>(n));
    const int base_half = bins / 2;
    for (int i = 0; i < n; ++i) {
      const int half = std::max(base_half, static_cast<int>(rel * i));
      plan->lo[static_cast<std::size_t>(i)] = std::max(0, i - half);
      plan->hi[static_cast<std::size_t>(i)] = std::min(n - 1, i + half);
    }
    {
      std::unique_lock lock(mu_);
      auto [it, inserted] = plans_.emplace(key, std::move(plan));
      perf::count_cache(!inserted);
      return it->second;
    }
  }

  void clear() {
    std::unique_lock lock(mu_);
    plans_.clear();
  }

 private:
  using Key = std::tuple<int, int, double>;
  std::shared_mutex mu_;
  std::map<Key, std::shared_ptr<const SmoothingPlan>> plans_;
};

// Constant-relative-bandwidth moving average (Konno–Ohmachi-like):
// the half-width at bin i is max(bins/2, rel * i), truncated at the
// edges so every output is the mean of the bins actually available.
// A fixed-width window cannot serve both ends of the spectrum: wide
// enough to beat amplitude fluctuation at high frequency, it leaks
// band energy across the low-frequency rolloff and erases the FSL
// trough. Growing the width with frequency keeps the window narrow
// where bins are few per octave and wide where fluctuation dominates.
//
// The averaging divides by the actual bin count (not a cached
// reciprocal) so the output is bit-identical to the pre-cache code.
std::vector<double> smooth(const std::vector<double>& x, int bins,
                           double rel) {
  const int n = static_cast<int>(x.size());
  std::shared_ptr<const SmoothingPlan> plan;
  {
    perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
    plan = SmoothingPlanCache::instance().get(n, bins, rel);
  }
  perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
  std::vector<double> cum(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    cum[static_cast<std::size_t>(i) + 1] =
        cum[static_cast<std::size_t>(i)] + x[static_cast<std::size_t>(i)];
  }
  std::vector<double> out(x.size());
  for (int i = 0; i < n; ++i) {
    const int lo = plan->lo[static_cast<std::size_t>(i)];
    const int hi = plan->hi[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        (cum[static_cast<std::size_t>(hi) + 1] -
         cum[static_cast<std::size_t>(lo)]) /
        static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace

void smoothing_plan_cache_clear() { SmoothingPlanCache::instance().clear(); }

Result<Corners, SpectrumError> find_corners(const FourierSpectrum& spectrum,
                                            const CornerSearchConfig& cfg) {
  const std::vector<double>& amp = spectrum.amplitude;
  if (amp.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "empty spectrum"};
  }
  if (!(cfg.smoothing_bins > 0 && cfg.smoothing_bins % 2 == 1) ||
      cfg.confirm_bins < 1 || !(cfg.threshold > 0 && cfg.threshold < 1) ||
      !(cfg.relative_bandwidth >= 0 && cfg.relative_bandwidth < 1) ||
      !(cfg.min_fsl_hz > 0) ||
      !(cfg.max_fpl_frac > 0 && cfg.max_fpl_frac < 1)) {
    return SpectrumError{SpectrumError::Code::kBadGrid,
                         "corner-search configuration is invalid"};
  }
  const int n = static_cast<int>(amp.size());
  // The search needs room for the smoother, the peak, and a confirmed
  // run on both sides of it.
  if (n < 2 * cfg.smoothing_bins + 2 * cfg.confirm_bins) {
    return SpectrumError{
        SpectrumError::Code::kTooShort,
        "spectrum has " + std::to_string(n) + " bins; the search needs >= " +
            std::to_string(2 * cfg.smoothing_bins + 2 * cfg.confirm_bins)};
  }

  const double df = spectrum.df;
  const int k_min = std::max(
      1, static_cast<int>(std::ceil(cfg.min_fsl_hz / df)));
  const int k_max = std::min(
      n - 1, static_cast<int>(std::floor(cfg.max_fpl_frac *
                                         spectrum.nyquist_hz() / df)));
  if (k_min >= k_max) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "search band is empty at this bin spacing"};
  }

  const std::vector<double> s =
      smooth(amp, cfg.smoothing_bins, cfg.relative_bandwidth);

  // Peak-clearing phase: the dominant spectral peak inside the band.
  int k_peak = k_min;
  for (int k = k_min; k <= k_max; ++k) {
    if (s[static_cast<std::size_t>(k)] > s[static_cast<std::size_t>(k_peak)]) {
      k_peak = k;
    }
  }
  const double peak = s[static_cast<std::size_t>(k_peak)];
  if (!(peak > 0) || !std::isfinite(peak)) {
    return SpectrumError{SpectrumError::Code::kNoCorner,
                         "spectrum has no positive peak in the search band"};
  }
  const double thr = cfg.threshold * peak;

  // Trough-confirming scans with early termination: accept the first
  // bin whose next confirm_bins bins (inclusive) all sit below the
  // threshold. The crossing bin itself is the corner.
  auto confirmed_below = [&](int k, int direction) {
    for (int j = 0; j < cfg.confirm_bins; ++j) {
      const int i = k + direction * j;
      if (i < 0 || i >= n) return false;
      if (s[static_cast<std::size_t>(i)] >= thr) return false;
    }
    return true;
  };

  int k_fpl = -1;
  for (int k = k_peak + 1; k <= k_max; ++k) {
    if (confirmed_below(k, +1)) {
      k_fpl = k;
      break;
    }
  }
  int k_fsl = -1;
  for (int k = k_peak - 1; k >= k_min; --k) {
    if (confirmed_below(k, -1)) {
      k_fsl = k;
      break;
    }
  }
  if (k_fpl < 0 || k_fsl < 0) {
    return SpectrumError{
        SpectrumError::Code::kNoCorner,
        std::string("no confirmed ") +
            (k_fpl < 0 && k_fsl < 0 ? "FPL or FSL"
             : k_fpl < 0            ? "FPL"
                                    : "FSL") +
            " crossing below the threshold"};
  }

  Corners out;
  out.fsl_hz = df * k_fsl;
  out.fpl_hz = df * k_fpl;
  if (!(out.fsl_hz < out.fpl_hz)) {
    return SpectrumError{SpectrumError::Code::kNoCorner,
                         "degenerate corners: FSL >= FPL"};
  }
  return out;
}

}  // namespace acx::spectrum
