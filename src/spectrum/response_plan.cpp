#include "spectrum/response_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <utility>

#include "util/perf.hpp"
#include "util/simd.hpp"

namespace acx::spectrum {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Result<std::shared_ptr<const ResponsePlan>, SpectrumError> ResponsePlan::build(
    double dt, const ResponseGrid& grid) {
  if (!std::isfinite(dt) || dt <= 0) {
    return SpectrumError{SpectrumError::Code::kBadSamplingInterval,
                         "dt must be finite and positive"};
  }
  auto grid_ok = validate_grid(grid);
  if (!grid_ok.ok()) return grid_ok.error();

  auto plan = std::make_shared<ResponsePlan>();
  plan->dt = dt;
  plan->grid = grid;
  const std::size_t periods = grid.periods.size();
  plan->cells = periods * grid.dampings.size();
  for (std::vector<double>* coeffs :
       {&plan->a11, &plan->a12, &plan->a21, &plan->a22, &plan->b11, &plan->b12,
        &plan->b21, &plan->b22, &plan->two_zw, &plan->w2}) {
    coeffs->resize(plan->cells);
  }
  for (std::size_t i = 0; i < plan->cells; ++i) {
    const std::size_t d = i / periods;
    const std::size_t p = i % periods;
    const double w = 2.0 * kPi / grid.periods[p];
    const NigamJennings k(w, grid.dampings[d], dt);
    plan->a11[i] = k.a11;
    plan->a12[i] = k.a12;
    plan->a21[i] = k.a21;
    plan->a22[i] = k.a22;
    plan->b11[i] = k.b11;
    plan->b12[i] = k.b12;
    plan->b21[i] = k.b21;
    plan->b22[i] = k.b22;
    plan->two_zw[i] = k.two_zw;
    plan->w2[i] = k.w2;
  }
  return std::shared_ptr<const ResponsePlan>(std::move(plan));
}

namespace {

// The original scalar batch loop, kept verbatim: the ACX_SIMD=OFF
// path and the bit-identity oracle of the explicit-SIMD variants
// below (tests/test_simd.cpp runs both and memcmp's the peaks).
void sdof_batch_scalar(const double* acc, std::size_t n,
                       const ResponsePlan& plan, std::size_t cell_begin,
                       std::size_t cell_end, double* sd, double* sv,
                       double* sa) {
  for (std::size_t start = cell_begin; start < cell_end;
       start += kSdofBatchBlock) {
    const std::size_t b = std::min(kSdofBatchBlock, cell_end - start);
    const double* a11 = plan.a11.data() + start;
    const double* a12 = plan.a12.data() + start;
    const double* a21 = plan.a21.data() + start;
    const double* a22 = plan.a22.data() + start;
    const double* b11 = plan.b11.data() + start;
    const double* b12 = plan.b12.data() + start;
    const double* b21 = plan.b21.data() + start;
    const double* b22 = plan.b22.data() + start;
    const double* two_zw = plan.two_zw.data() + start;
    const double* w2 = plan.w2.data() + start;

    double x[kSdofBatchBlock] = {};
    double v[kSdofBatchBlock] = {};
    double psd[kSdofBatchBlock] = {};
    double psv[kSdofBatchBlock] = {};
    double psa[kSdofBatchBlock] = {};

    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double acc0 = acc[i];
      const double acc1 = acc[i + 1];
      for (std::size_t j = 0; j < b; ++j) {
        const double x1 = a11[j] * x[j] + a12[j] * v[j] + b11[j] * acc0 +
                          b12[j] * acc1;
        const double v1 = a21[j] * x[j] + a22[j] * v[j] + b21[j] * acc0 +
                          b22[j] * acc1;
        x[j] = x1;
        v[j] = v1;
        const double abs_acc = std::fabs(two_zw[j] * v1 + w2[j] * x1);
        if (std::fabs(x1) > psd[j]) psd[j] = std::fabs(x1);
        if (std::fabs(v1) > psv[j]) psv[j] = std::fabs(v1);
        if (abs_acc > psa[j]) psa[j] = abs_acc;
      }
    }
    for (std::size_t j = 0; j < b; ++j) {
      sd[start + j] = psd[j];
      sv[start + j] = psv[j];
      sa[start + j] = psa[j];
    }
  }
}

// Explicit-SIMD body: same arithmetic, same per-lane op order, with
// `#pragma omp simd` asserting lane independence so the compiler
// vectorizes the block loop without a runtime dependence check, and a
// full-width specialization so the common whole-block case uses a
// compile-time trip count. Vector lanes are separate oscillators, so
// the result is bit-identical to the scalar loop; the peak updates
// compile to compare+blend (or maxpd — psd/psv/psa are never NaN, and
// max(abs, peak) keeps the peak when abs is NaN, matching the scalar
// compare-false path). Instantiated per ISA via the tag parameter and
// always_inline so each wrapper compiles the body with its own target
// options; the AVX2 clone deliberately omits "fma" from its target
// set so -ffp-contract can never fuse a multiply-add and change a
// rounding.
template <typename IsaTag>
__attribute__((always_inline)) inline void sdof_batch_simd_body(
    const double* acc, std::size_t n, const ResponsePlan& plan,
    std::size_t cell_begin, std::size_t cell_end, double* sd, double* sv,
    double* sa) {
  for (std::size_t start = cell_begin; start < cell_end;
       start += kSdofBatchBlock) {
    const std::size_t b = std::min(kSdofBatchBlock, cell_end - start);
    const double* a11 = plan.a11.data() + start;
    const double* a12 = plan.a12.data() + start;
    const double* a21 = plan.a21.data() + start;
    const double* a22 = plan.a22.data() + start;
    const double* b11 = plan.b11.data() + start;
    const double* b12 = plan.b12.data() + start;
    const double* b21 = plan.b21.data() + start;
    const double* b22 = plan.b22.data() + start;
    const double* two_zw = plan.two_zw.data() + start;
    const double* w2 = plan.w2.data() + start;

    double x[kSdofBatchBlock] = {};
    double v[kSdofBatchBlock] = {};
    double psd[kSdofBatchBlock] = {};
    double psv[kSdofBatchBlock] = {};
    double psa[kSdofBatchBlock] = {};

    if (b == kSdofBatchBlock) {
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const double acc0 = acc[i];
        const double acc1 = acc[i + 1];
#pragma omp simd
        for (std::size_t j = 0; j < kSdofBatchBlock; ++j) {
          const double x1 = a11[j] * x[j] + a12[j] * v[j] + b11[j] * acc0 +
                            b12[j] * acc1;
          const double v1 = a21[j] * x[j] + a22[j] * v[j] + b21[j] * acc0 +
                            b22[j] * acc1;
          x[j] = x1;
          v[j] = v1;
          const double abs_acc = std::fabs(two_zw[j] * v1 + w2[j] * x1);
          if (std::fabs(x1) > psd[j]) psd[j] = std::fabs(x1);
          if (std::fabs(v1) > psv[j]) psv[j] = std::fabs(v1);
          if (abs_acc > psa[j]) psa[j] = abs_acc;
        }
      }
    } else {
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const double acc0 = acc[i];
        const double acc1 = acc[i + 1];
#pragma omp simd
        for (std::size_t j = 0; j < b; ++j) {
          const double x1 = a11[j] * x[j] + a12[j] * v[j] + b11[j] * acc0 +
                            b12[j] * acc1;
          const double v1 = a21[j] * x[j] + a22[j] * v[j] + b21[j] * acc0 +
                            b22[j] * acc1;
          x[j] = x1;
          v[j] = v1;
          const double abs_acc = std::fabs(two_zw[j] * v1 + w2[j] * x1);
          if (std::fabs(x1) > psd[j]) psd[j] = std::fabs(x1);
          if (std::fabs(v1) > psv[j]) psv[j] = std::fabs(v1);
          if (abs_acc > psa[j]) psa[j] = abs_acc;
        }
      }
    }
    for (std::size_t j = 0; j < b; ++j) {
      sd[start + j] = psd[j];
      sv[start + j] = psv[j];
      sa[start + j] = psa[j];
    }
  }
}

struct GenericIsa {};
struct Avx2Isa {};

void sdof_batch_simd(const double* acc, std::size_t n,
                     const ResponsePlan& plan, std::size_t cell_begin,
                     std::size_t cell_end, double* sd, double* sv,
                     double* sa) {
  sdof_batch_simd_body<GenericIsa>(acc, n, plan, cell_begin, cell_end, sd, sv,
                                   sa);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void sdof_batch_avx2(
    const double* acc, std::size_t n, const ResponsePlan& plan,
    std::size_t cell_begin, std::size_t cell_end, double* sd, double* sv,
    double* sa) {
  sdof_batch_simd_body<Avx2Isa>(acc, n, plan, cell_begin, cell_end, sd, sv,
                                sa);
}
#endif

}  // namespace

void sdof_peak_response_batch(const double* acc, std::size_t n,
                              const ResponsePlan& plan,
                              std::size_t cell_begin, std::size_t cell_end,
                              double* sd, double* sv, double* sa) {
  if (simd::enabled()) {
#if defined(__x86_64__) || defined(__i386__)
    if (simd::avx2_supported()) {
      sdof_batch_avx2(acc, n, plan, cell_begin, cell_end, sd, sv, sa);
      return;
    }
#endif
    sdof_batch_simd(acc, n, plan, cell_begin, cell_end, sd, sv, sa);
    return;
  }
  sdof_batch_scalar(acc, n, plan, cell_begin, cell_end, sd, sv, sa);
}

struct ResponsePlanCache::Impl {
  using Key = std::tuple<double, std::vector<double>, std::vector<double>>;
  std::shared_mutex mu;
  std::map<Key, std::shared_ptr<const ResponsePlan>> plans;
};

ResponsePlanCache::ResponsePlanCache() : impl_(new Impl) {}
ResponsePlanCache::~ResponsePlanCache() { delete impl_; }

ResponsePlanCache& ResponsePlanCache::instance() {
  static ResponsePlanCache cache;
  return cache;
}

Result<std::shared_ptr<const ResponsePlan>, SpectrumError>
ResponsePlanCache::get(double dt, const ResponseGrid& grid) {
  Impl::Key key{dt, grid.periods, grid.dampings};
  {
    std::shared_lock lock(impl_->mu);
    auto it = impl_->plans.find(key);
    if (it != impl_->plans.end()) {
      perf::count_cache(true);
      return it->second;
    }
  }
  // Build outside any lock; invalid inputs are reported, not cached.
  auto built = ResponsePlan::build(dt, grid);
  if (!built.ok()) return built;
  {
    std::unique_lock lock(impl_->mu);
    auto [it, inserted] =
        impl_->plans.emplace(std::move(key), std::move(built).take());
    // A concurrent builder may have published first; either way the
    // map's plan wins, and exactly one miss is recorded per key.
    perf::count_cache(!inserted);
    return it->second;
  }
}

void ResponsePlanCache::clear() {
  std::unique_lock lock(impl_->mu);
  impl_->plans.clear();
}

Result<ResponseSpectrum, SpectrumError> response_spectrum(
    const std::vector<double>& acc, const ResponsePlan& plan, int threads) {
  if (acc.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (acc.size() < 2) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "the recurrence needs at least 2 samples"};
  }

  ResponseSpectrum out;
  out.periods = plan.grid.periods;
  out.dampings = plan.grid.dampings;
  out.sd.resize(plan.cells);
  out.sv.resize(plan.cells);
  out.sa.resize(plan.cells);

  // Blocks touch disjoint cell ranges and each block's result is
  // independent of the team size, so schedule(static) keeps the output
  // bit-identical for any thread count.
  const long long blocks = static_cast<long long>(
      (plan.cells + kSdofBatchBlock - 1) / kSdofBatchBlock);
#pragma omp parallel for schedule(static) num_threads(threads) \
    if (threads > 1)
  for (long long blk = 0; blk < blocks; ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * kSdofBatchBlock;
    const std::size_t end = std::min(plan.cells, begin + kSdofBatchBlock);
    sdof_peak_response_batch(acc.data(), acc.size(), plan, begin, end,
                             out.sd.data(), out.sv.data(), out.sa.data());
  }

  for (std::size_t i = 0; i < plan.cells; ++i) {
    if (!std::isfinite(out.sd[i]) || !std::isfinite(out.sv[i]) ||
        !std::isfinite(out.sa[i])) {
      return SpectrumError{SpectrumError::Code::kNonFinite,
                           "oscillator response is not finite"};
    }
  }
  return out;
}

}  // namespace acx::spectrum
