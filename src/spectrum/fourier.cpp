#include "spectrum/fourier.hpp"

#include <cmath>
#include <string>

#include "signal/fft.hpp"

namespace acx::spectrum {

namespace {

constexpr double kPi = 3.14159265358979323846;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Window coefficients, normalized to mean(w) == 1 (unit coherent gain)
// so windowed and unwindowed sinusoid amplitudes agree.
std::vector<double> make_window(Window w, std::size_t n) {
  std::vector<double> out(n, 1.0);
  if (w == Window::kNone || n < 2) return out;
  const double denom = static_cast<double>(n - 1);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double c = std::cos(2.0 * kPi * static_cast<double>(k) / denom);
    out[k] = w == Window::kHann ? 0.5 - 0.5 * c : 0.54 - 0.46 * c;
    sum += out[k];
  }
  const double gain = sum / static_cast<double>(n);
  for (double& v : out) v /= gain;
  return out;
}

}  // namespace

const char* to_string(Window w) {
  switch (w) {
    case Window::kNone: return "none";
    case Window::kHann: return "hann";
    case Window::kHamming: return "hamming";
  }
  return "unknown";
}

bool window_from_string(const std::string& name, Window& out) {
  if (name == "none") {
    out = Window::kNone;
  } else if (name == "hann") {
    out = Window::kHann;
  } else if (name == "hamming") {
    out = Window::kHamming;
  } else {
    return false;
  }
  return true;
}

Result<FourierSpectrum, SpectrumError> fourier_amplitude(
    const std::vector<double>& acc, double dt, const FourierSpec& spec) {
  if (acc.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (!std::isfinite(dt) || dt <= 0) {
    return SpectrumError{SpectrumError::Code::kBadSamplingInterval,
                         "dt must be finite and positive"};
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (!std::isfinite(acc[i])) {
      return SpectrumError{SpectrumError::Code::kNonFinite,
                           "sample " + std::to_string(i) + " is not finite"};
    }
  }

  const std::size_t n = acc.size();
  const std::size_t nfft = spec.pad_pow2 ? next_pow2(n) : n;
  std::vector<double> padded(nfft, 0.0);
  const std::vector<double> w = make_window(spec.window, n);
  for (std::size_t i = 0; i < n; ++i) padded[i] = acc[i] * w[i];

  auto bins = signal::rfft(padded);
  if (!bins.ok()) {
    return SpectrumError{SpectrumError::Code::kNonFinite,
                         "rfft failed: " + bins.error().to_string()};
  }

  FourierSpectrum out;
  out.dt = dt;
  out.nfft = nfft;
  out.df = 1.0 / (static_cast<double>(nfft) * dt);
  out.window = spec.window;
  out.amplitude.reserve(bins.value().size());
  for (const signal::Complex& c : bins.value()) {
    const double a = dt * std::abs(c);
    if (!std::isfinite(a)) {
      return SpectrumError{SpectrumError::Code::kNonFinite,
                           "transform produced a non-finite amplitude"};
    }
    out.amplitude.push_back(a);
  }
  return out;
}

}  // namespace acx::spectrum
