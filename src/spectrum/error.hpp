#pragma once

#include <string>

namespace acx::spectrum {

// Failure taxonomy of the spectrum kernels (Fourier amplitude spectrum,
// response spectra, FPL/FSL corner search). Every kernel returns
// Result<_, SpectrumError>; the pipeline maps each code to the poison
// reason "spectrum.<slug>" (see docs/SPECTRUM.md, "Error taxonomy").
// Like signal errors, spectrum errors are deterministic for a given
// input — never retried. The one soft code is kNoCorner: the corners
// stage treats a failed FPL/FSL search as a documented fallback to the
// fixed instrument band, not as poison.
struct SpectrumError {
  enum class Code {
    kEmptyInput,           // no samples / no spectrum bins at all
    kTooShort,             // fewer samples/bins than the operation requires
    kNonFinite,            // NaN/Inf in input, or produced by the kernel
    kBadSamplingInterval,  // dt not finite or not positive
    kBadWindow,            // unknown taper window name
    kBadPeriod,            // oscillator period not finite or not positive
    kBadDamping,           // damping ratio outside [0, 1)
    kBadGrid,              // empty / non-ascending period or damping grid
    kNoCorner,             // FPL/FSL search found no confirmed crossing
    kComponentMismatch,    // RotD components disagree in length
    kBadAngleCount,        // RotD angle count not in [1, 36000]
  };

  Code code{};
  std::string detail;

  std::string to_string() const;
};

inline const char* slug(SpectrumError::Code c) {
  switch (c) {
    case SpectrumError::Code::kEmptyInput: return "empty_input";
    case SpectrumError::Code::kTooShort: return "too_short";
    case SpectrumError::Code::kNonFinite: return "non_finite";
    case SpectrumError::Code::kBadSamplingInterval:
      return "bad_sampling_interval";
    case SpectrumError::Code::kBadWindow: return "bad_window";
    case SpectrumError::Code::kBadPeriod: return "bad_period";
    case SpectrumError::Code::kBadDamping: return "bad_damping";
    case SpectrumError::Code::kBadGrid: return "bad_grid";
    case SpectrumError::Code::kNoCorner: return "no_corner";
    case SpectrumError::Code::kComponentMismatch: return "component_mismatch";
    case SpectrumError::Code::kBadAngleCount: return "bad_angle_count";
  }
  return "unknown";
}

inline std::string SpectrumError::to_string() const {
  std::string s = "spectrum.";
  s += slug(code);
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

}  // namespace acx::spectrum
