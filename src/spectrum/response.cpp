#include "spectrum/response.hpp"

#include <cmath>
#include <memory>
#include <string>

#include "spectrum/response_plan.hpp"
#include "util/perf.hpp"

namespace acx::spectrum {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Result<SdofPeaks, SpectrumError> sdof_peak_response(
    const std::vector<double>& acc, double dt, double period, double damping) {
  if (acc.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (acc.size() < 2) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "the recurrence needs at least 2 samples"};
  }
  if (!std::isfinite(dt) || dt <= 0) {
    return SpectrumError{SpectrumError::Code::kBadSamplingInterval,
                         "dt must be finite and positive"};
  }
  if (!std::isfinite(period) || period <= 0) {
    return SpectrumError{SpectrumError::Code::kBadPeriod,
                         "period must be finite and positive"};
  }
  if (!std::isfinite(damping) || damping < 0 || damping >= 1) {
    return SpectrumError{SpectrumError::Code::kBadDamping,
                         "damping ratio must be in [0, 1)"};
  }

  const double w = 2.0 * kPi / period;
  const NigamJennings k(w, damping, dt);

  SdofPeaks peaks;
  double x = 0.0, v = 0.0;  // the oscillator starts at rest
  for (std::size_t i = 0; i + 1 < acc.size(); ++i) {
    const double x1 =
        k.a11 * x + k.a12 * v + k.b11 * acc[i] + k.b12 * acc[i + 1];
    const double v1 =
        k.a21 * x + k.a22 * v + k.b21 * acc[i] + k.b22 * acc[i + 1];
    x = x1;
    v = v1;
    const double abs_acc = std::fabs(k.two_zw * v + k.w2 * x);
    if (std::fabs(x) > peaks.sd) peaks.sd = std::fabs(x);
    if (std::fabs(v) > peaks.sv) peaks.sv = std::fabs(v);
    if (abs_acc > peaks.sa) peaks.sa = abs_acc;
  }
  if (!std::isfinite(peaks.sd) || !std::isfinite(peaks.sv) ||
      !std::isfinite(peaks.sa)) {
    return SpectrumError{SpectrumError::Code::kNonFinite,
                         "oscillator response is not finite"};
  }
  return peaks;
}

ResponseGrid paper_grid() {
  ResponseGrid grid;
  constexpr int kPeriods = 600;
  constexpr double kTMin = 0.02, kTMax = 10.0;
  grid.periods.reserve(kPeriods);
  const double log_min = std::log(kTMin);
  const double step = (std::log(kTMax) - log_min) / (kPeriods - 1);
  for (int i = 0; i < kPeriods; ++i) {
    grid.periods.push_back(std::exp(log_min + step * i));
  }
  grid.dampings = {0.0, 0.02, 0.05, 0.10, 0.20};
  return grid;
}

Result<Unit, SpectrumError> validate_grid(const ResponseGrid& grid) {
  if (grid.periods.empty() || grid.dampings.empty()) {
    return SpectrumError{SpectrumError::Code::kBadGrid,
                         "grid needs at least one period and one damping"};
  }
  for (std::size_t i = 0; i < grid.periods.size(); ++i) {
    const double t = grid.periods[i];
    if (!std::isfinite(t) || t <= 0) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "period " + std::to_string(i) +
                               " is not finite and positive"};
    }
    if (i > 0 && t <= grid.periods[i - 1]) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "periods must be strictly ascending"};
    }
  }
  for (std::size_t i = 0; i < grid.dampings.size(); ++i) {
    const double z = grid.dampings[i];
    if (!std::isfinite(z) || z < 0 || z >= 1) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "damping " + std::to_string(i) +
                               " is outside [0, 1)"};
    }
    if (i > 0 && z <= grid.dampings[i - 1]) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "dampings must be strictly ascending"};
    }
  }
  return Unit{};
}

Result<ResponseSpectrum, SpectrumError> response_spectrum(
    const std::vector<double>& acc, double dt, const ResponseGrid& grid,
    int threads) {
  // Error precedence matches the pre-plan per-cell path: grid problems
  // first, then the input, then dt.
  auto grid_ok = validate_grid(grid);
  if (!grid_ok.ok()) return grid_ok.error();
  if (acc.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (acc.size() < 2) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "the recurrence needs at least 2 samples"};
  }

  std::shared_ptr<const ResponsePlan> plan;
  {
    perf::ScopedTimer setup(perf::ScopedTimer::kSetup);
    auto cached = ResponsePlanCache::instance().get(dt, grid);
    if (!cached.ok()) return std::move(cached).take_error();
    plan = std::move(cached).take();
  }
  perf::ScopedTimer kernel(perf::ScopedTimer::kKernel);
  return response_spectrum(acc, *plan, threads);
}

}  // namespace acx::spectrum
