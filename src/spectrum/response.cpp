#include "spectrum/response.hpp"

#include <cmath>
#include <string>

namespace acx::spectrum {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Exact one-step propagator of x'' + 2*z*w*x' + w^2*x = -a(t) under
// piecewise-linear a(t) over one interval of length dt (Nigam &
// Jennings 1969). The recurrence
//   x_{i+1} = a11*x_i + a12*v_i + b11*a_i + b12*a_{i+1}
//   v_{i+1} = a21*x_i + a22*v_i + b21*a_i + b22*a_{i+1}
// is assembled by propagating the four unit states through the
// closed-form interval solution — algebraically identical to the
// published coefficient formulas, without their error-prone 1/w^3
// bookkeeping (docs/SPECTRUM.md derives both forms).
struct NigamJennings {
  double a11, a12, a21, a22;
  double b11, b12, b21, b22;
  double two_zw, w2;  // absolute acceleration = -(2*z*w*v + w^2*x)

  NigamJennings(double w, double z, double dt) {
    const double beta = z * w;        // decay rate
    const double wd = w * std::sqrt(1.0 - z * z);  // damped frequency
    const double e = std::exp(-beta * dt);
    const double s = std::sin(wd * dt);
    const double c = std::cos(wd * dt);
    const double w3 = w * w * w;
    w2 = w * w;
    two_zw = 2.0 * beta;

    // Closed-form state at t = dt for initial state (x0, v0) and
    // forcing a(t) = a0 + m*t, m = (a1 - a0) / dt:
    //   particular: xp(t) = -(a0 + m*t)/w^2 + 2*z*m/w^3, vp(t) = -m/w^2
    //   homogeneous: e^{-beta t} (A cos wd t + B sin wd t),
    //     A = x0 - xp(0),  B = (v0 - vp(0) + beta*A) / wd.
    auto step = [&](double x0, double v0, double a0, double a1, double& x1,
                    double& v1) {
      const double m = (a1 - a0) / dt;
      const double xp0 = -a0 / w2 + 2.0 * z * m / w3;
      const double vp0 = -m / w2;
      const double xpdt = -(a0 + m * dt) / w2 + 2.0 * z * m / w3;
      const double a_h = x0 - xp0;
      const double b_h = (v0 - vp0 + beta * a_h) / wd;
      x1 = e * (a_h * c + b_h * s) + xpdt;
      v1 = e * ((-beta * a_h + wd * b_h) * c - (wd * a_h + beta * b_h) * s) +
           vp0;
    };

    step(1, 0, 0, 0, a11, a21);
    step(0, 1, 0, 0, a12, a22);
    step(0, 0, 1, 0, b11, b21);
    step(0, 0, 0, 1, b12, b22);
  }
};

}  // namespace

Result<SdofPeaks, SpectrumError> sdof_peak_response(
    const std::vector<double>& acc, double dt, double period, double damping) {
  if (acc.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (acc.size() < 2) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "the recurrence needs at least 2 samples"};
  }
  if (!std::isfinite(dt) || dt <= 0) {
    return SpectrumError{SpectrumError::Code::kBadSamplingInterval,
                         "dt must be finite and positive"};
  }
  if (!std::isfinite(period) || period <= 0) {
    return SpectrumError{SpectrumError::Code::kBadPeriod,
                         "period must be finite and positive"};
  }
  if (!std::isfinite(damping) || damping < 0 || damping >= 1) {
    return SpectrumError{SpectrumError::Code::kBadDamping,
                         "damping ratio must be in [0, 1)"};
  }

  const double w = 2.0 * kPi / period;
  const NigamJennings k(w, damping, dt);

  SdofPeaks peaks;
  double x = 0.0, v = 0.0;  // the oscillator starts at rest
  for (std::size_t i = 0; i + 1 < acc.size(); ++i) {
    const double x1 =
        k.a11 * x + k.a12 * v + k.b11 * acc[i] + k.b12 * acc[i + 1];
    const double v1 =
        k.a21 * x + k.a22 * v + k.b21 * acc[i] + k.b22 * acc[i + 1];
    x = x1;
    v = v1;
    const double abs_acc = std::fabs(k.two_zw * v + k.w2 * x);
    if (std::fabs(x) > peaks.sd) peaks.sd = std::fabs(x);
    if (std::fabs(v) > peaks.sv) peaks.sv = std::fabs(v);
    if (abs_acc > peaks.sa) peaks.sa = abs_acc;
  }
  if (!std::isfinite(peaks.sd) || !std::isfinite(peaks.sv) ||
      !std::isfinite(peaks.sa)) {
    return SpectrumError{SpectrumError::Code::kNonFinite,
                         "oscillator response is not finite"};
  }
  return peaks;
}

ResponseGrid paper_grid() {
  ResponseGrid grid;
  constexpr int kPeriods = 600;
  constexpr double kTMin = 0.02, kTMax = 10.0;
  grid.periods.reserve(kPeriods);
  const double log_min = std::log(kTMin);
  const double step = (std::log(kTMax) - log_min) / (kPeriods - 1);
  for (int i = 0; i < kPeriods; ++i) {
    grid.periods.push_back(std::exp(log_min + step * i));
  }
  grid.dampings = {0.0, 0.02, 0.05, 0.10, 0.20};
  return grid;
}

Result<Unit, SpectrumError> validate_grid(const ResponseGrid& grid) {
  if (grid.periods.empty() || grid.dampings.empty()) {
    return SpectrumError{SpectrumError::Code::kBadGrid,
                         "grid needs at least one period and one damping"};
  }
  for (std::size_t i = 0; i < grid.periods.size(); ++i) {
    const double t = grid.periods[i];
    if (!std::isfinite(t) || t <= 0) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "period " + std::to_string(i) +
                               " is not finite and positive"};
    }
    if (i > 0 && t <= grid.periods[i - 1]) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "periods must be strictly ascending"};
    }
  }
  for (std::size_t i = 0; i < grid.dampings.size(); ++i) {
    const double z = grid.dampings[i];
    if (!std::isfinite(z) || z < 0 || z >= 1) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "damping " + std::to_string(i) +
                               " is outside [0, 1)"};
    }
    if (i > 0 && z <= grid.dampings[i - 1]) {
      return SpectrumError{SpectrumError::Code::kBadGrid,
                           "dampings must be strictly ascending"};
    }
  }
  return Unit{};
}

Result<ResponseSpectrum, SpectrumError> response_spectrum(
    const std::vector<double>& acc, double dt, const ResponseGrid& grid,
    int threads) {
  auto grid_ok = validate_grid(grid);
  if (!grid_ok.ok()) return grid_ok.error();

  ResponseSpectrum out;
  out.periods = grid.periods;
  out.dampings = grid.dampings;
  const std::size_t periods = grid.periods.size();
  const std::size_t cells = periods * grid.dampings.size();
  out.sd.resize(cells);
  out.sv.resize(cells);
  out.sa.resize(cells);

  // The flattened (damping, period) grid loop. Each cell reads only the
  // shared input and writes only its own three slots, so the OpenMP
  // fan-out needs no synchronization on the happy path. Errors cannot
  // early-return from inside the parallel region; instead the lowest
  // failing linear index wins, which reproduces exactly the cell the
  // serial loop would have reported first.
  long long first_bad = -1;
  SpectrumError bad_error{};
#pragma omp parallel for schedule(static) num_threads(threads) \
    if (threads > 1)
  for (long long i = 0; i < static_cast<long long>(cells); ++i) {
    const std::size_t d = static_cast<std::size_t>(i) / periods;
    const std::size_t p = static_cast<std::size_t>(i) % periods;
    auto cell = sdof_peak_response(acc, dt, grid.periods[p], grid.dampings[d]);
    if (!cell.ok()) {
#pragma omp critical(acx_response_first_error)
      if (first_bad < 0 || i < first_bad) {
        first_bad = i;
        bad_error = cell.error();
      }
      continue;
    }
    out.sd[i] = cell.value().sd;
    out.sv[i] = cell.value().sv;
    out.sa[i] = cell.value().sa;
  }
  if (first_bad >= 0) return bad_error;
  return out;
}

}  // namespace acx::spectrum
