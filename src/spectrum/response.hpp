#pragma once

#include <cstddef>
#include <vector>

#include "spectrum/error.hpp"
#include "util/result.hpp"

namespace acx::spectrum {

// Peak response of one single-degree-of-freedom oscillator: maximum
// absolute relative displacement (SD, cm), relative velocity (SV,
// cm/s) and absolute acceleration (SA, cm/s2) over the record.
struct SdofPeaks {
  double sd = 0.0;
  double sv = 0.0;
  double sa = 0.0;
};

// One (period, damping) cell of the response-spectrum grid, evaluated
// with the exact Nigam–Jennings recurrence (docs/SPECTRUM.md): the SDOF
// equation is solved in closed form over each sampling interval under
// piecewise-linear excitation, so the only discretization is the
// sampling of the input itself. This is the paper's Stage IX kernel.
//
// Every cell is independent of every other cell — the upcoming OpenMP
// drivers parallelize over (record x period) by calling this function
// from concurrent iterations without any shared state.
//
// `acc` is ground acceleration (cm/s2), `period` in seconds (> 0),
// `damping` the fraction of critical in [0, 1).
Result<SdofPeaks, SpectrumError> sdof_peak_response(
    const std::vector<double>& acc, double dt, double period, double damping);

// The (period, damping) grid of an R output. Periods and dampings must
// be finite, strictly ascending; periods positive; dampings in [0, 1).
struct ResponseGrid {
  std::vector<double> periods;   // seconds
  std::vector<double> dampings;  // fraction of critical
};

// The paper's Stage IX grid: 600 log-spaced periods in [0.02 s, 10 s]
// and the five standard damping ratios {0, 2, 5, 10, 20} % of critical
// (600 x 5 x 3 quantities = 9000 values per component).
ResponseGrid paper_grid();

// Grid sanity shared by response_spectrum and the R-format writer.
Result<Unit, SpectrumError> validate_grid(const ResponseGrid& grid);

// Full response spectrum: SD/SV/SA for every grid cell, damping-major
// (value for dampings[d], periods[p] at index d * periods.size() + p).
struct ResponseSpectrum {
  std::vector<double> periods;
  std::vector<double> dampings;
  std::vector<double> sd, sv, sa;  // each dampings.size() * periods.size()

  std::size_t index(std::size_t d, std::size_t p) const {
    return d * periods.size() + p;
  }
};

// Evaluates sdof_peak_response over the grid. Cells touch only their
// own output slots, so `threads > 1` fans the flattened (damping,
// period) loop across an OpenMP team — the paper's nested `omp for` of
// the fully-parallelized driver. The result is bit-identical to the
// serial evaluation for any team size, and on failure the reported
// error is the same cell the serial loop would have stopped at.
Result<ResponseSpectrum, SpectrumError> response_spectrum(
    const std::vector<double>& acc, double dt, const ResponseGrid& grid,
    int threads = 1);

}  // namespace acx::spectrum
