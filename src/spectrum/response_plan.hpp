#pragma once

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "spectrum/response.hpp"

namespace acx::spectrum {

// Exact one-step propagator of x'' + 2*z*w*x' + w^2*x = -a(t) under
// piecewise-linear a(t) over one interval of length dt (Nigam &
// Jennings 1969). The recurrence
//   x_{i+1} = a11*x_i + a12*v_i + b11*a_i + b12*a_{i+1}
//   v_{i+1} = a21*x_i + a22*v_i + b21*a_i + b22*a_{i+1}
// is assembled by propagating the four unit states through the
// closed-form interval solution — algebraically identical to the
// published coefficient formulas, without their error-prone 1/w^3
// bookkeeping (docs/SPECTRUM.md derives both forms).
//
// This is the single source of the Stage-IX coefficients: the scalar
// kernel constructs one per call, and ResponsePlan below materializes
// one per grid cell — identical values by construction, which is half
// of the batch kernel's bit-identity contract (the other half is the
// operation order inside the recurrence loop).
struct NigamJennings {
  double a11, a12, a21, a22;
  double b11, b12, b21, b22;
  double two_zw, w2;  // absolute acceleration = -(2*z*w*v + w^2*x)

  NigamJennings(double w, double z, double dt) {
    const double beta = z * w;        // decay rate
    const double wd = w * std::sqrt(1.0 - z * z);  // damped frequency
    const double e = std::exp(-beta * dt);
    const double s = std::sin(wd * dt);
    const double c = std::cos(wd * dt);
    const double w3 = w * w * w;
    w2 = w * w;
    two_zw = 2.0 * beta;

    // Closed-form state at t = dt for initial state (x0, v0) and
    // forcing a(t) = a0 + m*t, m = (a1 - a0) / dt:
    //   particular: xp(t) = -(a0 + m*t)/w^2 + 2*z*m/w^3, vp(t) = -m/w^2
    //   homogeneous: e^{-beta t} (A cos wd t + B sin wd t),
    //     A = x0 - xp(0),  B = (v0 - vp(0) + beta*A) / wd.
    auto step = [&](double x0, double v0, double a0, double a1, double& x1,
                    double& v1) {
      const double m = (a1 - a0) / dt;
      const double xp0 = -a0 / w2 + 2.0 * z * m / w3;
      const double vp0 = -m / w2;
      const double xpdt = -(a0 + m * dt) / w2 + 2.0 * z * m / w3;
      const double a_h = x0 - xp0;
      const double b_h = (v0 - vp0 + beta * a_h) / wd;
      x1 = e * (a_h * c + b_h * s) + xpdt;
      v1 = e * ((-beta * a_h + wd * b_h) * c - (wd * a_h + beta * b_h) * s) +
           vp0;
    };

    step(1, 0, 0, 0, a11, a21);
    step(0, 1, 0, 0, a12, a22);
    step(0, 0, 1, 0, b11, b21);
    step(0, 0, 0, 1, b12, b22);
  }
};

// Precomputed Stage-IX coefficients for a whole (dt, grid) pair in
// structure-of-arrays layout: one entry per grid cell, damping-major
// (the same linear index as ResponseSpectrum::index). Building the
// paper grid costs 3000 NigamJennings evaluations; records of one
// event share dt, so the plan is built once per event and reused by
// every record on every thread (the plan is immutable after build).
struct ResponsePlan {
  double dt = 0.0;
  ResponseGrid grid;
  std::size_t cells = 0;  // dampings.size() * periods.size()
  std::vector<double> a11, a12, a21, a22;
  std::vector<double> b11, b12, b21, b22;
  std::vector<double> two_zw, w2;

  // Validates dt and the grid exactly like the scalar path
  // (kBadSamplingInterval / kBadGrid), then materializes every cell.
  static Result<std::shared_ptr<const ResponsePlan>, SpectrumError> build(
      double dt, const ResponseGrid& grid);
};

// Cells marched in lockstep per block by the batch kernel: large
// enough to amortize the sweep of `acc` across many oscillators,
// small enough that the 15 live arrays of a block stay in L1.
inline constexpr std::size_t kSdofBatchBlock = 32;

// Period-blocked batch recurrence: sweeps acc once per block of at
// most kSdofBatchBlock cells from [cell_begin, cell_end), updating
// all oscillators of a block in lockstep, and writes the SD/SV/SA
// peaks at the cells' absolute indices in sd/sv/sa. The per-cell
// arithmetic is the scalar kernel's, in the scalar kernel's order, so
// the peaks are bit-identical to sdof_peak_response — the inner loop
// merely runs cells side by side over contiguous coefficient arrays
// (auto-vectorizable, no per-period allocation). No validation and no
// finiteness check here; callers scan the peaks (acc must have >= 2
// samples).
void sdof_peak_response_batch(const double* acc, std::size_t n,
                              const ResponsePlan& plan,
                              std::size_t cell_begin, std::size_t cell_end,
                              double* sd, double* sv, double* sa);

// Process-global, internally-locked, read-mostly plan cache keyed by
// (dt, periods, dampings) — exact double equality, which is the right
// notion here because grids are constructed once and dt comes off the
// record header verbatim. Lookups take a shared lock; a miss builds
// outside any lock and publishes under a unique lock (first insert
// wins). Invalid (dt, grid) pairs are reported, never cached. Every
// lookup feeds acx::perf cache counters.
class ResponsePlanCache {
 public:
  static ResponsePlanCache& instance();

  Result<std::shared_ptr<const ResponsePlan>, SpectrumError> get(
      double dt, const ResponseGrid& grid);

  // Drops every cached plan (cold-start for tests and microbenches).
  void clear();

 private:
  struct Impl;
  ResponsePlanCache();
  ~ResponsePlanCache();
  Impl* impl_;
};

// Plan-based spectrum evaluation: the cached-plan fast path that
// response_spectrum(acc, dt, grid, threads) wraps. Fans blocks of
// cells across `threads` (schedule(static) — block results do not
// depend on the team size, so the output is bit-identical for any
// thread count). Validates acc (kEmptyInput / kTooShort) and scans
// the peaks afterwards, reporting kNonFinite for the lowest failing
// cell exactly like the serial path.
Result<ResponseSpectrum, SpectrumError> response_spectrum(
    const std::vector<double>& acc, const ResponsePlan& plan, int threads = 1);

}  // namespace acx::spectrum
