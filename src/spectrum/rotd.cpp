#include "spectrum/rotd.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "spectrum/response_plan.hpp"

namespace acx::spectrum {

namespace {

constexpr double kPi = 3.14159265358979323846;

Result<Unit, SpectrumError> validate_pair(const std::vector<double>& acc_l,
                                          const std::vector<double>& acc_t,
                                          int angles) {
  if (angles < 1 || angles > kRotdMaxAngles) {
    return SpectrumError{SpectrumError::Code::kBadAngleCount,
                         "angle count must be in [1, " +
                             std::to_string(kRotdMaxAngles) + "]; got " +
                             std::to_string(angles)};
  }
  if (acc_l.size() != acc_t.size()) {
    return SpectrumError{SpectrumError::Code::kComponentMismatch,
                         "horizontal components disagree in length: l has " +
                             std::to_string(acc_l.size()) + " samples, t has " +
                             std::to_string(acc_t.size())};
  }
  if (acc_l.empty()) {
    return SpectrumError{SpectrumError::Code::kEmptyInput, "no samples"};
  }
  if (acc_l.size() < 2) {
    return SpectrumError{SpectrumError::Code::kTooShort,
                         "need at least 2 samples"};
  }
  // A NaN sample can slip through the peak accumulation (NaN loses
  // every max comparison), so the sweep checks its inputs up front —
  // one O(n) pass against an angles x cells x n kernel.
  for (std::size_t i = 0; i < acc_l.size(); ++i) {
    if (!std::isfinite(acc_l[i]) || !std::isfinite(acc_t[i])) {
      return SpectrumError{SpectrumError::Code::kNonFinite,
                           "input sample " + std::to_string(i) +
                               " is not finite"};
    }
  }
  return Unit{};
}

void rotate(const std::vector<double>& acc_l, const std::vector<double>& acc_t,
            double theta, std::vector<double>& out) {
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  out.resize(acc_l.size());
  for (std::size_t i = 0; i < acc_l.size(); ++i) {
    out[i] = acc_l[i] * c + acc_t[i] * s;
  }
}

// Percentile combination over the sweep: per cell, RotD00/50/100 are
// the min / median / max of the `angles` SA values (median of an even
// count averages the two middle order statistics). `sa_by_angle` is
// angle-major: angle k's SA for cell i sits at k * cells + i. Serial
// per cell and independent of how the sweep was threaded.
void combine(const std::vector<double>& sa_by_angle, int angles,
             std::size_t cells, RotdSpectrum& out) {
  const std::size_t na = static_cast<std::size_t>(angles);
  std::vector<double> column(na);
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t k = 0; k < na; ++k) {
      column[k] = sa_by_angle[k * cells + i];
    }
    std::sort(column.begin(), column.end());
    out.rotd00[i] = column.front();
    out.rotd100[i] = column.back();
    out.rotd50[i] = na % 2 == 1
                        ? column[na / 2]
                        : 0.5 * (column[na / 2 - 1] + column[na / 2]);
  }
}

// The lowest non-finite (angle, cell) pair in the angle-major SA
// matrix, reported exactly like the serial sweep would have.
Result<Unit, SpectrumError> check_finite(const std::vector<double>& sa_by_angle,
                                         int angles, std::size_t cells) {
  for (int k = 0; k < angles; ++k) {
    const std::size_t base = static_cast<std::size_t>(k) * cells;
    for (std::size_t i = 0; i < cells; ++i) {
      if (!std::isfinite(sa_by_angle[base + i])) {
        return SpectrumError{SpectrumError::Code::kNonFinite,
                             "oscillator response is not finite at angle " +
                                 std::to_string(k) + ", cell " +
                                 std::to_string(i)};
      }
    }
  }
  return Unit{};
}

}  // namespace

Result<RotdSpectrum, SpectrumError> rotd_spectrum(
    const std::vector<double>& acc_l, const std::vector<double>& acc_t,
    double dt, const ResponseGrid& grid, int angles, int threads) {
  auto valid = validate_pair(acc_l, acc_t, angles);
  if (!valid.ok()) return std::move(valid).take_error();

  // One cached plan serves all `angles` rotated sweeps plus the two
  // unrotated component sweeps for the geometric mean.
  auto plan_or = ResponsePlanCache::instance().get(dt, grid);
  if (!plan_or.ok()) return std::move(plan_or).take_error();
  const std::shared_ptr<const ResponsePlan> plan = std::move(plan_or).take();
  const std::size_t cells = plan->cells;

  std::vector<double> sa_by_angle(static_cast<std::size_t>(angles) * cells);
  std::vector<double> scratch_sd(cells), scratch_sv(cells);

  // Every angle writes only its own SA slice and the combination runs
  // after the sweep, so the result is bit-identical for any team size
  // regardless of the schedule; static keeps the work split balanced
  // (all angles cost the same).
  const double step = kPi / static_cast<double>(angles);
#pragma omp parallel for schedule(static) num_threads(threads) \
    if (threads > 1)
  for (int k = 0; k < angles; ++k) {
    std::vector<double> rotated;
    std::vector<double> sd(cells), sv(cells);
    rotate(acc_l, acc_t, static_cast<double>(k) * step, rotated);
    double* sa = sa_by_angle.data() + static_cast<std::size_t>(k) * cells;
    for (std::size_t begin = 0; begin < cells; begin += kSdofBatchBlock) {
      const std::size_t end = std::min(cells, begin + kSdofBatchBlock);
      sdof_peak_response_batch(rotated.data(), rotated.size(), *plan, begin,
                               end, sd.data(), sv.data(), sa);
    }
  }

  auto finite = check_finite(sa_by_angle, angles, cells);
  if (!finite.ok()) return std::move(finite).take_error();

  RotdSpectrum out;
  out.periods = grid.periods;
  out.dampings = grid.dampings;
  out.angles = angles;
  out.rotd00.resize(cells);
  out.rotd50.resize(cells);
  out.rotd100.resize(cells);
  out.geomean.resize(cells);
  combine(sa_by_angle, angles, cells, out);

  // Geometric mean from dedicated unrotated sweeps (angle 0 is l
  // exactly, but no sweep angle hits t exactly — cos(pi/2) is not a
  // representable zero — so both components get their own pass).
  std::vector<double> sa_l(cells), sa_t(cells);
  for (std::size_t begin = 0; begin < cells; begin += kSdofBatchBlock) {
    const std::size_t end = std::min(cells, begin + kSdofBatchBlock);
    sdof_peak_response_batch(acc_l.data(), acc_l.size(), *plan, begin, end,
                             scratch_sd.data(), scratch_sv.data(), sa_l.data());
    sdof_peak_response_batch(acc_t.data(), acc_t.size(), *plan, begin, end,
                             scratch_sd.data(), scratch_sv.data(), sa_t.data());
  }
  for (std::size_t i = 0; i < cells; ++i) {
    if (!std::isfinite(sa_l[i]) || !std::isfinite(sa_t[i])) {
      return SpectrumError{SpectrumError::Code::kNonFinite,
                           "component response is not finite at cell " +
                               std::to_string(i)};
    }
    out.geomean[i] = std::sqrt(sa_l[i] * sa_t[i]);
  }
  return out;
}

Result<RotdSpectrum, SpectrumError> rotd_spectrum_reference(
    const std::vector<double>& acc_l, const std::vector<double>& acc_t,
    double dt, const ResponseGrid& grid, int angles) {
  auto valid = validate_pair(acc_l, acc_t, angles);
  if (!valid.ok()) return std::move(valid).take_error();
  auto grid_ok = validate_grid(grid);
  if (!grid_ok.ok()) return std::move(grid_ok).take_error();

  const std::size_t cells = grid.dampings.size() * grid.periods.size();
  std::vector<double> sa_by_angle(static_cast<std::size_t>(angles) * cells);
  std::vector<double> rotated;
  const double step = kPi / static_cast<double>(angles);
  for (int k = 0; k < angles; ++k) {
    rotate(acc_l, acc_t, static_cast<double>(k) * step, rotated);
    const std::size_t base = static_cast<std::size_t>(k) * cells;
    for (std::size_t d = 0; d < grid.dampings.size(); ++d) {
      for (std::size_t p = 0; p < grid.periods.size(); ++p) {
        auto peaks = sdof_peak_response(rotated, dt, grid.periods[p],
                                        grid.dampings[d]);
        if (!peaks.ok()) return std::move(peaks).take_error();
        sa_by_angle[base + d * grid.periods.size() + p] = peaks.value().sa;
      }
    }
  }

  RotdSpectrum out;
  out.periods = grid.periods;
  out.dampings = grid.dampings;
  out.angles = angles;
  out.rotd00.resize(cells);
  out.rotd50.resize(cells);
  out.rotd100.resize(cells);
  out.geomean.resize(cells);
  combine(sa_by_angle, angles, cells, out);

  for (std::size_t d = 0; d < grid.dampings.size(); ++d) {
    for (std::size_t p = 0; p < grid.periods.size(); ++p) {
      auto l = sdof_peak_response(acc_l, dt, grid.periods[p], grid.dampings[d]);
      if (!l.ok()) return std::move(l).take_error();
      auto t = sdof_peak_response(acc_t, dt, grid.periods[p], grid.dampings[d]);
      if (!t.ok()) return std::move(t).take_error();
      out.geomean[d * grid.periods.size() + p] =
          std::sqrt(l.value().sa * t.value().sa);
    }
  }
  return out;
}

}  // namespace acx::spectrum
