#pragma once

// Orientation-independent RotD spectra (docs/SPECTRUM.md, "RotD
// sweep"). The horizontal pair (l, t) of one station is rotated over
// an angle sweep
//   a(θ_k) = l·cos θ_k + t·sin θ_k,   θ_k = k · 180° / angles,
// k = 0 .. angles-1, and the SA of every rotated series is evaluated
// on the (period, damping) grid with the batched Nigam–Jennings
// Stage-IX kernel. Per grid cell the percentiles over the sweep give
// RotD00 (min), RotD50 (median) and RotD100 (max); the geometric mean
// sqrt(SA_l · SA_t) of the unrotated components rides along. Each
// angle is independent of every other angle — the sweep is
// embarrassingly parallel, and the station stage fans it across the
// driver's OpenMP team / pool worker.

#include <cstddef>
#include <vector>

#include "spectrum/response.hpp"
#include "util/result.hpp"

namespace acx::spectrum {

// 1° resolution over [0°, 180°) — rotating by 180° negates the trace
// and leaves |SA| unchanged, so a half-turn covers every orientation.
inline constexpr int kRotdDefaultAngles = 180;
inline constexpr int kRotdMaxAngles = 36000;

// RotD percentile SA spectra, damping-major like ResponseSpectrum.
struct RotdSpectrum {
  std::vector<double> periods;
  std::vector<double> dampings;
  int angles = 0;
  std::vector<double> rotd00, rotd50, rotd100;  // SA percentiles, cm/s2
  std::vector<double> geomean;                  // sqrt(SA_l * SA_t)

  std::size_t index(std::size_t d, std::size_t p) const {
    return d * periods.size() + p;
  }
};

// The batched sweep. Fetches the (dt, grid) ResponsePlan from the
// process-global cache once and reuses it across all angles (and for
// the two unrotated component sweeps feeding the geometric mean).
// `threads > 1` fans the angle loop across an OpenMP team with a
// static schedule; every angle writes only its own SA slice and the
// percentile combination is evaluated after the sweep, so the result
// is bit-identical for any team size. On a non-finite peak the
// reported cell is the lowest (angle, cell) pair, independent of the
// team size.
Result<RotdSpectrum, SpectrumError> rotd_spectrum(
    const std::vector<double>& acc_l, const std::vector<double>& acc_t,
    double dt, const ResponseGrid& grid, int angles = kRotdDefaultAngles,
    int threads = 1);

// Scalar reference: one sdof_peak_response call per (angle, cell),
// no batching, no plan, no threads. The acceptance contract pins the
// batched sweep to this to 1e-9 relative (tests/test_rotd.cpp); the
// bench compares their cost.
Result<RotdSpectrum, SpectrumError> rotd_spectrum_reference(
    const std::vector<double>& acc_l, const std::vector<double>& acc_t,
    double dt, const ResponseGrid& grid, int angles = kRotdDefaultAngles);

}  // namespace acx::spectrum
