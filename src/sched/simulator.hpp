#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "sched/cost_model.hpp"

namespace acx::sched {

// One modeled unit of work: a (record, stage) pair, or one chunk of a
// split stage ("SS01l/response#3"). `deps` index earlier tasks — every
// graph builder emits tasks in topological order.
struct Task {
  std::string id;
  std::string record;
  std::string stage;
  double seconds = 0;
  std::vector<int> deps;
};

// A task DAG plus the work/span (critical-path) analysis over it.
struct TaskGraph {
  std::vector<Task> tasks;

  // T1: total work, the sum of every task's cost.
  double work() const;
  // T-infinity: the longest dependency chain, by summed cost.
  double span() const;
  // Critical-path-to-exit per task (own cost included) — the priority
  // key of the list scheduler.
  std::vector<double> critical_paths() const;
};

// How the full driver's graph models the nested Stage-IX parallelism:
// the named stage's cost is split into `split` equal chunks that may
// run on any idle virtual processor (the paper's nested `omp for` over
// the response-period grid). split <= 1 disables splitting.
struct GraphOptions {
  std::string split_stage = "response";
  int split = 1;
};

// Sequential drivers: every task chained in execution order (records
// by id, stages in plan order) — the makespan is the summed work, on
// any processor count, exactly like the real drivers.
TaskGraph serial_graph(const CostModel& model,
                       const std::vector<pipeline::StageShape>& plan);

// Partial driver: stage-by-stage fan-out with a barrier between
// stages — every task of stage k depends on every task of stage k-1.
// A stage that is not parallel_safe additionally chains its own tasks.
TaskGraph barrier_graph(const CostModel& model,
                        const std::vector<pipeline::StageShape>& plan);

// Full driver: true per-record dependency edges from the stage graph,
// with the split stage fanned into chunks (GraphOptions). A dependency
// on a stage the record has no cost for (pruned, or shed on a degraded
// record) falls through to that stage's own dependencies.
TaskGraph record_graph(const CostModel& model,
                       const std::vector<pipeline::StageShape>& plan,
                       const GraphOptions& opt);

// One stage in isolation (its tasks only, no deps, split applied when
// the stage is opt.split_stage) — the per-stage Fig. 11 model.
TaskGraph stage_graph(const CostModel& model, const std::string& stage,
                      const GraphOptions& opt);

struct Placement {
  int task = 0;
  int proc = 0;
  double start = 0;
  double end = 0;
};

struct Schedule {
  int procs = 1;
  double makespan = 0;
  std::vector<Placement> placements;  // in assignment order
  std::vector<double> busy;           // busy seconds per processor
};

// Deterministic greedy list scheduling on `procs` virtual processors:
// whenever a processor is idle and tasks are ready, the ready task with
// the longest critical path starts on the lowest-numbered idle
// processor. Ties on the critical path break on a seeded per-task hash,
// then on task id — no wall clock, no global state, so the same
// (graph, procs, seed) always yields the same schedule, byte for byte.
Schedule list_schedule(const TaskGraph& graph, int procs,
                       std::uint64_t seed);

}  // namespace acx::sched
