#pragma once

#include <string>

#include "sched/simulator.hpp"

namespace acx::sched {

// Text Gantt chart of a simulated schedule: one row per virtual
// processor, time scaled to `width` columns, each column showing the
// stage letter of the task running at that column's midpoint ('.' =
// idle), followed by a stage-letter legend and per-processor busy
// shares. Output is a pure function of (graph, schedule, width).
std::string render_gantt(const TaskGraph& graph, const Schedule& schedule,
                         int width = 96);

}  // namespace acx::sched
