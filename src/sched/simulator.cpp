#include "sched/simulator.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "util/rng.hpp"

namespace acx::sched {

double TaskGraph::work() const {
  double sum = 0;
  for (const Task& t : tasks) sum += t.seconds;
  return sum;
}

std::vector<double> TaskGraph::critical_paths() const {
  const int n = static_cast<int>(tasks.size());
  std::vector<std::vector<int>> dependents(n);
  for (int i = 0; i < n; ++i) {
    for (const int dep : tasks[i].deps) dependents[dep].push_back(i);
  }
  // Tasks are topologically ordered (deps index earlier tasks), so one
  // reverse pass settles every path.
  std::vector<double> cp(n, 0);
  for (int i = n - 1; i >= 0; --i) {
    double tail = 0;
    for (const int j : dependents[i]) tail = std::max(tail, cp[j]);
    cp[i] = tasks[i].seconds + tail;
  }
  return cp;
}

double TaskGraph::span() const {
  double longest = 0;
  for (const double c : critical_paths()) longest = std::max(longest, c);
  return longest;
}

namespace {

// Records in model order (already sorted by id) and plan stages in
// declaration order, restricted to (record, stage) pairs the model has
// a cost for.
struct PlannedTask {
  const RecordCosts* record;
  const pipeline::StageShape* stage;
  double seconds;
};

std::vector<PlannedTask> planned_tasks(
    const CostModel& model, const std::vector<pipeline::StageShape>& plan,
    bool record_major) {
  std::vector<PlannedTask> out;
  auto emit = [&](const RecordCosts& r, const pipeline::StageShape& s) {
    auto it = r.stage_seconds.find(s.name);
    if (it != r.stage_seconds.end()) out.push_back({&r, &s, it->second});
  };
  if (record_major) {
    for (const RecordCosts& r : model.records) {
      for (const pipeline::StageShape& s : plan) emit(r, s);
    }
  } else {
    for (const pipeline::StageShape& s : plan) {
      for (const RecordCosts& r : model.records) emit(r, s);
    }
  }
  return out;
}

std::string task_id(const PlannedTask& t) {
  return t.record->record + "/" + t.stage->name;
}

}  // namespace

TaskGraph serial_graph(const CostModel& model,
                       const std::vector<pipeline::StageShape>& plan) {
  TaskGraph g;
  for (const PlannedTask& t :
       planned_tasks(model, plan, /*record_major=*/true)) {
    Task task{task_id(t), t.record->record, t.stage->name, t.seconds, {}};
    if (!g.tasks.empty()) {
      task.deps.push_back(static_cast<int>(g.tasks.size()) - 1);
    }
    g.tasks.push_back(std::move(task));
  }
  return g;
}

TaskGraph barrier_graph(const CostModel& model,
                        const std::vector<pipeline::StageShape>& plan) {
  TaskGraph g;
  std::vector<int> previous_stage;  // task indices of the last stage
  for (const pipeline::StageShape& s : plan) {
    std::vector<int> current;
    for (const RecordCosts& r : model.records) {
      auto it = r.stage_seconds.find(s.name);
      if (it == r.stage_seconds.end()) continue;
      Task task{r.record + "/" + s.name, r.record, s.name, it->second,
                previous_stage};
      if (!s.parallel_safe && !current.empty()) {
        task.deps.push_back(current.back());
      }
      current.push_back(static_cast<int>(g.tasks.size()));
      g.tasks.push_back(std::move(task));
    }
    if (!current.empty()) previous_stage = std::move(current);
  }
  return g;
}

TaskGraph record_graph(const CostModel& model,
                       const std::vector<pipeline::StageShape>& plan,
                       const GraphOptions& opt) {
  TaskGraph g;
  for (const RecordCosts& r : model.records) {
    // Task indices of each stage this record actually runs; a split
    // stage owns several.
    std::map<std::string, std::vector<int>> by_stage;
    for (const pipeline::StageShape& s : plan) {
      auto it = r.stage_seconds.find(s.name);
      if (it == r.stage_seconds.end()) continue;
      // Resolve dependency names to task indices; a dep the record
      // never ran (pruned or shed) falls through to its own deps so
      // the chain stays connected.
      std::vector<int> deps;
      std::vector<const pipeline::StageShape*> frontier;
      auto find_shape = [&](const std::string& name)
          -> const pipeline::StageShape* {
        for (const pipeline::StageShape& candidate : plan) {
          if (candidate.name == name) return &candidate;
        }
        return nullptr;
      };
      for (const std::string& dep : s.deps) {
        if (const pipeline::StageShape* shape = find_shape(dep)) {
          frontier.push_back(shape);
        }
      }
      while (!frontier.empty()) {
        const pipeline::StageShape* shape = frontier.back();
        frontier.pop_back();
        auto ran = by_stage.find(shape->name);
        if (ran != by_stage.end()) {
          deps.insert(deps.end(), ran->second.begin(), ran->second.end());
          continue;
        }
        for (const std::string& dep : shape->deps) {
          if (const pipeline::StageShape* parent = find_shape(dep)) {
            frontier.push_back(parent);
          }
        }
      }
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

      const bool split = s.name == opt.split_stage && opt.split > 1;
      const int chunks = split ? opt.split : 1;
      std::vector<int>& mine = by_stage[s.name];
      for (int k = 0; k < chunks; ++k) {
        Task task{r.record + "/" + s.name, r.record, s.name,
                  it->second / chunks, deps};
        if (split) {
          task.id.push_back('#');
          task.id += std::to_string(k);
        }
        mine.push_back(static_cast<int>(g.tasks.size()));
        g.tasks.push_back(std::move(task));
      }
    }
  }
  return g;
}

TaskGraph stage_graph(const CostModel& model, const std::string& stage,
                      const GraphOptions& opt) {
  TaskGraph g;
  const bool split = stage == opt.split_stage && opt.split > 1;
  const int chunks = split ? opt.split : 1;
  for (const RecordCosts& r : model.records) {
    auto it = r.stage_seconds.find(stage);
    if (it == r.stage_seconds.end()) continue;
    for (int k = 0; k < chunks; ++k) {
      Task task{r.record + "/" + stage, r.record, stage,
                it->second / chunks, {}};
      if (split) {
        task.id.push_back('#');
        task.id += std::to_string(k);
      }
      g.tasks.push_back(std::move(task));
    }
  }
  return g;
}

Schedule list_schedule(const TaskGraph& graph, int procs,
                       std::uint64_t seed) {
  Schedule schedule;
  schedule.procs = std::max(1, procs);
  schedule.busy.assign(schedule.procs, 0.0);
  const int n = static_cast<int>(graph.tasks.size());
  if (n == 0) return schedule;

  const std::vector<double> cp = graph.critical_paths();
  // Seeded tie-break: a per-task hash mixed from the run seed and the
  // task id. Deterministic for a given (graph, seed); no two tasks of
  // one graph compare fully equal because the final key is the id.
  std::vector<std::uint64_t> salt(n);
  for (int i = 0; i < n; ++i) {
    std::uint64_t state = seed ^ fnv1a64(graph.tasks[i].id);
    salt[i] = splitmix64(state);
  }
  auto before = [&](int a, int b) {
    if (cp[a] != cp[b]) return cp[a] > cp[b];
    if (salt[a] != salt[b]) return salt[a] < salt[b];
    if (graph.tasks[a].id != graph.tasks[b].id) {
      return graph.tasks[a].id < graph.tasks[b].id;
    }
    return a < b;
  };

  std::vector<std::vector<int>> dependents(n);
  std::vector<int> missing_deps(n, 0);
  for (int i = 0; i < n; ++i) {
    missing_deps[i] = static_cast<int>(graph.tasks[i].deps.size());
    for (const int dep : graph.tasks[i].deps) dependents[dep].push_back(i);
  }

  std::set<int, decltype(before)> ready(before);
  for (int i = 0; i < n; ++i) {
    if (missing_deps[i] == 0) ready.insert(i);
  }
  std::set<int> idle;
  for (int p = 0; p < schedule.procs; ++p) idle.insert(p);

  // (end, task, proc) min-heap of running tasks; equal end times pop in
  // task order, keeping the event order deterministic.
  using Running = std::tuple<double, int, int>;
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;

  double now = 0;
  int completed = 0;
  while (completed < n) {
    while (!ready.empty() && !idle.empty()) {
      const int task = *ready.begin();
      ready.erase(ready.begin());
      const int proc = *idle.begin();
      idle.erase(idle.begin());
      const double end = now + graph.tasks[task].seconds;
      schedule.placements.push_back({task, proc, now, end});
      schedule.busy[proc] += graph.tasks[task].seconds;
      running.emplace(end, task, proc);
    }
    // Advance to the next completion and drain every event at that
    // instant before assigning again, so simultaneous completions
    // release their dependents together.
    if (running.empty()) break;  // cyclic graph; builders never emit one
    now = std::get<0>(running.top());
    while (!running.empty() && std::get<0>(running.top()) == now) {
      const auto [end, task, proc] = running.top();
      running.pop();
      idle.insert(proc);
      ++completed;
      for (const int dependent : dependents[task]) {
        if (--missing_deps[dependent] == 0) ready.insert(dependent);
      }
    }
    schedule.makespan = std::max(schedule.makespan, now);
  }
  return schedule;
}

}  // namespace acx::sched
