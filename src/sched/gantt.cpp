#include "sched/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

namespace acx::sched {

namespace {

// Stable stage -> letter assignment: first appearance in task order.
// A-Z then a-z then digits; '?' past 62 distinct stages.
char stage_letter(std::size_t index) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  if (index < sizeof(kAlphabet) - 1) return kAlphabet[index];
  return '?';
}

}  // namespace

std::string render_gantt(const TaskGraph& graph, const Schedule& schedule,
                         int width) {
  width = std::max(8, width);
  std::string out;
  char buf[160];

  std::map<std::string, char> letters;
  std::vector<std::pair<std::string, char>> legend;
  for (const Task& t : graph.tasks) {
    if (letters.count(t.stage)) continue;
    const char letter = stage_letter(legend.size());
    letters[t.stage] = letter;
    legend.emplace_back(t.stage, letter);
  }

  std::snprintf(buf, sizeof buf,
                "gantt: %d proc%s, makespan %.6fs, %d task%s, %d col%s\n",
                schedule.procs, schedule.procs == 1 ? "" : "s",
                schedule.makespan,
                static_cast<int>(graph.tasks.size()),
                graph.tasks.size() == 1 ? "" : "s", width,
                width == 1 ? "" : "s");
  out += buf;
  if (schedule.makespan <= 0) return out;

  // Per-processor placements in start order.
  std::vector<std::vector<const Placement*>> rows(schedule.procs);
  for (const Placement& p : schedule.placements) rows[p.proc].push_back(&p);
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const Placement* a, const Placement* b) {
                return a->start < b->start;
              });
  }

  const double dt = schedule.makespan / width;
  for (int proc = 0; proc < schedule.procs; ++proc) {
    std::string cells(static_cast<std::size_t>(width), '.');
    std::size_t cursor = 0;
    for (int col = 0; col < width; ++col) {
      const double t = (col + 0.5) * dt;
      while (cursor < rows[proc].size() && rows[proc][cursor]->end <= t) {
        ++cursor;
      }
      if (cursor < rows[proc].size() && rows[proc][cursor]->start <= t) {
        cells[static_cast<std::size_t>(col)] =
            letters[graph.tasks[rows[proc][cursor]->task].stage];
      }
    }
    const double busy = schedule.busy[proc];
    std::snprintf(buf, sizeof buf, "p%02d |%s| %5.1f%%\n", proc,
                  cells.c_str(),
                  schedule.makespan > 0 ? 100.0 * busy / schedule.makespan
                                        : 0.0);
    out += buf;
  }

  out += "legend:";
  for (const auto& [stage, letter] : legend) {
    out += ' ';
    out += letter;
    out += '=';
    out += stage;
  }
  out += '\n';
  return out;
}

}  // namespace acx::sched
