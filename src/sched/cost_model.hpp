#pragma once

#include <map>
#include <string>
#include <vector>

#include "pipeline/report.hpp"
#include "util/result.hpp"

namespace acx::sched {

// Measured stage costs of one record, extracted from a v6
// run_report.json. `retried` flags a record whose costs include retry
// backoff sleeps — the model keeps it but marks the contamination;
// `shed_flagged` flags a degraded record kept under
// CostModelOptions::include_degraded, whose shed stages carry no cost.
struct RecordCosts {
  std::string record;
  long long points = 0;
  bool retried = false;
  bool shed_flagged = false;
  std::map<std::string, double> stage_seconds;
};

struct CostModelOptions {
  // Keep degraded records (their shed stages simply have no cost row)
  // instead of excluding them. Quarantined records are always excluded:
  // a record that published nothing measured nothing.
  bool include_degraded = false;
  // A measured cost of exactly zero would make its task invisible to
  // the scheduler and poison speedup ratios; zero-duration measurements
  // (clock-resolution artifacts) are raised to this floor and counted.
  double floor_seconds = 1e-9;
};

// One measured wall-clock anchor carried over from a source report.
struct MeasuredRun {
  std::string driver;  // "seq" | "seq-opt" | "partial" | "full"
  int threads = 1;
  double total_seconds = 0;
};

// The simulator's input: per-(record, stage) costs plus the bookkeeping
// of what the extraction excluded or flagged. Records are sorted by id,
// so a model built twice from the same report is identical.
struct CostModel {
  std::string source;  // input_dir of the first contributing report
  std::vector<RecordCosts> records;
  std::vector<MeasuredRun> measured;
  int excluded_quarantined = 0;
  int excluded_degraded = 0;
  int flagged_degraded = 0;
  int flagged_retried = 0;
  int floored_costs = 0;
  // v7 station rows whose station name collided with a record id and
  // were dropped rather than merged into the wrong row.
  int excluded_station_collisions = 0;

  long long total_points() const;
  // Summed cost of one stage across all records (0 when absent).
  double stage_work(const std::string& stage) const;
  // True when at least one record carries a cost for the stage.
  bool has_stage(const std::string& stage) const;
  const RecordCosts* find(const std::string& record) const;
};

// Extract the per-record costs of a parsed report. Fails when nothing
// usable survives the exclusion policy, or when a surviving cost is
// negative or non-finite (a corrupt report).
Result<CostModel, std::string> cost_model_from_report(
    const pipeline::RunReport& report, const CostModelOptions& opt = {});

// Fallback extraction when per-record rows are unusable (e.g. every
// record degraded under deadline pressure): spread each stage's
// stage_totals cost evenly across the ok records. Coarser — every
// record looks average-sized — but still exercises the schedule shape.
Result<CostModel, std::string> cost_model_from_profile(
    const pipeline::RunReport& report, const CostModelOptions& opt = {});

// Merge `from` into `into`: unknown records are adopted whole, known
// records adopt only stages they lack (first report wins per
// (record, stage) — pass the authoritative report first). Measured
// anchors are appended; exclusion counters are summed.
void merge_cost_model(CostModel& into, const CostModel& from);

}  // namespace acx::sched
