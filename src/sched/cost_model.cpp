#include "sched/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace acx::sched {

long long CostModel::total_points() const {
  long long n = 0;
  for (const RecordCosts& r : records) n += r.points;
  return n;
}

double CostModel::stage_work(const std::string& stage) const {
  double sum = 0;
  for (const RecordCosts& r : records) {
    auto it = r.stage_seconds.find(stage);
    if (it != r.stage_seconds.end()) sum += it->second;
  }
  return sum;
}

bool CostModel::has_stage(const std::string& stage) const {
  for (const RecordCosts& r : records) {
    if (r.stage_seconds.count(stage)) return true;
  }
  return false;
}

const RecordCosts* CostModel::find(const std::string& record) const {
  for (const RecordCosts& r : records) {
    if (r.record == record) return &r;
  }
  return nullptr;
}

namespace {

void sort_records(CostModel& model) {
  std::sort(model.records.begin(), model.records.end(),
            [](const RecordCosts& a, const RecordCosts& b) {
              return a.record < b.record;
            });
}

// Floor-and-audit one extracted cost; false on corrupt input.
bool admit_cost(double seconds, const CostModelOptions& opt, double& out,
                int& floored) {
  if (!std::isfinite(seconds) || seconds < 0) return false;
  if (seconds < opt.floor_seconds) {
    out = opt.floor_seconds;
    ++floored;
  } else {
    out = seconds;
  }
  return true;
}

}  // namespace

Result<CostModel, std::string> cost_model_from_report(
    const pipeline::RunReport& report, const CostModelOptions& opt) {
  if (opt.floor_seconds <= 0 || !std::isfinite(opt.floor_seconds)) {
    return std::string("cost model floor_seconds must be positive");
  }
  CostModel model;
  model.source = report.input_dir;
  model.measured.push_back(
      {report.driver, report.threads, report.total_seconds});

  for (const pipeline::RecordOutcome& r : report.records) {
    if (r.status == pipeline::RecordOutcome::Status::kQuarantined) {
      ++model.excluded_quarantined;
      continue;
    }
    if (r.degraded && !opt.include_degraded) {
      ++model.excluded_degraded;
      continue;
    }
    RecordCosts costs;
    costs.record = r.record;
    costs.points = r.points;
    costs.retried = r.retries > 0;
    costs.shed_flagged = r.degraded;
    if (costs.retried) ++model.flagged_retried;
    if (costs.shed_flagged) ++model.flagged_degraded;
    for (const auto& [stage, seconds] : r.ok_stage_seconds()) {
      double admitted = 0;
      if (!admit_cost(seconds, opt, admitted, model.floored_costs)) {
        return "record '" + r.record + "' stage '" + stage +
               "' has a non-finite or negative cost";
      }
      costs.stage_seconds[stage] = admitted;
    }
    if (costs.stage_seconds.empty()) {
      return "record '" + r.record + "' published but has no stage costs";
    }
    model.records.push_back(std::move(costs));
  }

  // v7 station phase: the station-scoped stages (rotd) are real work
  // the simulator should schedule. Each station with successful
  // station-stage attempts contributes one pseudo-row keyed by its
  // station name, carrying only those costs (the graph builders give a
  // row without per-record stages no upstream deps, so the row lands
  // after the record fan-out exactly where the runner puts it). A
  // station name that collides with a record id is dropped and counted
  // — merging would corrupt both rows.
  for (const pipeline::StationOutcome& st : report.stations) {
    RecordCosts costs;
    costs.record = st.station;
    costs.retried = st.retries > 0;
    for (const pipeline::StageAttempt& s : st.stages) {
      if (!s.ok) continue;
      double admitted = 0;
      if (!admit_cost(s.seconds, opt, admitted, model.floored_costs)) {
        return "station '" + st.station + "' stage '" + s.stage +
               "' has a non-finite or negative cost";
      }
      costs.stage_seconds[s.stage] += admitted;
    }
    if (costs.stage_seconds.empty()) continue;
    bool collides = false;
    for (const RecordCosts& r : model.records) {
      if (r.record == costs.record) {
        collides = true;
        break;
      }
    }
    if (collides) {
      ++model.excluded_station_collisions;
      continue;
    }
    if (costs.retried) ++model.flagged_retried;
    model.records.push_back(std::move(costs));
  }
  if (model.records.empty()) {
    return std::string(
        "no usable records: every record was quarantined or degraded "
        "(consider include_degraded)");
  }
  sort_records(model);
  return model;
}

Result<CostModel, std::string> cost_model_from_profile(
    const pipeline::RunReport& report, const CostModelOptions& opt) {
  if (opt.floor_seconds <= 0 || !std::isfinite(opt.floor_seconds)) {
    return std::string("cost model floor_seconds must be positive");
  }
  CostModel model;
  model.source = report.input_dir;
  model.measured.push_back(
      {report.driver, report.threads, report.total_seconds});

  std::vector<const pipeline::RecordOutcome*> survivors;
  for (const pipeline::RecordOutcome& r : report.records) {
    if (r.status == pipeline::RecordOutcome::Status::kQuarantined) {
      ++model.excluded_quarantined;
      continue;
    }
    survivors.push_back(&r);
  }
  if (survivors.empty()) {
    return std::string("no usable records: every record was quarantined");
  }

  const auto totals = report.stage_totals();
  const double n = static_cast<double>(survivors.size());
  for (const pipeline::RecordOutcome* r : survivors) {
    RecordCosts costs;
    costs.record = r->record;
    costs.points = r->points;
    costs.retried = r->retries > 0;
    costs.shed_flagged = r->degraded;
    if (costs.retried) ++model.flagged_retried;
    if (costs.shed_flagged) ++model.flagged_degraded;
    for (const auto& [stage, seconds] : totals) {
      double admitted = 0;
      if (!admit_cost(seconds / n, opt, admitted, model.floored_costs)) {
        return "stage_totals entry '" + stage +
               "' has a non-finite or negative cost";
      }
      costs.stage_seconds[stage] = admitted;
    }
    if (costs.stage_seconds.empty()) {
      return std::string("report has an empty stage_totals block");
    }
    model.records.push_back(std::move(costs));
  }
  sort_records(model);
  return model;
}

void merge_cost_model(CostModel& into, const CostModel& from) {
  if (into.source.empty()) into.source = from.source;
  for (const RecordCosts& r : from.records) {
    RecordCosts* mine = nullptr;
    for (RecordCosts& candidate : into.records) {
      if (candidate.record == r.record) {
        mine = &candidate;
        break;
      }
    }
    if (!mine) {
      into.records.push_back(r);
      continue;
    }
    for (const auto& [stage, seconds] : r.stage_seconds) {
      mine->stage_seconds.emplace(stage, seconds);  // first report wins
    }
  }
  for (const MeasuredRun& m : from.measured) into.measured.push_back(m);
  into.excluded_quarantined += from.excluded_quarantined;
  into.excluded_degraded += from.excluded_degraded;
  into.excluded_station_collisions += from.excluded_station_collisions;
  into.flagged_degraded += from.flagged_degraded;
  into.flagged_retried += from.flagged_retried;
  into.floored_costs += from.floored_costs;
  sort_records(into);
}

}  // namespace acx::sched
