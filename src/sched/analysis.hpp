#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/graph.hpp"
#include "sched/cost_model.hpp"
#include "sched/simulator.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace acx::sched {

struct AnalysisOptions {
  // Virtual processor count; default 12, the logical processors of the
  // paper's i5-12450H.
  int procs = 12;
  // Tie-break seed of the list scheduler (docs/SCHED.md); the default
  // is fixed so unseeded runs are byte-stable.
  std::uint64_t seed = 12450;
  // Chunk count of the full driver's nested Stage-IX split; 0 = procs.
  int response_split = 0;
  std::string split_stage = "response";
  // Extra processor counts to sweep the full driver across.
  std::vector<int> sweep;
};

// One driver's modeled execution: the work/span of its task graph, the
// simulated makespan on P processors, the Brent bounds
// max(T1/P, Tinf) <= Tp <= T1/P + Tinf the makespan must respect, and
// the speedup against the modeled sequential anchor.
struct DriverModel {
  std::string driver;
  double work = 0;
  double span = 0;
  double makespan = 0;
  double brent_lower = 0;
  double brent_upper = 0;
  double speedup = 0;
  TaskGraph graph;      // retained for Gantt rendering
  Schedule schedule;
};

// One stage modeled in isolation on P processors — the Fig. 11 rows.
struct StageModel {
  std::string stage;
  bool redundant = false;
  int tasks = 0;
  double seq_seconds = 0;  // summed cost across records
  double share = 0;        // of the full-graph work
  double modeled_seconds = 0;
  double speedup = 0;  // seq_seconds / modeled_seconds
};

struct SweepPoint {
  int procs = 0;
  double makespan = 0;
  double speedup = 0;
};

// The whole modeled evaluation of one cost model. `anchor` names the
// driver the speedups divide by: "seq" when the model carries costs for
// every redundant stage, else "seq-opt".
struct SchedModel {
  int procs = 12;
  std::uint64_t seed = 12450;
  int response_split = 0;
  std::string anchor;
  CostModel model;
  std::vector<DriverModel> drivers;  // seq?, seq-opt, partial, full
  std::vector<StageModel> stages;    // full-plan order
  std::vector<SweepPoint> sweep;

  const DriverModel* driver(const std::string& name) const;
  // Deterministic sched_report JSON (schema documented in
  // docs/SCHED.md); same model in, identical bytes out.
  Json to_json() const;
};

// Model all four drivers (seq only when the redundant stages have
// costs) plus the per-stage isolation rows and the optional sweep.
// `shape` is the stage graph's shape() — pass a custom one in tests.
Result<SchedModel, std::string> analyze(
    const CostModel& model, const std::vector<pipeline::StageShape>& shape,
    const AnalysisOptions& options);

}  // namespace acx::sched
