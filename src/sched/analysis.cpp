#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace acx::sched {

const DriverModel* SchedModel::driver(const std::string& name) const {
  for (const DriverModel& d : drivers) {
    if (d.driver == name) return &d;
  }
  return nullptr;
}

namespace {

DriverModel model_driver(const std::string& name, TaskGraph graph, int procs,
                         std::uint64_t seed) {
  DriverModel d;
  d.driver = name;
  d.work = graph.work();
  d.span = graph.span();
  d.schedule = list_schedule(graph, procs, seed);
  d.makespan = d.schedule.makespan;
  d.brent_lower = std::max(d.work / procs, d.span);
  d.brent_upper = d.work / procs + d.span;
  d.graph = std::move(graph);
  return d;
}

}  // namespace

Result<SchedModel, std::string> analyze(
    const CostModel& model, const std::vector<pipeline::StageShape>& shape,
    const AnalysisOptions& options) {
  if (options.procs < 1) {
    return std::string("analyze: procs must be >= 1");
  }
  if (model.records.empty()) {
    return std::string("analyze: cost model has no records");
  }
  std::set<std::string> known;
  for (const pipeline::StageShape& s : shape) known.insert(s.name);
  for (const RecordCosts& r : model.records) {
    for (const auto& [stage, seconds] : r.stage_seconds) {
      if (!known.count(stage)) {
        return "analyze: cost model stage '" + stage +
               "' is not in the stage graph shape";
      }
    }
  }

  SchedModel out;
  out.procs = options.procs;
  out.seed = options.seed;
  out.response_split =
      options.response_split > 0 ? options.response_split : options.procs;
  out.model = model;

  std::vector<pipeline::StageShape> pruned;
  for (const pipeline::StageShape& s : shape) {
    if (!s.redundant) pruned.push_back(s);
  }
  GraphOptions graph_opt;
  graph_opt.split_stage = options.split_stage;
  graph_opt.split = out.response_split;

  // Sequential Original needs the redundant stages' costs; a model
  // built from a seq-opt report never measured them, so the seq row is
  // omitted and speedups anchor on Sequential Optimized instead.
  bool have_redundant = true;
  for (const pipeline::StageShape& s : shape) {
    if (s.redundant && !model.has_stage(s.name)) have_redundant = false;
  }
  if (have_redundant) {
    out.drivers.push_back(model_driver(
        "seq", serial_graph(model, shape), options.procs, options.seed));
  }
  out.drivers.push_back(model_driver(
      "seq-opt", serial_graph(model, pruned), options.procs, options.seed));
  out.drivers.push_back(model_driver(
      "partial", barrier_graph(model, pruned), options.procs, options.seed));
  out.drivers.push_back(
      model_driver("full", record_graph(model, pruned, graph_opt),
                   options.procs, options.seed));

  out.anchor = have_redundant ? "seq" : "seq-opt";
  const double anchor_makespan = out.driver(out.anchor)->makespan;
  for (DriverModel& d : out.drivers) {
    d.speedup = d.makespan > 0 ? anchor_makespan / d.makespan : 0;
  }

  for (const pipeline::StageShape& s : shape) {
    if (!model.has_stage(s.name)) continue;
    StageModel sm;
    sm.stage = s.name;
    sm.redundant = s.redundant;
    sm.seq_seconds = model.stage_work(s.name);
    TaskGraph isolated = stage_graph(model, s.name, graph_opt);
    sm.tasks = static_cast<int>(isolated.tasks.size());
    const Schedule sched =
        list_schedule(isolated, options.procs, options.seed);
    sm.modeled_seconds = sched.makespan;
    sm.speedup =
        sm.modeled_seconds > 0 ? sm.seq_seconds / sm.modeled_seconds : 0;
    out.stages.push_back(std::move(sm));
  }
  const double anchor_work = out.driver(out.anchor)->work;
  for (StageModel& sm : out.stages) {
    sm.share = anchor_work > 0 ? sm.seq_seconds / anchor_work : 0;
  }

  for (const int procs : options.sweep) {
    if (procs < 1) return std::string("analyze: sweep procs must be >= 1");
    SweepPoint point;
    point.procs = procs;
    point.makespan =
        list_schedule(record_graph(model, pruned, graph_opt), procs,
                      options.seed)
            .makespan;
    point.speedup =
        point.makespan > 0 ? anchor_makespan / point.makespan : 0;
    out.sweep.push_back(point);
  }
  return out;
}

Json SchedModel::to_json() const {
  Json root = Json::object();
  root.set("version", 1);
  root.set("tool", "acx_sched");
  root.set("procs", procs);
  root.set("seed", static_cast<double>(seed));
  root.set("response_split", response_split);
  root.set("anchor", anchor);
  root.set("source", model.source);
  root.set("records", static_cast<int>(model.records.size()));
  root.set("points", static_cast<double>(model.total_points()));

  Json excluded = Json::object();
  excluded.set("quarantined", model.excluded_quarantined);
  excluded.set("degraded", model.excluded_degraded);
  root.set("excluded", std::move(excluded));
  Json flagged = Json::object();
  flagged.set("degraded", model.flagged_degraded);
  flagged.set("retried", model.flagged_retried);
  flagged.set("floored_costs", model.floored_costs);
  root.set("flagged", std::move(flagged));

  Json measured = Json::array();
  for (const MeasuredRun& m : model.measured) {
    Json jm = Json::object();
    jm.set("driver", m.driver);
    jm.set("threads", m.threads);
    jm.set("total_seconds", m.total_seconds);
    measured.push(std::move(jm));
  }
  root.set("measured", std::move(measured));

  Json jdrivers = Json::array();
  for (const DriverModel& d : drivers) {
    Json jd = Json::object();
    jd.set("driver", d.driver);
    jd.set("work", d.work);
    jd.set("span", d.span);
    jd.set("makespan", d.makespan);
    jd.set("brent_lower", d.brent_lower);
    jd.set("brent_upper", d.brent_upper);
    jd.set("speedup", d.speedup);
    jdrivers.push(std::move(jd));
  }
  root.set("drivers", std::move(jdrivers));

  Json jstages = Json::array();
  for (const StageModel& s : stages) {
    Json js = Json::object();
    js.set("stage", s.stage);
    js.set("redundant", s.redundant);
    js.set("tasks", s.tasks);
    js.set("seq_seconds", s.seq_seconds);
    js.set("share", s.share);
    js.set("modeled_seconds", s.modeled_seconds);
    js.set("speedup", s.speedup);
    jstages.push(std::move(js));
  }
  root.set("stages", std::move(jstages));

  Json jsweep = Json::array();
  for (const SweepPoint& p : sweep) {
    Json jp = Json::object();
    jp.set("procs", p.procs);
    jp.set("makespan", p.makespan);
    jp.set("speedup", p.speedup);
    jsweep.push(std::move(jp));
  }
  root.set("sweep", std::move(jsweep));
  return root;
}

}  // namespace acx::sched
